"""Section 3.2: instrumentation overhead.

The paper measured (i) ~236 cycles per logged record in a
micro-benchmark of 1,000,000 consecutive runs, (ii) <0.1% total CPU
overhead under a timer-intensive workload, and (iii) <3% perturbation
of the call count versus an unmodified kernel.

Here (i) becomes a real micro-benchmark of our record-emission path,
and (ii)/(iii) compare a workload run against an identical run with a
null sink — the analogue of the unmodified kernel.
"""

from repro.sim.clock import MINUTE
from repro.tracing import CountingSink, EventKind, NullSink, RelayBuffer, \
    TimerEvent
from repro.workloads import run_workload
from repro.linuxkern import LinuxKernel
from repro.linuxkern.subsystems import standard_housekeeping

from conftest import BENCH_SEED, save_result


def test_sec32_record_emission_microbench(benchmark, results_dir):
    """Cost of gathering and logging one record (the 236-cycles item)."""
    buffer = RelayBuffer()
    site = ("tcp_ack", "inet_csk_reset_xmit_timer", "__mod_timer")

    def emit_one():
        buffer.emit(TimerEvent(EventKind.SET, 123456789, 0x1040, 42,
                               "apache2", "kernel", site, 204_000_000,
                               327_000_000))

    benchmark(emit_one)
    mean_ns = benchmark.stats.stats.mean * 1e9
    save_result(results_dir, "sec32_overhead_micro",
                f"per-record emission cost: {mean_ns:.0f} ns "
                f"(paper: 236 cycles ~ 89 ns at 2.66 GHz)")
    # Sub-10µs per record: instrumentation is not the bottleneck.
    assert mean_ns < 10_000


def test_sec32_call_count_perturbation(benchmark, results_dir):
    """The logged run performs the same timer work as the 'unmodified'
    run: behaviour perturbation is zero by construction here, matching
    the paper's <3% bound."""
    def run_with(sink_cls):
        kernel = LinuxKernel(seed=BENCH_SEED, sink=sink_cls())
        counter = CountingSink()
        original_emit = kernel.sink.emit

        def counting_emit(event):
            counter.emit(event)
            original_emit(event)

        kernel.sink.emit = counting_emit
        for timer in standard_housekeeping(kernel):
            timer.start()
        kernel.run_for(MINUTE)
        return counter.total

    logged = benchmark.pedantic(lambda: run_with(RelayBuffer),
                                rounds=1, iterations=1)
    unlogged = run_with(NullSink)
    delta_pct = abs(logged - unlogged) / unlogged * 100
    save_result(results_dir, "sec32_overhead_counts",
                f"calls with logging: {logged}\n"
                f"calls without:      {unlogged}\n"
                f"perturbation:       {delta_pct:.2f}% (paper: <3%)")
    assert delta_pct < 3.0
