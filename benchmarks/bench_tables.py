"""Tables 1–3: trace summaries for both systems and timeout origins.

Each benchmark regenerates the corresponding table of the paper and
asserts its qualitative shape (who dominates, by roughly what factor).
Absolute counts are for a 5-minute run — 1/6 of the paper's 30 minutes.
"""

from repro.core import (origin_table, render_origin_table, summarize,
                        summary_table)

from conftest import save_result

WORKLOADS = ("idle", "skype", "firefox", "webserver")


def test_tab1_linux_summary(traces, benchmark, results_dir):
    runs = [traces.trace("linux", wl) for wl in WORKLOADS]
    summaries = benchmark.pedantic(
        lambda: [summarize(trace) for trace in runs],
        rounds=1, iterations=1)
    text = summary_table(summaries)
    save_result(results_dir, "tab1_linux_summary", text)

    by_name = {s.workload: s for s in summaries}
    # Paper's Table 1 shape: firefox dwarfs everything; only the
    # webserver is kernel-dominated; firefox cancels > expiries.
    assert by_name["firefox"].accesses > 5 * by_name["webserver"].accesses
    assert by_name["webserver"].kernel > by_name["webserver"].user_space
    for name in ("idle", "skype", "firefox"):
        assert by_name[name].user_space > by_name[name].kernel
    assert by_name["firefox"].canceled > by_name["firefox"].expired


def test_tab2_vista_summary(traces, benchmark, results_dir):
    runs = [traces.trace("vista", wl) for wl in WORKLOADS]
    summaries = benchmark.pedantic(
        lambda: [summarize(trace) for trace in runs],
        rounds=1, iterations=1)
    text = summary_table(summaries)
    save_result(results_dir, "tab2_vista_summary", text)

    for summary in summaries:
        # Paper's Table 2 shape: on Vista timers usually expire.
        assert summary.expired > 3 * summary.canceled
        # Access totals track set+cancel (expiry runs in the DPC).
        assert summary.accesses <= summary.set_count \
            + summary.canceled + summary.expired


def test_tab3_origins(traces, benchmark, results_dir):
    idle = traces.trace("linux", "idle")
    web = traces.trace("linux", "webserver")
    combined = benchmark.pedantic(
        lambda: origin_table(idle, min_sets=10)
        + origin_table(web, min_sets=10),
        rounds=1, iterations=1)
    merged = {}
    for row in combined:
        key = (row.timeout_ns, row.origin)
        if key not in merged or row.set_count > merged[key].set_count:
            merged[key] = row
    rows = sorted(merged.values(),
                  key=lambda r: (r.timeout_ns, r.origin))
    text = render_origin_table(rows)
    save_result(results_dir, "tab3_origins", text)

    table = {(round(r.timeout_seconds, 3), r.origin): r.timer_class.value
             for r in rows}
    # Spot-check the paper's Table 3 rows.
    assert table[(0.004, "Block I/O scheduler")] == "timeout"
    assert table[(0.248, "USB host controller status poll")] == "periodic"
    assert table[(0.5, "High-Res timers clocksource watchdog")] \
        == "periodic"
    assert table[(1.0, "Kernel workqueue timer")] == "periodic"
    assert table[(30.0, "IDE Command timeout")] == "timeout"
    assert table[(7200.0, "TCP keepalive")] == "timeout"
    assert any(origin == "ARP" for (_v, origin) in table)
