"""Section 2.2.2: the effect of layering.

Regenerates the file-browser scenario: typing a server name kicks off
parallel name lookups and then parallel SMB/NFS/WebDAV connects, with
NFS-over-SunRPC backing off 7 times from 500 ms.  "Recovering from a
typing error can take over a minute" while a healthy answer arrives
shortly after the 130 ms RTT — and a provenance-aware flattened
timeout reports the same failure in about half a second.
"""

from repro.sim.clock import SECOND, millis
from repro.workloads import browse, browse_adaptive

from conftest import save_result


def test_sec222_layered_failure_latency(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: {
            "healthy": browse(name_resolves=True, server_reachable=True),
            "typo": browse(name_resolves=False, server_reachable=True),
            "unreachable": browse(name_resolves=True,
                                  server_reachable=False),
            "adaptive-unreachable": browse_adaptive(
                name_resolves=True, server_reachable=False),
            "adaptive-typo": browse_adaptive(
                name_resolves=False, server_reachable=True),
        }, rounds=1, iterations=1)

    lines = [f"{name:22s} {res.outcome:12s} "
             f"{res.elapsed_seconds:9.3f}s"
             for name, res in results.items()]
    lines.append("")
    lines.append("unreachable timeline:")
    for ts, what in results["unreachable"].timeline:
        lines.append(f"  {ts / SECOND:8.3f}s  {what}")
    save_result(results_dir, "sec222_layering", "\n".join(lines))

    # The paper's claims, in order ('a response from the file
    # server usually arrives shortly after the 130 ms round-trip'):
    assert results["healthy"].elapsed_ns <= millis(400)
    assert results["unreachable"].elapsed_seconds > 60.0
    assert results["typo"].elapsed_seconds >= 7.0
    # Flattened adaptive timeouts report failure ~100x faster.
    assert results["adaptive-unreachable"].elapsed_ns \
        < results["unreachable"].elapsed_ns / 50
    assert results["adaptive-typo"].elapsed_ns \
        < results["typo"].elapsed_ns / 5
