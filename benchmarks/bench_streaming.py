#!/usr/bin/env python
"""Streaming-vs-batch analysis benchmark.

Two claims back the :mod:`repro.core.streaming` reducers:

* **exactness** — folding the event stream through
  :class:`~repro.core.streaming.StreamingSuite` produces results
  byte-identical to the batch analyses of the same trace (rendered
  through the same formatters), on both OSes (Vista exercises the
  wait-fast-path retroactive inserts and the watermarked sweep);
* **bounded memory** — the suite's transient aggregation state stays
  flat as the trace grows: peak state entries for a 30-virtual-minute
  idle run must be within 2x of the 2-minute run, while the batch
  pipeline's retained event count grows linearly (~15x).

It also times the pure analysis paths over identical event streams:
batch battery (index build + every analysis) versus a streaming
replay (``emit`` loop + ``finish``), in events/second, plus the
Python-heap peak (``tracemalloc``) of running each pipeline in flight.

Results go to ``BENCH_streaming.json``.  Usage::

    PYTHONPATH=src python benchmarks/bench_streaming.py           # full
    PYTHONPATH=src python benchmarks/bench_streaming.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import tracemalloc

if __package__ in (None, ""):   # direct invocation without PYTHONPATH
    _src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    if _src not in sys.path and os.path.isdir(_src):
        sys.path.insert(0, _src)

from repro.core import (TraceIndex, pattern_breakdown, duration_scatter,
                        origin_table, rate_series, render_histogram,
                        render_origin_table, render_rates,
                        render_scatter, summarize, summary_table,
                        value_histogram)
from repro.core.streaming import StreamingSuite
from repro.kern import backend_names
from repro.sim.clock import MINUTE
from repro.tracing import Trace
from repro.workloads import run_workload


def render_battery(summary, breakdown, hist, scatter, rates,
                   origins) -> str:
    """One canonical rendering of the analysis battery; batch and
    streaming results go through this identically."""
    return "\n".join([
        summary_table([summary]),
        str(breakdown.figure2_row()),
        render_histogram(hist),
        render_scatter(scatter),
        f"skipped={scatter.skipped} clipped={scatter.clipped}",
        render_origin_table(origins),
        render_rates(rates, max_rows=10),
    ])


def batch_battery(trace: Trace) -> str:
    index = TraceIndex.of(trace)
    return render_battery(
        summarize(index), pattern_breakdown(index),
        value_histogram(index), duration_scatter(index),
        rate_series(index, duration_ns=trace.duration_ns),
        origin_table(index, min_sets=3))


def stream_replay(trace: Trace) -> tuple[str, StreamingSuite, float]:
    """Fold the trace's events through a fresh suite; returns the
    rendered battery, the suite and the replay seconds."""
    suite = StreamingSuite(trace.os_name, trace.workload)
    t0 = time.perf_counter()
    suite.emit_batch(trace.events)
    suite.finish(trace.duration_ns)
    elapsed = time.perf_counter() - t0
    text = render_battery(suite.summary, suite.breakdown,
                          suite.histogram, suite.scatter, suite.rates,
                          suite.origin_table(min_sets=3))
    return text, suite, elapsed


def in_flight(os_name: str, workload: str, duration_ns: int, seed: int,
              streaming: bool) -> dict:
    """Run one simulation with the given pipeline attached and
    measure its Python-heap peak and retained state."""
    tracemalloc.start()
    t0 = time.perf_counter()
    if streaming:
        suite = StreamingSuite(os_name, workload)
        run = run_workload(os_name, workload, duration_ns, seed=seed,
                           sinks=[suite], retain_events=False)
        suite.finish(run.trace.duration_ns)
        events, state = suite.n_events, suite.peak_state
    else:
        run = run_workload(os_name, workload, duration_ns, seed=seed)
        TraceIndex.of(run.trace)
        events, state = len(run.trace), len(run.trace)
    elapsed = time.perf_counter() - t0
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {"events": events, "state_entries": state,
            "heap_peak_kib": peak // 1024, "wall_s": round(elapsed, 3)}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true",
                        help="fast CI mode: 0.2 vs 2 virtual minutes "
                             "instead of 2 vs 30")
    parser.add_argument("--out", default="BENCH_streaming.json")
    args = parser.parse_args(argv)

    short_min, long_min = (0.2, 2.0) if args.smoke else (2.0, 30.0)

    # -- exactness + analysis throughput --------------------------------
    exact = {}
    identical = True
    for os_name in backend_names():
        duration = int(short_min * MINUTE)
        print(f"exactness: {os_name}/idle {short_min:g} min",
              file=sys.stderr)
        trace = run_workload(os_name, "idle", duration,
                             seed=args.seed).trace
        t0 = time.perf_counter()
        batch_text = batch_battery(trace)
        batch_s = time.perf_counter() - t0
        stream_text, suite, stream_s = stream_replay(trace)
        same = stream_text == batch_text
        identical = identical and same and suite.late_waits == 0
        exact[f"{os_name}/idle"] = {
            "events": len(trace),
            "identical_output": same,
            "late_waits": suite.late_waits,
            "batch_events_per_s": round(len(trace) / batch_s)
            if batch_s else None,
            "stream_events_per_s": round(len(trace) / stream_s)
            if stream_s else None,
        }
        if not same:
            print(f"FATAL: {os_name}/idle streaming output differs",
                  file=sys.stderr)

    # -- bounded memory -------------------------------------------------
    bounded = {}
    for label, minutes in (("short", short_min), ("long", long_min)):
        duration = int(minutes * MINUTE)
        print(f"bounded: linux/idle {minutes:g} min "
              "(streaming, then batch)", file=sys.stderr)
        bounded[label] = {
            "minutes": minutes,
            "streaming": in_flight("linux", "idle", duration,
                                   args.seed, streaming=True),
            "batch": in_flight("linux", "idle", duration,
                               args.seed, streaming=False),
        }
    short_peak = bounded["short"]["streaming"]["state_entries"]
    long_peak = bounded["long"]["streaming"]["state_entries"]
    state_ratio = long_peak / short_peak if short_peak else None
    event_ratio = (bounded["long"]["batch"]["state_entries"]
                   / bounded["short"]["batch"]["state_entries"])
    bounded_ok = state_ratio is not None and state_ratio <= 2.0
    bounded["verdict"] = {
        "streaming_state_growth": round(state_ratio, 3)
        if state_ratio else None,
        "batch_state_growth": round(event_ratio, 3),
        "within_2x": bounded_ok,
    }

    result = {
        "config": {"seed": args.seed, "smoke": args.smoke,
                   "short_minutes": short_min, "long_minutes": long_min,
                   "cpus": os.cpu_count()},
        "exactness": exact,
        "bounded_memory": bounded,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")

    print(f"\nstreaming state growth {short_min:g}->{long_min:g} min: "
          f"{state_ratio:.2f}x (batch events: {event_ratio:.1f}x); "
          f"exact: {identical}", file=sys.stderr)
    print(f"results -> {args.out}", file=sys.stderr)
    return 0 if identical and bounded_ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
