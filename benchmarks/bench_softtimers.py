"""Ablation: soft timers versus hardware-interrupt timers at
microsecond precision (the paper's Section 1/6 overhead motivation).

A network-polling workload needs a timer every ~100 us (the Aron &
Druschel use case).  Three facilities deliver it:

1. a dedicated one-shot hardware timer per expiry (an interrupt each),
2. soft timers on a busy system (trigger points every ~20 us from
   syscall/exception returns; 1 ms hardware fallback),
3. soft timers on an idle system (no trigger points: everything falls
   back, showing the scheme's latency cost).
"""

from repro.sim import Engine, OneShotDevice, PowerMeter, RngRegistry, \
    micros, millis, seconds
from repro.sim.clock import SECOND
from repro.linuxkern.softtimers import SoftTimer, SoftTimerFacility

from conftest import save_result

PERIOD_NS = 100 * micros(1)
DURATION = 2 * SECOND


def run_hardware():
    engine = Engine()
    power = PowerMeter()
    fired = [0]

    device = OneShotDevice(engine, lambda: None, power=power)

    def rearm():
        fired[0] += 1
        device.handler = rearm
        device.program(engine.now + PERIOD_NS)

    device.handler = rearm
    device.program(PERIOD_NS)
    engine.run_until(DURATION)
    return fired[0], power.interrupts, 0


def run_soft(*, busy: bool):
    engine = Engine()
    facility = SoftTimerFacility(engine, fallback_period_ns=millis(1))
    if busy:
        rng = RngRegistry(seed=7).stream("triggers")
        facility.drive_trigger_points(rng, mean_gap_ns=micros(20),
                                      until_ns=DURATION)
    fired = [0]
    timer = SoftTimer()

    def rearm():
        fired[0] += 1
        facility.arm(timer, PERIOD_NS, rearm)

    facility.arm(timer, PERIOD_NS, rearm)
    engine.run_until(DURATION)
    return (fired[0], facility.power.interrupts,
            facility.latency_percentile(90))


def test_soft_timers_vs_hardware(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: {
            "hardware one-shot": run_hardware(),
            "soft timers (busy)": run_soft(busy=True),
            "soft timers (idle)": run_soft(busy=False),
        }, rounds=1, iterations=1)

    lines = [f"{'facility':20s} {'expiries':>9s} {'interrupts':>11s} "
             f"{'p90 latency':>12s}"]
    for name, (fired, interrupts, p90) in results.items():
        lines.append(f"{name:20s} {fired:9d} {interrupts:11d} "
                     f"{p90 / 1000:10.1f}us")
    save_result(results_dir, "softtimers", "\n".join(lines))

    hw_fired, hw_interrupts, _ = results["hardware one-shot"]
    busy_fired, busy_interrupts, busy_p90 = results["soft timers (busy)"]
    idle_fired, idle_interrupts, idle_p90 = results["soft timers (idle)"]

    # The paper's cited result: microsecond timing without the
    # interrupt overhead — interrupts drop by >5x on a busy system
    # while the expiry rate stays comparable and p90 latency stays in
    # the tens of microseconds.
    assert hw_interrupts >= hw_fired
    assert busy_interrupts < hw_interrupts / 5
    assert busy_fired > hw_fired * 0.6
    assert busy_p90 < micros(100)
    # Idle system: latency degrades to the fallback period.
    assert idle_p90 > micros(300)
    assert idle_interrupts <= DURATION // millis(1) + 1
