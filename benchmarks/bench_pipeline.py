#!/usr/bin/env python
"""End-to-end study pipeline benchmark.

Times the two phases of ``timerstudy study`` on the paper's four
workloads (both OSes, plus the Figure 1 desktop trace):

* **run phase** — the simulations themselves, serial versus the
  ``multiprocessing`` driver (:func:`repro.workloads.run_study_traces`),
  verifying the parallel traces are byte-identical to the serial ones;
* **analyze phase** — the full per-trace analysis battery (Tables 1–3,
  Figures 2–11, adaptivity, nesting), with the pre-index behaviour
  (every analysis re-groups and re-extracts episodes from scratch)
  versus the shared single-pass :class:`repro.core.index.TraceIndex`,
  verifying both produce identical output;
* **metrics phase** — the run phase repeated with
  ``collect_metrics=True``, verifying observability leaves the traces
  byte-identical and costs well under the 10% overhead budget;
* **io phase** — the heaviest trace saved and re-loaded through every
  registered format (gzipped JSON lines, binfmt v1, columnar v2),
  verifying the analysis battery over the zero-copy v2 view is
  byte-identical to the battery over the eager v1 load.

Results go to ``BENCH_pipeline.json`` so successive PRs can track the
perf trajectory.  Usage::

    PYTHONPATH=src python benchmarks/bench_pipeline.py            # full
    PYTHONPATH=src python benchmarks/bench_pipeline.py --smoke    # CI

The pre-index baseline is reconstructed by handing every analysis a
fresh ``Trace`` wrapper around the same event list: each call then
builds its own groupings and episodes, which is exactly the work the
analyses used to repeat privately before the index existed.
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import os
import sys
import tempfile
import time

if __package__ in (None, ""):   # direct invocation without PYTHONPATH
    _src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    if _src not in sys.path and os.path.isdir(_src):
        sys.path.insert(0, _src)

from repro.core import (adaptivity_report, duration_scatter, infer_nesting,
                        origin_table, pattern_breakdown, rate_series,
                        render_histogram, render_nesting,
                        render_origin_table, render_rates, render_scatter,
                        round_value_share, summarize, value_histogram)
from repro.obs import MetricsSnapshot
from repro.sim.clock import MINUTE
from repro.tracing import Trace, open_trace, trace_to_bytes, write_trace
from repro.kern import backend_names
from repro.workloads import run_study_traces

WORKLOADS = ("idle", "skype", "firefox", "webserver")
STUDY_ORDER = [(os_name, workload) for os_name in backend_names()
               for workload in WORKLOADS] + [("vista", "desktop")]


def fresh_copy(trace: Trace) -> Trace:
    """Same events, no cached index: forces the pre-index re-scan."""
    return Trace(os_name=trace.os_name, workload=trace.workload,
                 duration_ns=trace.duration_ns, events=trace.events)


def analysis_battery(trace: Trace, get) -> str:
    """The ``timerstudy analyze`` battery; ``get(trace)`` supplies the
    trace each analysis sees (fresh copies defeat the shared index)."""
    out = []
    out.append(str(summarize(get(trace)).as_row()))
    out.append(str(pattern_breakdown(get(trace)).figure2_row()))
    hist = value_histogram(get(trace))
    out.append(render_histogram(hist))
    out.append(f"{round_value_share(hist):.6f}")
    scatter = duration_scatter(get(trace))
    out.append(render_scatter(scatter))
    out.append(f"{scatter.share_above_100pct():.6f}")
    out.append(render_origin_table(origin_table(get(trace), min_sets=5)))
    out.append(adaptivity_report(get(trace)).render())
    out.append(render_nesting(infer_nesting(get(trace))[:10]))
    return "\n".join(out)


def figure1(trace: Trace, get) -> str:
    return render_rates(rate_series(get(trace)),
                        groups=["Outlook", "Browser", "System", "Kernel"],
                        max_rows=10)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--minutes", type=float, default=2.0,
                        help="virtual minutes per workload (default 2)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel workers (default: one per CPU)")
    parser.add_argument("--smoke", action="store_true",
                        help="fast CI mode: short traces, skips the "
                             "duplicate serial run phase")
    parser.add_argument("--out", default="BENCH_pipeline.json")
    args = parser.parse_args(argv)

    minutes = 0.2 if args.smoke else args.minutes
    duration = int(minutes * MINUTE)
    jobs = [(os_name, workload,
             None if workload == "desktop" else duration, args.seed)
            for os_name, workload in STUDY_ORDER]

    # -- run phase ------------------------------------------------------
    print(f"run phase: {len(jobs)} simulations x {minutes:g} virtual "
          "minutes", file=sys.stderr)
    t0 = time.perf_counter()
    parallel_traces = run_study_traces(jobs, processes=args.jobs)
    parallel_s = time.perf_counter() - t0

    run_phase = {"parallel_s": round(parallel_s, 4),
                 "workers": args.jobs or (os.cpu_count() or 1)}
    if not args.smoke:
        t0 = time.perf_counter()
        serial_traces = run_study_traces(jobs, processes=1)
        serial_s = time.perf_counter() - t0
        identical = all(trace_to_bytes(a) == trace_to_bytes(b)
                        for a, b in zip(serial_traces, parallel_traces))
        run_phase.update(serial_s=round(serial_s, 4),
                         speedup=round(serial_s / parallel_s, 3),
                         identical_traces=identical)
        if not identical:
            print("FATAL: parallel traces differ from serial run",
                  file=sys.stderr)
            return 1

    # -- metrics phase --------------------------------------------------
    # Interleaved best-of-N on both sides: single runs of a multi-second
    # study are dominated by scheduler noise, not collection cost.
    reps = 1 if args.smoke else 3
    print("metrics phase: re-running the study with collect_metrics on "
          f"({reps} reps/side)", file=sys.stderr)
    observed = None
    plain_s, metrics_s = parallel_s, float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        run_study_traces(jobs, processes=args.jobs)
        plain_s = min(plain_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        observed = run_study_traces(jobs, processes=args.jobs,
                                    collect_metrics=True)
        metrics_s = min(metrics_s, time.perf_counter() - t0)
    metrics_identical = all(
        trace_to_bytes(trace) == trace_to_bytes(plain)
        for (trace, _snapshot), plain in zip(observed, parallel_traces))
    merged = MetricsSnapshot.merge(snap for _trace, snap in observed)
    overhead_pct = round(100.0 * (metrics_s - plain_s) / plain_s, 2)
    metrics_phase = {"plain_s": round(plain_s, 4),
                     "metrics_s": round(metrics_s, 4),
                     "overhead_pct": overhead_pct,
                     "identical_traces": metrics_identical,
                     "samples": len(merged.samples)}
    if not metrics_identical:
        print("FATAL: metrics collection perturbed the traces",
              file=sys.stderr)
        return 1

    traces = dict(zip(STUDY_ORDER, parallel_traces))

    # -- io phase -------------------------------------------------------
    # Save/load the heaviest trace through every registered format and
    # assert the analysis battery is byte-identical over the v1 (eager)
    # and v2 (zero-copy columnar) load paths.
    heavy = max(traces.values(), key=len)
    print(f"io phase: {heavy.os_name}/{heavy.workload} "
          f"({len(heavy)} events) through jsonl/v1/v2", file=sys.stderr)
    io_phase = {"trace": f"{heavy.os_name}/{heavy.workload}",
                "events": len(heavy), "formats": {}}
    battery_by_format = {}
    with tempfile.TemporaryDirectory() as tmp:
        for fmt, ext in (("jsonl", ".jsonl.gz"), ("binfmt", ".bin1"),
                         ("binfmt2", ".bin")):
            path = os.path.join(tmp, f"heavy{ext}")
            t0 = time.perf_counter()
            write_trace(heavy, path, format=fmt)
            save_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            loaded = open_trace(path)
            load_s = time.perf_counter() - t0
            battery_by_format[fmt] = analysis_battery(loaded, lambda t: t)
            io_phase["formats"][fmt] = {
                "bytes": os.path.getsize(path),
                "save_s": round(save_s, 4),
                "load_s": round(load_s, 6),
            }
    io_identical = (battery_by_format["binfmt2"]
                    == battery_by_format["binfmt"]
                    == battery_by_format["jsonl"])
    io_phase["v2_output_identical_to_v1"] = io_identical
    v1_load = io_phase["formats"]["binfmt"]["load_s"]
    v2_load = io_phase["formats"]["binfmt2"]["load_s"]
    io_phase["v2_load_speedup"] = round(v1_load / v2_load, 1) \
        if v2_load else None
    if not io_identical:
        print("FATAL: v2 analysis output differs from v1",
              file=sys.stderr)
        return 1

    # -- analyze phase --------------------------------------------------
    # Cyclic GC is paused (symmetrically, for both the baseline and the
    # indexed side) while the batteries run: with nine full traces
    # retained, collector sweeps over their object graphs would time
    # the allocator, not the analyses.  Same rationale as
    # pytest-benchmark's default disable_gc.
    per_trace = {}
    baseline_total = indexed_total = 0.0
    identical_output = True
    study_hash = hashlib.sha256()
    gc.collect()
    gc.disable()
    try:
        for (os_name, workload), trace in traces.items():
            battery = figure1 if workload == "desktop" \
                else analysis_battery
            print(f"analyzing {os_name}/{workload} "
                  f"({len(trace)} events)", file=sys.stderr)
            t0 = time.perf_counter()
            baseline_out = battery(trace, fresh_copy)
            baseline_s = time.perf_counter() - t0
            gc.collect()
            t0 = time.perf_counter()
            indexed_out = battery(trace, lambda t: t)
            indexed_s = time.perf_counter() - t0
            gc.collect()
            if indexed_out != baseline_out:
                identical_output = False
                print(f"FATAL: {os_name}/{workload} indexed output "
                      "differs", file=sys.stderr)
            study_hash.update(indexed_out.encode("utf-8"))
            baseline_total += baseline_s
            indexed_total += indexed_s
            per_trace[f"{os_name}/{workload}"] = {
                "events": len(trace),
                "baseline_s": round(baseline_s, 4),
                "indexed_s": round(indexed_s, 4),
                "speedup": round(baseline_s / indexed_s, 3)
                if indexed_s else None,
            }
    finally:
        gc.enable()

    result = {
        "config": {"minutes": minutes, "seed": args.seed,
                   "jobs": args.jobs, "smoke": args.smoke,
                   "cpus": os.cpu_count()},
        "run_phase": run_phase,
        "metrics_phase": metrics_phase,
        "io_phase": io_phase,
        "analyze_phase": {
            "baseline_s": round(baseline_total, 4),
            "indexed_s": round(indexed_total, 4),
            "speedup": round(baseline_total / indexed_total, 3)
            if indexed_total else None,
            "identical_output": identical_output,
            "study_output_sha256": study_hash.hexdigest(),
            "per_trace": per_trace,
        },
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")

    speedup = result["analyze_phase"]["speedup"]
    print(f"\nanalyze phase: baseline {baseline_total:.2f}s, "
          f"indexed {indexed_total:.2f}s -> {speedup:.2f}x", file=sys.stderr)
    if "speedup" in run_phase:
        print(f"run phase: serial {run_phase['serial_s']:.2f}s, "
              f"parallel {run_phase['parallel_s']:.2f}s "
              f"({run_phase['workers']} workers) -> "
              f"{run_phase['speedup']:.2f}x", file=sys.stderr)
    print(f"metrics phase: plain {plain_s:.2f}s, observed "
          f"{metrics_s:.2f}s -> {overhead_pct:+.1f}% "
          f"({metrics_phase['samples']} samples)", file=sys.stderr)
    print(f"io phase: v2 load {v2_load * 1000:.1f}ms vs v1 "
          f"{v1_load * 1000:.1f}ms "
          f"({io_phase['v2_load_speedup']}x); identical: {io_identical}",
          file=sys.stderr)
    print(f"results -> {args.out}", file=sys.stderr)
    return 0 if identical_output and io_identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
