#!/usr/bin/env python
"""Section 5.1 study at scale: the adaptive-vs-fixed dominance gates.

Runs the full ``repro.study.sec51`` grid (serverfarm population on
every backend x network conditions x timeout policies) and pins the
paper's argument as regression gates:

* **dominance** — on at least three steady network conditions the
  99%-confidence adaptive policy must beat *every* fixed 5/15/30 s
  timeout on both axes at once: spurious-timeout rate no worse, and
  failure-detection p99 strictly faster;
* **level-shift degradation** — on the scripted LAN->WAN shift the
  adaptive estimator must actually relearn (``relearned >= 1``) and
  the transient cost (a spurious burst above its steady-state rate)
  is measured and pinned, not hidden;
* **determinism** — the rendered grid is byte-identical between a
  serial sweep and the process-pool sweep;
* **throughput** — wall seconds for population + grid at each jobs
  level, so the cell fan-out's scaling is tracked release to release.

Results go to ``BENCH_sec51.json``.  Usage::

    PYTHONPATH=src python benchmarks/bench_sec51_scale.py           # full
    PYTHONPATH=src python benchmarks/bench_sec51_scale.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

if __package__ in (None, ""):   # direct invocation without PYTHONPATH
    _src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    if _src not in sys.path and os.path.isdir(_src):
        sys.path.insert(0, _src)

from repro.core.report import render_sec51
from repro.study import run_sec51_study

#: Steady conditions eligible for the dominance gate (the scripted
#: shift and the pathological tails are measured, not gated).
STEADY_CONDITIONS = ("lan", "datacenter", "wan", "jittery", "lossy-wan")
FIXED_POLICIES = ("fixed-5", "fixed-15", "fixed-30")
ADAPTIVE = "p2-99"
SHIFT_CONDITION = "lan-wan-shift"
SHIFT_BASELINE = "lan"          # the regime the shift starts from


def cell_record(cell) -> dict:
    return {
        "backend": cell.backend, "condition": cell.condition,
        "policy": cell.policy, "connections": cell.connections,
        "waits": cell.waits, "failures": cell.failures,
        "false_timeouts": cell.false_timeouts,
        "wakeups": cell.wakeups,
        "spurious_rate": round(cell.spurious_rate, 6),
        "detection_p50_s": round(cell.detection_p50, 4),
        "detection_p99_s": round(cell.detection_p99, 4),
        "detection_max_s": round(cell.detection_max, 4),
        "wakeups_per_connection": round(cell.wakeups_per_connection, 5),
        "relearned": cell.relearned,
        "timeout_last_s": round(cell.timeout_last, 4),
    }


def dominance(result) -> dict:
    """Conditions where the adaptive policy beats every fixed one on
    both axes (spurious no worse, detection p99 strictly faster), per
    backend."""
    per_backend = {}
    for backend in result.backends:
        won = []
        for condition in result.conditions:
            if condition not in STEADY_CONDITIONS:
                continue
            adaptive = result.cell(backend, condition, ADAPTIVE)
            beats_all = all(
                adaptive.spurious_rate <= fixed.spurious_rate
                and adaptive.detection_p99 < fixed.detection_p99
                for fixed in (result.cell(backend, condition, name)
                              for name in FIXED_POLICIES))
            if beats_all:
                won.append(condition)
        per_backend[backend] = won
    return per_backend


def level_shift(result) -> dict:
    """The transient cost of the scripted LAN->WAN shift, per backend."""
    per_backend = {}
    for backend in result.backends:
        shifted = result.cell(backend, SHIFT_CONDITION, ADAPTIVE)
        steady = result.cell(backend, SHIFT_BASELINE, ADAPTIVE)
        per_backend[backend] = {
            "relearned": shifted.relearned,
            "spurious_rate_shift": round(shifted.spurious_rate, 6),
            "spurious_rate_steady": round(steady.spurious_rate, 6),
            "spurious_burst": round(
                shifted.spurious_rate - steady.spurious_rate, 6),
            "timeout_last_s": round(shifted.timeout_last, 4),
            "degraded": bool(shifted.relearned >= 1
                             and shifted.spurious_rate
                             > steady.spurious_rate),
        }
    return per_backend


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true",
                        help="fast CI mode: short population run")
    parser.add_argument("--out", default="BENCH_sec51.json")
    args = parser.parse_args(argv)

    minutes = 0.25 if args.smoke else 1.0
    connections = 250 if args.smoke else 1_000

    runs = {}
    rendered = {}
    for jobs, label in ((1, "serial"), (None, "pool")):
        print(f"sec51 grid ({label}): {minutes:g} min population, "
              f"{connections} connections", file=sys.stderr)
        t0 = time.perf_counter()
        result = run_sec51_study(minutes=minutes, seed=args.seed,
                                 connections=connections, jobs=jobs)
        wall_s = time.perf_counter() - t0
        runs[label] = {"jobs": jobs or (os.cpu_count() or 1),
                       "wall_s": round(wall_s, 3),
                       "cells": len(result.cells)}
        rendered[label] = render_sec51(result)
    deterministic = rendered["serial"] == rendered["pool"]

    won = dominance(result)
    dominance_met = all(len(conditions) >= 3
                        for conditions in won.values())
    shift = level_shift(result)
    shift_met = all(entry["degraded"] for entry in shift.values())

    out = {
        "config": {"seed": args.seed, "smoke": args.smoke,
                   "minutes": minutes, "connections": connections,
                   "adaptive": ADAPTIVE,
                   "fixed": list(FIXED_POLICIES),
                   "cpus": os.cpu_count()},
        "populations": {backend: {"connections": pop[0],
                                  "waits": pop[1]}
                        for backend, pop in result.populations.items()},
        "runs": runs,
        "cells": [cell_record(cell) for cell in result.grid()],
        "verdict": {
            "deterministic_across_jobs": deterministic,
            "dominant_conditions": won,
            "dominance_target": f"{ADAPTIVE} spurious <= and detection "
                                "p99 < every fixed policy on >=3 "
                                "conditions per backend",
            "dominance_met": bool(dominance_met),
            "level_shift": shift,
            "level_shift_target": "relearned >= 1 and a measurable "
                                  "spurious burst over steady state",
            "level_shift_met": bool(shift_met),
        },
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(out, fh, indent=2)
        fh.write("\n")

    for backend, conditions in won.items():
        print(f"{backend}: {ADAPTIVE} dominates all fixed timeouts on "
              f"{len(conditions)} conditions: {', '.join(conditions)}",
              file=sys.stderr)
    for backend, entry in shift.items():
        print(f"{backend}: level shift relearned={entry['relearned']} "
              f"spurious burst={entry['spurious_burst']:+.4f} "
              f"settled timeout={entry['timeout_last_s']}s",
              file=sys.stderr)
    print(f"deterministic across jobs: {deterministic}; "
          f"results -> {args.out}", file=sys.stderr)
    return 0 if (deterministic and dominance_met and shift_met) else 1


if __name__ == "__main__":
    raise SystemExit(main())
