"""Figures 8–11: expiry/cancellation time as % of the set timeout.

One benchmark per workload, each regenerating both panels (Linux and
Vista) and asserting the features the paper reads off them:

* points above 100% (late delivery at scheduling granularity), far more
  pronounced on Vista;
* the Skype sub-second adaptive cancel cluster;
* the 5 s ARP column cancelled at random fractions;
* the webserver's journal cluster between 80% and 100% at ~5 s;
* Linux's jiffy quantisation (no sub-4 ms values) versus Vista's
  continuous value range.
"""

from repro.sim.clock import JIFFY, SECOND, millis, seconds
from repro.core import duration_scatter, render_scatter
from repro.core.episodes import Outcome

from conftest import save_result


def both_panels(traces, benchmark, workload):
    linux = traces.trace("linux", workload)
    vista = traces.trace("vista", workload)
    return benchmark.pedantic(
        lambda: (duration_scatter(linux), duration_scatter(vista)),
        rounds=1, iterations=1)


def save_panels(results_dir, name, panels):
    text = ("Linux:\n" + render_scatter(panels[0])
            + "\n\nVista:\n" + render_scatter(panels[1]))
    save_result(results_dir, name, text)


def test_fig08_durations_idle(traces, benchmark, results_dir):
    linux, vista = both_panels(traces, benchmark, "idle")
    save_panels(results_dir, "fig08_durations_idle", (linux, vista))
    # "In the Idle workload on Linux, most timers expire at the set time"
    on_time = [p for p in linux.points
               if p.outcome == Outcome.EXPIRED
               and 95 <= p.fraction_pct <= 110]
    expired_total = sum(p.count for p in linux.points
                        if p.outcome == Outcome.EXPIRED)
    assert sum(p.count for p in on_time) > 0.6 * expired_total
    # Vista delivers far more of its timers late.
    assert vista.share_above_100pct() > linux.share_above_100pct()
    # Linux values are jiffy-quantised; Vista's are not.
    assert all(p.value_ns >= JIFFY for p in linux.points)
    assert any(p.value_ns % JIFFY != 0 for p in vista.points)


def test_fig09_durations_skype(traces, benchmark, results_dir):
    linux, vista = both_panels(traces, benchmark, "skype")
    save_panels(results_dir, "fig09_durations_skype", (linux, vista))
    # The large sub-1s cluster of (mostly cancelled) adaptive timers.
    assert linux.cancel_share(value_min_ns=5 * JIFFY,
                              value_max_ns=SECOND) > 0.5
    # The 5 s ARP column cancelled at scattered fractions.
    low, high = linux.fraction_spread(seconds(5), rel_tol=0.01)
    assert high - low > 40.0
    # Vista: very short timeouts delivered at essentially random
    # multiples of their value (many clipped above 250%).
    assert vista.clipped > 100


def test_fig10_durations_firefox(traces, benchmark, results_dir):
    linux, vista = both_panels(traces, benchmark, "firefox")
    save_panels(results_dir, "fig10_durations_firefox", (linux, vista))
    # Cancellations of the jiffy-scale polls spread across 0–100%.
    short = [p for p in linux.points
             if p.value_ns <= 3 * JIFFY and p.outcome == Outcome.CANCELED]
    fractions = sorted(p.fraction_pct for p in short)
    assert fractions[0] < 20.0 and fractions[-1] > 80.0
    # Short *user* expiries are delivered a significant fraction late
    # (kernel 1-jiffy timers like the unplug timer may fire early when
    # armed just before a tick, so the claim is about user timers).
    user = duration_scatter(traces.trace("linux", "firefox").filtered(
        lambda e: e.domain == "user"))
    late = [p for p in user.points
            if p.value_ns <= 2 * JIFFY and p.outcome == Outcome.EXPIRED]
    assert late and all(p.fraction_pct >= 100.0 for p in late)
    assert vista.total() > linux.total() * 0.5


def test_fig11_durations_webserver(traces, benchmark, results_dir):
    linux, vista = both_panels(traces, benchmark, "webserver")
    save_panels(results_dir, "fig11_durations_webserver", (linux, vista))
    # The journal cluster: ~5 s timers cancelled between 80% and 100%.
    points = linux.points_near(seconds(4.9), rel_tol=0.04)
    cluster = sum(p.count for p in points
                  if p.outcome == Outcome.CANCELED
                  and 75 <= p.fraction_pct <= 101)
    assert cluster >= 10
    # The IDE 30 s command timeout is cancelled at a tiny fraction.
    ide = linux.points_near(seconds(30), rel_tol=0.01)
    cancels = [p for p in ide if p.outcome == Outcome.CANCELED]
    assert cancels and min(p.fraction_pct for p in cancels) < 1.0
    # No 7200 s keepalive column on Vista (paper's explicit remark).
    assert not vista.points_near(seconds(7200), rel_tol=0.01)
    assert linux.points_near(seconds(7200), rel_tol=0.01)
