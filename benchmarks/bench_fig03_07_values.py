"""Figures 3, 5, 6 and 7: common timeout values.

Regenerates the >= 2% value histograms: Linux unfiltered (Fig 3),
Linux with the X/icewm countdowns filtered out (Fig 5), Linux
syscall-level values (Fig 6), and Vista values (Fig 7) — and asserts
the paper's headline values appear where expected, including the
"round number" finding and the one online-adapted value (0.204 s).
"""

from repro.sim.clock import JIFFY, millis, seconds
from repro.core import (render_histogram, round_value_share,
                        value_histogram)

from conftest import save_result

X_COMMS = ("Xorg", "icewm")


def test_fig03_linux_values_unfiltered(traces, benchmark, results_dir):
    idle = traces.trace("linux", "idle")
    web = traces.trace("linux", "webserver")
    hists = benchmark.pedantic(
        lambda: (value_histogram(idle), value_histogram(web)),
        rounds=1, iterations=1)
    text = ("Idle:\n" + render_histogram(hists[0])
            + "\n\nWebserver:\n" + render_histogram(hists[1]))
    save_result(results_dir, "fig03_values_unfiltered", text)

    web_hist = hists[1]
    common = dict(web_hist.common_values(2.0))
    for value in (millis(40), 51 * JIFFY, seconds(3), seconds(15),
                  seconds(7200)):
        assert value in common, value
    # Paper: the >=2% values cover 97% of webserver sets.
    assert web_hist.coverage(2.0) > 80.0


def test_fig05_linux_values_filtered(traces, benchmark, results_dir):
    filtered = {wl: traces.trace("linux", wl).without_comms(X_COMMS)
                for wl in ("idle", "skype", "firefox", "webserver")}
    hists = benchmark.pedantic(
        lambda: {wl: value_histogram(t) for wl, t in filtered.items()},
        rounds=1, iterations=1)
    shares = {wl: round_value_share(h) for wl, h in hists.items()}
    texts = [f"{wl}:\n{render_histogram(h)}" for wl, h in hists.items()]
    save_result(results_dir, "fig05_values_filtered", "\n\n".join(texts))
    # The paper's core finding: almost all values are human round
    # numbers (or minimal jiffy counts), not measured quantities —
    # except on the webserver, where the adapted TCP RTO shows up.
    assert shares["idle"] > 0.9
    assert shares["firefox"] > 0.9
    assert shares["webserver"] < shares["idle"]


def test_fig06_linux_syscall_values(traces, benchmark, results_dir):
    runs = {wl: traces.trace("linux", wl)
            for wl in ("idle", "skype", "firefox", "webserver")}
    hists = benchmark.pedantic(
        lambda: {wl: value_histogram(t, domain="user")
                 for wl, t in runs.items()},
        rounds=1, iterations=1)
    texts = [f"{wl}:\n{render_histogram(h)}" for wl, h in hists.items()]
    save_result(results_dir, "fig06_syscall_values", "\n\n".join(texts))

    skype = hists["skype"]
    assert skype.percentage_of(0) > 15.0              # zero-timeout polls
    assert skype.counts.get(millis(499.9), 0) > 0     # 0.4999
    assert skype.counts.get(millis(500), 0) > 0       # 0.5
    idle = hists["idle"]
    human_scale = [v for v, _ in idle.common_values(2.0)
                   if v >= millis(500)]
    assert human_scale, "idle syscall values should be human time-scales"


def test_fig07_vista_values(traces, benchmark, results_dir):
    runs = {wl: traces.trace("vista", wl)
            for wl in ("idle", "skype", "firefox", "webserver")}
    hists = benchmark.pedantic(
        lambda: {wl: value_histogram(t) for wl, t in runs.items()},
        rounds=1, iterations=1)
    texts = [f"{wl}:\n{render_histogram(h)}" for wl, h in hists.items()]
    save_result(results_dir, "fig07_vista_values", "\n\n".join(texts))

    # Vista has no jiffy quantisation: sub-millisecond and exact-ms
    # values appear (0.0005, 0.001, 0.003 ... as in the paper's list).
    skype_values = {v for v, _ in hists["skype"].common_values(2.0)}
    assert any(0 < v < millis(1) for v in skype_values)
    assert millis(1) in skype_values
    firefox = hists["firefox"]
    small = sum(count for value, count in firefox.counts.items()
                if 0 < value < millis(10))
    assert small / firefox.total_sets > 0.3
