"""Section 5.5, part two: multiple applications on the planning
dispatcher.

A media desktop's temporal requirements (audio, video, network,
indexing) are admitted as execution plans.  Three scenarios:

1. a feasible mix under EDF — zero deadline misses despite 90%+ CPU
   utilisation and constant contention/preemption;
2. an additional application that would overload the CPU — *refused at
   admission*, the system-wide policy the paper calls for, instead of
   every app silently degrading;
3. the same overload forced through (no admission control) — EDF's
   notorious domino effect: once utilisation exceeds 1, lateness grows
   without bound and *every* application misses, which is exactly why
   the admission policy in (2) must exist.
"""

from repro.sim import Engine, millis, seconds
from repro.core.planned import AdmissionError, PlannedScheduler

from conftest import save_result

MIX = (
    ("audio", millis(20), millis(5)),      # 0.25
    ("video", millis(33), millis(12)),     # 0.36
    ("network", millis(50), millis(10)),   # 0.20
    ("indexer", millis(200), millis(22)),  # 0.11  -> total 0.92
)
OVERLOAD = ("transcoder", millis(100), millis(45))   # +0.45
DURATION = 20 * seconds(1)


def run_feasible():
    engine = Engine()
    scheduler = PlannedScheduler(engine, utilization_cap=1.0)
    plans = [scheduler.admit(n, p, c, lambda r: None) for n, p, c in MIX]
    refused = False
    try:
        scheduler.admit(*OVERLOAD, lambda r: None)
    except AdmissionError:
        refused = True
    engine.run_until(DURATION)
    return scheduler, plans, refused


def run_overloaded():
    engine = Engine()
    scheduler = PlannedScheduler(engine, utilization_cap=10.0)
    plans = [scheduler.admit(n, p, c, lambda r: None) for n, p, c in MIX]
    plans.append(scheduler.admit(*OVERLOAD, lambda r: None))
    engine.run_until(DURATION)
    return scheduler, plans


def test_sec55_planned_dispatcher(benchmark, results_dir):
    (scheduler, plans, refused), (over_sched, over_plans) = \
        benchmark.pedantic(lambda: (run_feasible(), run_overloaded()),
                           rounds=1, iterations=1)

    lines = ["Feasible mix (admission enforced; overload refused: "
             f"{refused}):", scheduler.report(), "",
             "Forced overload (no admission control):",
             over_sched.report()]
    save_result(results_dir, "sec55_planned", "\n".join(lines))

    assert refused
    # Feasible: heavy contention (preemptions happened), zero misses.
    assert scheduler.utilization > 0.9
    assert scheduler.preemptions > 50
    for plan in plans:
        assert plan.deadline_misses == 0
    # Overload: the EDF domino effect — unbounded lateness, misses
    # everywhere.  This is the behaviour admission control prevents.
    total_misses = sum(p.deadline_misses for p in over_plans)
    assert total_misses > 0
    worst_lateness = max(p.max_lateness_ns for p in over_plans)
    assert worst_lateness > seconds(1)
    audio = next(p for p in over_plans if p.name == "audio")
    worst = max(over_plans, key=lambda p: p.miss_rate)
    assert audio.miss_rate <= worst.miss_rate
