"""Section 5.4: use-case-specific interfaces.

Two measurable advantages of typed timer abstractions over the raw
set/cancel facility:

* **Nested-timeout elision** — the GUI idiom of wrapping every upcall
  in a timeout means deeply nested scopes; an inner scope that cannot
  fire before its enclosing scope needs no kernel timer at all.  We
  measure kernel timer operations saved on a layered-call workload.
* **Drift-free periodic ticks** — a naive re-arm-relative-to-now loop
  accumulates one quantisation error per period; the PeriodicTicker
  holds the ideal phase.  We measure accumulated drift after 1000
  periods.
"""

from repro.sim.clock import MINUTE, SECOND, millis, seconds
from repro.linuxkern import LinuxKernel
from repro.tracing import EventKind
from repro.core.interfaces import PeriodicTicker, ScopedTimeout

from conftest import save_result


def nested_upcall_workload(kernel, *, depth=5, calls=300,
                           elide: bool) -> int:
    """Each simulated UI upcall opens `depth` nested timeout scopes
    (browser -> toolkit -> RPC -> transport ...), innermost slowest:
    the paper's increasingly conservative layered timeouts."""
    operations_before = len(kernel.sink)
    for _ in range(calls):
        scopes = []
        try:
            for level in range(depth):
                scope = ScopedTimeout(kernel, seconds(5 * (level + 1)),
                                      lambda: None, elide_nested=elide)
                scope.__enter__()
                scopes.append(scope)
            kernel.run_for(millis(2))     # the upcall body
        finally:
            for scope in reversed(scopes):
                scope.__exit__(None, None, None)
    return len(kernel.sink) - operations_before


def test_sec54_nested_timeout_elision(benchmark, results_dir):
    def run_both():
        raw = nested_upcall_workload(LinuxKernel(seed=1), elide=False)
        typed = nested_upcall_workload(LinuxKernel(seed=1), elide=True)
        return raw, typed

    raw_ops, typed_ops = benchmark.pedantic(run_both, rounds=1,
                                            iterations=1)
    saved = 100 * (1 - typed_ops / raw_ops)
    save_result(results_dir, "sec54_elision",
                f"timer subsystem operations, raw scopes:   {raw_ops}\n"
                f"timer subsystem operations, with elision: {typed_ops}\n"
                f"saved: {saved:.1f}%")
    # Inner scopes are all elided: only 1 of 5 timers per upcall runs.
    assert typed_ops < raw_ops / 3


def test_sec54_ticker_drift(benchmark, results_dir):
    period = millis(100)

    def run_both():
        # Naive loop: re-arm relative to "now" inside the callback,
        # with the callback running one jiffy late each time.
        kernel = LinuxKernel(seed=1)
        naive_times = []

        def naive_rearm(timer):
            naive_times.append(kernel.engine.now)
            kernel.mod_timer_rel(timer, 25 + 1)   # jiffies, incl. skew
        timer = kernel.init_timer(naive_rearm, site=("naive",),
                                  owner=kernel.tasks.kernel)
        kernel.mod_timer_rel(timer, 25)
        kernel.run_for(100 * SECOND)

        kernel2 = LinuxKernel(seed=1)
        ticker_times = []
        ticker = PeriodicTicker(kernel2, period,
                                lambda: ticker_times.append(
                                    kernel2.engine.now))
        ticker.start()
        kernel2.run_for(100 * SECOND)
        return naive_times, ticker_times

    naive_times, ticker_times = benchmark.pedantic(run_both, rounds=1,
                                                   iterations=1)
    n = min(len(naive_times), len(ticker_times), 990)
    naive_drift = naive_times[n - 1] - (n * period)
    ticker_drift = ticker_times[n - 1] - (n * period)
    save_result(results_dir, "sec54_drift",
                f"after {n} periods of 100ms:\n"
                f"naive re-arm drift:   {naive_drift / 1e6:.1f} ms\n"
                f"PeriodicTicker drift: {ticker_drift / 1e6:.1f} ms")
    assert ticker_drift == 0
    assert naive_drift > 100 * period // 100     # grows with run length
