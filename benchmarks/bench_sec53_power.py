"""Section 5.3: a better notion of time — batching and power.

The same population of periodic housekeeping timers (phases staggered,
as on a real booted system) runs under five policies, measured in CPU
wakeups per second and estimated average power:

1. the stock periodic tick (every jiffy wakes the CPU),
2. dynticks with precise per-timer expiries,
3. dynticks + round_jiffies whole-second batching for the timers that
   can tolerate it,
4. dynticks + deferrable flags on the same timers,
5. window-based flexible specifications batched by interval stabbing
   (the paper's Section 5.3 generalisation).
"""

from repro.sim import Engine, PowerMeter, millis, seconds
from repro.sim.clock import MINUTE, SECOND
from repro.linuxkern import LinuxKernel
from repro.linuxkern.subsystems.housekeeping import PeriodicKernelTimer
from repro.core.timespec import FlexibleTimerQueue, Window

from conftest import save_result

#: The idle housekeeping population: (name, period, start offset).
#: Offsets de-phase the timers the way independent subsystem
#: initialisation does on a real boot.
POPULATION = (
    ("workqueue", seconds(1), millis(132)),
    ("workqueue2", seconds(2), millis(517)),
    ("clocksource", millis(500), millis(48)),
    ("writeback", seconds(5), millis(904)),
    ("usb-poll", millis(248), millis(217)),
    ("e1000", seconds(2), millis(361)),
    ("pktsched", seconds(5), millis(670)),
    ("neigh", seconds(2), millis(85)),
    ("gc", seconds(4), millis(448)),
    ("flush", seconds(8), millis(723)),
)
DURATION = 2 * MINUTE


def imprecise(period: int) -> bool:
    """Sub-second pollers keep their precision; slow housekeeping
    opts into rounding/deferral, as round_jiffies users do."""
    return period >= seconds(1)


def run_kernel_policy(*, rounded: bool, dynticks: bool,
                      deferrable: bool) -> PowerMeter:
    kernel = LinuxKernel(seed=1, dynticks=dynticks)
    for name, period, offset in POPULATION:
        timer = PeriodicKernelTimer(
            kernel, name=name, period_ns=period,
            site=(name, "__mod_timer"),
            use_round_jiffies=rounded and imprecise(period),
            deferrable=deferrable and imprecise(period))
        kernel.engine.call_after(offset, timer.start)
    kernel.run_for(DURATION)
    return kernel.power


def run_flexible_policy() -> tuple[int, int]:
    """Windowed specs batched by stabbing; returns (wakeups, fired)."""
    engine = Engine()
    queue = FlexibleTimerQueue(engine, batching=True)

    def periodic(period: int) -> None:
        slack = period // 2 if imprecise(period) else 0

        def fire() -> None:
            start = engine.now + period
            queue.submit(Window(start, start + slack), fire)

        start = engine.now + period
        queue.submit(Window(start, start + slack), fire)

    for _name, period, _offset in POPULATION:
        periodic(period)
    engine.run_until(DURATION)
    return queue.wakeups, queue.fired


def test_sec53_power_policies(benchmark, results_dir):
    def run_all():
        return {
            "stock tick": run_kernel_policy(
                rounded=False, dynticks=False, deferrable=False),
            "dynticks precise": run_kernel_policy(
                rounded=False, dynticks=True, deferrable=False),
            "dynticks+round_jiffies": run_kernel_policy(
                rounded=True, dynticks=True, deferrable=False),
            "dynticks+deferrable": run_kernel_policy(
                rounded=True, dynticks=True, deferrable=True),
        }

    meters = benchmark.pedantic(run_all, rounds=1, iterations=1)
    flexible_wakeups, flexible_fired = run_flexible_policy()

    lines = [f"{'policy':24s} {'wakeups/s':>10s} {'avg power':>10s}"]
    rates = {}
    for name, meter in meters.items():
        rate = meter.wakeups_per_second(DURATION)
        rates[name] = rate
        lines.append(f"{name:24s} {rate:10.1f} "
                     f"{meter.average_watts(DURATION):9.2f}W")
    flex_rate = flexible_wakeups / (DURATION / SECOND)
    lines.append(f"{'flexible-windows':24s} {flex_rate:10.1f} "
                 f"{'(engine only)':>10s}")
    save_result(results_dir, "sec53_power", "\n".join(lines))

    # The paper's direction: each relaxation cuts wakeups further.
    assert rates["stock tick"] >= 249              # HZ=250 tick
    assert rates["dynticks precise"] < rates["stock tick"] / 10
    assert rates["dynticks+round_jiffies"] \
        < rates["dynticks precise"] - 1
    assert rates["dynticks+deferrable"] \
        <= rates["dynticks+round_jiffies"]
    assert flex_rate < 10
    assert flexible_fired > 100                    # work still happened
