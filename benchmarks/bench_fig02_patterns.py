"""Figure 2: common Linux timer usage patterns.

Regenerates the %-of-timers-per-class bars for each workload and
asserts the paper's reading: the Idle workload is dominated by periodic
background tasks and employs almost no watchdogs; Apache uses watchdogs
to time out connections; the soft-realtime workloads (Skype, Firefox)
carry a large unclassified share of very short timers.
"""

from repro.core import pattern_breakdown

from conftest import save_result

WORKLOADS = ("idle", "skype", "firefox", "webserver")
CLASSES = ("delay", "periodic", "timeout", "watchdog", "other")


def test_fig02_linux_usage_patterns(traces, benchmark, results_dir):
    runs = {wl: traces.trace("linux", wl) for wl in WORKLOADS}
    breakdowns = benchmark.pedantic(
        lambda: {wl: pattern_breakdown(trace)
                 for wl, trace in runs.items()},
        rounds=1, iterations=1)

    lines = ["workload    " + "".join(f"{c:>10}" for c in CLASSES)]
    rows = {}
    for workload, breakdown in breakdowns.items():
        row = breakdown.figure2_row()
        rows[workload] = row
        lines.append(f"{workload:<12}"
                     + "".join(f"{row[c]:>9.1f}%" for c in CLASSES))
    save_result(results_dir, "fig02_patterns", "\n".join(lines))

    assert rows["idle"]["periodic"] == max(rows["idle"].values())
    assert rows["idle"]["watchdog"] < 5.0
    assert rows["webserver"]["watchdog"] > 5.0
    assert rows["webserver"]["timeout"] > 30.0
    for workload in ("skype", "firefox"):
        assert rows[workload]["other"] > 25.0
