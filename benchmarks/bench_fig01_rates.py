"""Figure 1: timer usage frequency on a busy Vista desktop.

Regenerates the per-second timers-set series for Outlook, the browser,
system processes and the kernel over the 90-second desktop trace, and
asserts the paper's headline numbers: kernel around a thousand per
second, browser tens per second, Outlook ~70/s baseline with bursts
into the thousands from the wrap-every-upcall idiom.
"""

from repro.core import rate_series, render_rates

from conftest import save_result

GROUPS = ("Outlook", "Browser", "System", "Kernel")


def test_fig01_vista_desktop_rates(traces, benchmark, results_dir):
    trace = traces.trace("vista", "desktop")
    rates = benchmark.pedantic(lambda: rate_series(trace),
                               rounds=1, iterations=1)
    text = render_rates(rates, groups=list(GROUPS))
    save_result(results_dir, "fig01_vista_rates", text)

    assert 400 < rates.mean("Kernel") < 2000          # "around a thousand"
    assert 10 < rates.mean("Browser") < 150           # "tens per second"
    assert rates.peak("Outlook") > 1000               # burst idiom
    # Baseline Outlook rate outside bursts: median bucket ~70/s.
    outlook = sorted(rates.series["Outlook"])
    median = outlook[len(outlook) // 2]
    assert 30 < median < 200
