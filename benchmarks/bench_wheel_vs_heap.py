"""Timing wheels versus a priority-queue timer facility.

The paper's Section 2 notes both kernels implement their timer queues
as variants of Varghese–Lauck timing wheels for O(1) arm/cancel.  This
benchmark measures our faithful cascading wheel against a binary-heap
implementation on the operation mix real traces exhibit (arm-heavy
with most timers cancelled before expiry — Table 1's webserver ratio).
"""

import heapq
import random

from repro.linuxkern.wheel import TimerWheel, WheelTimer

from conftest import save_result

OPERATIONS = 60_000
CANCEL_FRACTION = 0.85


def workload(seed=7):
    """(arm_delay or None-to-cancel) sequence shared by both subjects."""
    rng = random.Random(seed)
    ops = []
    for _ in range(OPERATIONS):
        # Bimodal delays: jiffy-scale polls and second-scale timeouts.
        if rng.random() < 0.6:
            delay = rng.randint(1, 3)
        else:
            delay = rng.randint(250, 10_000)
        ops.append((delay, rng.random() < CANCEL_FRACTION))
    return ops


def run_wheel(ops):
    wheel = TimerWheel()
    fired = [0]
    jiffy = 0
    for index, (delay, cancel) in enumerate(ops):
        timer = WheelTimer()
        wheel.add(timer, jiffy + delay)
        if cancel:
            wheel.remove(timer)
        if index % 16 == 0:
            jiffy += 1
            wheel.run_timers(jiffy, lambda t: fired.__setitem__(
                0, fired[0] + 1))
    wheel.run_timers(jiffy + 11_000, lambda t: fired.__setitem__(
        0, fired[0] + 1))
    return fired[0]


class HeapFacility:
    """Straightforward heapq timer queue with lazy cancellation."""

    def __init__(self):
        self.heap = []
        self.seq = 0

    def add(self, expires):
        self.seq += 1
        entry = [expires, self.seq, True]
        heapq.heappush(self.heap, entry)
        return entry

    def remove(self, entry):
        entry[2] = False

    def run(self, now):
        fired = 0
        while self.heap and self.heap[0][0] <= now:
            entry = heapq.heappop(self.heap)
            if entry[2]:
                fired += 1
        return fired


def run_heap(ops):
    facility = HeapFacility()
    fired = 0
    jiffy = 0
    for index, (delay, cancel) in enumerate(ops):
        entry = facility.add(jiffy + delay)
        if cancel:
            facility.remove(entry)
        if index % 16 == 0:
            jiffy += 1
            fired += facility.run(jiffy)
    fired += facility.run(jiffy + 11_000)
    return fired


def test_wheel_vs_heap(benchmark, results_dir):
    ops = workload()
    expected = run_heap(ops)

    import time
    start = time.perf_counter()
    heap_fired = run_heap(ops)
    heap_elapsed = time.perf_counter() - start

    wheel_fired = benchmark.pedantic(lambda: run_wheel(ops),
                                     rounds=3, iterations=1)
    wheel_elapsed = benchmark.stats.stats.mean

    save_result(results_dir, "wheel_vs_heap",
                f"operations: {OPERATIONS} "
                f"(cancel fraction {CANCEL_FRACTION})\n"
                f"wheel: {wheel_elapsed * 1e3:8.1f} ms, "
                f"{wheel_fired} fired\n"
                f"heap:  {heap_elapsed * 1e3:8.1f} ms, "
                f"{heap_fired} fired")

    # Correctness oracle: both facilities fire the same timers.
    assert wheel_fired == expected == heap_fired
    # The wheel's arm/cancel are O(1); it must stay within a small
    # factor of the heap in this Python model (in C it wins outright).
    assert wheel_elapsed < heap_elapsed * 5
