"""Section 5.1: adaptive timeouts versus the arbitrary 30 seconds.

Three experiments:

* steady-state: failure-detection latency and false-timeout rate of a
  fixed 30 s timeout versus the learned 99%-confidence timeout, over a
  stream of RPC waits with lognormal LAN latency and occasional real
  failures;
* level shift: the same waiter moves from LAN (130 us) to WAN (130 ms)
  mid-stream — the paper's travelling-user example — and the detector
  must relearn instead of timing out on every request;
* the TCP-style Jacobson estimator under bursty latency, showing the
  existing in-kernel adaptive loop the paper points to.
"""

import math
import random

from repro.core.adaptive import (AdaptiveTimeout, JacobsonEstimator,
                                 simulate_wait_policy)

from conftest import save_result


def lan_wan_stream(n=4000, shift_at=2000, failure_rate=0.02, seed=9):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        if rng.random() < failure_rate:
            out.append(None)
            continue
        median = 0.00013 if i < shift_at else 0.13
        out.append(rng.lognormvariate(math.log(median), 0.4))
    return out


def steady_stream(n=4000, failure_rate=0.02, seed=5):
    rng = random.Random(seed)
    return [None if rng.random() < failure_rate
            else rng.lognormvariate(math.log(0.13), 0.4)
            for _ in range(n)]


def test_sec51_adaptive_vs_fixed(benchmark, results_dir):
    latencies = steady_stream()
    outcomes = benchmark.pedantic(
        lambda: (simulate_wait_policy(latencies, policy="fixed",
                                      fixed_timeout=30.0),
                 simulate_wait_policy(latencies, policy="adaptive",
                                      fixed_timeout=30.0)),
        rounds=1, iterations=1)
    fixed, adaptive = outcomes

    lines = [f"{'policy':10s} {'mean detect':>12s} {'max detect':>12s} "
             f"{'false rate':>11s}"]
    for outcome in outcomes:
        lines.append(f"{outcome.policy:10s} "
                     f"{outcome.mean_detection:11.3f}s "
                     f"{outcome.detection_max:11.3f}s "
                     f"{outcome.false_timeout_rate:10.4f}")
    save_result(results_dir, "sec51_adaptive_steady", "\n".join(lines))

    # Who wins, by what factor: adaptive detects failures >10x faster
    # with a bounded false-timeout rate.
    assert adaptive.mean_detection < fixed.mean_detection / 10
    assert adaptive.false_timeout_rate < 0.05
    assert fixed.false_timeouts == 0


def test_sec51_level_shift(benchmark, results_dir):
    latencies = lan_wan_stream()
    adaptive = AdaptiveTimeout(confidence=0.99, safety=2.0,
                               initial_timeout=30.0)
    outcome = benchmark.pedantic(
        lambda: simulate_wait_policy(latencies, policy="adaptive",
                                     adaptive=adaptive),
        rounds=1, iterations=1)
    save_result(results_dir, "sec51_level_shift",
                f"waits: {outcome.waits}\n"
                f"false timeouts: {outcome.false_timeouts} "
                f"({outcome.false_timeout_rate:.4f})\n"
                f"model relearned: {adaptive.relearned} time(s)\n"
                f"timeout before shift: {outcome.timeline[1999]:.4f}s\n"
                f"timeout after relearn: {outcome.timeline[-1]:.4f}s")

    assert adaptive.relearned >= 1
    # Only a brief burst of false timeouts around the shift.
    assert outcome.false_timeout_rate < 0.05
    # The learned timeout tracks the new regime (WAN ~ 0.3-2 s), far
    # below the arbitrary 30 s yet far above the LAN-era value.
    assert 0.1 < outcome.timeline[-1] < 5.0
    assert outcome.timeline[1999] < 0.01


def test_sec51_jacobson_reference(benchmark, results_dir):
    rng = random.Random(11)
    estimator = JacobsonEstimator(min_timeout=0.2, max_timeout=120.0)

    def feed():
        for _ in range(10000):
            estimator.observe(rng.lognormvariate(math.log(0.0002), 0.3))
        return estimator.timeout()

    rto = benchmark.pedantic(feed, rounds=1, iterations=1)
    save_result(results_dir, "sec51_jacobson",
                f"LAN RTO converges to the kernel floor: {rto:.3f}s "
                f"(cf. the 0.204s Table 3 row)")
    assert rto == 0.2
