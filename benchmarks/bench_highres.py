"""Ablation: what high-resolution timers would have done to the study.

The paper's instrumented kernel served blocking syscalls through the
jiffy-resolution ``schedule_timeout`` path, producing two artefacts in
its data: no sub-4 ms values anywhere (Linux "rounds timeouts to the
nearest jiffy") and short timeouts delivered a large fraction of their
value late (Figures 8–10).  CONFIG_HIGH_RES_TIMERS — merged just
before the paper, not in its configuration — changes both.

This benchmark runs the same soft-realtime poller workload through
both syscall paths and compares delivery accuracy.
"""

from repro.sim.clock import JIFFY, SECOND, millis
from repro.linuxkern import LinuxKernel, SyscallInterface, WakeReason

from conftest import save_result

REQUEST_NS = 3 * millis(1)        # a 3 ms frame pacer (sub-jiffy!)
ITERATIONS = 2000


def run_path(*, highres: bool):
    kernel = LinuxKernel(seed=5)
    syscalls = SyscallInterface(kernel, highres=highres)
    task = kernel.tasks.spawn("media")
    latenesses = []
    state = {"count": 0}

    def wake(reason: WakeReason, _rem, *, armed_at=[0]):
        latenesses.append(kernel.engine.now - armed_at[0] - REQUEST_NS)
        state["count"] += 1
        if state["count"] < ITERATIONS:
            armed_at[0] = kernel.engine.now
            syscalls.poll(task, REQUEST_NS,
                          lambda r, rem: wake(r, rem, armed_at=armed_at))

    armed = [0]
    syscalls.poll(task, REQUEST_NS,
                  lambda r, rem: wake(r, rem, armed_at=armed))
    kernel.run_for(60 * SECOND)
    latenesses.sort()
    return {
        "delivered": len(latenesses),
        "p50": latenesses[len(latenesses) // 2],
        "p99": latenesses[int(len(latenesses) * 0.99)],
        "max": latenesses[-1],
    }


def test_highres_vs_jiffy_delivery(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: {"jiffy schedule_timeout": run_path(highres=False),
                 "hrtimer (CONFIG_HIGH_RES)": run_path(highres=True)},
        rounds=1, iterations=1)

    lines = [f"{REQUEST_NS / 1e6:.0f} ms poll loop, "
             f"{ITERATIONS} iterations",
             f"{'path':28s} {'p50 late':>9s} {'p99 late':>9s} "
             f"{'max late':>9s}"]
    for name, stats in results.items():
        lines.append(f"{name:28s} {stats['p50'] / 1e6:7.2f}ms "
                     f"{stats['p99'] / 1e6:7.2f}ms "
                     f"{stats['max'] / 1e6:7.2f}ms")
    save_result(results_dir, "highres", "\n".join(lines))

    jiffy = results["jiffy schedule_timeout"]
    highres = results["hrtimer (CONFIG_HIGH_RES)"]
    # The paper's artefact: a 3 ms request is delivered 30-170% late
    # through the jiffy path (rounded up to 1 jiffy + 1 margin jiffy).
    assert jiffy["p50"] >= JIFFY - REQUEST_NS
    assert jiffy["max"] >= JIFFY
    # hrtimers deliver exactly on time.
    assert highres["p50"] == 0
    assert highres["max"] == 0
    assert highres["delivered"] >= jiffy["delivered"]
