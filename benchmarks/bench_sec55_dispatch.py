"""Section 5.5: timers and scheduling.

The soft-realtime media loop (a Skype-like 20 ms frame task — the
paper's explanation for the flood of 1–3 jiffy timers) implemented
(a) over select-loop timers on the Linux model and (b) as a temporal
requirement registered with a scheduler-activations-style dispatcher.

Metrics: deadline misses, maximum lateness, kernel crossings, and
timer-subsystem accesses — the dispatcher "removes the need for
user-space timer functionality entirely".
"""

from repro.sim.clock import SECOND
from repro.core.dispatch import run_media_comparison

from conftest import save_result


def test_sec55_media_loop(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: run_media_comparison(duration_ns=30 * SECOND),
        rounds=1, iterations=1)
    timers = results["timers"]
    dispatcher = results["dispatcher"]

    lines = [f"{'implementation':24s} {'frames':>7s} {'misses':>7s} "
             f"{'miss%':>7s} {'maxlate':>9s} {'crossings':>10s} "
             f"{'timer ops':>10s}"]
    for result in (timers, dispatcher):
        lines.append(
            f"{result.implementation:24s} {result.frames:7d} "
            f"{result.deadline_misses:7d} {result.miss_rate * 100:6.1f}% "
            f"{result.max_lateness_ns / 1e6:8.2f}ms "
            f"{result.kernel_crossings:10d} {result.timer_accesses:10d}")
    save_result(results_dir, "sec55_dispatch", "\n".join(lines))

    assert timers.frames >= 1400 and dispatcher.frames >= 1400
    # The dispatcher needs one registration, no timer interface, and
    # misses no deadlines; the select loop crosses the kernel every
    # frame and misses deadlines through jiffy quantisation.
    assert dispatcher.kernel_crossings == 1
    assert dispatcher.timer_accesses == 0
    assert dispatcher.deadline_misses == 0
    assert timers.kernel_crossings >= timers.frames - 1
    assert timers.timer_accesses > 2 * timers.frames
    assert timers.deadline_misses > timers.frames // 2
