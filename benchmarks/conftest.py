"""Shared fixtures for the benchmark suite.

Workload traces are expensive to generate, so one session-scoped cache
produces each (os, workload) trace once at the benchmark duration and
every figure/table benchmark reuses it.  Results are also written under
``benchmarks/results/`` for inspection.
"""

import os

import pytest

from repro.sim.clock import MINUTE
from repro.workloads import (run_study_traces, run_vista_desktop,
                             run_workload)

#: Benchmarks run 1/6 of the paper's 30 minutes; event streams are
#: stationary so counts scale linearly (see EXPERIMENTS.md).
BENCH_DURATION_NS = 5 * MINUTE
BENCH_SEED = 42

#: Every trace the figure/table benchmarks draw on; generated in one
#: (parallel, deterministic) batch on the first trace request.
from repro.kern import backend_names  # noqa: E402

STUDY_JOBS = [(os_name, workload, BENCH_DURATION_NS, BENCH_SEED)
              for os_name in backend_names()
              for workload in ("idle", "skype", "firefox", "webserver")]
STUDY_JOBS.append(("vista", "desktop", None, BENCH_SEED))

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


class TraceCache:
    def __init__(self):
        self._runs = {}
        self._traces = {}

    def run(self, os_name: str, workload: str):
        key = (os_name, workload)
        if key not in self._runs:
            if workload == "desktop":
                self._runs[key] = run_vista_desktop(seed=BENCH_SEED)
            else:
                self._runs[key] = run_workload(os_name, workload,
                                               BENCH_DURATION_NS,
                                               seed=BENCH_SEED)
        return self._runs[key]

    def prewarm(self) -> None:
        """Generate every study trace in one parallel batch.

        ``run_study_traces`` returns traces byte-identical to serial
        generation, so benchmarks see exactly the events they always
        did, just sooner on multi-core machines.
        """
        pending = [job for job in STUDY_JOBS
                   if (job[0], job[1]) not in self._traces
                   and (job[0], job[1]) not in self._runs]
        for job, trace in zip(pending, run_study_traces(pending)):
            self._traces[(job[0], job[1])] = trace

    def trace(self, os_name: str, workload: str):
        key = (os_name, workload)
        if key in self._runs:            # full run already materialized
            return self._runs[key].trace
        if key not in self._traces:
            if key in {(j[0], j[1]) for j in STUDY_JOBS}:
                self.prewarm()
            else:
                return self.run(os_name, workload).trace
        return self._traces[key]


@pytest.fixture(scope="session")
def traces():
    return TraceCache()


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: str, name: str, text: str) -> None:
    path = os.path.join(results_dir, name + ".txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    print(f"\n[{name}]\n{text}")
