"""Shared fixtures for the benchmark suite.

Workload traces are expensive to generate, so one session-scoped cache
produces each (os, workload) trace once at the benchmark duration and
every figure/table benchmark reuses it.  Results are also written under
``benchmarks/results/`` for inspection.
"""

import os

import pytest

from repro.sim.clock import MINUTE
from repro.workloads import run_vista_desktop, run_workload

#: Benchmarks run 1/6 of the paper's 30 minutes; event streams are
#: stationary so counts scale linearly (see EXPERIMENTS.md).
BENCH_DURATION_NS = 5 * MINUTE
BENCH_SEED = 42

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


class TraceCache:
    def __init__(self):
        self._runs = {}

    def run(self, os_name: str, workload: str):
        key = (os_name, workload)
        if key not in self._runs:
            if workload == "desktop":
                self._runs[key] = run_vista_desktop(seed=BENCH_SEED)
            else:
                self._runs[key] = run_workload(os_name, workload,
                                               BENCH_DURATION_NS,
                                               seed=BENCH_SEED)
        return self._runs[key]

    def trace(self, os_name: str, workload: str):
        return self.run(os_name, workload).trace


@pytest.fixture(scope="session")
def traces():
    return TraceCache()


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: str, name: str, text: str) -> None:
    path = os.path.join(results_dir, name + ".txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    print(f"\n[{name}]\n{text}")
