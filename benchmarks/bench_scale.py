#!/usr/bin/env python
"""Million-timer scale benchmark: heap vs wheel engine scheduling.

Two measurements back the engine's timing-wheel scheduler
(:mod:`repro.sim.sched`):

* **engine churn at datacenter scale** — a synthetic population
  modelled on the server-farm TCP taxonomy: >1M live far-future
  timers (keepalive/TIME_WAIT) held in the queue while short RTO and
  delayed-ACK timers are armed, mostly cancelled (the ACK arrives),
  and occasionally dispatched at full depth.  The identical operation
  sequence runs on both schedulers; an order-sensitive dispatch
  checksum proves they fire the same events in the same order, and
  the events/s ratio of the full-depth churn phase is the scheduling
  win (target: >= 2x while the >=1M population is live).
* **the serverfarm scene end to end** — the real workload
  (``PORTABLE_SERVERFARM`` scaled up) per backend on both schedulers,
  reporting engine-loop throughput and wheel statistics.
* **host scaling** — the flagship multi-host serverfarm: a fixed
  total connection population spread across 1, 2, and 4 cluster hosts
  on one shared engine with per-CPU sharded wheels, proving the
  cluster layer sustains a >=1M aggregate live-timer fleet (the
  dispatch-checksum gate of the churn phase also covers the sharded
  scheduler, so the sharding is known not to reorder anything).

Results go to ``BENCH_scale.json``.  Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py           # full
    PYTHONPATH=src python benchmarks/bench_scale.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

if __package__ in (None, ""):   # direct invocation without PYTHONPATH
    _src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    if _src not in sys.path and os.path.isdir(_src):
        sys.path.insert(0, _src)

from repro.kern import backend_names
from repro.sim import Engine, use_scheduler
from repro.sim.clock import MILLISECOND, SECOND, millis, seconds
from repro.workloads.serverfarm import (run_linux_serverfarm,
                                        run_vista_serverfarm)

#: The TCP constants the synthetic population mimics.
KEEPALIVE_NS = seconds(7200)
TIME_WAIT_NS = seconds(60)
RTO_NS = millis(204)
DELACK_NS = millis(40)

_HASH_MOD = 1 << 64

_FARM_RUNNERS = {"linux": run_linux_serverfarm,
                 "vista": run_vista_serverfarm}


def engine_churn(kind: str, *, population: int, rounds: int,
                 batch: int) -> dict:
    """Run the deterministic churn script on one scheduler kind."""
    engine = Engine(scheduler=kind)
    state = [0, 0]                    # dispatches, order-sensitive hash

    def fire() -> None:
        state[0] += 1
        state[1] = (state[1] * 1000003 + engine.now) % _HASH_MOD

    ops = 0
    t0 = time.perf_counter()

    # Phase A: the long-lived population.  Per-connection keepalives
    # and TIME_WAIT entries, spread over a few hundred seconds of far
    # future so they land across many wheel buckets.
    longlived = []
    for i in range(population):
        base = KEEPALIVE_NS if i % 3 else TIME_WAIT_NS
        when = base + (i * 7919) % (400 * SECOND)
        longlived.append(engine.call_at(when, fire))
    ops += population
    arm_s = time.perf_counter() - t0

    # Phase B: short-timer churn at full queue depth.  Each round arms
    # a batch of RTO + delayed-ACK pairs; the "ACK" cancels 90% of the
    # RTOs and 75% of the delacks before time advances past them.
    # This is the *at-scale* phase — every operation runs against the
    # full >=1M-timer population — so its events/s is the headline
    # scheduling comparison (arm/drain ramp the depth up and down).
    rng = random.Random(0xC0FFEE)
    churn_ops = 0
    dispatched_before = state[0]
    t1 = time.perf_counter()
    for _ in range(rounds):
        armed = []
        for b in range(batch):
            jitter = rng.randrange(20 * MILLISECOND)
            armed.append((engine.call_after(RTO_NS + jitter, fire), True))
            armed.append((engine.call_after(DELACK_NS + jitter, fire),
                          False))
        churn_ops += 2 * batch
        for index, (handle, is_rto) in enumerate(armed):
            threshold = 10 if is_rto else 4
            if index % threshold:
                handle.cancel()
                churn_ops += 1
        engine.run_until(engine.now + 50 * MILLISECOND)
    churn_s = time.perf_counter() - t1
    ops += churn_ops
    churn_ops += state[0] - dispatched_before

    peak_live = engine.peak_pending

    # Phase C: teardown — the mass-cancel TIME_WAIT pattern, then
    # drain the survivors.
    t2 = time.perf_counter()
    for index, handle in enumerate(longlived):
        if index % 20:                # a few connections stay up
            handle.cancel()
            ops += 1
    engine.run()
    drain_s = time.perf_counter() - t2

    total_s = time.perf_counter() - t0
    ops += state[0]
    sched = engine.scheduler
    return {
        "scheduler": kind,
        "arm_s": round(arm_s, 3),
        "churn_s": round(churn_s, 3),
        "drain_s": round(drain_s, 3),
        "total_s": round(total_s, 3),
        "ops": ops,
        "ops_per_s": round(ops / total_s) if total_s else None,
        "churn_ops": churn_ops,
        "churn_events_per_s": round(churn_ops / churn_s)
        if churn_s else None,
        "dispatched": state[0],
        "dispatch_checksum": state[1],
        "peak_live_timers": peak_live,
        "compactions": sched.compactions,
        "reclaimed": sched.reclaimed,
        "cascades": sched.cascades,
        "bucket_drains": sched.bucket_drains,
    }


def farm_run(os_name: str, kind: str, *, connections: int,
             duration_ns: int, seed: int) -> dict:
    """One serverfarm scene run on one scheduler kind."""
    runner = _FARM_RUNNERS[os_name]
    with use_scheduler(kind):
        t0 = time.perf_counter()
        run = runner(duration_ns, seed=seed, retain_events=False,
                     connections=connections)
        wall_s = time.perf_counter() - t0
    engine = run.kernel.engine
    sched = engine.scheduler
    loop_s = engine.wall_ns / 1e9
    return {
        "scheduler": kind,
        "wall_s": round(wall_s, 3),
        "engine_loop_s": round(loop_s, 3),
        "dispatched": engine.dispatched,
        "scheduled": engine._seq,
        "events_per_s": round(engine.dispatched / loop_s)
        if loop_s else None,
        "peak_live_timers": engine.peak_pending,
        "cascades": sched.cascades,
        "bucket_drains": sched.bucket_drains,
        "compactions": sched.compactions,
    }


def host_scaling_run(hosts: int, *, total_connections: int,
                     duration_ns: int, seed: int, cpus: int) -> dict:
    """One multi-host serverfarm run: the same total population split
    over ``hosts`` machines sharing one engine."""
    from repro.kern import Cluster
    per_host = total_connections // hosts
    t0 = time.perf_counter()
    cluster = Cluster("linux", hosts=hosts, cpus=cpus, seed=seed,
                      retain_events=False)
    cluster.scene("serverfarm", connections=per_host)
    cluster.finish("serverfarm", duration_ns)
    wall_s = time.perf_counter() - t0
    engine = cluster.engine
    sched = engine.scheduler
    loop_s = engine.wall_ns / 1e9
    return {
        "hosts": hosts,
        "cpus": cpus,
        "scheduler": sched.kind,
        "connections_per_host": per_host,
        "total_connections": per_host * hosts,
        "wall_s": round(wall_s, 3),
        "engine_loop_s": round(loop_s, 3),
        "dispatched": engine.dispatched,
        "scheduled": engine._seq,
        "events_per_s": round(engine.dispatched / loop_s)
        if loop_s else None,
        "peak_live_timers": engine.peak_pending,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true",
                        help="fast CI mode: small population, short "
                             "scene, no speedup gate")
    parser.add_argument("--out", default="BENCH_scale.json")
    args = parser.parse_args(argv)

    if args.smoke:
        population, rounds, batch = 30_000, 4, 2_000
        connections, duration_ns = 1_000, 2 * SECOND
        host_counts, total_connections = (1, 2), 2_000
        host_duration_ns = SECOND
    else:
        population, rounds, batch = 1_100_000, 20, 12_500
        connections, duration_ns = 30_000, 10 * SECOND
        host_counts, total_connections = (1, 2, 4), 1_048_576
        host_duration_ns = SECOND

    # -- engine churn ---------------------------------------------------
    # "sharded:4" rides along so the order-sensitive checksum gate also
    # covers the per-CPU k-way merge the cluster layer relies on.
    engine_results = {}
    for kind in ("heap", "wheel", "sharded:4"):
        print(f"engine churn: {kind} scheduler, population "
              f"{population}", file=sys.stderr)
        engine_results[kind] = engine_churn(
            kind, population=population, rounds=rounds, batch=batch)
    heap_r, wheel_r = engine_results["heap"], engine_results["wheel"]
    sharded_r = engine_results["sharded:4"]
    identical = (
        len({r["dispatch_checksum"]
             for r in (heap_r, wheel_r, sharded_r)}) == 1
        and len({r["dispatched"]
                 for r in (heap_r, wheel_r, sharded_r)}) == 1)
    speedup_total = (heap_r["total_s"] / wheel_r["total_s"]
                     if wheel_r["total_s"] else None)
    # The at-scale number: events/s while the full population is live
    # (the churn phase).  Arm and drain ramp the depth up from zero and
    # back down, so the total includes sub-scale operation too.
    speedup = (heap_r["churn_s"] / wheel_r["churn_s"]
               if wheel_r["churn_s"] else None)
    peak = wheel_r["peak_live_timers"]
    engine_results["verdict"] = {
        "identical_dispatch": identical,
        "peak_live_timers": peak,
        "speedup_at_scale": round(speedup, 2) if speedup else None,
        "speedup_total": round(speedup_total, 2)
        if speedup_total else None,
        "target": ">=1M live timers, >=2x events/s at that depth, "
                  "identical dispatch incl. sharded:4",
        "target_met": bool(identical and peak >= 1_000_000
                           and speedup and speedup >= 2.0),
    }

    # -- serverfarm scene ----------------------------------------------
    farm = {}
    for os_name in backend_names():
        per_os = {"connections": connections,
                  "virtual_seconds": duration_ns / 1e9}
        for kind in ("heap", "wheel"):
            print(f"serverfarm: {os_name}/{kind}, {connections} "
                  "connections", file=sys.stderr)
            per_os[kind] = farm_run(os_name, kind,
                                    connections=connections,
                                    duration_ns=duration_ns,
                                    seed=args.seed)
        heap_loop = per_os["heap"]["engine_loop_s"]
        wheel_loop = per_os["wheel"]["engine_loop_s"]
        per_os["engine_loop_speedup"] = (
            round(heap_loop / wheel_loop, 2) if wheel_loop else None)
        farm[os_name] = per_os

    # -- host scaling ---------------------------------------------------
    host_runs = []
    for hosts in host_counts:
        print(f"host scaling: {hosts} host(s), "
              f"{total_connections} total connections", file=sys.stderr)
        host_runs.append(host_scaling_run(
            hosts, total_connections=total_connections,
            duration_ns=host_duration_ns, seed=args.seed, cpus=2))
    fleet_peak = max((r["peak_live_timers"] for r in host_runs
                      if r["hosts"] >= 2), default=0)
    cluster_target_met = args.smoke or fleet_peak >= 1_000_000
    host_scaling = {
        "total_connections": total_connections,
        "virtual_seconds": host_duration_ns / 1e9,
        "runs": host_runs,
        "verdict": {
            "aggregate_peak_live_at_2plus_hosts": fleet_peak,
            "target": ">=1M aggregate live timers at >=2 hosts",
            "target_met": bool(cluster_target_met),
        },
    }

    result = {
        "config": {"seed": args.seed, "smoke": args.smoke,
                   "population": population, "rounds": rounds,
                   "batch": batch, "connections": connections,
                   "host_counts": list(host_counts),
                   "total_connections": total_connections,
                   "cpus": os.cpu_count()},
        "engine": engine_results,
        "serverfarm": farm,
        "host_scaling": host_scaling,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")

    verdict = engine_results["verdict"]
    print(f"\npeak live timers {verdict['peak_live_timers']}, "
          f"wheel speedup {verdict['speedup_at_scale']}x at scale "
          f"({verdict['speedup_total']}x total), identical dispatch: "
          f"{verdict['identical_dispatch']}", file=sys.stderr)
    print(f"host scaling: {fleet_peak} aggregate live timers at "
          f">=2 hosts (target met: {cluster_target_met})",
          file=sys.stderr)
    print(f"results -> {args.out}", file=sys.stderr)
    if args.smoke:
        return 0 if identical else 1
    return 0 if (verdict["target_met"] and cluster_target_met) else 1


if __name__ == "__main__":
    raise SystemExit(main())
