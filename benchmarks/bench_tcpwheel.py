"""Ablation: why Vista moved TCP timeouts onto per-CPU timing wheels.

The paper's Section 1 motivation: networked applications' timer calls
showed "significant observed CPU overhead", and the Vista TCP/IP stack
was re-architected onto per-CPU timing wheels.  This benchmark drives
a webserver-scale arm/cancel storm (every segment arms an RTO, ~90%
cancelled on ACK) through both facilities:

* the generic KTIMER ring (per-timeout allocation, ring insert/remove,
  ETW-visible operations),
* the per-CPU TCP timing wheel (embedded timeout objects, O(1) slot
  ops, cancelled entries swept for free).
"""

import time

from repro.sim.clock import SECOND, millis
from repro.vistakern import VistaKernel
from repro.vistakern.tcpwheel import PerCpuTcpTimers, WheelTimeout

from conftest import save_result

CONNECTIONS = 4000
SEGMENTS_PER_CONN = 3
CANCEL_FRACTION = 0.9
DURATION = 20 * SECOND


def drive_ktimer_path():
    kernel = VistaKernel(seed=2)
    rng = kernel.rng.stream("storm")
    fired = [0]

    def one_connection(conn: int) -> None:
        for _seg in range(SEGMENTS_PER_CONN):
            timer = kernel.alloc_ktimer(
                site=("tcpip!TcpStartRexmitTimer", "nt!KeSetTimer"),
                owner=kernel.tasks.kernel)
            kernel.set_timer(timer, millis(300),
                             dpc=lambda t: fired.__setitem__(
                                 0, fired[0] + 1))
            if rng.random() < CANCEL_FRACTION:
                ack = max(1, int(rng.exponential(millis(2))))
                kernel.engine.call_after(
                    ack, lambda t=timer: (kernel.cancel_timer(t)
                                          if t.inserted else None,
                                          kernel.free_ktimer(t)))

    gap = DURATION // CONNECTIONS
    for conn in range(CONNECTIONS):
        kernel.engine.call_after(conn * gap, one_connection, conn)
    start = time.perf_counter()
    kernel.run_for(DURATION + SECOND)
    elapsed = time.perf_counter() - start
    return elapsed, len(kernel.sink), fired[0]


def drive_wheel_path():
    kernel = VistaKernel(seed=2)
    timers = PerCpuTcpTimers(kernel, cpus=2)
    rng = kernel.rng.stream("storm")
    fired = [0]

    def one_connection(conn: int) -> None:
        wheel = timers.wheel_for(conn)
        for _seg in range(SEGMENTS_PER_CONN):
            timeout = WheelTimeout()
            wheel.arm(timeout, millis(300),
                      lambda: fired.__setitem__(0, fired[0] + 1))
            if rng.random() < CANCEL_FRACTION:
                ack = max(1, int(rng.exponential(millis(2))))
                kernel.engine.call_after(
                    ack, lambda t=timeout, w=wheel: w.cancel(t))

    gap = DURATION // CONNECTIONS
    for conn in range(CONNECTIONS):
        kernel.engine.call_after(conn * gap, one_connection, conn)
    start = time.perf_counter()
    kernel.run_for(DURATION + SECOND)
    elapsed = time.perf_counter() - start
    return elapsed, len(kernel.sink), fired[0]


def test_tcp_wheel_vs_ktimer(benchmark, results_dir):
    wheel_elapsed, wheel_events, wheel_fired = benchmark.pedantic(
        drive_wheel_path, rounds=1, iterations=1)
    ktimer_elapsed, ktimer_events, ktimer_fired = drive_ktimer_path()

    total_ops = CONNECTIONS * SEGMENTS_PER_CONN
    lines = [
        f"{total_ops} RTO arms, {CANCEL_FRACTION:.0%} cancelled on ACK",
        f"{'facility':16s} {'wall time':>10s} {'ring events':>12s} "
        f"{'expiries':>9s}",
        f"{'KTIMER ring':16s} {ktimer_elapsed * 1e3:8.1f}ms "
        f"{ktimer_events:12d} {ktimer_fired:9d}",
        f"{'per-CPU wheel':16s} {wheel_elapsed * 1e3:8.1f}ms "
        f"{wheel_events:12d} {wheel_fired:9d}",
    ]
    save_result(results_dir, "tcpwheel_vs_ktimer", "\n".join(lines))

    # Same protocol behaviour...
    assert abs(wheel_fired - ktimer_fired) < total_ops * 0.03
    # ...but the wheel path produces zero generic-timer traffic and
    # costs measurably less CPU.
    assert wheel_events == 0
    assert ktimer_events > 2 * total_ops * 0.8
    assert wheel_elapsed < ktimer_elapsed
