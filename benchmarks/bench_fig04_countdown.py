"""Figure 4: dot plot of X's select-timeout countdown.

Regenerates the (time, set-value) series for the Xorg process and
asserts the sawtooth: values start at the 600 s nominal timeout,
decrease monotonically as fd activity wakes select, and reset.
"""

from repro.sim.clock import SECOND
from repro.core import countdown_series

from conftest import save_result


def render_dotplot(series, *, rows=16, cols=72, max_value=None):
    if not series:
        return "(no points)"
    t_max = max(ts for ts, _ in series) or 1
    v_max = max_value or max(v for _, v in series) or 1
    grid = [[" "] * cols for _ in range(rows)]
    for ts, value in series:
        x = min(cols - 1, int(ts / t_max * (cols - 1)))
        y = min(rows - 1, int(value / v_max * (rows - 1)))
        grid[rows - 1 - y][x] = "."
    lines = ["".join(row) for row in grid]
    lines.append(f"0 .. {t_max / SECOND:.0f}s  (y: 0 .. "
                 f"{v_max / SECOND:.0f}s set value, {len(series)} sets)")
    return "\n".join(lines)


def test_fig04_xorg_countdown(traces, benchmark, results_dir):
    trace = traces.trace("linux", "idle")
    series = benchmark.pedantic(lambda: countdown_series(trace, "Xorg"),
                                rounds=1, iterations=1)
    save_result(results_dir, "fig04_xorg_dotplot",
                render_dotplot(series, max_value=600 * SECOND))

    assert len(series) > 100
    values = [v for _, v in series]
    assert max(values) == 600 * SECOND
    # Monotone countdown between resets: >90% of steps decrease.
    drops = sum(b < a for a, b in zip(values, values[1:]))
    assert drops / (len(values) - 1) > 0.9
    # The countdown spans a wide range of the nominal value.
    assert min(values) < 550 * SECOND
