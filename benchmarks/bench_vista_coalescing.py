"""Vista-side §5.3 ablation: tolerable-delay timer coalescing.

The paper proposes timers that state their precision needs; on the
Windows side that idea shipped (post-paper) as coalescable timers with
a tolerable delay.  This benchmark runs a population of service timers
on the Vista model under three configurations and measures idle CPU
wakeups:

1. stock Vista: periodic clock interrupt, precise timers;
2. tick skipping only (the clock sleeps through idle ticks);
3. tick skipping + 1-second tolerable delay on every timer.
"""

from repro.sim.clock import SECOND, millis, seconds
from repro.vistakern import (TickSkippingVistaKernel, VistaKernel,
                             set_coalescable_timer)

from conftest import save_result

DURATION = 60 * SECOND


def populate(kernel, *, tolerance_ns: int) -> None:
    """24 staggered service timers, re-armed from their DPCs."""
    rng = kernel.rng.stream("coalesce.pop")
    for index in range(24):
        period = millis(250) + index * millis(83)
        timer = kernel.alloc_ktimer(site=(f"svchost!Service{index}",),
                                    owner=kernel.tasks.kernel)

        def rearm(kt, timer=timer, period=period):
            # dpc omitted: the timer keeps its existing routine.
            set_coalescable_timer(kernel, timer, period, tolerance_ns)

        set_coalescable_timer(kernel, timer,
                              period + rng.randrange(millis(200)),
                              tolerance_ns, dpc=rearm)


def run_config(name: str):
    if name == "stock":
        kernel = VistaKernel(seed=3)
        populate(kernel, tolerance_ns=0)
    elif name == "tick-skipping":
        kernel = TickSkippingVistaKernel(seed=3)
        populate(kernel, tolerance_ns=0)
    else:
        kernel = TickSkippingVistaKernel(seed=3)
        populate(kernel, tolerance_ns=seconds(1))
    kernel.run_for(DURATION)
    return kernel.power


def test_vista_coalescing(benchmark, results_dir):
    meters = benchmark.pedantic(
        lambda: {name: run_config(name)
                 for name in ("stock", "tick-skipping", "coalesced")},
        rounds=1, iterations=1)

    lines = [f"{'configuration':16s} {'wakeups/s':>10s} {'avg power':>10s}"]
    rates = {}
    for name, meter in meters.items():
        rate = meter.wakeups_per_second(DURATION)
        rates[name] = rate
        lines.append(f"{name:16s} {rate:10.1f} "
                     f"{meter.average_watts(DURATION):9.2f}W")
    save_result(results_dir, "vista_coalescing", "\n".join(lines))

    # Stock Vista wakes at the clock rate no matter what.
    assert rates["stock"] >= 60
    # Skipping alone follows the timer population (~24 staggered
    # timers -> tens of wakeups/s).
    assert rates["tick-skipping"] < rates["stock"]
    # A 1 s tolerable delay batches them onto shared instants.
    assert rates["coalesced"] < rates["tick-skipping"] * 0.6
