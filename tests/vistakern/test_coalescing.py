"""Tests for timer coalescing and tick skipping (the §5.3 extension)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import millis, seconds
from repro.sim.clock import SECOND
from repro.vistakern import (TickSkippingVistaKernel, VistaKernel,
                             coalesced_deadline, set_coalescable_timer)


class TestCoalescedDeadline:
    def test_zero_tolerance_is_exact(self):
        assert coalesced_deadline(123_456_789, 0) == 123_456_789

    def test_aligns_up_to_coarsest_period(self):
        due = seconds(3) + millis(120)
        # Tolerance of 1s allows alignment to the next whole second.
        assert coalesced_deadline(due, seconds(1)) == seconds(4)

    def test_never_fires_early(self):
        due = seconds(3) + millis(120)
        for tolerance in (millis(20), millis(100), seconds(1)):
            assert coalesced_deadline(due, tolerance) >= due

    def test_never_exceeds_tolerance(self):
        due = seconds(3) + millis(120)
        for tolerance in (millis(20), millis(100), millis(300),
                          seconds(1)):
            adjusted = coalesced_deadline(due, tolerance)
            assert adjusted <= due + tolerance

    def test_small_tolerance_uses_fine_alignment(self):
        due = seconds(1) + millis(7)
        adjusted = coalesced_deadline(due, millis(60))
        assert adjusted % (50 * millis(1)) == 0

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 100 * SECOND), st.integers(0, 5 * SECOND))
    def test_contract_property(self, due, tolerance):
        adjusted = coalesced_deadline(due, tolerance)
        assert due <= adjusted <= due + tolerance


class TestTickSkipping:
    def test_idle_machine_has_no_wakeups(self):
        kernel = TickSkippingVistaKernel(seed=0)
        kernel.run_for(seconds(10))
        assert kernel.power.wakeups == 0

    def test_timers_still_fire_on_time(self):
        kernel = TickSkippingVistaKernel(seed=0)
        fired = []
        timer = kernel.alloc_ktimer(site=("t",), owner=kernel.tasks.kernel)
        kernel.set_timer(timer, millis(100),
                         dpc=lambda t: fired.append(kernel.engine.now))
        kernel.run_for(seconds(1))
        assert len(fired) == 1
        assert millis(100) <= fired[0] <= millis(100) + 16 * millis(1)

    def test_stock_kernel_wakes_every_tick(self):
        stock = VistaKernel(seed=0)
        stock.run_for(seconds(10))
        assert stock.power.wakeups == pytest.approx(640, abs=5)


class TestCoalescingReducesWakeups:
    def _populate(self, kernel, *, tolerance_ns):
        """20 staggered periodic-ish timers re-armed on each expiry."""
        rng = kernel.rng.stream("pop")
        for index in range(20):
            period = millis(200) + index * millis(37)
            timer = kernel.alloc_ktimer(site=(f"svc{index}",),
                                        owner=kernel.tasks.kernel)

            def rearm(kt, timer=timer, period=period):
                # dpc omitted: the timer keeps its existing routine.
                set_coalescable_timer(kernel, timer, period,
                                      tolerance_ns)

            set_coalescable_timer(
                kernel, timer, period + rng.randrange(millis(100)),
                tolerance_ns, dpc=rearm)

    def test_tolerance_cuts_wakeups(self):
        precise = TickSkippingVistaKernel(seed=1)
        self._populate(precise, tolerance_ns=0)
        precise.run_for(seconds(30))

        coalesced = TickSkippingVistaKernel(seed=1)
        self._populate(coalesced, tolerance_ns=seconds(1))
        coalesced.run_for(seconds(30))

        assert coalesced.power.wakeups < precise.power.wakeups * 0.6

    def test_work_is_preserved(self):
        kernel = TickSkippingVistaKernel(seed=1)
        fired = []
        timer = kernel.alloc_ktimer(site=("w",), owner=kernel.tasks.kernel)

        def rearm(kt):
            fired.append(kernel.engine.now)
            set_coalescable_timer(kernel, timer, millis(333),
                                  seconds(1), dpc=rearm)

        set_coalescable_timer(kernel, timer, millis(333), seconds(1),
                              dpc=rearm)
        kernel.run_for(seconds(30))
        # Average rate holds even though individual firings batch.
        assert 20 <= len(fired) <= 95
