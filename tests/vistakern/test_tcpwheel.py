"""Tests for the per-CPU TCP timing wheels."""

import pytest

from repro.sim import millis, seconds
from repro.vistakern import VistaKernel
from repro.vistakern.tcpwheel import (PerCpuTcpTimers, TcpTimingWheel,
                                      TCP_TICK_NS, WHEEL_SLOTS,
                                      WheelTimeout)


@pytest.fixture
def kernel():
    return VistaKernel(seed=0)


def wired_wheel(kernel):
    timers = PerCpuTcpTimers(kernel, cpus=1)
    return timers.wheels[0]


class TestWheelBasics:
    def test_fires_at_tick_granularity(self, kernel):
        wheel = wired_wheel(kernel)
        fired = []
        timeout = WheelTimeout()
        wheel.arm(timeout, millis(250),
                  lambda: fired.append(kernel.engine.now))
        kernel.run_for(seconds(2))
        assert len(fired) == 1
        # Coarse by design: within one TCP tick + one clock tick.
        assert millis(250) <= fired[0] \
            <= millis(250) + TCP_TICK_NS + 16 * millis(1)

    def test_cancel_prevents_fire(self, kernel):
        wheel = wired_wheel(kernel)
        fired = []
        timeout = WheelTimeout()
        wheel.arm(timeout, millis(300), lambda: fired.append(1))
        assert wheel.cancel(timeout) is True
        assert wheel.cancel(timeout) is False
        kernel.run_for(seconds(2))
        assert fired == []

    def test_rearm_moves_deadline(self, kernel):
        wheel = wired_wheel(kernel)
        fired = []
        timeout = WheelTimeout()
        wheel.arm(timeout, millis(200),
                  lambda: fired.append(kernel.engine.now))
        wheel.arm(timeout, seconds(1),
                  lambda: fired.append(kernel.engine.now))
        kernel.run_for(seconds(3))
        assert len(fired) == 1
        assert fired[0] >= seconds(1)

    def test_long_timeouts_survive_rotations(self, kernel):
        wheel = wired_wheel(kernel)
        fired = []
        timeout = WheelTimeout()
        delay = TCP_TICK_NS * (WHEEL_SLOTS + 10)   # > one rotation
        wheel.arm(timeout, delay,
                  lambda: fired.append(kernel.engine.now))
        kernel.run_for(delay + seconds(2))
        assert len(fired) == 1
        assert fired[0] >= delay

    def test_many_connections_cancel_storm(self, kernel):
        """The webserver pattern: RTOs armed and cancelled constantly."""
        wheel = wired_wheel(kernel)
        fired = []
        for i in range(500):
            timeout = WheelTimeout()
            wheel.arm(timeout, millis(300), lambda: fired.append(1))
            if i % 10 != 0:                 # 90% ACKed in time
                wheel.cancel(timeout)
        kernel.run_for(seconds(2))
        assert len(fired) == 50
        assert wheel.arms == 500
        assert wheel.cancels == 450


class TestPerCpu:
    def test_connections_hash_to_cpus(self, kernel):
        timers = PerCpuTcpTimers(kernel, cpus=4)
        wheels = {timers.wheel_for(conn).cpu for conn in range(16)}
        assert wheels == {0, 1, 2, 3}

    def test_all_wheels_advance(self, kernel):
        timers = PerCpuTcpTimers(kernel, cpus=2)
        fired = []
        for conn in range(4):
            timeout = WheelTimeout()
            timers.wheel_for(conn).arm(
                timeout, millis(200), lambda c=conn: fired.append(c))
        kernel.run_for(seconds(1))
        assert sorted(fired) == [0, 1, 2, 3]

    def test_no_ktimer_traffic(self, kernel):
        """The point of the re-architecture: TCP timeouts generate no
        KTIMER ring operations at all."""
        timers = PerCpuTcpTimers(kernel, cpus=2)
        for conn in range(100):
            timeout = WheelTimeout()
            timers.wheel_for(conn).arm(timeout, millis(300),
                                       lambda: None)
            timers.wheel_for(conn).cancel(timeout)
        kernel.run_for(seconds(1))
        assert len(kernel.sink) == 0
        assert timers.total_operations == 200
