"""Tests for the Vista timer layers above KTIMER: waits, NT API,
threadpool, Win32 timers, winsock select, registry lazy close."""

import pytest

from repro.sim import millis, seconds
from repro.tracing import EventKind
from repro.tracing.events import FLAG_WAIT_SATISFIED
from repro.vistakern import (DispatcherWaits, MessageQueue, NtTimerApi,
                             RegistryLazyCloser, Threadpool, VistaKernel,
                             WaitableTimers, Winsock, WAIT_OBJECT_0,
                             WAIT_TIMEOUT)


@pytest.fixture
def kernel():
    return VistaKernel(seed=1)


def events_of(kernel, kind):
    return [e for e in kernel.sink if e.kind == kind]


class TestDispatcherWaits:
    def test_wait_times_out(self, kernel):
        waits = DispatcherWaits(kernel)
        task = kernel.tasks.spawn("app")
        statuses = []
        waits.wait_for_single_object(task, millis(100), statuses.append)
        kernel.run_for(seconds(1))
        assert statuses == [WAIT_TIMEOUT]

    def test_wait_satisfied(self, kernel):
        waits = DispatcherWaits(kernel)
        task = kernel.tasks.spawn("app")
        statuses = []
        handle = waits.wait_for_single_object(task, seconds(5),
                                              statuses.append)
        kernel.engine.call_after(millis(50), handle.signal)
        kernel.run_for(seconds(1))
        assert statuses == [WAIT_OBJECT_0]

    def test_unblock_event_schema(self, kernel):
        """The paper's one custom event: both timestamps, the timeout,
        and the satisfied boolean."""
        waits = DispatcherWaits(kernel)
        task = kernel.tasks.spawn("app")
        handle = waits.wait_for_single_object(task, seconds(5),
                                              lambda s: None)
        kernel.engine.call_after(millis(50), handle.signal)
        kernel.run_for(seconds(1))
        event = events_of(kernel, EventKind.WAIT_UNBLOCK)[0]
        assert event.timeout_ns == seconds(5)
        assert event.expires_ns == 0             # blocked at t=0
        assert event.ts == millis(50)
        assert event.flags & FLAG_WAIT_SATISFIED

    def test_no_keset_events_for_wait_fast_path(self, kernel):
        waits = DispatcherWaits(kernel)
        task = kernel.tasks.spawn("app")
        waits.wait_for_single_object(task, millis(100), lambda s: None)
        kernel.run_for(seconds(1))
        assert events_of(kernel, EventKind.SET) == []
        assert events_of(kernel, EventKind.EXPIRE) == []

    def test_infinite_wait(self, kernel):
        waits = DispatcherWaits(kernel)
        task = kernel.tasks.spawn("app")
        statuses = []
        handle = waits.wait_for_single_object(task, None, statuses.append)
        kernel.run_for(seconds(5))
        assert statuses == []
        handle.signal()
        assert statuses == [WAIT_OBJECT_0]
        assert events_of(kernel, EventKind.WAIT_UNBLOCK)[0].timeout_ns \
            is None

    def test_sleep(self, kernel):
        waits = DispatcherWaits(kernel)
        task = kernel.tasks.spawn("app")
        statuses = []
        waits.sleep(task, millis(200), statuses.append)
        kernel.run_for(seconds(1))
        assert statuses == [WAIT_TIMEOUT]

    def test_per_thread_timer_identity(self, kernel):
        waits = DispatcherWaits(kernel)
        task = kernel.tasks.spawn("app")
        waits.wait_for_single_object(task, millis(10), lambda s: None,
                                     thread=0)
        waits.wait_for_single_object(task, millis(10), lambda s: None,
                                     thread=1)
        kernel.run_for(seconds(1))
        ids = {e.timer_id for e in events_of(kernel,
                                             EventKind.WAIT_UNBLOCK)}
        assert len(ids) == 2


class TestNtApiAndWaitable:
    def test_apc_delivery(self, kernel):
        nt = NtTimerApi(kernel)
        task = kernel.tasks.spawn("app")
        handle = nt.nt_create_timer(task)
        hits = []
        nt.nt_set_timer(handle, millis(100), apc_routine=lambda:
                        hits.append(kernel.engine.now))
        kernel.run_for(seconds(1))
        assert len(hits) == 1

    def test_cancel(self, kernel):
        nt = NtTimerApi(kernel)
        task = kernel.tasks.spawn("app")
        handle = nt.nt_create_timer(task)
        hits = []
        nt.nt_set_timer(handle, millis(100), apc_routine=lambda:
                        hits.append(1))
        assert nt.nt_cancel_timer(handle) is True
        kernel.run_for(seconds(1))
        assert hits == []

    def test_close_recycles_ktimer(self, kernel):
        nt = NtTimerApi(kernel)
        task = kernel.tasks.spawn("app")
        handle = nt.nt_create_timer(task)
        timer_id = nt._handles[handle].ktimer.timer_id
        nt.nt_close(handle)
        fresh = kernel.alloc_ktimer(site=("x",), owner=task)
        assert fresh.timer_id == timer_id

    def test_waitable_wrapper(self, kernel):
        nt = NtTimerApi(kernel)
        waitable = WaitableTimers(nt)
        task = kernel.tasks.spawn("app")
        handle = waitable.create(task)
        hits = []
        waitable.set(handle, millis(50), completion=lambda: hits.append(1))
        kernel.run_for(seconds(1))
        assert hits == [1]


class TestThreadpool:
    def test_single_backing_timer_for_many_entries(self, kernel):
        """The user-level ring multiplexes onto ONE kernel timer."""
        task = kernel.tasks.spawn("app")
        pool = Threadpool(kernel, task)
        fired = []
        for i in range(10):
            entry = pool.create_timer(
                lambda t, i=i: fired.append((i, kernel.engine.now)))
            pool.set_timer(entry, millis(50 + 20 * i))
        kernel.run_for(seconds(2))
        assert len(fired) == 10
        set_ids = {e.timer_id for e in events_of(kernel, EventKind.SET)}
        assert len(set_ids) == 1

    def test_periodic_pool_timer(self, kernel):
        task = kernel.tasks.spawn("app")
        pool = Threadpool(kernel, task)
        entry = pool.create_timer(lambda t: None)
        pool.set_timer(entry, millis(100), period_ns=millis(100))
        kernel.run_for(seconds(2))
        assert entry.fired_count >= 15

    def test_cancel_entry(self, kernel):
        task = kernel.tasks.spawn("app")
        pool = Threadpool(kernel, task)
        fired = []
        entry = pool.create_timer(lambda t: fired.append(1))
        pool.set_timer(entry, millis(100))
        pool.cancel_timer(entry)
        kernel.run_for(seconds(1))
        assert fired == []

    def test_earliest_due_drives_backing(self, kernel):
        task = kernel.tasks.spawn("app")
        pool = Threadpool(kernel, task)
        fired = []
        late = pool.create_timer(lambda t: fired.append("late"))
        pool.set_timer(late, seconds(10))
        early = pool.create_timer(lambda t: fired.append("early"))
        pool.set_timer(early, millis(50))
        kernel.run_for(seconds(1))
        assert fired == ["early"]


class TestWin32MessageTimers:
    def test_wm_timer_delivery_via_pump(self, kernel):
        task = kernel.tasks.spawn("gui.exe")
        queue = MessageQueue(kernel, task)
        ticks = []
        queue.set_timer(1, millis(100), lambda tid: ticks.append(
            kernel.engine.now))
        kernel.run_for(seconds(2))
        assert len(ticks) >= 10
        # Delivery includes clock quantisation plus pump latency.
        assert ticks[0] > millis(100)

    def test_user_timer_minimum(self, kernel):
        task = kernel.tasks.spawn("gui.exe")
        queue = MessageQueue(kernel, task)
        ticks = []
        queue.set_timer(1, millis(1), lambda tid: ticks.append(
            kernel.engine.now))
        kernel.run_for(seconds(1))
        # Clamped to USER_TIMER_MINIMUM (10 ms): ~60-70 ticks, not 1000.
        assert 30 <= len(ticks) <= 100

    def test_kill_timer(self, kernel):
        task = kernel.tasks.spawn("gui.exe")
        queue = MessageQueue(kernel, task)
        ticks = []
        queue.set_timer(1, millis(100), lambda tid: ticks.append(1))
        kernel.run_for(millis(450))
        assert queue.kill_timer(1) is True
        count = len(ticks)
        kernel.run_for(seconds(2))
        assert len(ticks) == count
        assert queue.kill_timer(1) is False


class TestWinsockSelect:
    def test_fresh_ktimer_per_call_with_reuse(self, kernel):
        """Each select allocates a fresh KTIMER; the lookaside recycles
        the address across sequential calls — the paper's correlation
        problem."""
        winsock = Winsock(kernel)
        task = kernel.tasks.spawn("app")
        outcomes = []
        winsock.select(task, millis(10), outcomes.append)
        kernel.run_for(millis(100))
        winsock.select(task, millis(10), outcomes.append)
        kernel.run_for(millis(100))
        assert outcomes == [True, True]
        ids = {e.timer_id for e in events_of(kernel, EventKind.SET)}
        assert len(ids) == 1          # address recycled

    def test_concurrent_selects_use_distinct_timers(self, kernel):
        winsock = Winsock(kernel)
        task = kernel.tasks.spawn("app")
        winsock.select(task, seconds(1), lambda to: None)
        winsock.select(task, seconds(1), lambda to: None)
        ids = {e.timer_id for e in events_of(kernel, EventKind.SET)}
        assert len(ids) == 2

    def test_fd_ready_cancels(self, kernel):
        winsock = Winsock(kernel)
        task = kernel.tasks.spawn("app")
        outcomes = []
        call = winsock.select(task, seconds(5), outcomes.append)
        kernel.engine.call_after(millis(20), call.fd_ready)
        kernel.run_for(seconds(1))
        assert outcomes == [False]
        assert len(events_of(kernel, EventKind.CANCEL)) == 1

    def test_zero_timeout_completes_inline(self, kernel):
        winsock = Winsock(kernel)
        task = kernel.tasks.spawn("app")
        outcomes = []
        winsock.select(task, 0, outcomes.append)
        assert outcomes == [True]


class TestRegistryLazyClose:
    def test_deferred_pattern(self, kernel):
        closer = RegistryLazyCloser(kernel, kernel.rng.stream("reg"),
                                    delay_ns=seconds(5),
                                    touch_mean_ns=seconds(2))
        closer.start()
        kernel.run_for(seconds(600))
        assert closer.flushes > 3
        sets = events_of(kernel, EventKind.SET)
        expires = events_of(kernel, EventKind.EXPIRE)
        # Deferred: many more re-arms than expiries, but expiries occur.
        assert len(sets) > 2 * len(expires) > 0
