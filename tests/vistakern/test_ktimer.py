"""Tests for the KTIMER ring and the Vista machine model."""

import pytest

from repro.sim import millis, seconds
from repro.tracing import EventKind
from repro.vistakern import (DEFAULT_CLOCK_PERIOD_NS, VistaKernel)


def make_kernel():
    return VistaKernel(seed=0)


def events_of(kernel, kind):
    return [e for e in kernel.sink if e.kind == kind]


class TestKeSetCancel:
    def test_set_and_fire(self):
        kernel = make_kernel()
        fired = []
        timer = kernel.alloc_ktimer(site=("t",), owner=kernel.tasks.kernel)
        kernel.set_timer(timer, millis(100),
                         dpc=lambda t: fired.append(kernel.engine.now))
        kernel.run_for(seconds(1))
        assert len(fired) == 1
        # Fires at the first clock interrupt at or after the due time.
        assert fired[0] >= millis(100)
        assert fired[0] <= millis(100) + DEFAULT_CLOCK_PERIOD_NS

    def test_clock_granularity_makes_short_timers_very_late(self):
        """A 1 ms timer under the 15.625 ms clock is delivered a large
        multiple of its value late — the paper's Figures 8–11(b)."""
        kernel = make_kernel()
        fired = []
        timer = kernel.alloc_ktimer(site=("t",), owner=kernel.tasks.kernel)
        kernel.set_timer(timer, millis(1),
                         dpc=lambda t: fired.append(kernel.engine.now))
        kernel.run_for(seconds(1))
        assert fired[0] == DEFAULT_CLOCK_PERIOD_NS   # 15.625x the request

    def test_cancel_returns_insertion_state(self):
        kernel = make_kernel()
        timer = kernel.alloc_ktimer(site=("t",), owner=kernel.tasks.kernel)
        kernel.set_timer(timer, seconds(1))
        assert kernel.cancel_timer(timer) is True
        assert kernel.cancel_timer(timer) is False

    def test_set_returns_whether_already_inserted(self):
        kernel = make_kernel()
        timer = kernel.alloc_ktimer(site=("t",), owner=kernel.tasks.kernel)
        assert kernel.set_timer(timer, seconds(1)) is False
        assert kernel.set_timer(timer, seconds(2)) is True

    def test_past_due_fires_synchronously(self):
        kernel = make_kernel()
        kernel.run_for(seconds(1))
        fired = []
        timer = kernel.alloc_ktimer(site=("t",), owner=kernel.tasks.kernel)
        kernel.set_timer(timer, millis(500), absolute=True,
                         dpc=lambda t: fired.append(kernel.engine.now))
        assert fired == [seconds(1)]

    def test_absolute_due_time(self):
        kernel = make_kernel()
        fired = []
        timer = kernel.alloc_ktimer(site=("t",), owner=kernel.tasks.kernel)
        kernel.set_timer(timer, seconds(2), absolute=True,
                         dpc=lambda t: fired.append(kernel.engine.now))
        kernel.run_for(seconds(3))
        assert seconds(2) <= fired[0] <= seconds(2) + DEFAULT_CLOCK_PERIOD_NS

    def test_periodic_reinsert_without_set_events(self):
        """Periodic KTIMER re-insertion happens inside the expiry DPC,
        so only one SET appears for many EXPIREs."""
        kernel = make_kernel()
        timer = kernel.alloc_ktimer(site=("t",), owner=kernel.tasks.kernel)
        kernel.set_timer(timer, millis(100), period_ns=millis(100))
        kernel.run_for(seconds(2))
        assert len(events_of(kernel, EventKind.SET)) == 1
        assert len(events_of(kernel, EventKind.EXPIRE)) >= 15


class TestLookaside:
    def test_freed_addresses_are_reused(self):
        kernel = make_kernel()
        first = kernel.alloc_ktimer(site=("a",), owner=kernel.tasks.kernel)
        first_id = first.timer_id
        kernel.free_ktimer(first)
        second = kernel.alloc_ktimer(site=("b",),
                                     owner=kernel.tasks.kernel)
        assert second.timer_id == first_id

    def test_distinct_while_both_live(self):
        kernel = make_kernel()
        a = kernel.alloc_ktimer(site=("a",), owner=kernel.tasks.kernel)
        b = kernel.alloc_ktimer(site=("b",), owner=kernel.tasks.kernel)
        assert a.timer_id != b.timer_id

    def test_free_cancels_pending(self):
        kernel = make_kernel()
        timer = kernel.alloc_ktimer(site=("t",), owner=kernel.tasks.kernel)
        fired = []
        kernel.set_timer(timer, millis(10), dpc=lambda t: fired.append(1))
        kernel.free_ktimer(timer)
        kernel.run_for(seconds(1))
        assert fired == []


class TestClockResolution:
    def test_time_begin_period_raises_resolution(self):
        kernel = make_kernel()
        task = kernel.tasks.spawn("media.exe")
        kernel.request_clock_resolution(task, millis(1))
        assert kernel.clock_period_ns == millis(1)
        fired = []
        timer = kernel.alloc_ktimer(site=("t",), owner=kernel.tasks.kernel)
        kernel.set_timer(timer, millis(2),
                         dpc=lambda t: fired.append(kernel.engine.now))
        kernel.run_for(seconds(1))
        assert fired[0] <= millis(3) + millis(1)

    def test_release_restores_default(self):
        kernel = make_kernel()
        task = kernel.tasks.spawn("media.exe")
        kernel.request_clock_resolution(task, millis(1))
        kernel.release_clock_resolution(task)
        assert kernel.clock_period_ns == DEFAULT_CLOCK_PERIOD_NS

    def test_minimum_clamped_to_1ms(self):
        kernel = make_kernel()
        task = kernel.tasks.spawn("media.exe")
        kernel.request_clock_resolution(task, 1)
        assert kernel.clock_period_ns == millis(1)

    def test_lowest_request_wins(self):
        kernel = make_kernel()
        a = kernel.tasks.spawn("a")
        b = kernel.tasks.spawn("b")
        kernel.request_clock_resolution(a, millis(5))
        kernel.request_clock_resolution(b, millis(1))
        assert kernel.clock_period_ns == millis(1)
        kernel.release_clock_resolution(b)
        assert kernel.clock_period_ns == millis(5)
