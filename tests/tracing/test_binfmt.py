"""Tests for the binary trace codec, including a hypothesis roundtrip."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.clock import MINUTE, SECOND
from repro.tracing import (EventKind, TimerEvent, Trace, dumps,
                           load_binary, loads, save_binary)
from repro.workloads import run_workload


def sample_trace():
    events = [
        TimerEvent(EventKind.INIT, 0, 0x1040, 1, "Xorg", "user",
                   ("sys_select", "__mod_timer"), None, None),
        TimerEvent(EventKind.SET, 10, 0x1040, 1, "Xorg", "user",
                   ("sys_select", "__mod_timer"), 600 * SECOND,
                   600 * SECOND + 10),
        TimerEvent(EventKind.CANCEL, 999, 0x1040, 1, "Xorg", "user",
                   ("sys_select", "__mod_timer"), None, 600 * SECOND),
        TimerEvent(EventKind.EXPIRE, 2000, 0x2000, 0, "kernel",
                   "kernel", ("wb_timer_fn",), None, 2000, 3),
    ]
    return Trace(os_name="linux", workload="unit", duration_ns=MINUTE,
                 events=events)


class TestRoundtrip:
    def test_bytes_roundtrip(self):
        trace = sample_trace()
        clone = loads(dumps(trace))
        assert clone.os_name == trace.os_name
        assert clone.workload == trace.workload
        assert clone.duration_ns == trace.duration_ns
        assert len(clone.events) == len(trace.events)
        for a, b in zip(trace.events, clone.events):
            for attr in ("kind", "ts", "timer_id", "pid", "comm",
                         "domain", "site", "timeout_ns", "expires_ns",
                         "flags"):
                assert getattr(a, attr) == getattr(b, attr)

    def test_file_roundtrip(self, tmp_path):
        trace = sample_trace()
        path = str(tmp_path / "trace.bin")
        save_binary(trace, path)
        clone = load_binary(path)
        assert len(clone.events) == len(trace.events)

    def test_sites_are_interned_on_load(self):
        clone = loads(dumps(sample_trace()))
        assert clone.events[0].site is clone.events[1].site

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            loads(b"NOTATRACE" + b"\x00" * 64)

    def test_binary_is_smaller_than_json(self, tmp_path):
        run = run_workload("linux", "idle", 30 * SECOND, seed=1)
        binary = dumps(run.trace)
        json_path = tmp_path / "t.jsonl.gz"
        run.trace.save(str(json_path))
        import gzip
        with gzip.open(json_path, "rb") as fh:
            json_size = len(fh.read())
        assert len(binary) < json_size

    def test_workload_trace_roundtrip(self):
        run = run_workload("vista", "idle", 20 * SECOND, seed=3)
        clone = loads(dumps(run.trace))
        assert len(clone.events) == len(run.trace.events)
        from repro.core import summarize
        assert summarize(clone) == summarize(run.trace)


event_strategy = st.builds(
    TimerEvent,
    kind=st.sampled_from(list(EventKind)),
    ts=st.integers(0, 2**60),
    timer_id=st.integers(0, 2**63),
    pid=st.integers(0, 2**31 - 1),
    comm=st.text(min_size=0, max_size=16),
    domain=st.sampled_from(["user", "kernel"]),
    site=st.lists(st.text(min_size=1, max_size=12), min_size=1,
                  max_size=4).map(tuple),
    timeout_ns=st.one_of(st.none(), st.integers(0, 2**60)),
    expires_ns=st.one_of(st.none(), st.integers(0, 2**60)),
    flags=st.integers(0, 255),
    # The legacy v1 records predate cluster traces and carry no
    # host/cpu columns; multi-host traces go through binfmt2 v3.
    host=st.just(0),
    cpu=st.just(0),
)


class TestProperty:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(event_strategy, max_size=40),
           st.sampled_from(["linux", "vista"]))
    def test_arbitrary_events_roundtrip(self, events, os_name):
        events.sort(key=lambda e: e.ts)
        trace = Trace(os_name=os_name, workload="prop",
                      duration_ns=2**50, events=events)
        clone = loads(dumps(trace))
        assert len(clone.events) == len(events)
        for a, b in zip(events, clone.events):
            assert a.to_dict() == b.to_dict()


EVENT_FIELDS = ("kind", "ts", "timer_id", "pid", "comm", "domain",
                "site", "timeout_ns", "expires_ns", "flags")


def events_equal(a, b):
    return all(getattr(x, f) == getattr(y, f)
               for x, y in zip(a.events, b.events)
               for f in EVENT_FIELDS) and len(a.events) == len(b.events)


class TestFormatDispatch:
    """Trace.save/load pick the codec from the extension; both formats
    preserve every event field, so jsonl <-> binary round-trips are
    lossless in either direction."""

    def test_save_load_dispatches_on_extension(self, tmp_path):
        trace = sample_trace()
        bin_path = str(tmp_path / "t.bin")
        jsonl_path = str(tmp_path / "t.jsonl.gz")
        trace.save(bin_path)
        trace.save(jsonl_path)
        with open(bin_path, "rb") as fh:
            assert fh.read(8) == b"TMRTRACE"
        for path in (bin_path, jsonl_path):
            clone = Trace.load(path)
            assert clone.os_name == trace.os_name
            assert clone.workload == trace.workload
            assert clone.duration_ns == trace.duration_ns
            assert events_equal(clone, trace)

    def test_jsonl_binfmt_cross_roundtrip(self, tmp_path):
        """jsonl -> binary -> jsonl keeps every field of every event."""
        run = run_workload("vista", "skype", 15 * SECOND, seed=9)
        jsonl_path = str(tmp_path / "a.jsonl.gz")
        run.trace.save(jsonl_path)
        via_jsonl = Trace.load(jsonl_path)
        bin_path = str(tmp_path / "b.bin")
        via_jsonl.save(bin_path)
        via_bin = Trace.load(bin_path)
        assert events_equal(via_bin, run.trace)
        jsonl_again = str(tmp_path / "c.jsonl.gz")
        via_bin.save(jsonl_again)
        assert events_equal(Trace.load(jsonl_again), run.trace)
