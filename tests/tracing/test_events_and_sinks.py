"""Tests for trace records, sinks, and the Trace container."""

import pytest

from repro.tracing import (CallSiteRegistry, CountingSink, EtwSession,
                           EventKind, RelayBuffer, TeeSink, TimerEvent,
                           Trace)
from repro.tracing.events import FLAG_WAIT_SATISFIED
from repro.tracing.relay import APPROX_RECORD_BYTES


def make_event(kind=EventKind.SET, ts=0, timer_id=0x1000, pid=1,
               comm="app", domain="user", site=("sys_select",),
               timeout_ns=1000, expires_ns=2000, flags=0):
    return TimerEvent(kind, ts, timer_id, pid, comm, domain, site,
                      timeout_ns, expires_ns, flags)


class TestTimerEvent:
    def test_roundtrip_through_dict(self):
        event = make_event(flags=FLAG_WAIT_SATISFIED)
        clone = TimerEvent.from_dict(event.to_dict())
        for attr in ("kind", "ts", "timer_id", "pid", "comm", "domain",
                     "site", "timeout_ns", "expires_ns", "flags"):
            assert getattr(clone, attr) == getattr(event, attr)

    def test_is_user(self):
        assert make_event(domain="user").is_user
        assert not make_event(domain="kernel").is_user

    def test_repr_mentions_kind_and_comm(self):
        text = repr(make_event())
        assert "SET" in text and "app" in text


class TestCallSiteRegistry:
    def test_interning_returns_same_object(self):
        reg = CallSiteRegistry()
        a = reg.intern(("f", "g"))
        b = reg.intern(("f", "g"))
        assert a is b
        assert len(reg) == 1

    def test_distinct_sites_kept(self):
        reg = CallSiteRegistry()
        reg.intern(("f",))
        reg.intern(("g",))
        assert len(reg.all_sites()) == 2


class TestRelayBuffer:
    def test_ordering_preserved(self):
        buffer = RelayBuffer()
        for i in range(10):
            buffer.emit(make_event(ts=i))
        assert [e.ts for e in buffer] == list(range(10))

    def test_no_overwrite_when_full(self):
        buffer = RelayBuffer(capacity_bytes=3 * APPROX_RECORD_BYTES)
        for i in range(5):
            buffer.emit(make_event(ts=i))
        assert len(buffer) == 3
        assert buffer.dropped == 2
        # Old events kept, new dropped — relayfs no-overwrite semantics.
        assert [e.ts for e in buffer] == [0, 1, 2]

    def test_drain_empties(self):
        buffer = RelayBuffer()
        buffer.emit(make_event())
        assert len(buffer.drain()) == 1
        assert len(buffer) == 0

    def test_estimated_cycles_tracks_paper_cost(self):
        buffer = RelayBuffer()
        for _ in range(100):
            buffer.emit(make_event())
        assert buffer.estimated_cycles() == 100 * 236


class TestSinks:
    def test_tee_fans_out(self):
        a, b = RelayBuffer(), CountingSink()
        tee = TeeSink([a, b])
        tee.emit(make_event())
        assert len(a) == 1 and b.total == 1

    def test_counting_sink_by_kind(self):
        sink = CountingSink()
        sink.emit(make_event(kind=EventKind.SET))
        sink.emit(make_event(kind=EventKind.SET))
        sink.emit(make_event(kind=EventKind.CANCEL))
        assert sink.count(EventKind.SET) == 2
        assert sink.count(EventKind.CANCEL) == 1
        assert sink.count(EventKind.EXPIRE) == 0


class TestEtwSession:
    def test_wait_unblock_schema(self):
        session = EtwSession()
        session.emit_wait_unblock(ts_block=100, ts_unblock=500,
                                  timer_id=7, pid=3, comm="svchost.exe",
                                  site=("wait",), timeout_ns=400,
                                  satisfied=True)
        event = list(session)[0]
        assert event.kind == EventKind.WAIT_UNBLOCK
        assert event.ts == 500
        assert event.expires_ns == 100        # block timestamp
        assert event.timeout_ns == 400
        assert event.flags & FLAG_WAIT_SATISFIED

    def test_capacity(self):
        session = EtwSession(capacity_events=2)
        for i in range(4):
            session.emit(make_event(ts=i))
        assert len(session) == 2 and session.dropped == 2


class TestTrace:
    def _trace(self):
        events = [
            make_event(ts=0, comm="Xorg", timer_id=1),
            make_event(ts=1, comm="icewm", timer_id=2, domain="user"),
            make_event(ts=2, comm="kernel", timer_id=3, domain="kernel",
                       kind=EventKind.EXPIRE),
        ]
        return Trace(os_name="linux", workload="test", duration_ns=10,
                     events=events)

    def test_without_comms_filters(self):
        trace = self._trace().without_comms(["Xorg", "icewm"])
        assert len(trace) == 1
        assert trace.events[0].comm == "kernel"

    def test_domain_filters(self):
        trace = self._trace()
        assert len(trace.user_events()) == 2
        assert len(trace.kernel_events()) == 1

    def test_instances_groups_by_address(self):
        assert len(self._trace().instances()) == 3

    def test_logical_timers_cluster_by_site_and_pid(self):
        # Two different timer ids from the same site+pid cluster as one
        # logical timer — the Vista afd.sys case.
        events = [
            make_event(ts=0, timer_id=10, pid=5, site=("afd",)),
            make_event(ts=1, timer_id=10, pid=5, site=("afd",),
                       kind=EventKind.CANCEL),
            make_event(ts=2, timer_id=11, pid=5, site=("afd",)),
            make_event(ts=3, timer_id=11, pid=5, site=("afd",),
                       kind=EventKind.EXPIRE),
        ]
        trace = Trace(os_name="vista", workload="t", duration_ns=10,
                      events=events)
        logical = trace.logical_timers()
        assert len(logical) == 1
        assert len(logical[0].events) == 4

    def test_save_load_roundtrip(self, tmp_path):
        trace = self._trace()
        path = str(tmp_path / "trace.jsonl.gz")
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.os_name == "linux"
        assert loaded.workload == "test"
        assert len(loaded) == len(trace)
        assert loaded.events[0].comm == "Xorg"

    def test_invalid_os_rejected(self):
        with pytest.raises(ValueError):
            Trace(os_name="beos", workload="x", duration_ns=1)
