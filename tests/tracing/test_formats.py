"""Tests for the unified trace I/O surface (:mod:`repro.tracing.formats`)
and the v2 zero-copy columnar codec (:mod:`repro.tracing.binfmt2`)."""

import ast
import gzip
import os
import warnings

import pytest

from repro.sim.clock import MINUTE, SECOND
from repro.tracing import (ColumnarTrace, EventKind, TimerEvent, Trace,
                           TraceFormatError, detect_format, materialize,
                           open_trace, sniff_format, trace_formats,
                           trace_from_bytes, trace_to_bytes, write_trace)
from repro.workloads import run_workload

EVENT_FIELDS = ("kind", "ts", "timer_id", "pid", "comm", "domain",
                "site", "timeout_ns", "expires_ns", "flags")

DATA_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "data")


def golden_events():
    """The canonical cross-version fixture trace — these exact events
    are stored in ``tests/data/cross_v1.bin1`` / ``cross_v2.bin2``
    (written by ``tests/data/make_fixtures.py``).  Every field type the
    codecs must preserve is covered: None timeout/expires, flags,
    multi-frame sites, both domains, a non-ASCII comm."""
    return [
        TimerEvent(EventKind.INIT, 0, 0x1040, 1, "Xorg", "user",
                   ("sys_select", "__mod_timer"), None, None),
        TimerEvent(EventKind.SET, 10, 0x1040, 1, "Xorg", "user",
                   ("sys_select", "__mod_timer"), 600 * SECOND,
                   600 * SECOND + 10),
        TimerEvent(EventKind.CANCEL, 999, 0x1040, 1, "Xorg", "user",
                   ("sys_select", "__mod_timer"), None, 600 * SECOND),
        TimerEvent(EventKind.EXPIRE, 2000, 0x2000, 0, "kworkeré",
                   "kernel", ("wb_timer_fn",), None, 2000, 3),
        TimerEvent(EventKind.WAIT_UNBLOCK, 5000, 0x3000, 42, "svchost",
                   "user", ("NtWaitForSingleObject",), 15 * SECOND,
                   4000, 1),
    ]


def golden_trace():
    return Trace(os_name="linux", workload="fixture",
                 duration_ns=MINUTE, events=golden_events())


def golden_cluster_events():
    """``golden_events`` with cluster identity stamped on — two hosts,
    two CPUs; these exact events are stored in
    ``tests/data/cross_v3.bin3``."""
    identity = [(1, 0), (1, 1), (1, 0), (2, 1), (2, 0)]
    return [event._replace(host=host, cpu=cpu)
            for event, (host, cpu) in zip(golden_events(), identity)]


def golden_cluster_trace():
    return Trace(os_name="linux", workload="fixture",
                 duration_ns=MINUTE, events=golden_cluster_events())


def assert_events_equal(a, b):
    a, b = list(a), list(b)
    assert len(a) == len(b)
    for x, y in zip(a, b):
        for field in EVENT_FIELDS:
            assert getattr(x, field) == getattr(y, field)


class TestRegistry:
    def test_registered_formats(self):
        assert trace_formats() == ["jsonl", "binfmt", "binfmt2",
                                   "binfmt3"]

    def test_explicit_format_roundtrips(self, tmp_path):
        trace = golden_trace()
        for name in ("jsonl", "binfmt", "binfmt2"):
            path = str(tmp_path / f"t_{name}.dat")
            write_trace(trace, path, format=name)
            assert detect_format(path) == name
            clone = open_trace(path, format=name)
            assert_events_equal(trace.events, clone.events)

    def test_extension_dispatch(self, tmp_path):
        trace = golden_trace()
        for ext, expected in ((".bin", "binfmt2"), (".bin2", "binfmt2"),
                              (".bin1", "binfmt"),
                              (".jsonl.gz", "jsonl"),
                              (".weird", "jsonl")):
            path = str(tmp_path / f"t{ext}")
            assert write_trace(trace, path) == expected
            assert detect_format(path) == expected

    def test_sniffing_ignores_extension(self, tmp_path):
        """open_trace trusts the magic, not the file name."""
        trace = golden_trace()
        path = str(tmp_path / "lies.jsonl.gz")
        write_trace(trace, path, format="binfmt2")
        assert sniff_format(open(path, "rb").read(16)) == "binfmt2"
        clone = open_trace(path)
        assert isinstance(clone, ColumnarTrace)
        assert_events_equal(trace.events, clone)

    def test_bytes_roundtrip_all_formats(self):
        trace = golden_trace()
        for name in ("jsonl", "binfmt", "binfmt2"):
            blob = trace_to_bytes(trace, format=name)
            clone = materialize(trace_from_bytes(blob))
            assert_events_equal(trace.events, clone.events)

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown trace format"):
            write_trace(golden_trace(), str(tmp_path / "t.bin"),
                        format="binfmt9")


class TestColumnarV2:
    def test_open_trace_returns_zero_copy_view(self, tmp_path):
        trace = golden_trace()
        path = str(tmp_path / "t.bin")
        write_trace(trace, path)
        view = open_trace(path)
        assert isinstance(view, ColumnarTrace)
        assert view.n_events == len(trace.events)
        assert view.os_name == trace.os_name
        assert view.workload == trace.workload
        assert view.duration_ns == trace.duration_ns

    def test_mmap_vs_eager_equivalence(self, tmp_path):
        """Lazy hydration (event(i) / iteration) must agree with the
        eagerly hydrated Trace, field for field."""
        run = run_workload("vista", "idle", 20 * SECOND, seed=3)
        path = str(tmp_path / "t.bin")
        write_trace(run.trace, path)
        view = open_trace(path)
        eager = view.as_trace()
        assert_events_equal(run.trace.events, eager.events)
        assert_events_equal(eager.events,
                            [view.event(i) for i in range(view.n_events)])
        assert_events_equal(eager.events, view)

    def test_columns_are_directly_readable(self, tmp_path):
        trace = golden_trace()
        path = str(tmp_path / "t.bin")
        write_trace(trace, path)
        view = open_trace(path)
        assert list(view.ts) == [e.ts for e in trace.events]
        assert list(view.timer_id) == [e.timer_id for e in trace.events]
        assert [view.comms[i] for i in view.comm_idx] == \
            [e.comm for e in trace.events]

    def test_empty_trace_roundtrip(self, tmp_path):
        trace = Trace(os_name="linux", workload="empty",
                      duration_ns=0, events=[])
        path = str(tmp_path / "t.bin")
        write_trace(trace, path)
        view = open_trace(path)
        assert view.n_events == 0
        assert list(view) == []

    def test_analysis_identical_across_formats(self, tmp_path):
        from repro.core.report import render_analysis
        run = run_workload("linux", "idle", 20 * SECOND, seed=5)
        expected = render_analysis(run.trace)
        for name, ext in (("binfmt", ".bin1"), ("binfmt2", ".bin"),
                          ("jsonl", ".jsonl.gz")):
            path = str(tmp_path / f"t{ext}")
            write_trace(run.trace, path, format=name)
            assert render_analysis(open_trace(path)) == expected


class TestCrossVersionGolden:
    """Golden fixture files pin the on-disk layouts: today's readers
    must keep decoding yesterday's bytes (and v1 bytes must negotiate
    up to the v2 reader transparently)."""

    def test_v1_fixture_decodes(self):
        clone = open_trace(os.path.join(DATA_DIR, "cross_v1.bin1"))
        assert clone.os_name == "linux"
        assert clone.workload == "fixture"
        assert clone.duration_ns == MINUTE
        assert_events_equal(golden_events(), clone.events)

    def test_v2_fixture_decodes(self):
        view = open_trace(os.path.join(DATA_DIR, "cross_v2.bin2"))
        assert isinstance(view, ColumnarTrace)
        assert_events_equal(golden_events(), view)

    def test_v1_to_v2_roundtrip(self, tmp_path):
        v1 = open_trace(os.path.join(DATA_DIR, "cross_v1.bin1"))
        path = str(tmp_path / "up.bin")
        write_trace(v1, path)
        assert_events_equal(v1.events, open_trace(path))

    def test_v1_reader_negotiates_v2_stream(self):
        """The legacy entry point (binfmt.load_trace) reads v2 bytes."""
        import io
        from repro.tracing import load_trace
        blob = trace_to_bytes(golden_trace(), format="binfmt2")
        clone = load_trace(io.BytesIO(blob))
        assert_events_equal(golden_events(), clone.events)


class TestClusterV3:
    """The version-3 cluster columns: auto-negotiation with v2, the
    multi-host golden fixture, and analysis equivalence of single-host
    v3 with v2."""

    def assert_identity_equal(self, a, b):
        assert_events_equal(a, b)
        for x, y in zip(list(a), list(b)):
            assert (x.host, x.cpu) == (y.host, y.cpu)

    def test_v3_fixture_decodes(self):
        view = open_trace(os.path.join(DATA_DIR, "cross_v3.bin3"))
        assert isinstance(view, ColumnarTrace)
        assert view.os_name == "linux"
        assert view.duration_ns == MINUTE
        self.assert_identity_equal(golden_cluster_events(), view)

    def test_single_host_stays_v2(self, tmp_path):
        """The auto writer must keep all-zero-identity traces byte-
        identical to the pre-cluster format."""
        trace = golden_trace()
        assert trace_to_bytes(trace) == \
            trace_to_bytes(trace, format="binfmt2")
        path = str(tmp_path / "t.bin")
        assert write_trace(trace, path) == "binfmt2"
        assert detect_format(path) == "binfmt2"

    def test_multihost_auto_upgrades_to_v3(self, tmp_path):
        trace = golden_cluster_trace()
        path = str(tmp_path / "t.bin")
        write_trace(trace, path)
        assert detect_format(path) == "binfmt3"
        self.assert_identity_equal(trace.events, open_trace(path))

    def test_v3_bytes_roundtrip(self):
        trace = golden_cluster_trace()
        blob = trace_to_bytes(trace)
        assert sniff_format(blob[:16]) == "binfmt3"
        clone = materialize(trace_from_bytes(blob))
        self.assert_identity_equal(trace.events, clone.events)

    def test_v2_loader_synthesizes_zero_identity(self):
        view = open_trace(os.path.join(DATA_DIR, "cross_v2.bin2"))
        assert all(event.host == 0 and event.cpu == 0 for event in view)

    def test_single_host_v3_analysis_identical_to_v2(self, tmp_path):
        """Forcing v3 on single-host data (explicit format="binfmt3")
        must not change a byte of the analysis output."""
        from repro.core.report import render_analysis
        run = run_workload("linux", "idle", 20 * SECOND, seed=5)
        v2 = str(tmp_path / "t.bin2")
        v3 = str(tmp_path / "t.bin3")
        write_trace(run.trace, v2, format="binfmt2")
        write_trace(run.trace, v3, format="binfmt3")
        assert detect_format(v3) == "binfmt3"
        assert render_analysis(open_trace(v3)) == \
            render_analysis(open_trace(v2))


class TestErrorPaths:
    def test_bad_magic_raises_typed_error(self):
        with pytest.raises(TraceFormatError):
            trace_from_bytes(b"NOTATRACE" + b"\x00" * 64)

    def test_truncated_v2_raises(self, tmp_path):
        path = str(tmp_path / "t.bin")
        write_trace(golden_trace(), path)
        blob = open(path, "rb").read()
        for cut in (4, 12, 40, len(blob) - 3):
            with pytest.raises(TraceFormatError):
                trace_from_bytes(blob[:cut])

    def test_truncated_v2_file_raises(self, tmp_path):
        path = str(tmp_path / "t.bin")
        write_trace(golden_trace(), path)
        blob = open(path, "rb").read()
        short = str(tmp_path / "short.bin")
        with open(short, "wb") as fh:
            fh.write(blob[:-5])
        with pytest.raises(TraceFormatError):
            open_trace(short)

    def test_truncated_v1_raises(self):
        blob = trace_to_bytes(golden_trace(), format="binfmt")
        with pytest.raises(TraceFormatError):
            trace_from_bytes(blob[:-7])

    def test_corrupt_jsonl_raises(self, tmp_path):
        path = str(tmp_path / "t.jsonl.gz")
        with gzip.open(path, "wt") as fh:
            fh.write('{"os_name": "linux"\nnot json at all\n')
        with pytest.raises(TraceFormatError):
            open_trace(path)

    def test_oversized_string_raises_typed_error(self):
        """The old silent struct overflow (satellite 2): a >64 KiB
        string must raise TraceFormatError from both codec versions."""
        trace = golden_trace()
        trace.events[0] = TimerEvent(
            EventKind.SET, 0, 1, 1, "x" * 70_000, "user", ("f",), 1, 2)
        for name in ("binfmt", "binfmt2"):
            with pytest.raises(TraceFormatError):
                trace_to_bytes(trace, format=name)

    def test_cli_exit_2_on_corrupt_trace(self, tmp_path, capsys):
        from repro.cli import main
        bad = str(tmp_path / "bad.bin")
        with open(bad, "wb") as fh:
            fh.write(b"TMRTRACE\x07\x00garbage")
        assert main(["analyze", bad]) == 2
        assert "bad.bin" in capsys.readouterr().err

    def test_cli_exit_2_on_missing_trace(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["analyze", str(tmp_path / "nope.bin")]) == 2


class TestDeprecationShims:
    def test_old_names_warn_once_and_still_work(self):
        from repro.tracing import binfmt
        from repro import tracing
        binfmt._warned.clear()
        trace = golden_trace()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            blob = tracing.dumps(trace)
            clone = tracing.loads(blob)
            tracing.dumps(trace)     # second call: no new warning
        assert_events_equal(trace.events, clone.events)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 2        # dumps once, loads once
        assert "trace_to_bytes" in str(deprecations[0].message)

    def test_no_internal_caller_imports_deprecated_names(self):
        """The CI gate (satellite 5): production code must use the
        formats API; only the defining module may mention the old
        names."""
        import repro
        deprecated = {"save_binary", "load_binary", "dumps", "loads"}
        offenders = []
        root = os.path.dirname(repro.__file__)
        for dirpath, _dirnames, filenames in os.walk(root):
            for filename in filenames:
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                rel = os.path.relpath(path, root)
                if rel == os.path.join("tracing", "binfmt.py"):
                    continue             # the shims' own home
                tree = ast.parse(open(path, encoding="utf-8").read())
                for node in ast.walk(tree):
                    if isinstance(node, ast.ImportFrom):
                        for alias in node.names:
                            if alias.name in deprecated:
                                offenders.append((rel, alias.name))
        assert offenders == []
