"""Tests for request-scoped timeout provenance (§5.2 tracing)."""

import pytest

from repro.sim.clock import SECOND, millis, seconds
from repro.tracing import RequestTracker
from repro.workloads import browse
from repro.workloads.filebrowser import schedule_total_ns


class TestTree:
    def _request(self):
        tracker = RequestTracker()
        request = tracker.begin("op", now_ns=0)
        outer = tracker.arm(request, "rpc", "app", seconds(30))
        tracker.arm(request, "tcp-syn", "net", seconds(3),
                    parent=outer)
        tracker.arm(request, "tcp-rto", "net", millis(204),
                    parent=outer)
        return tracker, request, outer

    def test_structure(self):
        _tracker, request, outer = self._request()
        assert request.timer_count == 3
        assert len(request.roots) == 1
        assert [c.name for c in outer.children] == ["tcp-syn",
                                                    "tcp-rto"]

    def test_worst_case_is_outer_when_outer_dominates(self):
        _tracker, request, _outer = self._request()
        assert request.worst_case_ns() == seconds(30)

    def test_worst_case_is_children_when_they_outlast(self):
        tracker = RequestTracker()
        request = tracker.begin("op")
        outer = tracker.arm(request, "ui", "app", seconds(5))
        tracker.arm(request, "nfs", "fs", seconds(63), parent=outer)
        assert request.worst_case_ns() == seconds(63)
        path = request.dominant_path()
        assert [n.name for n in path] == ["ui", "nfs"]

    def test_resolution_recorded(self):
        _tracker, request, outer = self._request()
        outer.resolve("cancelled", millis(40))
        assert outer.outcome == "cancelled"
        assert outer.resolved_at_ns == millis(40)

    def test_render(self):
        _tracker, request, _outer = self._request()
        text = request.render()
        assert "rpc" in text and "tcp-rto" in text
        assert "worst case 30.0s" in text

    def test_empty_request(self):
        tracker = RequestTracker()
        request = tracker.begin("noop")
        assert request.worst_case_ns() == 0
        assert request.dominant_path() == []

    def test_slowest_requests(self):
        tracker = RequestTracker()
        fast = tracker.begin("fast", now_ns=0)
        fast.finish("ok", millis(100))
        slow = tracker.begin("slow", now_ns=0)
        slow.finish("ok", seconds(60))
        assert tracker.slowest_requests(1) == [slow]


class TestFileBrowserIntegration:
    def test_tree_explains_the_observed_minute(self):
        tracker = RequestTracker()
        result = browse(name_resolves=True, server_reachable=False,
                        tracker=tracker)
        request = tracker.requests[0]
        assert request.outcome == "unreachable"
        # The provenance tree's worst case predicts the observed delay.
        assert request.worst_case_ns() == pytest.approx(
            result.elapsed_ns, rel=0.01)
        # ...and points the finger at the SunRPC backoff chain.
        path = request.dominant_path()
        assert any("NFS" in node.name for node in path)

    def test_per_retry_children_recorded(self):
        tracker = RequestTracker()
        browse(name_resolves=True, server_reachable=False,
               tracker=tracker)
        request = tracker.requests[0]
        nfs = next(r for r in request.roots if "NFS" in r.name)
        assert len(nfs.children) == 7
        assert sum(c.timeout_ns for c in nfs.children) \
            == schedule_total_ns(millis(500), 7, 2.0)

    def test_healthy_request_mostly_cancelled(self):
        tracker = RequestTracker()
        browse(name_resolves=True, server_reachable=True,
               tracker=tracker)
        request = tracker.requests[0]
        assert request.outcome == "connected"
        cancelled = [n for n in request.all_nodes()
                     if n.outcome == "cancelled"]
        assert cancelled          # the winning resolver + protocol
