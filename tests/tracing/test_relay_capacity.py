"""Regression tests for trace-buffer accounting at the capacity bound.

The paper sized its relayfs buffer so drops never happened; the model
must therefore get the boundary *exactly* right, and its lifetime
accounting (``emitted == retained + dropped + drained``) previously
drifted once the buffer had been drained — ``estimated_cycles`` forgot
records the reader had already consumed.
"""

import pytest

from repro.tracing.etw import EtwSession
from repro.tracing.events import EventKind, TimerEvent
from repro.tracing.relay import APPROX_RECORD_BYTES, RelayBuffer


def make_event(n: int) -> TimerEvent:
    return TimerEvent(EventKind.SET, ts=n, timer_id=0x100, pid=1,
                      comm="t", domain="kernel", site=("a",),
                      timeout_ns=10, expires_ns=n + 10)


def fill(sink, count: int, start: int = 0) -> None:
    for n in range(start, start + count):
        sink.emit(make_event(n))


@pytest.fixture
def small_buffer() -> RelayBuffer:
    buffer = RelayBuffer(capacity_bytes=8 * APPROX_RECORD_BYTES)
    assert buffer.capacity_events == 8
    return buffer


class TestExactCapacityBoundary:
    def test_record_at_capacity_is_retained(self, small_buffer):
        fill(small_buffer, 8)
        assert len(small_buffer) == 8
        assert small_buffer.dropped == 0
        assert small_buffer.high_water == 8

    def test_first_drop_is_capacity_plus_one(self, small_buffer):
        fill(small_buffer, 9)
        assert len(small_buffer) == 8
        assert small_buffer.dropped == 1
        # The retained records are the first 8, in order.
        assert [e.ts for e in small_buffer] == list(range(8))

    def test_invariant_holds_at_every_step(self, small_buffer):
        for n in range(20):
            small_buffer.emit(make_event(n))
            assert small_buffer.emitted == len(small_buffer) \
                + small_buffer.dropped + small_buffer.drained
        assert small_buffer.emitted == 20
        assert small_buffer.dropped == 12


class TestDrainAccounting:
    def test_invariant_survives_drain(self, small_buffer):
        fill(small_buffer, 10)
        drained = small_buffer.drain()
        assert len(drained) == 8
        assert small_buffer.drained == 8
        assert len(small_buffer) == 0
        fill(small_buffer, 5, start=10)
        assert small_buffer.emitted == 15
        assert small_buffer.emitted == len(small_buffer) \
            + small_buffer.dropped + small_buffer.drained

    def test_drain_frees_capacity(self, small_buffer):
        fill(small_buffer, 8)
        small_buffer.drain()
        fill(small_buffer, 3, start=8)
        assert len(small_buffer) == 3
        assert small_buffer.dropped == 0

    def test_high_water_survives_drain(self, small_buffer):
        fill(small_buffer, 8)
        small_buffer.drain()
        fill(small_buffer, 2, start=8)
        assert small_buffer.high_water == 8

    def test_estimated_cycles_counts_drained_records(self):
        # The regression: drain() used to erase records from the cycle
        # estimate, understating instrumentation cost (the paper's 236
        # cycles are paid when the record is gathered, not when read).
        buffer = RelayBuffer(capacity_bytes=8 * APPROX_RECORD_BYTES)
        fill(buffer, 6)
        before = buffer.estimated_cycles()
        assert before == 6 * buffer.record_cost_cycles
        buffer.drain()
        assert buffer.estimated_cycles() == before
        fill(buffer, 4, start=6)
        assert buffer.estimated_cycles() \
            == 10 * buffer.record_cost_cycles

    def test_estimated_cycles_counts_dropped_records(self):
        buffer = RelayBuffer(capacity_bytes=2 * APPROX_RECORD_BYTES)
        fill(buffer, 5)
        assert buffer.dropped == 3
        assert buffer.estimated_cycles() == 5 * buffer.record_cost_cycles


class TestEtwSessionParity:
    """EtwSession is the Vista twin; same boundary, same invariant."""

    def test_exact_boundary(self):
        session = EtwSession(capacity_events=4)
        fill(session, 6)
        assert len(session) == 4
        assert session.dropped == 2
        assert session.high_water == 4
        assert session.emitted == 6

    def test_invariant_survives_drain(self):
        session = EtwSession(capacity_events=4)
        fill(session, 5)
        session.drain()
        fill(session, 2, start=5)
        assert session.emitted == len(session) + session.dropped \
            + session.drained
        assert session.drained == 4
