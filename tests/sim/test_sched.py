"""Scheduler-layer tests: wheel edge cases, heap/wheel equivalence, and
bounded garbage under the TIME_WAIT mass-arm/cancel pattern."""

import random

import pytest

from repro.sim import Engine, SimulationError
from repro.sim.clock import MILLISECOND, SECOND, HOUR
from repro.sim.sched import (GRAN_BITS, WHEEL_SPAN, HeapScheduler,
                             ShardedWheelScheduler, WheelScheduler,
                             default_scheduler, make_scheduler,
                             use_scheduler)

BOTH = pytest.mark.parametrize("kind", ["heap", "wheel", "sharded:2"])

#: Spans that land in every wheel level plus the overflow heap.
LEVEL_SPANS = [
    50 * MILLISECOND,            # level 0
    2 * SECOND,                  # level 1
    5 * 60 * SECOND,             # level 2
    4 * HOUR,                    # level 3
    40 * 24 * HOUR,              # level 4
    80 * 24 * HOUR,              # overflow (beyond the ~52-day span)
]


# -- selection and defaults ------------------------------------------------

def test_default_is_wheel():
    assert default_scheduler() == "wheel"
    assert Engine().scheduler.kind == "wheel"


def test_explicit_selection():
    assert Engine(scheduler="heap").scheduler.kind == "heap"
    assert Engine(scheduler="wheel").scheduler.kind == "wheel"
    sched = WheelScheduler()
    assert Engine(scheduler=sched).scheduler is sched


def test_unknown_scheduler_rejected():
    with pytest.raises(ValueError):
        Engine(scheduler="splay-tree")
    with pytest.raises(ValueError):
        make_scheduler("calendar")


def test_use_scheduler_scopes_the_default():
    with use_scheduler("heap"):
        assert Engine().scheduler.kind == "heap"
        with use_scheduler("wheel"):
            assert Engine().scheduler.kind == "wheel"
        assert Engine().scheduler.kind == "heap"
    assert Engine().scheduler.kind == "wheel"
    with pytest.raises(ValueError):
        with use_scheduler("nope"):
            pass


# -- edge cases under both schedulers --------------------------------------

@BOTH
def test_schedule_at_now_runs_before_time_advances(kind):
    engine = Engine(scheduler=kind)
    engine.run_until(SECOND)
    order = []
    engine.call_at(engine.now, lambda: order.append(engine.now))
    engine.call_after(0, lambda: order.append(engine.now))
    engine.run_until(SECOND + 1)
    assert order == [SECOND, SECOND]


@BOTH
def test_schedule_at_now_during_dispatch(kind):
    """A callback scheduling for the current instant runs this turn —
    on the wheel this exercises the already-expired-bucket path."""
    engine = Engine(scheduler=kind)
    order = []

    def first():
        order.append("first")
        engine.call_at(engine.now, lambda: order.append("nested"))

    engine.call_at(5 * MILLISECOND, first)
    engine.call_at(5 * MILLISECOND, lambda: order.append("second"))
    engine.run()
    assert order == ["first", "second", "nested"]


@BOTH
def test_schedule_in_past_raises(kind):
    engine = Engine(scheduler=kind)
    engine.call_at(100, lambda: None)
    engine.run_until(200)
    with pytest.raises(SimulationError):
        engine.call_at(150, lambda: None)


@BOTH
def test_same_tick_preserves_seq_order(kind):
    engine = Engine(scheduler=kind)
    order = []
    when = 7 * MILLISECOND
    for i in range(20):
        engine.call_at(when, order.append, i)
    engine.run()
    assert order == list(range(20))


@BOTH
def test_cancel_during_dispatch(kind):
    """An event cancelled by an earlier same-tick callback must not
    fire, even though it is already sitting in the due queue."""
    engine = Engine(scheduler=kind)
    fired = []
    victim = engine.call_at(100, lambda: fired.append("victim"))
    # Scheduled earlier (lower seq would be dispatched first at the
    # same instant) — rearrange: the canceller needs seq < victim.
    engine.run()
    assert fired == ["victim"]

    engine = Engine(scheduler=kind)
    fired = []
    holder = {}
    engine.call_at(100, lambda: holder["victim"].cancel())
    holder["victim"] = engine.call_at(100, lambda: fired.append("no"))
    engine.call_at(100, lambda: fired.append("after"))
    engine.run()
    assert fired == ["after"]
    assert engine.pending_count() == 0


@BOTH
def test_cancel_after_dispatch_is_noop(kind):
    engine = Engine(scheduler=kind)
    handle = engine.call_at(100, lambda: None)
    # Reuse pressure: the wheel recycles the slot for the next event.
    engine.run()
    fired = []
    engine.call_at(200, lambda: fired.append("keep"))
    handle.cancel()                    # stale handle, slot may be reused
    handle.cancel()                    # idempotent
    engine.run()
    assert fired == ["keep"]


@BOTH
def test_peek_next_across_cascade_boundaries(kind):
    """peek_next must see the earliest pending event wherever it lives:
    due queue, any wheel level, or the far-future overflow heap."""
    engine = Engine(scheduler=kind)
    spans = sorted(LEVEL_SPANS, reverse=True)
    for span in spans:
        engine.call_at(span, lambda: None)
        assert engine.peek_next() == span
    # Dispatch level by level; peek tracks the new minimum each time.
    for i, span in enumerate(sorted(LEVEL_SPANS)):
        assert engine.peek_next() == span
        engine.run_until(span)
        remaining = sorted(LEVEL_SPANS)[i + 1:]
        assert engine.peek_next() == (remaining[0] if remaining else None)


@BOTH
def test_events_in_every_level_dispatch_in_order(kind):
    engine = Engine(scheduler=kind)
    fired = []
    for span in random.Random(1).sample(LEVEL_SPANS, len(LEVEL_SPANS)):
        engine.call_at(span, fired.append, span)
    engine.run()
    assert fired == sorted(LEVEL_SPANS)
    assert engine.now == max(LEVEL_SPANS)


@BOTH
def test_run_until_deadline_inside_empty_span(kind):
    engine = Engine(scheduler=kind)
    fired = []
    engine.call_at(10 * MILLISECOND, fired.append, "early")
    engine.call_at(2 * HOUR, fired.append, "late")
    engine.run_until(HOUR)
    assert fired == ["early"]
    assert engine.now == HOUR
    engine.run_until(3 * HOUR)
    assert fired == ["early", "late"]


def test_wheel_cascades_and_drains_are_counted():
    engine = Engine(scheduler="wheel")
    sched = engine.scheduler
    for span in LEVEL_SPANS[:-1]:
        engine.call_at(span, lambda: None)
    engine.run()
    assert sched.cascades > 0
    assert sched.cascaded_timers >= 3   # levels 1-3 refile downwards
    assert sched.bucket_drains > 0
    assert sched.live == 0


def test_wheel_occupancy_levels():
    engine = Engine(scheduler="wheel")
    for span in LEVEL_SPANS:
        engine.call_at(span, lambda: None)
    occ = engine.scheduler.occupancy()
    assert occ["l0"] == 1 and occ["l1"] == 1 and occ["l2"] == 1
    assert occ["l3"] == 1 and occ["l4"] == 1 and occ["overflow"] == 1
    engine.run()
    occ = engine.scheduler.occupancy()
    assert sum(occ.values()) == 0


def test_overflow_beyond_wheel_span():
    engine = Engine(scheduler="wheel")
    fired = []
    far = (WHEEL_SPAN + 17) << GRAN_BITS
    engine.call_at(far, fired.append, "far")
    engine.call_at(100, fired.append, "near")
    assert engine.scheduler.occupancy()["overflow"] == 1
    engine.run()
    assert fired == ["near", "far"]
    assert engine.now == far


# -- heap/wheel differential -----------------------------------------------

def _random_workout(kind, seed, ops=4000):
    """Random schedule/cancel/run churn; returns the dispatch log."""
    rng = random.Random(seed)
    engine = Engine(scheduler=kind)
    log = []
    live = []
    ident = [0]

    def fire(tag):
        log.append((engine.now, tag))
        # Callbacks reschedule and cancel, exercising dispatch-time
        # mutation on both schedulers.
        if rng.random() < 0.4:
            schedule()
        if live and rng.random() < 0.3:
            live.pop(rng.randrange(len(live))).cancel()

    def schedule():
        ident[0] += 1
        delay = rng.choice((
            0,
            rng.randrange(1, MILLISECOND),
            rng.randrange(1, 100 * MILLISECOND),
            rng.randrange(1, 10 * SECOND),
            rng.randrange(1, 24 * HOUR),
            rng.randrange(1, 100 * 24 * HOUR),
        ))
        live.append(engine.call_after(delay, fire, ident[0]))

    for _ in range(ops):
        action = rng.random()
        if action < 0.70:
            schedule()
        elif action < 0.85 and live:
            live.pop(rng.randrange(len(live))).cancel()
        else:
            engine.run_until(engine.now + rng.randrange(1, 10 * SECOND))
    engine.run()
    log.append(("pending", engine.pending_count()))
    log.append(("dispatched", engine.dispatched))
    log.append(("peak", engine.peak_pending))
    return log


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_heap_and_wheel_dispatch_identically(seed):
    # Identical rng seeds drive identical op sequences; the dispatch
    # logs (time, id, order) must match event for event.
    assert (_random_workout("heap", seed)
            == _random_workout("wheel", seed))


@pytest.mark.parametrize("cpus", [2, 4])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_sharded_wheel_matches_heap_dispatch(seed, cpus):
    """The k-way merge over per-CPU shards reproduces the reference
    heap's dispatch log exactly, churn and all."""
    assert (_random_workout("heap", seed)
            == _random_workout(f"sharded:{cpus}", seed))


# -- wheel edge cases: slot reuse, overflow refeed, shard migration --------

def test_cancel_all_compaction_then_rearm_reuses_slots():
    """Cancel a whole batch, force a compaction sweep, then re-arm into
    the same buckets: the recycled slots must serve the new events, and
    the stale handles' generation tags must not cancel them."""
    engine = Engine(scheduler="wheel")
    sched = engine.scheduler
    sched.compact_threshold = 64
    batch = 1_000
    when = 10 * MILLISECOND
    stale = [engine.call_at(when + i, lambda: None) for i in range(batch)]
    for handle in stale:
        handle.cancel()
    assert sched.compactions > 0
    assert sched.live == 0
    fired = []
    for i in range(batch):
        engine.call_at(when + i, fired.append, i)
    # Storage is recycled: the second batch fits in the first one's
    # slots instead of doubling the packed columns.
    assert sched.capacity() <= batch + sched.compact_threshold * 2
    for handle in stale:
        handle.cancel()          # stale generation: must be a no-op
    engine.run()
    assert fired == list(range(batch))
    assert sched.live == 0
    assert engine.pending_count() == 0


def test_overflow_refeed_at_top_level_wrap():
    """Events beyond the ~52-day span wait in the overflow heap; as the
    cursor turns they re-enter the wheel at the top level and cascade
    down through every level to fire in exact global order."""
    engine = Engine(scheduler="wheel")
    sched = engine.scheduler
    fired = []
    far = [(WHEEL_SPAN + off) << GRAN_BITS for off in (17, 3, 900)]
    for when in far:
        engine.call_at(when, fired.append, when)
    engine.call_at(5 * MILLISECOND, fired.append, 5 * MILLISECOND)
    assert sched.occupancy()["overflow"] == len(far)
    # Advance past the near event: the wheel jumps towards the overflow
    # head and re-feeds everything that is now within span.
    engine.run_until(1000 << GRAN_BITS)
    assert fired == [5 * MILLISECOND]
    occ = sched.occupancy()
    assert occ["overflow"] == 0
    assert sum(occ.values()) == len(far)
    engine.run()
    assert fired == sorted(far + [5 * MILLISECOND])
    assert engine.now == max(far)
    # Reaching the far events required cascading down from the top.
    assert sched.cascades > 0
    assert sched.cascaded_timers >= len(far)
    assert sum(sched.occupancy().values()) == 0


def test_periodic_rearm_crosses_shard_boundary():
    """A periodic timer's re-arm draws a fresh seq, so on the sharded
    wheel it migrates between CPU shards — and the dispatch sequence
    must still match the single wheel exactly."""
    def run_periodic(spec):
        engine = Engine(scheduler=spec)
        log = []
        seqs = []

        def tick(n):
            log.append((engine.now, n))
            if n < 8:
                seqs.append(engine.call_after(3 * MILLISECOND,
                                              tick, n + 1).seq)

        seqs.append(engine.call_after(3 * MILLISECOND, tick, 0).seq)
        # Background traffic keeps the other shards non-empty so the
        # merge actually has heads to compare.
        for i in range(10):
            engine.call_at(2 * MILLISECOND + i * 7 * MILLISECOND,
                           log.append, ("bg", i))
        engine.run()
        return log, seqs

    base, _ = run_periodic("wheel")
    for cpus in (2, 3, 4):
        log, seqs = run_periodic(f"sharded:{cpus}")
        assert log == base
        sched = ShardedWheelScheduler(cpus)
        homes = [sched.cpu_for(seq) for seq in seqs]
        # Consecutive re-arms land on different shards (the rebalanced-
        # connection behaviour the docstring promises)...
        assert any(a != b for a, b in zip(homes, homes[1:]))
        # ...and over the timer's lifetime every CPU hosted it.
        assert sorted(set(homes)) == list(range(cpus))


# -- bounded garbage (TIME_WAIT pattern) -----------------------------------

@BOTH
def test_mass_arm_cancel_does_not_grow_memory(kind):
    """Arm tens of thousands of far-future timers, cancel nearly all
    (the TIME_WAIT reaper pattern), repeatedly: storage must stay
    bounded by the live population, not the cumulative arm count."""
    engine = Engine(scheduler=kind)
    sched = engine.scheduler
    batch, rounds = 5_000, 12
    for r in range(rounds):
        handles = [engine.call_at(HOUR + r * SECOND + i, lambda: None)
                   for i in range(batch)]
        for handle in handles:
            handle.cancel()
    assert engine.pending_count() == 0
    # Compaction must have reclaimed cancelled entries: far fewer
    # queued than the 60k cumulatively armed.
    assert sched.compactions > 0
    assert sched.reclaimed > (rounds - 2) * batch
    # On the sharded wheel each shard runs its own compaction
    # threshold, hence the cpus multiplier on the slack terms.
    shards = getattr(sched, "cpus", 1)
    slack = sched.compact_threshold * 2 * shards
    assert sched.queued() <= slack + batch
    if kind == "heap":
        assert len(sched._heap) <= slack + batch
    else:
        # Packed columns are recycled through the free list, so the
        # high-water mark is one batch, not rounds * batch.
        assert sched.capacity() <= batch + slack


@BOTH
def test_cancelled_backlog_does_not_block_run(kind):
    """run() with only cancelled garbage left terminates quickly."""
    engine = Engine(scheduler=kind)
    handles = [engine.call_at(40 * 24 * HOUR + i, lambda: None)
               for i in range(100)]
    fired = []
    engine.call_at(100, fired.append, "real")
    for handle in handles:
        handle.cancel()
    engine.run()
    assert fired == ["real"]
    assert engine.pending_count() == 0
