"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Engine, SimulationError, seconds
from repro.sim.clock import MILLISECOND


def test_events_run_in_time_order():
    engine = Engine()
    order = []
    engine.call_at(300, lambda: order.append("c"))
    engine.call_at(100, lambda: order.append("a"))
    engine.call_at(200, lambda: order.append("b"))
    engine.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_run_in_scheduling_order():
    engine = Engine()
    order = []
    engine.call_at(100, lambda: order.append(1))
    engine.call_at(100, lambda: order.append(2))
    engine.call_at(100, lambda: order.append(3))
    engine.run()
    assert order == [1, 2, 3]


def test_run_until_stops_and_sets_now():
    engine = Engine()
    fired = []
    engine.call_at(100, lambda: fired.append(100))
    engine.call_at(500, lambda: fired.append(500))
    engine.run_until(250)
    assert fired == [100]
    assert engine.now == 250
    engine.run_until(600)
    assert fired == [100, 500]
    assert engine.now == 600


def test_run_until_includes_deadline_events():
    engine = Engine()
    fired = []
    engine.call_at(250, lambda: fired.append("x"))
    engine.run_until(250)
    assert fired == ["x"]


def test_cancelled_event_does_not_fire():
    engine = Engine()
    fired = []
    event = engine.call_at(100, lambda: fired.append("x"))
    event.cancel()
    engine.run()
    assert fired == []


def test_cancel_is_idempotent():
    engine = Engine()
    event = engine.call_at(100, lambda: None)
    event.cancel()
    event.cancel()
    engine.run()


def test_cannot_schedule_in_past():
    engine = Engine()
    engine.call_at(100, lambda: None)
    engine.run_until(200)
    with pytest.raises(SimulationError):
        engine.call_at(150, lambda: None)


def test_call_after_relative():
    engine = Engine()
    engine.run_until(seconds(1))
    times = []
    engine.call_after(MILLISECOND, lambda: times.append(engine.now))
    engine.run_until(seconds(2))
    assert times == [seconds(1) + MILLISECOND]


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.call_after(-1, lambda: None)


def test_callback_scheduling_more_events():
    engine = Engine()
    counter = []

    def recur():
        if len(counter) < 5:
            counter.append(engine.now)
            engine.call_after(100, recur)

    engine.call_after(100, recur)
    engine.run()
    assert counter == [100, 200, 300, 400, 500]


def test_peek_next_skips_cancelled():
    engine = Engine()
    first = engine.call_at(100, lambda: None)
    engine.call_at(200, lambda: None)
    first.cancel()
    assert engine.peek_next() == 200


def test_pending_count_excludes_cancelled():
    engine = Engine()
    keep = engine.call_at(100, lambda: None)
    drop = engine.call_at(200, lambda: None)
    drop.cancel()
    assert engine.pending_count() == 1
    keep.cancel()
    assert engine.pending_count() == 0


def test_dispatched_counter():
    engine = Engine()
    for i in range(10):
        engine.call_at(i * 10, lambda: None)
    engine.run()
    assert engine.dispatched == 10
