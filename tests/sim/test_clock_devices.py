"""Tests for time units, tick/one-shot devices, RNG and power meter."""

import pytest

from repro.sim import (Engine, JIFFY, OneShotDevice, PowerMeter,
                       RngRegistry, SECOND, TickDevice, jiffies, millis,
                       seconds, to_jiffies)
from repro.sim.clock import fmt_time, to_seconds


class TestClock:
    def test_seconds_conversion_roundtrip(self):
        assert seconds(1.5) == 1_500_000_000
        assert to_seconds(seconds(1.5)) == pytest.approx(1.5)

    def test_jiffy_is_4ms_at_hz250(self):
        assert JIFFY == 4_000_000
        assert jiffies(250) == SECOND

    def test_to_jiffies_rounds_up(self):
        assert to_jiffies(1) == 1
        assert to_jiffies(JIFFY) == 1
        assert to_jiffies(JIFFY + 1) == 2
        assert to_jiffies(0) == 0
        assert to_jiffies(-5) == 0

    def test_fmt_time_units(self):
        assert fmt_time(0) == "0s"
        assert fmt_time(seconds(5)) == "5s"
        assert fmt_time(millis(12)) == "12ms"
        assert fmt_time(500) == "500ns"


class TestTickDevice:
    def test_ticks_at_fixed_period(self):
        engine = Engine()
        ticks = []
        device = TickDevice(engine, millis(10), lambda n: ticks.append(
            (n, engine.now)))
        device.start()
        engine.run_until(millis(35))
        assert ticks == [(1, millis(10)), (2, millis(20)), (3, millis(30))]

    def test_stop_halts_ticking(self):
        engine = Engine()
        count = []
        device = TickDevice(engine, millis(10), lambda n: count.append(n))
        device.start()
        engine.run_until(millis(25))
        device.stop()
        engine.run_until(millis(100))
        assert len(count) == 2

    def test_idle_predicate_skips_handler_but_counts_ticks(self):
        engine = Engine()
        fired = []
        device = TickDevice(engine, millis(10), lambda n: fired.append(n),
                            idle_predicate=lambda: True)
        device.start()
        engine.run_until(millis(50))
        assert fired == []
        assert device.ticks == 5

    def test_skipped_ticks_do_not_charge_power(self):
        engine = Engine()
        power = PowerMeter()
        device = TickDevice(engine, millis(10), lambda n: None,
                            power=power, idle_predicate=lambda: True)
        device.start()
        engine.run_until(millis(100))
        assert power.wakeups == 0

    def test_zero_period_rejected(self):
        with pytest.raises(ValueError):
            TickDevice(Engine(), 0, lambda n: None)


class TestOneShotDevice:
    def test_fires_at_programmed_time(self):
        engine = Engine()
        fired = []
        device = OneShotDevice(engine, lambda: fired.append(engine.now))
        device.program(millis(7))
        engine.run()
        assert fired == [millis(7)]

    def test_reprogram_replaces_deadline(self):
        engine = Engine()
        fired = []
        device = OneShotDevice(engine, lambda: fired.append(engine.now))
        device.program(millis(7))
        device.program(millis(3))
        engine.run()
        assert fired == [millis(3)]

    def test_min_delta_clamp(self):
        engine = Engine()
        device = OneShotDevice(engine, lambda: None, min_delta_ns=1000)
        effective = device.program(0)
        assert effective == 1000

    def test_cancel_disarms(self):
        engine = Engine()
        fired = []
        device = OneShotDevice(engine, lambda: fired.append(1))
        device.program(millis(5))
        device.cancel()
        engine.run()
        assert fired == []


class TestRng:
    def test_streams_are_deterministic(self):
        a = RngRegistry(seed=42).stream("x").random()
        b = RngRegistry(seed=42).stream("x").random()
        assert a == b

    def test_streams_are_independent(self):
        reg = RngRegistry(seed=42)
        x = reg.stream("x")
        first = x.random()
        # Drawing from another stream must not perturb x's sequence.
        reg2 = RngRegistry(seed=42)
        reg2.stream("y").random()
        x2 = reg2.stream("x")
        assert x2.random() == first

    def test_stream_identity_cached(self):
        reg = RngRegistry(seed=1)
        assert reg.stream("a") is reg.stream("a")

    def test_exponential_mean(self):
        rng = RngRegistry(seed=7).stream("exp")
        samples = [rng.exponential(100.0) for _ in range(20000)]
        assert sum(samples) / len(samples) == pytest.approx(100.0, rel=0.05)

    def test_lognormal_median(self):
        rng = RngRegistry(seed=7).stream("ln")
        samples = sorted(rng.lognormal_latency(50.0) for _ in range(9999))
        assert samples[len(samples) // 2] == pytest.approx(50.0, rel=0.1)


class TestPowerMeter:
    def test_wakeups_counted_when_idle(self):
        meter = PowerMeter()
        meter.interrupt(cpu_was_idle=True)
        meter.interrupt(cpu_was_idle=False)
        assert meter.wakeups == 1
        assert meter.interrupts == 2

    def test_energy_increases_with_wakeups(self):
        idle = PowerMeter()
        busy = PowerMeter()
        for _ in range(1000):
            busy.interrupt(cpu_was_idle=True)
        assert busy.energy_joules(seconds(10)) > idle.energy_joules(
            seconds(10))

    def test_wakeups_per_second(self):
        meter = PowerMeter()
        for _ in range(250):
            meter.interrupt(cpu_was_idle=True)
        assert meter.wakeups_per_second(seconds(1)) == pytest.approx(250)

    def test_average_watts_bounded_by_states(self):
        meter = PowerMeter()
        watts = meter.average_watts(seconds(10))
        assert 0 < watts < 21
