"""Cross-OS parity: the portable workload layer vs the legacy runners.

Satellite 4 of the portability refactor: the portable idle/webserver
definitions must reproduce the exact per-backend traces (and hence the
exact Table 1/2 rows) the legacy per-OS runners produce, pinning the
registry + Machine + scene plumbing end to end.
"""

import pytest

from repro.core import classify_trace, summarize
from repro.kern import backend_names
from repro.tracing import binfmt
from repro.workloads import run_workload
from repro.workloads.portable import (PORTABLE_IDLE, PORTABLE_MIX,
                                      PORTABLE_SERVERFARM,
                                      PORTABLE_WEBSERVER, PORTABLE_WORKLOADS,
                                      run_portable)

DURATION_NS = 30_000_000_000


def _class_counts(trace):
    counts = {}
    for c in classify_trace(trace):
        name = c.timer_class.name
        counts[name] = counts.get(name, 0) + 1
    return counts


@pytest.mark.parametrize("os_name", ["linux", "vista"])
@pytest.mark.parametrize("portable",
                         [PORTABLE_IDLE, PORTABLE_WEBSERVER,
                          PORTABLE_SERVERFARM],
                         ids=["idle", "webserver", "serverfarm"])
def test_portable_matches_legacy_trace_bytes(os_name, portable):
    legacy = run_workload(os_name, portable.name, DURATION_NS, seed=0)
    ported = portable.run(os_name, DURATION_NS, seed=0)
    assert binfmt.dumps(ported.trace) == binfmt.dumps(legacy.trace)


@pytest.mark.parametrize("os_name", ["linux", "vista"])
def test_portable_matches_legacy_taxonomy(os_name):
    legacy = run_workload(os_name, "idle", DURATION_NS, seed=0)
    ported = PORTABLE_IDLE.run(os_name, DURATION_NS, seed=0)
    assert _class_counts(ported.trace) == _class_counts(legacy.trace)
    assert summarize(ported.trace).as_row() == summarize(legacy.trace).as_row()


@pytest.mark.parametrize("os_name", ["linux", "vista"])
def test_portable_run_is_seed_stable(os_name):
    first = PORTABLE_IDLE.run(os_name, DURATION_NS, seed=7)
    second = PORTABLE_IDLE.run(os_name, DURATION_NS, seed=7)
    assert binfmt.dumps(first.trace) == binfmt.dumps(second.trace)


@pytest.mark.parametrize("os_name", ["linux", "vista"])
def test_portable_mix_reproduces_section_41_taxonomy(os_name):
    # One app per paper pattern; each must classify as its intended
    # class on *both* backends — the arm verbs lower to mod_timer or
    # KeSetTimer but the observable behaviour is the same.
    run = PORTABLE_MIX.run(os_name, 60_000_000_000, seed=0)
    by_site = {c.history.site[0]: c.timer_class.name
               for c in classify_trace(run.trace)}
    assert by_site == {
        "app!heartbeat": "PERIODIC",
        "app!io_guard": "WATCHDOG",
        "app!poll_delay": "DELAY",
        "app!rpc_timeout": "TIMEOUT",
    }


def test_portable_mix_sites_name_the_app_timer():
    run = PORTABLE_MIX.run("linux", 10_000_000_000, seed=0)
    lower = {c.history.site[2] for c in classify_trace(run.trace)}
    assert lower == {"__mod_timer"}
    run = PORTABLE_MIX.run("vista", 10_000_000_000, seed=0)
    lower = {c.history.site[2] for c in classify_trace(run.trace)}
    assert lower == {"nt!KeSetTimer"}


def test_portable_registry_entry_matches_direct_run():
    via_registry = run_workload("linux", "portable", DURATION_NS, seed=0)
    direct = PORTABLE_MIX.run("linux", DURATION_NS, seed=0)
    assert binfmt.dumps(via_registry.trace) == binfmt.dumps(direct.trace)


def test_run_portable_rejects_unknown_names():
    assert set(PORTABLE_WORKLOADS) == {"idle", "webserver", "serverfarm",
                                       "portable"}
    with pytest.raises(KeyError, match="idle"):
        run_portable("nope", "linux")
    for os_name in backend_names():
        run = run_portable("portable", os_name,
                           duration_ns=5_000_000_000)
        assert run.trace.os_name == os_name
