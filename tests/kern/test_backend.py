"""The pluggable backend layer: registry, protocol, generic Machine."""

import pytest

from repro.kern import (BackendTraits, Machine, TimerBackend, WorkloadRun,
                        backend_names, backend_traits, get_backend,
                        register_backend, unregister_backend)
from repro.kern.base import BackendBase
from repro.linuxkern.kernel import LinuxKernel
from repro.vistakern.coalescing import TickSkippingVistaKernel
from repro.vistakern.ktimer import VistaKernel
from repro.workloads import list_workloads, run_workload


def test_builtin_backends_registered_in_order():
    assert backend_names() == ("linux", "vista")


def test_get_backend_unknown_lists_registered():
    with pytest.raises(KeyError, match="linux"):
        get_backend("beos")


def test_kernels_satisfy_protocol():
    assert isinstance(LinuxKernel(seed=0), TimerBackend)
    assert isinstance(VistaKernel(seed=0), TimerBackend)
    assert isinstance(TickSkippingVistaKernel(seed=0), TimerBackend)


def test_traits_differ_per_backend():
    linux = backend_traits("linux")
    vista = backend_traits("vista")
    assert linux.jiffy_values and not vista.jiffy_values
    assert vista.logical_timers and not linux.logical_timers
    assert vista.etw_style and not linux.etw_style
    assert linux.table_label == "Table 1"
    assert vista.table_label == "Table 2"


def test_traits_fall_back_to_defaults_for_unregistered():
    traits = BackendTraits.defaults_for("hurd")
    assert not traits.jiffy_values
    assert "hurd" in traits.table_label


def test_machine_grows_backend_surfaces():
    linux = Machine("linux", seed=1)
    assert hasattr(linux, "syscalls")
    vista = Machine("vista", seed=1)
    for surface in ("waits", "ntapi", "waitable", "winsock"):
        assert hasattr(vista, surface)


def test_machine_unknown_backend():
    with pytest.raises(KeyError, match="vista"):
        Machine("plan9")


def test_attach_sink_defined_once_on_base():
    # Satellite 3: the sink-attachment (TeeSink dedupe) logic lives on
    # BackendBase only; concrete kernels inherit it via the protocol
    # surface instead of re-implementing it.
    assert "attach_sink" not in LinuxKernel.__dict__
    assert "attach_sink" not in VistaKernel.__dict__
    assert "attach_sink" not in TickSkippingVistaKernel.__dict__
    assert VistaKernel.attach_sink is BackendBase.attach_sink


def test_attach_sink_tees_and_dedupes():
    events = []

    class Probe:
        def emit(self, event):
            events.append(event)

    kernel = TickSkippingVistaKernel(seed=3)
    kernel.attach_sink(Probe())
    kernel.attach_sink(Probe())  # second attach joins the same tee
    task = kernel.tasks.spawn("probe-app")
    timer = kernel.portable_timer(task, name="tick")
    timer.arm_periodic(500_000_000, lambda: None)
    kernel.run_for(2_000_000_000)
    assert events
    assert len(events) % 2 == 0  # both probes saw every event


def test_workload_run_kernel_and_components():
    # Satellite 1: every workload populates run.kernel (protocol-typed)
    # and a non-empty components dict.
    for os_name in backend_names():
        for name in list_workloads(os_name):
            duration = None if name == "desktop" else 2_000_000_000
            run = run_workload(os_name, name, duration, seed=0)
            assert isinstance(run, WorkloadRun)
            assert isinstance(run.kernel, TimerBackend), (os_name, name)
            assert run.components, (os_name, name)
            snapshot = run.power_snapshot()
            assert snapshot["wakeups"] > 0


def test_list_workloads_per_backend():
    assert "desktop" not in list_workloads("linux")
    assert "desktop" in list_workloads("vista")
    for os_name in backend_names():
        assert {"idle", "skype", "firefox", "webserver",
                "portable"} <= set(list_workloads(os_name))


def test_list_workloads_unknown_backend():
    with pytest.raises(KeyError, match="linux"):
        list_workloads("beos")


def test_run_workload_error_names_backend_specific_choices():
    with pytest.raises(KeyError) as excinfo:
        run_workload("linux", "desktop")
    message = str(excinfo.value)
    assert "desktop" in message and "idle" in message
    # desktop is only absent from the *linux* choices listed...
    assert "linux" in message
    # ...and it does exist for vista.
    assert run_workload("vista", "desktop", 1_000_000_000).trace.workload \
        == "desktop"


def test_register_and_unregister_toy_backend():
    register_backend("toy", kernel_factory=LinuxKernel,
                     buffer_factory=list)
    try:
        assert "toy" in backend_names()
        assert backend_traits("toy").table_label == "Summary: toy"
        with pytest.raises(ValueError, match="toy"):
            register_backend("toy", kernel_factory=LinuxKernel,
                             buffer_factory=list)
    finally:
        unregister_backend("toy")
    assert "toy" not in backend_names()
