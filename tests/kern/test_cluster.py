"""Cluster-layer tests: multi-host machines on one engine, host/CPU
stamping, deterministic merge, per-host analysis, and the single-host
byte-identity invariant."""

import pytest

from repro.kern import Cluster, Machine
from repro.sim.clock import SECOND
from repro.tracing import trace_to_bytes
from repro.tracing.relay import HostStampSink
from repro.workloads import run_cluster_workload, run_workload

DURATION_NS = 2 * SECOND
SEED = 20080430


def small_cluster(backends="linux", **kwargs):
    kwargs.setdefault("seed", SEED)
    cluster = Cluster(backends, **kwargs)
    cluster.scene("serverfarm", connections=40)
    return cluster.finish("serverfarm", DURATION_NS)


# -- construction ----------------------------------------------------------

def test_cluster_validates_hosts():
    with pytest.raises(ValueError):
        Cluster("linux", hosts=0)
    with pytest.raises(ValueError):
        Cluster("linux", hosts=256)
    with pytest.raises(ValueError):
        Cluster(["linux", "vista"], hosts=3)


def test_machines_share_engine_and_number_from_one():
    cluster = Cluster("linux", hosts=3)
    assert [m.host_id for m in cluster.machines] == [1, 2, 3]
    engines = {id(m.kernel.engine) for m in cluster.machines}
    assert engines == {id(cluster.engine)}


def test_machine_validates_identity():
    with pytest.raises(ValueError):
        Machine("linux", host_id=-1)
    with pytest.raises(ValueError):
        Machine("linux", host_id=256)
    with pytest.raises(ValueError):
        Machine("linux", cpus=0)


# -- host/cpu stamping -----------------------------------------------------

def test_events_carry_host_identity():
    run = small_cluster(hosts=2, cpus=2)
    hosts = {event.host for event in run.trace.events}
    assert hosts == {1, 2}
    cpus = {event.cpu for event in run.trace.events}
    assert cpus <= {0, 1} and len(cpus) > 1
    assert run.hosts == 2


def test_host_stamp_sink_rejects_standalone_host():
    with pytest.raises(ValueError):
        HostStampSink([], 0, 1)


def test_host_stamp_sink_spreads_slab_aligned_ids():
    """Timer ids stride by 0x40 (slab-like addresses); the cpu hash
    must shift those alignment bits out or everything lands on CPU 0."""
    events = []

    class Raw:
        def emit(self, event):
            events.append(event)

    sink = HostStampSink(Raw(), 7, 4)
    from repro.tracing import EventKind, TimerEvent
    for i in range(8):
        sink.emit(TimerEvent(EventKind.SET, i, 0x1000 + i * 0x40, 1,
                             "c", "user", ("f",), 1, 2))
    assert {event.host for event in events} == {7}
    assert sorted({event.cpu for event in events}) == [0, 1, 2, 3]


# -- merge determinism and per-host views ----------------------------------

def test_merge_is_deterministic_and_time_ordered():
    a = small_cluster(hosts=2, cpus=2)
    b = small_cluster(hosts=2, cpus=2)
    assert trace_to_bytes(a.trace) == trace_to_bytes(b.trace)
    ts = [event.ts for event in a.trace.events]
    assert ts == sorted(ts)


def test_host_runs_partition_the_merged_trace():
    run = small_cluster(hosts=2)
    assert len(run.runs) == 2
    per_host = {h: [e for e in run.trace.events if e.host == h]
                for h in (1, 2)}
    for host in (1, 2):
        sub = run.host_run(host)
        assert [tuple(e) for e in sub.trace.events] == \
            [tuple(e) for e in per_host[host]]
        assert sub.trace.duration_ns == DURATION_NS
    with pytest.raises(IndexError):
        run.host_run(3)
    with pytest.raises(IndexError):
        run.host_run(0)


def test_mixed_backends():
    run = small_cluster(["linux", "vista"])
    assert run.host_run(1).trace.os_name == "linux"
    assert run.host_run(2).trace.os_name == "vista"
    assert {event.host for event in run.trace.events} == {1, 2}


def test_cluster_metrics_labelled_per_host():
    run = small_cluster(hosts=2)
    text = run.metrics().render()
    assert 'host="1"' in text and 'host="2"' in text


# -- workload driver -------------------------------------------------------

def test_run_cluster_workload_is_deterministic():
    run = run_cluster_workload("linux", "serverfarm", DURATION_NS,
                               hosts=2, cpus=2, seed=SEED)
    again = run_cluster_workload("linux", "serverfarm", DURATION_NS,
                                 hosts=2, cpus=2, seed=SEED)
    assert trace_to_bytes(run.trace) == trace_to_bytes(again.trace)
    assert {event.host for event in run.trace.events} == {1, 2}


def test_run_cluster_workload_rejects_non_scene_workloads():
    with pytest.raises(KeyError, match="no cluster form"):
        run_cluster_workload("linux", "skype", DURATION_NS,
                             hosts=2, seed=SEED)


def test_trace_job_six_tuple_single_host_matches_plain_run():
    """The --hosts 1 --cpus 1 invariant at the driver level: a 6-tuple
    job degenerates to exactly the plain single-machine run."""
    from repro.workloads.base import _run_one
    plain = run_workload("linux", "webserver", DURATION_NS, seed=SEED)
    trace, _sinks, _snap = _run_one(("linux", "webserver", DURATION_NS,
                                     SEED, 1, 1), None, True, False)
    assert trace_to_bytes(trace) == trace_to_bytes(plain.trace)


def test_trace_job_six_tuple_multi_host_routes_to_cluster():
    from repro.workloads.base import _run_one
    trace, _sinks, _snap = _run_one(("linux", "serverfarm", DURATION_NS,
                                     SEED, 2, 2), None, True, False)
    assert {event.host for event in trace.events} == {1, 2}


# -- analysis integration --------------------------------------------------

def test_host_rollup_in_cluster_report():
    from repro.core.report import host_rollup, render_analysis
    run = small_cluster(hosts=2)
    report = render_analysis(run.trace)
    assert "Per-host rollup" in report
    rollup = host_rollup(run.trace)
    assert "host 1" in rollup and "host 2" in rollup


def test_no_rollup_for_single_host_traces():
    from repro.core.report import host_rollup, render_analysis
    run = run_workload("linux", "webserver", DURATION_NS, seed=SEED)
    assert host_rollup(run.trace) == ""
    assert "Per-host rollup" not in render_analysis(run.trace)


def test_sharded_analysis_matches_serial_on_cluster_trace():
    from repro.core.report import render_analysis
    from repro.core.shard import sharded_analysis
    run = small_cluster(hosts=2, cpus=2)
    serial = render_analysis(run.trace)
    assert sharded_analysis(run.trace, jobs=2) == serial
