"""OpenTSDB put-line rendering, parsing, and the writer sinks."""

import io

import pytest

from repro.obs import MetricsRegistry
from repro.obs.metrics import MetricsSnapshot, Sample
from repro.serve import OpenTsdbWriter, parse_line, snapshot_lines


def _snapshot():
    registry = MetricsRegistry()
    registry.counter("events_total", labels=("os",)).inc(3, os="linux")
    registry.gauge("depth").set(2.5)
    hist = registry.histogram("lat", buckets=(10,))
    hist.observe(4)
    hist.observe(400)
    return registry.snapshot()


class TestLineFormat:
    def test_scalar_lines(self):
        lines = snapshot_lines(_snapshot(), ts=1700000000)
        assert "put events_total 1700000000 3 os=linux" in lines
        assert "put depth 1700000000 2.5" in lines

    def test_histogram_expands_to_buckets_sum_count(self):
        lines = snapshot_lines(_snapshot(), ts=10)
        assert "put lat.bucket 10 1 le=10" in lines
        assert "put lat.bucket 10 2 le=inf" in lines
        assert "put lat.sum 10 404" in lines
        assert "put lat.count 10 2" in lines

    def test_nonfinite_values_skipped(self):
        snap = MetricsSnapshot([
            Sample("bad", "gauge", "", (), float("nan")),
            Sample("good", "gauge", "", (), 1.0),
        ])
        lines = snapshot_lines(snap, ts=5)
        assert lines == ["put good 5 1"]

    def test_tag_values_sanitised(self):
        snap = MetricsSnapshot([
            Sample("m", "gauge", "", (("tag", "a b=c"),), 1),
        ])
        [line] = snapshot_lines(snap, ts=5)
        assert line == "put m 5 1 tag=a_b_c"


class TestParseLine:
    def test_round_trip(self):
        for line in snapshot_lines(_snapshot(), ts=1700000000):
            metric, ts, value, tags = parse_line(line)
            assert ts == 1700000000
            assert metric
            assert isinstance(value, float)
            assert all("=" not in v for v in tags.values())

    def test_rejects_non_put(self):
        with pytest.raises(ValueError):
            parse_line("get foo 1 2")

    def test_rejects_short_line(self):
        with pytest.raises(ValueError):
            parse_line("put foo 1")

    def test_rejects_malformed_tag(self):
        with pytest.raises(ValueError):
            parse_line("put foo 1 2 notatag")


class TestWriter:
    def test_stream_target(self):
        sink = io.StringIO()
        writer = OpenTsdbWriter(sink)
        written = writer.write_snapshot(_snapshot(), ts=7)
        text = sink.getvalue()
        assert written == len(text.splitlines()) == writer.lines_written
        assert text.endswith("\n")
        for line in text.splitlines():
            parse_line(line)

    def test_empty_snapshot_writes_nothing(self):
        sink = io.StringIO()
        writer = OpenTsdbWriter(sink)
        assert writer.write_snapshot(MetricsSnapshot(()), ts=7) == 0
        assert sink.getvalue() == ""

    def test_bad_target_rejected(self):
        with pytest.raises(ValueError):
            OpenTsdbWriter("not-a-host-port")

    def test_tcp_failure_counts_error_not_raises(self):
        # Port 1 on localhost: connection refused -> counted, dropped.
        writer = OpenTsdbWriter("127.0.0.1:1")
        assert writer.write_snapshot(_snapshot(), ts=7) == 0
        assert writer.errors == 1
        assert writer.lines_written == 0
        writer.close()
