"""End-to-end daemon tests: live HTTP surface, monotonic counters,
collector quarantine without daemon death, CLI entry point."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.serve import (Collector, ServeConfig, ServeDaemon,
                         parse_line)

#: A fast daemon: 50 virtual seconds per wall second, 20ms ticks,
#: 50ms collection intervals — whole tests finish in ~1s.
FAST = dict(speed=50.0, tick_s=0.02, interval_s=0.05, port=0)


def _get(port, path, timeout=2.0):
    url = f"http://127.0.0.1:{port}{path}"
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.headers, resp.read().decode()


def _wait_until(predicate, timeout=5.0, tick=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        result = predicate()
        if result:
            return result
        time.sleep(tick)
    raise AssertionError("condition not met within timeout")


def _scrape_values(text):
    """name{labels} -> float for every exposition line."""
    values = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        try:
            values[series] = float(value)
        except ValueError:
            pass
    return values


class _Daemon:
    """Context manager: daemon loop on a thread, cleaned up on exit."""

    def __init__(self, **overrides):
        config = dict(FAST)
        config.update(overrides)
        self.daemon = ServeDaemon(ServeConfig(**config))

    def __enter__(self):
        self.daemon.start()
        self.thread = threading.Thread(target=self.daemon.run,
                                       daemon=True)
        self.thread.start()
        _wait_until(lambda: self.daemon.cycles > 0)
        return self.daemon

    def __exit__(self, *exc):
        self.daemon.stop()
        self.thread.join(timeout=5.0)
        self.daemon.close()
        assert not self.thread.is_alive()


class TestClusterMode:
    def test_cluster_daemon_serves_per_host_series(self):
        with _Daemon(hosts=2, cpus=2) as daemon:
            assert daemon.cluster is not None
            assert len(daemon.cluster.machines) == 2
            port = daemon.port
            text = _wait_until(lambda: (
                lambda t: t if "repro_cluster_host_records_total" in t
                else None)(_get(port, "/metrics")[2]))
            values = _scrape_values(text)
            assert [v for s, v in values.items()
                    if s.startswith("repro_cluster_hosts")] == [2.0]
            assert [v for s, v in values.items()
                    if s.startswith("repro_cluster_cpus")] == [2.0]
            assert 'host="1"' in text and 'host="2"' in text
            status = json.loads(_get(port, "/statusz")[2])
            assert status["hosts"] == 2
            assert status["cpus"] == 2

    def test_single_host_daemon_has_no_cluster_series(self):
        with _Daemon() as daemon:
            assert daemon.cluster is None
            text = _get(daemon.port, "/metrics")[2]
            assert "repro_cluster_host" not in text
            status = json.loads(_get(daemon.port, "/statusz")[2])
            assert status["hosts"] == 1


class TestHttpSurface:
    def test_healthz_metrics_statusz(self):
        with _Daemon() as daemon:
            status, headers, body = _get(daemon.port, "/healthz")
            assert status == 200
            health = json.loads(body)
            assert health["status"] == "ok"
            assert health["cycles"] >= 1

            status, headers, body = _get(daemon.port, "/metrics")
            assert status == 200
            assert headers["Content-Type"].startswith("text/plain")
            assert body.endswith("\n")
            assert "repro_engine_events_dispatched_total" in body
            assert "repro_daemon_uptime_seconds" in body

            status, _, body = _get(daemon.port, "/metrics.json")
            doc = json.loads(body)
            assert any(s["name"] == "repro_daemon_ticks_total"
                       for s in doc["samples"])

            status, _, body = _get(daemon.port, "/statusz")
            doc = json.loads(body)
            assert doc["backend"] == "linux"
            assert doc["running"] is True
            assert doc["virtual_seconds"] > 0
            assert "slip_seconds" in doc
            assert set(doc["collectors"]) >= {"engine", "power",
                                              "streaming", "daemon",
                                              "wheel", "relay"}
            for state in doc["collectors"].values():
                assert state["staleness_s"] is not None
            assert not doc["streaming"]["finished"]

    def test_unknown_path_404(self):
        with _Daemon() as daemon:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(daemon.port, "/nope")
            assert err.value.code == 404

    def test_counters_increase_monotonically_between_scrapes(self):
        with _Daemon() as daemon:
            key = ("repro_engine_events_dispatched_total"
                   '{os="linux",workload="portable"}')
            first = _scrape_values(_get(daemon.port, "/metrics")[2])
            assert key in first

            def advanced():
                values = _scrape_values(
                    _get(daemon.port, "/metrics")[2])
                return values if values[key] > first[key] else None
            second = _wait_until(advanced)
            # Every counter is cumulative: none may move backwards.
            for series, value in first.items():
                if "_total" in series and ":rate" not in series:
                    assert second[series] >= value, series
            # And rate gauges appear once two cycles have happened.
            assert any(":rate" in series for series in second)

    def test_vista_backend_serves_etw_series(self):
        with _Daemon(os_name="vista") as daemon:
            body = _get(daemon.port, "/metrics")[2]
            assert 'provider="Repro-Timer-Provider"' in body
            assert "repro_ring_pending" in body


class TestQuarantine:
    def test_killed_collector_quarantined_daemon_survives(self):
        def explode(registry, labels):
            raise RuntimeError("collector exploded")

        chaos = Collector("chaos", explode, interval_s=0.05)
        with _Daemon(extra_collectors=(chaos,)) as daemon:
            def quarantined():
                doc = json.loads(_get(daemon.port, "/statusz")[2])
                state = doc["collectors"]["chaos"]
                return doc if state["quarantined"] else None
            doc = _wait_until(quarantined)
            state = doc["collectors"]["chaos"]
            assert state["last_error"] == \
                "RuntimeError: collector exploded"
            assert state["errors"] >= 1
            # The daemon keeps running and collecting around it.
            assert doc["running"] is True
            cycles = daemon.cycles
            _wait_until(lambda: daemon.cycles > cycles)
            health = json.loads(_get(daemon.port, "/healthz")[2])
            assert health["status"] == "ok"
            assert health["collectors_quarantined"] >= 1


class TestLifecycle:
    def test_duration_stops_the_loop_and_finishes_suite(self):
        daemon = ServeDaemon(ServeConfig(duration_s=0.2, **FAST))
        daemon.start()
        try:
            daemon.run()                 # blocking, returns by itself
            assert not daemon.running
            assert daemon.suite.finished
            assert daemon.virtual_ns > 0
            assert daemon.ticks >= 1
        finally:
            daemon.close()

    def test_opentsdb_stream_gets_parseable_lines(self):
        import io
        sink = io.StringIO()
        config = ServeConfig(duration_s=0.3, opentsdb=sink,
                             opentsdb_interval_s=0.05, **FAST)
        daemon = ServeDaemon(config)
        daemon.start()
        try:
            daemon.run()
        finally:
            daemon.close()
        lines = sink.getvalue().splitlines()
        assert len(lines) > 10
        metrics = set()
        for line in lines:
            metric, _, _, tags = parse_line(line)
            metrics.add(metric)
            assert tags.get("os") == "linux"
        assert "repro_engine_events_dispatched_total" in metrics
        assert daemon.writer.lines_written == len(lines)


class TestServeCli:
    def test_serve_for_seconds_with_opentsdb(self, capsys):
        assert main(["serve", "--port", "0", "--speed", "50",
                     "--tick-ms", "20", "--interval", "0.05",
                     "--for-seconds", "0.5", "--opentsdb", "-"]) == 0
        captured = capsys.readouterr()
        put_lines = [line for line in captured.out.splitlines()
                     if line.startswith("put ")]
        assert put_lines
        for line in put_lines:
            parse_line(line)
        assert "serving linux/portable telemetry" in captured.err

    def test_serve_rejects_unknown_backend(self, capsys):
        assert main(["serve", "--backend", "beos"]) == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_serve_rejects_unknown_workload(self, capsys):
        assert main(["serve", "--workload", "compile"]) == 2
        assert "workload" in capsys.readouterr().err
