"""Scheduler: intervals, quarantine with backoff, recovery, status."""

import pytest

from repro.obs import MetricsRegistry
from repro.serve import Collector, CollectorScheduler


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class Flaky:
    """Collector body that fails while ``broken`` is set."""

    def __init__(self):
        self.broken = False
        self.calls = 0

    def __call__(self, registry, labels):
        self.calls += 1
        if self.broken:
            raise RuntimeError("collector exploded")
        registry.counter("ok_total", labels=tuple(labels)) \
            .inc(1, **labels)


@pytest.fixture
def clock():
    return FakeClock()


def make_scheduler(clock, *collectors, **kwargs):
    kwargs.setdefault("default_interval_s", 1.0)
    kwargs.setdefault("base_backoff_s", 2.0)
    kwargs.setdefault("max_backoff_s", 60.0)
    return CollectorScheduler(collectors, MetricsRegistry(),
                              {"os": "linux"}, clock=clock, **kwargs)


class TestIntervals:
    def test_not_rerun_before_interval(self, clock):
        body = Flaky()
        sched = make_scheduler(clock, Collector("a", body))
        assert sched.run_due() == 1
        clock.advance(0.5)
        assert sched.run_due() == 0
        clock.advance(0.5)
        assert sched.run_due() == 1
        assert body.calls == 2

    def test_per_collector_interval_overrides_default(self, clock):
        fast, slow = Flaky(), Flaky()
        sched = make_scheduler(clock,
                               Collector("fast", fast, interval_s=0.25),
                               Collector("slow", slow, interval_s=2.0))
        for _ in range(8):
            sched.run_due()
            clock.advance(0.25)
        assert fast.calls == 8
        assert slow.calls == 1


class TestQuarantine:
    def test_failure_quarantines_only_that_collector(self, clock):
        good, bad = Flaky(), Flaky()
        bad.broken = True
        sched = make_scheduler(clock, Collector("good", good),
                               Collector("bad", bad))
        sched.run_due()
        assert sched.total_errors == 1
        assert not sched.healthy()
        clock.advance(1.0)          # bad still inside 2s backoff
        sched.run_due()
        assert good.calls == 2
        assert bad.calls == 1
        status = sched.status()
        assert status["bad"]["quarantined"]
        assert status["bad"]["last_error"] == \
            "RuntimeError: collector exploded"
        assert status["bad"]["quarantined_for_s"] == pytest.approx(1.0)
        assert not status["good"]["quarantined"]

    def test_backoff_doubles_and_caps(self, clock):
        bad = Flaky()
        bad.broken = True
        sched = make_scheduler(clock, Collector("bad", bad),
                               base_backoff_s=2.0, max_backoff_s=5.0)
        state = sched.states["bad"]
        expected_backoffs = [2.0, 4.0, 5.0, 5.0]
        for backoff in expected_backoffs:
            start = clock.now
            sched.run_due()
            assert state.quarantined_until == \
                pytest.approx(start + backoff)
            clock.advance(backoff)  # quarantine just expired, due again
        assert bad.calls == len(expected_backoffs)

    def test_success_clears_quarantine_and_error(self, clock):
        body = Flaky()
        body.broken = True
        sched = make_scheduler(clock, Collector("c", body))
        sched.run_due()
        body.broken = False
        clock.advance(2.0)
        sched.run_due()
        status = sched.status()["c"]
        assert status["consecutive_errors"] == 0
        assert status["last_error"] is None
        assert not status["quarantined"]
        assert status["errors"] == 1        # history is kept
        assert sched.healthy()


class TestStatus:
    def test_status_shape(self, clock):
        sched = make_scheduler(clock,
                               Collector("c", Flaky(), interval_s=0.5))
        sched.run_due()
        clock.advance(0.3)
        status = sched.status()["c"]
        assert status["interval_s"] == 0.5
        assert status["runs"] == 1
        assert status["staleness_s"] == pytest.approx(0.3)
        assert status["last_duration_ms"] >= 0.0

    def test_never_run_collector_has_no_staleness(self, clock):
        sched = make_scheduler(clock, Collector("c", Flaky(),
                                                interval_s=10.0))
        assert sched.status()["c"]["staleness_s"] is None
