"""Collector assembly: trait resolution, factories, sink/ETW naming."""

import pytest

from repro.kern import backend_traits
from repro.obs import MetricsRegistry
from repro.serve import (COLLECTOR_FACTORIES, ServeConfig, ServeDaemon,
                         build_collectors, collector_factory,
                         register_collector_factory)


@pytest.fixture
def linux_daemon():
    daemon = ServeDaemon(ServeConfig(os_name="linux"))
    yield daemon
    daemon.close()


@pytest.fixture
def vista_daemon():
    daemon = ServeDaemon(ServeConfig(os_name="vista"))
    yield daemon
    daemon.close()


class TestTraits:
    def test_backends_declare_their_collectors(self):
        assert backend_traits("linux").collectors() == ("wheel",)
        assert backend_traits("vista").collectors() == ("ktimer",)


class TestBuildCollectors:
    def test_linux_set(self, linux_daemon):
        names = [c.name for c in linux_daemon.scheduler.collectors]
        assert {"engine", "power", "streaming", "daemon",
                "wheel"} <= set(names)
        assert "relay" in names          # the relayfs buffer sink
        assert "ktimer" not in names

    def test_vista_set(self, vista_daemon):
        names = [c.name for c in vista_daemon.scheduler.collectors]
        assert "ktimer" in names
        assert "wheel" not in names
        # The ETW session resolves through the provider manifest, so
        # the collector is named after the provider, not the GUID.
        assert "etw:Repro-Timer-Provider" in names

    def test_unknown_name_raises(self, linux_daemon):
        with pytest.raises(KeyError, match="no-such-collector"):
            build_collectors(linux_daemon,
                             extra_names=("no-such-collector",))

    def test_collectors_fill_registry(self, linux_daemon):
        linux_daemon.kernel.run_for(int(2e9))
        assert linux_daemon.scheduler.run_due() >= 5
        rendered = linux_daemon.registry.render()
        for metric in ("repro_engine_events_dispatched_total",
                       "repro_power_wakeups_total",
                       "repro_wheel_pending",
                       "repro_streaming_events_total",
                       "repro_daemon_virtual_seconds",
                       "repro_sink_records_total"):
            assert metric in rendered, metric

    def test_vista_etw_series_labelled_with_provider(self, vista_daemon):
        vista_daemon.kernel.run_for(int(2e9))
        vista_daemon.scheduler.run_due()
        rendered = vista_daemon.registry.render()
        assert 'provider="Repro-Timer-Provider"' in rendered
        assert "repro_ring_pending" in rendered


class TestFactoryRegistry:
    def test_register_and_resolve_custom_factory(self, linux_daemon):
        @collector_factory("test-custom")
        def _build(daemon):
            from repro.serve import Collector

            def collect(registry: MetricsRegistry, labels: dict):
                registry.gauge("custom_metric").set(1)
            return Collector("test-custom", collect)

        try:
            collectors = build_collectors(linux_daemon,
                                          extra_names=("test-custom",))
            assert "test-custom" in [c.name for c in collectors]
        finally:
            COLLECTOR_FACTORIES.pop("test-custom", None)

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError):
            register_collector_factory("engine", lambda daemon: None)

    def test_factory_returning_none_is_skipped(self, linux_daemon):
        @collector_factory("test-none")
        def _build(daemon):
            return None

        try:
            collectors = build_collectors(linux_daemon,
                                          extra_names=("test-none",))
            assert "test-none" not in [c.name for c in collectors]
        finally:
            COLLECTOR_FACTORIES.pop("test-none", None)
