"""Provider-manifest registry (GUID -> readable provider facts)."""

import pytest

from repro.serve import (ProviderManifest, provider_for, provider_label,
                         provider_names, register_provider,
                         unregister_provider)
from repro.tracing.etw import TIMER_PROVIDER_GUID, EtwSession

GUID = "{12345678-abcd-ef01-2345-6789abcdef01}"


@pytest.fixture
def manifest():
    m = register_provider({"guid": GUID, "name": "Test-Provider",
                           "keywords": ("timer",),
                           "events": ("SetTimer",)})
    yield m
    unregister_provider(GUID)


class TestRegistry:
    def test_builtin_provider_registered_at_import(self):
        builtin = provider_for(TIMER_PROVIDER_GUID)
        assert builtin is not None
        assert builtin.name == "Repro-Timer-Provider"
        assert "Repro-Timer-Provider" in provider_names()
        assert set(EtwSession.provider_manifest()["events"]) >= \
            {"KeSetTimer", "ExpireDpc"}

    def test_lookup_normalises_braces_and_case(self, manifest):
        bare = GUID.strip("{}").upper()
        assert provider_for(bare) is manifest
        assert provider_label(bare) == "Test-Provider"

    def test_dict_registration_builds_manifest(self, manifest):
        assert isinstance(manifest, ProviderManifest)
        assert manifest.keywords == ("timer",)
        assert manifest.key == GUID.strip("{}")

    def test_duplicate_rejected_unless_replace(self, manifest):
        with pytest.raises(ValueError):
            register_provider({"guid": GUID, "name": "Other"})
        replaced = register_provider({"guid": GUID, "name": "Other"},
                                     replace=True)
        assert provider_for(GUID) is replaced

    def test_unknown_guid_labels_as_normalised_guid(self):
        assert provider_label("{DEAD0000-0000-0000-0000-000000000000}") \
            == "dead0000-0000-0000-0000-000000000000"

    def test_unregister_is_idempotent(self):
        unregister_provider(GUID)
        unregister_provider(GUID)
        assert provider_for(GUID) is None
