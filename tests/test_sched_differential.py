"""Heap-vs-wheel differential: every registered backend x portable
workload must produce byte-identical traces and equal metrics on both
engine schedulers.

This is the proof obligation for the timing-wheel scheduler: the wheel
reorders nothing.  Kernels build their engines internally, so the heap
runs are forced through :func:`repro.sim.use_scheduler`.
"""

import pytest

from repro.kern import backend_names
from repro.sim import use_scheduler
from repro.sim.clock import SECOND
from repro.tracing.binfmt import dumps
from repro.workloads.portable import PORTABLE_WORKLOADS, run_portable

DURATION_NS = 2 * SECOND
SEED = 20080430

MATRIX = [(os_name, workload) for os_name in backend_names()
          for workload in sorted(PORTABLE_WORKLOADS)]


@pytest.mark.parametrize("combo", MATRIX,
                         ids=lambda pair: f"{pair[0]}-{pair[1]}")
def test_wheel_matches_heap_trace_bytes(combo):
    os_name, workload = combo
    with use_scheduler("heap"):
        heap_run = run_portable(workload, os_name, DURATION_NS,
                                seed=SEED)
    with use_scheduler("wheel"):
        wheel_run = run_portable(workload, os_name, DURATION_NS,
                                 seed=SEED)
    assert dumps(heap_run.trace) == dumps(wheel_run.trace), \
        f"{os_name}/{workload}: schedulers diverged"
