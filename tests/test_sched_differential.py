"""Scheduler differential: every registered backend x portable
workload must produce byte-identical traces on every engine scheduler
— the reference heap, the timing wheel, and the per-CPU sharded wheel
at several shard counts.

This is the proof obligation for the scheduler layer: neither the
wheel nor the sharded k-way merge reorders anything.  Kernels build
their engines internally, so the alternative schedulers are forced
through :func:`repro.sim.use_scheduler`.
"""

import pytest

from repro.kern import backend_names
from repro.sim import use_scheduler
from repro.sim.clock import SECOND
from repro.tracing.formats import trace_to_bytes
from repro.workloads.portable import PORTABLE_WORKLOADS, run_portable

DURATION_NS = 2 * SECOND
SEED = 20080430

MATRIX = [(os_name, workload) for os_name in backend_names()
          for workload in sorted(PORTABLE_WORKLOADS)]

#: Heap-scheduler trace bytes per combo, computed once and compared
#: against every alternative scheduler.
_heap_bytes: dict = {}


def heap_reference(os_name, workload):
    key = (os_name, workload)
    if key not in _heap_bytes:
        with use_scheduler("heap"):
            run = run_portable(workload, os_name, DURATION_NS, seed=SEED)
        _heap_bytes[key] = trace_to_bytes(run.trace)
    return _heap_bytes[key]


@pytest.mark.parametrize("combo", MATRIX,
                         ids=lambda pair: f"{pair[0]}-{pair[1]}")
def test_wheel_matches_heap_trace_bytes(combo):
    os_name, workload = combo
    with use_scheduler("wheel"):
        wheel_run = run_portable(workload, os_name, DURATION_NS,
                                 seed=SEED)
    assert trace_to_bytes(wheel_run.trace) == \
        heap_reference(os_name, workload), \
        f"{os_name}/{workload}: wheel diverged from heap"


@pytest.mark.parametrize("cpus", [1, 2, 4])
@pytest.mark.parametrize("combo", MATRIX,
                         ids=lambda pair: f"{pair[0]}-{pair[1]}")
def test_sharded_wheel_matches_heap_trace_bytes(combo, cpus):
    """The cluster layer's invariant: per-CPU sharding is invisible in
    the trace bytes at any shard count."""
    os_name, workload = combo
    with use_scheduler(f"sharded:{cpus}"):
        sharded_run = run_portable(workload, os_name, DURATION_NS,
                                   seed=SEED)
    assert trace_to_bytes(sharded_run.trace) == \
        heap_reference(os_name, workload), \
        f"{os_name}/{workload}: sharded:{cpus} diverged from heap"
