#!/usr/bin/env python
"""Regenerate the cross-version golden trace fixtures.

Run from the repo root::

    PYTHONPATH=src:. python tests/data/make_fixtures.py

The fixture *bytes* are committed; the tests in
``tests/tracing/test_formats.py`` decode them with today's readers and
compare against the canonical event list (``golden_events``).  Only
regenerate when the on-disk format intentionally changes — that is the
point at which old readers must learn to negotiate the new layout.
"""

import os

from tests.study.test_sec51 import golden_sec51_result
from tests.tracing.test_formats import golden_cluster_trace, golden_trace

from repro.core.report import render_sec51
from repro.tracing import write_trace

HERE = os.path.dirname(os.path.abspath(__file__))


def main() -> None:
    trace = golden_trace()
    cluster = golden_cluster_trace()
    for source, name, filename in (
            (trace, "binfmt", "cross_v1.bin1"),
            (trace, "binfmt2", "cross_v2.bin2"),
            (cluster, "binfmt3", "cross_v3.bin3")):
        path = os.path.join(HERE, filename)
        write_trace(source, path, format=name)
        print(f"{filename}: {os.path.getsize(path)} bytes ({name})")

    table = os.path.join(HERE, "sec51_table.txt")
    with open(table, "w", encoding="utf-8") as fh:
        fh.write(render_sec51(golden_sec51_result()))
    print(f"sec51_table.txt: {os.path.getsize(table)} bytes")


if __name__ == "__main__":
    main()
