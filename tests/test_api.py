"""The public API surface stays importable and coherent."""

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__

    def test_headline_functions(self):
        run = repro.run_workload("linux", "idle", 5_000_000_000, seed=1)
        summary = repro.summarize(run.trace)
        assert summary.timers > 0
        assert repro.pattern_breakdown(run.trace).total > 0

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_all_exports_resolve(self):
        import repro.core, repro.linuxkern, repro.vistakern, \
            repro.tracing, repro.sim, repro.workloads, repro.userspace
        for module in (repro.core, repro.linuxkern, repro.vistakern,
                       repro.tracing, repro.sim, repro.workloads,
                       repro.userspace):
            for name in module.__all__:
                assert getattr(module, name) is not None, \
                    f"{module.__name__}.{name}"
