"""Trace-I/O and sharding tallies: plain counters at the source,
pull-collected into a registry, never perturbing I/O or extraction."""

import pytest

from repro.core.shard import SHARD_COUNTERS, sharded_analysis
from repro.obs import MetricsRegistry, collect_trace_io
from repro.sim.clock import SECOND
from repro.tracing import open_trace, trace_to_bytes, write_trace
from repro.tracing.formats import IO_COUNTERS
from repro.workloads import run_workload


@pytest.fixture(scope="module")
def trace():
    return run_workload("linux", "idle", 2 * SECOND, seed=3).trace


def _io_snapshot():
    return {fmt: dict(tallies) for fmt, tallies in IO_COUNTERS.items()}


class TestIoCounters:
    def test_write_and_open_tally_per_format(self, trace, tmp_path):
        before = _io_snapshot().get("binfmt2",
                                    {"loads": 0, "saves": 0,
                                     "bytes_read": 0,
                                     "bytes_written": 0})
        path = tmp_path / "t.bin"
        assert write_trace(trace, path) == "binfmt2"
        open_trace(path)
        after = IO_COUNTERS["binfmt2"]
        assert after["saves"] == before["saves"] + 1
        assert after["loads"] == before["loads"] + 1
        size = path.stat().st_size
        assert after["bytes_written"] == before["bytes_written"] + size
        assert after["bytes_read"] == before["bytes_read"] + size

    def test_bytes_roundtrip_counts_as_save(self, trace):
        before = _io_snapshot().get("jsonl", {}).get("saves", 0)
        data = trace_to_bytes(trace, format="jsonl")
        assert IO_COUNTERS["jsonl"]["saves"] == before + 1
        assert IO_COUNTERS["jsonl"]["bytes_written"] >= len(data)

    def test_counting_never_changes_loaded_trace(self, trace, tmp_path):
        path = tmp_path / "t.bin"
        write_trace(trace, path)
        loaded = open_trace(path)
        assert trace_to_bytes(loaded) == trace_to_bytes(trace)


class TestShardCounters:
    def test_sharded_analysis_bumps_tallies(self, trace):
        before = dict(SHARD_COUNTERS)
        sharded_analysis(trace, jobs=2, processes=1)
        assert SHARD_COUNTERS["analyses"] == before["analyses"] + 1
        assert SHARD_COUNTERS["shard_runs"] == before["shard_runs"] + 1
        assert SHARD_COUNTERS["shards"] == before["shards"] + 2


class TestCollectTraceIo:
    def test_registry_mirrors_the_plain_counters(self, trace, tmp_path):
        path = tmp_path / "t.bin"
        write_trace(trace, path)
        open_trace(path)
        registry = MetricsRegistry()
        collect_trace_io(registry)
        snap = registry.snapshot()
        tallies = IO_COUNTERS["binfmt2"]
        assert snap.get("repro_trace_loads_total",
                        format="binfmt2") == tallies["loads"]
        assert snap.get("repro_trace_saves_total",
                        format="binfmt2") == tallies["saves"]
        assert snap.get("repro_trace_bytes_read_total",
                        format="binfmt2") == tallies["bytes_read"]
        assert snap.get("repro_shard_analyses_total") \
            == SHARD_COUNTERS["analyses"]

    def test_labels_thread_through(self, trace, tmp_path):
        write_trace(trace, tmp_path / "t.bin")
        registry = MetricsRegistry()
        collect_trace_io(registry, labels={"host": "ci"})
        snap = registry.snapshot()
        assert snap.get("repro_trace_saves_total", host="ci",
                        format="binfmt2") \
            == IO_COUNTERS["binfmt2"]["saves"]
