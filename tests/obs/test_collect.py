"""Pull-collection over real runs: every instrumented layer shows up,
and collecting never perturbs the simulation."""

import pytest

from repro.obs import MetricsRegistry, collect_run
from repro.sim.clock import SECOND
from repro.tracing.binfmt import dumps
from repro.workloads.portable import run_portable


@pytest.fixture(scope="module")
def linux_run():
    return run_portable("portable", "linux", 3 * SECOND, seed=7)


@pytest.fixture(scope="module")
def vista_run():
    return run_portable("webserver", "vista", 3 * SECOND, seed=7)


class TestEngineMetrics:
    def test_counts_match_engine(self, linux_run):
        snap = linux_run.metrics()
        labels = {"os": "linux", "workload": "portable"}
        engine = linux_run.kernel.engine
        assert snap.get("repro_engine_events_dispatched_total",
                        **labels) == engine.dispatched
        assert snap.get("repro_engine_queue_depth", **labels) \
            == engine.pending_count()
        assert snap.get("repro_engine_queue_depth_peak", **labels) \
            == engine.peak_pending
        assert engine.peak_pending >= engine.pending_count()

    def test_wall_metrics_are_volatile(self, linux_run):
        snap = linux_run.metrics()
        stable_names = snap.stable().names()
        assert "repro_engine_wall_seconds" not in stable_names
        assert "repro_engine_virtual_wall_ratio" not in stable_names
        assert snap.get("repro_engine_wall_seconds", os="linux",
                        workload="portable") > 0


class TestPowerMetrics:
    def test_residency_sums_to_duration(self, linux_run):
        snap = linux_run.metrics()
        labels = {"os": "linux", "workload": "portable"}
        active = snap.get("repro_power_residency_seconds",
                          state="active", **labels)
        idle = snap.get("repro_power_residency_seconds",
                        state="idle", **labels)
        assert active + idle == pytest.approx(3.0)
        assert snap.get("repro_power_wakeups_total", **labels) \
            == linux_run.power.wakeups


class TestLinuxLayers:
    def test_wheel_occupancy_and_cascades(self, linux_run):
        snap = linux_run.metrics()
        labels = {"os": "linux", "workload": "portable", "cpu": "0"}
        wheel = linux_run.kernel.bases[0].wheel
        assert snap.get("repro_wheel_cascades_total", **labels) \
            == wheel.cascades
        occupancy = [snap.get("repro_wheel_occupancy",
                              level=f"tv{n}", **labels)
                     for n in range(1, 6)]
        assert occupancy == list(wheel.occupancy())
        assert sum(occupancy) == wheel.pending_count

    def test_relay_sink_accounting(self, linux_run):
        snap = linux_run.metrics()
        labels = {"os": "linux", "workload": "portable",
                  "sink": "relay"}
        emitted = snap.get("repro_sink_records_total", **labels)
        retained = snap.get("repro_sink_retained", **labels)
        dropped = snap.get("repro_sink_dropped_total", **labels)
        drained = snap.get("repro_sink_drained_total", **labels)
        assert emitted == retained + dropped + drained
        assert emitted == len(linux_run.trace)
        assert snap.get("repro_sink_high_water", **labels) >= retained

    def test_tick_device_counters(self, linux_run):
        snap = linux_run.metrics()
        labels = {"os": "linux", "workload": "portable",
                  "device": "tick0"}
        assert snap.get("repro_tick_interrupts_total", **labels) \
            == linux_run.kernel.ticks[0].ticks


class TestVistaLayers:
    def test_ring_and_clock_metrics(self, vista_run):
        snap = vista_run.metrics()
        labels = {"os": "vista", "workload": "webserver"}
        assert snap.get("repro_clock_period_ns", **labels) \
            == vista_run.kernel.clock_period_ns
        assert snap.get("repro_ring_lookaside_free", **labels) \
            == len(vista_run.kernel._lookaside)
        assert snap.get("repro_ring_pending", **labels) >= 0

    def test_coalescing_counters_present(self, vista_run):
        snap = vista_run.metrics()
        labels = {"os": "vista", "workload": "webserver"}
        hits = snap.get("repro_coalescing_hits_total", **labels)
        misses = snap.get("repro_coalescing_misses_total", **labels)
        assert hits == vista_run.kernel.coalescing_hits
        assert misses == vista_run.kernel.coalescing_misses

    def test_coalescing_counts_move(self):
        from repro.sim.clock import MILLISECOND
        from repro.vistakern.coalescing import set_coalescable_timer
        from repro.vistakern.ktimer import VistaKernel
        kernel = VistaKernel()
        task = kernel.tasks.spawn(comm="t")
        timer = kernel.alloc_ktimer(site=("a",), owner=task)
        set_coalescable_timer(kernel, timer, 107 * MILLISECOND,
                              100 * MILLISECOND)
        assert kernel.coalescing_hits == 1
        assert kernel.coalescing_shift_ns > 0
        timer2 = kernel.alloc_ktimer(site=("b",), owner=task)
        set_coalescable_timer(kernel, timer2, 5 * MILLISECOND, 0)
        assert kernel.coalescing_misses == 1


class TestStreamingMetrics:
    def test_suite_counters_collected(self):
        from repro.core.streaming import StreamingSuite
        suite = StreamingSuite("linux", "idle")
        run = run_portable("idle", "linux", 2 * SECOND, seed=1,
                           sinks=[suite], retain_events=False)
        suite.finish(run.trace.duration_ns)
        snap = run.metrics()
        labels = {"os": "linux", "workload": "idle"}
        assert snap.get("repro_streaming_events_total", **labels) \
            == suite.n_events
        assert snap.get("repro_streaming_episodes_total", **labels) \
            == suite.episodes_routed
        assert suite.episodes_routed > 0
        assert snap.get("repro_streaming_groups_total", **labels) \
            == suite.groups_routed
        assert snap.get("repro_streaming_late_waits_total",
                        **labels) == 0
        assert snap.get("repro_streaming_state_peak", **labels) \
            == suite.peak_state


class TestCollectionMechanics:
    def test_collection_does_not_perturb(self, linux_run):
        before = dumps(linux_run.trace)
        engine_dispatched = linux_run.kernel.engine.dispatched
        snap_a = linux_run.metrics()
        snap_b = linux_run.metrics()
        assert snap_a.identical(snap_b)       # repeatable, incl. wall
        assert dumps(linux_run.trace) == before
        assert linux_run.kernel.engine.dispatched == engine_dispatched

    def test_shared_registry_aggregates_runs(self, linux_run,
                                             vista_run):
        registry = MetricsRegistry()
        collect_run(linux_run, registry=registry)
        snap = collect_run(vista_run, registry=registry)
        oses = {dict(s.labels).get("os") for s in
                snap.filter("repro_engine_events_dispatched_total")}
        assert oses == {"linux", "vista"}

    def test_custom_labels(self, linux_run):
        snap = collect_run(linux_run, labels={"run": "a"})
        assert snap.get("repro_engine_events_dispatched_total",
                        run="a") > 0


class TestSchedulerMetrics:
    def test_wheel_sched_metrics_present(self, linux_run):
        snap = linux_run.metrics()
        sched = linux_run.kernel.engine.scheduler
        labels = {"os": "linux", "workload": "portable",
                  "scheduler": sched.kind}
        assert snap.get("repro_engine_sched_bucket_drains_total",
                        **labels) == sched.bucket_drains
        assert snap.get("repro_engine_sched_cascades_total",
                        **labels) == sched.cascades
        assert snap.get("repro_engine_sched_garbage",
                        **labels) == sched.garbage
        occupancy = sched.occupancy()
        for level, count in occupancy.items():
            assert snap.get("repro_engine_sched_occupancy",
                            level=level, **labels) == count

    def test_heap_scheduler_labelled(self):
        from repro.sim import use_scheduler

        with use_scheduler("heap"):
            run = run_portable("portable", "linux", SECOND, seed=3)
        sched = run.kernel.engine.scheduler
        assert sched.kind == "heap"
        snap = run.metrics()
        labels = {"os": "linux", "workload": "portable",
                  "scheduler": "heap"}
        assert snap.get("repro_engine_sched_occupancy", level="due",
                        **labels) == sched.queued()
