"""Exporter edge cases, JSON round-trip, and snapshot delta/rates."""

import json
import math

import pytest

from repro.obs import (MetricsRegistry, MetricsSnapshot, derive_rates,
                       render_prometheus, snapshot_delta)
from repro.obs.export import _number
from repro.obs.metrics import Sample


class TestNumberFormatting:
    """The Prometheus exposition spec spells non-finite values
    ``NaN`` / ``+Inf`` / ``-Inf`` exactly."""

    def test_positive_infinity(self):
        assert _number(float("inf")) == "+Inf"

    def test_negative_infinity(self):
        assert _number(float("-inf")) == "-Inf"

    def test_nan(self):
        assert _number(float("nan")) == "NaN"

    def test_integral_float_collapses(self):
        assert _number(3.0) == "3"

    def test_plain_float(self):
        assert _number(0.25) == "0.25"

    def test_nonfinite_gauge_renders(self):
        registry = MetricsRegistry()
        registry.gauge("slack").set(float("-inf"))
        assert "slack -Inf\n" in registry.render()


class TestLabelEscaping:
    @pytest.mark.parametrize("raw,escaped", [
        ('back\\slash', 'back\\\\slash'),
        ('quo"te', 'quo\\"te'),
        ('new\nline', 'new\\nline'),
    ])
    def test_escapes(self, raw, escaped):
        registry = MetricsRegistry()
        registry.counter("c", labels=("tag",)).inc(1, tag=raw)
        assert f'c{{tag="{escaped}"}} 1' in registry.render()


class TestExpositionShape:
    def test_histogram_inf_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(10, 100))
        hist.observe(5)
        hist.observe(5000)       # beyond the last finite bound
        text = registry.render()
        assert 'lat_bucket{le="10"} 1' in text
        assert 'lat_bucket{le="100"} 1' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_count 2" in text

    def test_empty_registry_still_ends_with_newline(self):
        assert render_prometheus(MetricsRegistry()) == "\n"
        assert render_prometheus(MetricsSnapshot(())) == "\n"

    def test_nonempty_ends_with_newline(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1)
        assert registry.render().endswith("\n")


def _rich_snapshot() -> MetricsSnapshot:
    registry = MetricsRegistry()
    registry.counter("events_total", "help text",
                     labels=("os",)).inc(7, os="linux")
    registry.gauge("depth", volatile=True).set(2.5)
    hist = registry.histogram("lat", buckets=(10, 100))
    hist.observe(5)
    hist.observe(5000)
    return registry.snapshot()


class TestJsonRoundTrip:
    def test_round_trip_identical(self):
        snap = _rich_snapshot()
        back = MetricsSnapshot.from_json(snap.to_json())
        assert back.identical(snap)
        assert back.render() == snap.render()

    def test_json_is_strict(self):
        # +Inf bucket bounds must not leak as bare Infinity tokens.
        doc = json.loads(_rich_snapshot().to_json())
        hist = [s for s in doc["samples"] if s["kind"] == "histogram"]
        assert hist[0]["value"]["buckets"][-1][0] == "+Inf"

    def test_nonfinite_scalar_round_trips(self):
        snap = MetricsSnapshot([
            Sample("g", "gauge", "", (), float("-inf")),
            Sample("n", "gauge", "", (), float("nan")),
        ])
        back = MetricsSnapshot.from_json(snap.to_json())
        assert back.samples[0].value == float("-inf")
        assert math.isnan(back.samples[1].value)

    def test_empty_snapshot(self):
        back = MetricsSnapshot.from_json(MetricsSnapshot(()).to_json())
        assert len(back) == 0


class TestSnapshotDelta:
    def _pair(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        gauge = registry.gauge("g")
        hist = registry.histogram("h", buckets=(10,))
        counter.inc(3)
        gauge.set(5)
        hist.observe(4)
        prev = registry.snapshot()
        counter.inc(2)
        gauge.set(1)
        hist.observe(40)
        return prev, registry.snapshot()

    def test_counter_differenced_gauge_passthrough(self):
        prev, curr = self._pair()
        delta = snapshot_delta(prev, curr)
        assert delta.get("c") == 2
        assert delta.get("g") == 1

    def test_histogram_differenced(self):
        prev, curr = self._pair()
        cumulative, total, count = snapshot_delta(prev, curr).get("h")
        assert count == 1
        assert total == 40
        assert cumulative[-1] == (float("inf"), 1)

    def test_counter_reset_clamps(self):
        prev = MetricsSnapshot([Sample("c", "counter", "", (), 100)])
        curr = MetricsSnapshot([Sample("c", "counter", "", (), 4)])
        assert snapshot_delta(prev, curr).get("c") == 4

    def test_new_series_keeps_value(self):
        prev = MetricsSnapshot(())
        curr = MetricsSnapshot([Sample("c", "counter", "", (), 9)])
        assert snapshot_delta(prev, curr).get("c") == 9


class TestDeriveRates:
    def test_rates_are_volatile_gauges(self):
        prev = MetricsSnapshot([Sample("c_total", "counter", "", (), 10)])
        curr = MetricsSnapshot([Sample("c_total", "counter", "", (), 30)])
        rates = derive_rates(prev, curr, 4.0)
        [sample] = rates.samples
        assert sample.name == "c_total:rate"
        assert sample.kind == "gauge"
        assert sample.volatile
        assert sample.value == 5.0

    def test_gauges_skipped(self):
        prev = MetricsSnapshot([Sample("g", "gauge", "", (), 1)])
        curr = MetricsSnapshot([Sample("g", "gauge", "", (), 9)])
        assert len(derive_rates(prev, curr, 1.0)) == 0

    def test_zero_interval_rejected(self):
        with pytest.raises(ValueError):
            derive_rates(MetricsSnapshot(()), MetricsSnapshot(()), 0)
