"""Unit tests for the metrics registry, instruments and snapshots."""

import pickle

import pytest

from repro.obs.metrics import (Counter, Gauge, Histogram,
                               MetricsRegistry, MetricsSnapshot,
                               NULL_REGISTRY, Sample)


class TestInstruments:
    def test_counter_inc_and_labels(self):
        counter = Counter("c_total", "help", ("cpu",))
        counter.inc(cpu=0)
        counter.inc(2, cpu=0)
        counter.inc(cpu=1)
        assert counter.value(cpu=0) == 3
        assert counter.value(cpu=1) == 1
        assert counter.value(cpu=9) == 0

    def test_counter_rejects_negative(self):
        counter = Counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1)
        with pytest.raises(ValueError):
            counter.set_total(-5)

    def test_counter_set_total_overwrites(self):
        counter = Counter("c_total")
        counter.set_total(41)
        counter.set_total(42)
        assert counter.value() == 42

    def test_label_mismatch_raises(self):
        counter = Counter("c_total", "", ("cpu",))
        with pytest.raises(ValueError):
            counter.inc()                    # missing label
        with pytest.raises(ValueError):
            counter.inc(cpu=0, extra=1)      # unexpected label
        with pytest.raises(ValueError):
            counter.inc(node=0)              # wrong label name

    def test_gauge_set_inc_dec(self):
        gauge = Gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value() == 13

    def test_histogram_buckets_cumulative(self):
        hist = Histogram("h", buckets=(10, 100))
        for value in (5, 50, 500, 7):
            hist.observe(value)
        cumulative, total, count = hist.value()
        assert cumulative == ((10, 2), (100, 3), (float("inf"), 4))
        assert total == 562
        assert count == 4

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(100, 10))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_invalid_metric_name(self):
        for bad in ("", "2fast", "has space", "dash-ed"):
            with pytest.raises(ValueError):
                Counter(bad)


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", "first", ("cpu",))
        b = registry.counter("x_total", "ignored", ("cpu",))
        assert a is b

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_label_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "", ("cpu",))
        with pytest.raises(ValueError):
            registry.counter("x_total", "", ("node",))

    def test_disabled_registry_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("x_total")
        counter.inc(7)
        counter.set_total(9)
        assert counter.value() == 0
        assert len(registry.snapshot()) == 0
        # NULL_REGISTRY hands out the same shared instrument.
        assert NULL_REGISTRY.gauge("y") is NULL_REGISTRY.histogram("z")

    def test_snapshot_freezes_values(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total")
        counter.inc(1)
        snap = registry.snapshot()
        counter.inc(10)
        assert snap.get("x_total") == 1
        assert registry.snapshot().get("x_total") == 11


class TestSnapshot:
    def _snap(self, wall: float) -> MetricsSnapshot:
        registry = MetricsRegistry()
        registry.counter("events_total", "", ("os",)).inc(5, os="linux")
        registry.gauge("wall_seconds", volatile=True).set(wall)
        return registry.snapshot()

    def test_equality_ignores_volatile(self):
        a, b = self._snap(1.0), self._snap(2.0)
        assert a == b
        assert hash(a) == hash(b)
        assert not a.identical(b)
        assert a.identical(self._snap(1.0))

    def test_stable_drops_volatile_samples(self):
        snap = self._snap(1.0)
        assert "wall_seconds" in snap.names()
        assert "wall_seconds" not in snap.stable().names()

    def test_immutable(self):
        snap = self._snap(1.0)
        with pytest.raises(AttributeError):
            snap.samples = ()

    def test_get_and_filter(self):
        snap = self._snap(1.0)
        assert snap.get("events_total", os="linux") == 5
        with pytest.raises(KeyError):
            snap.get("events_total", os="vista")
        assert len(snap.filter("events_total")) == 1

    def test_pickles(self):
        snap = self._snap(1.0)
        clone = pickle.loads(pickle.dumps(snap))
        assert clone.identical(snap)

    def test_merge_later_wins(self):
        a, b = self._snap(1.0), self._snap(2.0)
        merged = MetricsSnapshot.merge([a, b])
        assert merged.get("wall_seconds") == 2.0
        assert merged.get("events_total", os="linux") == 5
        assert len(merged) == 2

    def test_merge_disjoint_concatenates(self):
        reg = MetricsRegistry()
        reg.counter("other_total").inc(1)
        merged = MetricsSnapshot.merge([self._snap(1.0),
                                        reg.snapshot()])
        assert set(merged.names()) == {"events_total", "wall_seconds",
                                       "other_total"}


class TestExport:
    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "things counted",
                         ("os",)).inc(3, os="linux")
        registry.gauge("depth").set(1.5)
        text = registry.render()
        assert "# HELP x_total things counted\n" in text
        assert "# TYPE x_total counter\n" in text
        assert 'x_total{os="linux"} 3\n' in text
        assert "# TYPE depth gauge\n" in text
        assert "depth 1.5\n" in text

    def test_histogram_expansion(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(10, 100))
        hist.observe(5)
        hist.observe(50)
        text = registry.render()
        assert 'lat_bucket{le="10"} 1\n' in text
        assert 'lat_bucket{le="100"} 2\n' in text
        assert 'lat_bucket{le="+Inf"} 2\n' in text
        assert "lat_sum 55\n" in text
        assert "lat_count 2\n" in text

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "", ("comm",)).inc(
            comm='we"ird\\nam\ne')
        text = registry.render()
        assert r'comm="we\"ird\\nam\ne"' in text

    def test_header_emitted_once_per_family(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total", "h", ("cpu",))
        counter.inc(cpu=0)
        counter.inc(cpu=1)
        text = registry.render()
        assert text.count("# TYPE x_total counter") == 1

    def test_sample_roundtrip_through_snapshot_render(self):
        snap = MetricsSnapshot([Sample("n", "gauge", "", (), 7, False)])
        assert snap.render() == "# TYPE n gauge\nn 7\n"
