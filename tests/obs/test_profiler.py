"""Virtual-time profiler: attribution, ambient adoption, zero-cost."""

import functools

from repro.obs.profiler import (VirtualTimeProfiler, current_profiler,
                                profile, subsystem_of)
from repro.sim.clock import SECOND
from repro.sim.engine import Engine


class TestSubsystemOf:
    def test_plain_function(self):
        def callback():
            pass
        assert subsystem_of(callback) == __name__

    def test_strips_repro_prefix(self):
        from repro.sim.devices import TickDevice
        engine = Engine()
        device = TickDevice(engine, 1000, lambda n: None)
        assert subsystem_of(device._fire) == "sim.devices"

    def test_partial_unwrapped(self):
        from repro.sim.devices import TickDevice
        engine = Engine()
        device = TickDevice(engine, 1000, lambda n: None)
        bound = functools.partial(device._fire)
        assert subsystem_of(bound) == "sim.devices"


class FakeClock:
    """Deterministic perf counter: each call advances by ``step``."""

    def __init__(self, step: int = 10):
        self.now = 0
        self.step = step

    def __call__(self) -> int:
        self.now += self.step
        return self.now


class TestAttribution:
    def test_virtual_time_charged_to_gap_ender(self):
        engine = Engine()
        profiler = VirtualTimeProfiler(time_fn=FakeClock())
        engine.profiler = profiler
        engine.call_at(100, lambda: None)
        engine.call_at(400, lambda: None)
        engine.run()
        stats = profiler.stats[__name__]
        assert stats.events == 2
        # First event ends no gap (no prior dispatch); second is
        # charged the 300 ns of virtual time it ended.
        assert stats.virtual_ns == 300
        assert profiler.total_events == 2

    def test_wall_time_accumulates(self):
        engine = Engine()
        profiler = VirtualTimeProfiler(time_fn=FakeClock(step=7))
        engine.profiler = profiler
        engine.call_at(1, lambda: None)
        engine.run()
        # One dispatch = two clock reads 7 ns apart.
        assert profiler.total_wall_ns == 7

    def test_wall_charged_even_when_callback_raises(self):
        engine = Engine()
        profiler = VirtualTimeProfiler(time_fn=FakeClock(step=3))
        engine.profiler = profiler

        def boom():
            raise RuntimeError("x")

        engine.call_at(1, boom)
        try:
            engine.run()
        except RuntimeError:
            pass
        assert profiler.total_wall_ns == 3
        assert profiler.total_events == 1

    def test_render_lists_subsystems(self):
        engine = Engine()
        profiler = VirtualTimeProfiler(time_fn=FakeClock())
        engine.profiler = profiler
        engine.call_at(5, lambda: None)
        engine.run()
        table = profiler.render()
        assert __name__ in table
        assert "total" in table


class TestProfileContext:
    def test_ambient_adoption_by_new_engines(self):
        assert current_profiler() is None
        with profile() as prof:
            assert current_profiler() is prof
            engine = Engine()
            assert engine.profiler is prof
            engine.call_at(1, lambda: None)
            engine.run()
        assert current_profiler() is None
        assert prof.total_events == 1
        # Engines built outside the block stay unprofiled.
        assert Engine().profiler is None

    def test_engine_specific_restores_previous(self):
        engine = Engine()
        with profile(engine) as prof:
            assert engine.profiler is prof
            assert current_profiler() is None    # not ambient
            engine.call_at(1, lambda: None)
            engine.run()
        assert engine.profiler is None
        assert prof.total_events == 1

    def test_profiled_run_is_deterministic_in_virtual_terms(self):
        from repro.workloads.portable import run_portable

        def run_once():
            with profile() as prof:
                run = run_portable("idle", "linux", SECOND, seed=3)
            return run, prof

        run_a, prof_a = run_once()
        run_b, prof_b = run_once()
        from repro.tracing.binfmt import dumps
        assert dumps(run_a.trace) == dumps(run_b.trace)
        assert {k: (s.events, s.virtual_ns)
                for k, s in prof_a.stats.items()} \
            == {k: (s.events, s.virtual_ns)
                for k, s in prof_b.stats.items()}

    def test_unprofiled_run_matches_profiled_trace(self):
        from repro.tracing.binfmt import dumps
        from repro.workloads.portable import run_portable
        plain = run_portable("webserver", "vista", SECOND, seed=5)
        with profile():
            profiled = run_portable("webserver", "vista", SECOND, seed=5)
        assert dumps(plain.trace) == dumps(profiled.trace)
