"""Edge cases at subsystem boundaries."""

import pytest

from repro.linuxkern import LinuxKernel
from repro.linuxkern.wheel import TVR_SIZE, TimerWheel, WheelTimer
from repro.sim import JIFFY, millis, seconds
from repro.sim.clock import SECOND
from repro.tracing import EventKind, TimerEvent, Trace
from repro.tracing.events import FLAG_WAIT_SATISFIED
from repro.vistakern import VistaKernel
from repro.core import classify_trace, summarize, value_histogram
from repro.core.classify import TimerClass


class TestWheelBoundaries:
    def test_expiry_exactly_at_tv1_wrap(self):
        """Timers landing on multiples of 256 cross the cascade point."""
        wheel = TimerWheel()
        fired = []
        for multiple in (1, 2, 3):
            timer = WheelTimer()
            wheel.add(timer, multiple * TVR_SIZE)
            fired_at = []
        wheel.run_timers(4 * TVR_SIZE,
                         lambda t: fired.append(t.expires))
        assert fired == [TVR_SIZE, 2 * TVR_SIZE, 3 * TVR_SIZE]

    def test_timer_armed_during_cascade_window(self):
        """Arming just before a wrap still fires exactly on time."""
        wheel = TimerWheel()
        wheel.run_timers(TVR_SIZE - 2, lambda t: None)
        timer = WheelTimer()
        wheel.add(timer, TVR_SIZE + 5)
        fired = []
        wheel.run_timers(TVR_SIZE + 10,
                         lambda t: fired.append(wheel.timer_jiffies))
        assert fired == [TVR_SIZE + 5]

    def test_distant_then_near_rearm(self):
        wheel = TimerWheel()
        timer = WheelTimer()
        wheel.add(timer, 100_000)        # tv3+
        wheel.remove(timer)
        wheel.add(timer, 3)
        fired = []
        wheel.run_timers(10, lambda t: fired.append(t.expires))
        assert fired == [3]


class TestKernelCallbackReentrancy:
    def test_callback_arming_other_timers(self):
        kernel = LinuxKernel(seed=0)
        fired = []
        second = kernel.init_timer(lambda t: fired.append("second"),
                                   site=("b",), owner=kernel.tasks.kernel)

        def first_fires(timer):
            fired.append("first")
            kernel.mod_timer_rel(second, 1)

        first = kernel.init_timer(first_fires, site=("a",),
                                  owner=kernel.tasks.kernel)
        kernel.mod_timer_rel(first, 5)
        kernel.run_for(seconds(1))
        assert fired == ["first", "second"]

    def test_callback_cancelling_sibling_same_jiffy(self):
        """A timer firing may cancel another timer due the same jiffy;
        the sibling must not fire."""
        kernel = LinuxKernel(seed=0)
        fired = []
        sibling = kernel.init_timer(lambda t: fired.append("sibling"),
                                    site=("s",),
                                    owner=kernel.tasks.kernel)

        def killer(timer):
            fired.append("killer")
            kernel.del_timer(sibling)

        first = kernel.init_timer(killer, site=("k",),
                                  owner=kernel.tasks.kernel)
        kernel.mod_timer_rel(first, 5)
        kernel.mod_timer_rel(sibling, 5)
        kernel.run_for(seconds(1))
        assert fired == ["killer"]

    def test_vista_dpc_rearming_same_timer(self):
        kernel = VistaKernel(seed=0)
        fired = []
        timer = kernel.alloc_ktimer(site=("t",), owner=kernel.tasks.kernel)

        def dpc(kt):
            fired.append(kernel.engine.now)
            if len(fired) < 3:
                kernel.set_timer(timer, millis(50))

        kernel.set_timer(timer, millis(50), dpc=dpc)
        kernel.run_for(seconds(1))
        assert len(fired) == 3

    def test_vista_cancel_inside_own_dpc_is_harmless(self):
        kernel = VistaKernel(seed=0)
        fired = []
        timer = kernel.alloc_ktimer(site=("t",), owner=kernel.tasks.kernel)

        def dpc(kt):
            fired.append(1)
            assert kernel.cancel_timer(timer) is False   # already fired

        kernel.set_timer(timer, millis(50), dpc=dpc)
        kernel.run_for(seconds(1))
        assert fired == [1]


class TestAnalysisEdges:
    def _wait_only_trace(self):
        events = []
        block = 0
        for i in range(10):
            unblock = block + SECOND
            events.append(TimerEvent(
                EventKind.WAIT_UNBLOCK, unblock, 7, 3, "svchost.exe",
                "user", ("wait",), SECOND, block,
                0 if i % 3 else FLAG_WAIT_SATISFIED))
            block = unblock + 1000
        return Trace(os_name="vista", workload="waits",
                     duration_ns=20 * SECOND, events=events)

    def test_wait_only_stream_summarizes(self):
        summary = summarize(self._wait_only_trace())
        assert summary.set_count == 10
        assert summary.expired + summary.canceled == 10

    def test_wait_only_stream_classifies(self):
        verdicts = classify_trace(self._wait_only_trace())
        assert len(verdicts) == 1
        assert verdicts[0].set_count == 10
        # Mixed satisfied/timed-out waits at one constant value: the
        # classifier must produce a verdict without choking on the
        # self-contained WAIT records.
        assert isinstance(verdicts[0].timer_class, TimerClass)
        assert verdicts[0].dominant_value_ns == SECOND

    def test_empty_trace_everything(self):
        trace = Trace(os_name="linux", workload="empty", duration_ns=1)
        assert summarize(trace).accesses == 0
        assert classify_trace(trace) == []
        assert value_histogram(trace).common_values() == []

    def test_single_event_trace(self):
        trace = Trace(os_name="linux", workload="one", duration_ns=10,
                      events=[TimerEvent(EventKind.SET, 0, 1, 1, "a",
                                         "user", ("s",), 100, 100)])
        summary = summarize(trace)
        assert summary.set_count == 1
        assert summary.concurrency == 1


class TestTraceDurations:
    def test_unresolved_pending_timer_counts_in_concurrency(self):
        """A timer still pending at trace end occupies a slot to the
        very end (the keepalive case)."""
        events = [TimerEvent(EventKind.SET, 0, 1, 0, "kernel", "kernel",
                             ("ka",), 7200 * SECOND, 7200 * SECOND)]
        trace = Trace(os_name="linux", workload="ka",
                      duration_ns=60 * SECOND, events=events)
        assert summarize(trace).concurrency == 1
