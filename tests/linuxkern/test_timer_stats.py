"""Tests for the /proc/timer_stats model."""

import pytest

from repro.linuxkern import LinuxKernel, TimerStats
from repro.linuxkern.subsystems import standard_housekeeping
from repro.sim import seconds
from repro.tracing import RelayBuffer, TeeSink


def make_instrumented_kernel():
    stats = TimerStats()
    relay = RelayBuffer()
    kernel = LinuxKernel(seed=2, sink=TeeSink([relay, stats]))
    return kernel, stats, relay


class TestTimerStats:
    def test_counts_sets_per_site(self):
        kernel, stats, _relay = make_instrumented_kernel()
        for timer in standard_housekeeping(kernel):
            timer.start()
        stats.start()
        kernel.run_for(seconds(10))
        stats.stop()
        entries = {e.start_func: e.count for e in stats.entries()}
        # The 0.5 s clocksource watchdog sets ~20 times in 10 s; the
        # 5 s writeback about twice.
        assert entries["clocksource_register"] == pytest.approx(20,
                                                                abs=2)
        assert entries["pdflush"] == pytest.approx(2, abs=1)

    def test_disabled_counts_nothing(self):
        kernel, stats, _relay = make_instrumented_kernel()
        for timer in standard_housekeeping(kernel):
            timer.start()
        kernel.run_for(seconds(10))
        assert stats.total_events == 0
        assert stats.entries() == []

    def test_start_clears_previous_sample(self):
        kernel, stats, _relay = make_instrumented_kernel()
        timers = standard_housekeeping(kernel)
        for timer in timers:
            timer.start()
        stats.start()
        kernel.run_for(seconds(5))
        first_total = stats.total_events
        stats.start()          # echo 1 clears
        assert stats.total_events == 0
        kernel.run_for(seconds(5))
        assert 0 < stats.total_events <= first_total + 5

    def test_render_format(self):
        kernel, stats, _relay = make_instrumented_kernel()
        for timer in standard_housekeeping(kernel):
            timer.start()
        stats.start()
        kernel.run_for(seconds(5))
        text = stats.render()
        assert text.startswith("Timer Stats Version: v0.2")
        assert "Sample period:" in text
        assert "events/sec" in text
        assert "kernel" in text

    def test_entries_sorted_by_frequency(self):
        kernel, stats, _relay = make_instrumented_kernel()
        for timer in standard_housekeeping(kernel):
            timer.start()
        stats.start()
        kernel.run_for(seconds(20))
        counts = [e.count for e in stats.entries()]
        assert counts == sorted(counts, reverse=True)

    def test_aggregation_loses_what_the_paper_needed(self):
        """timer_stats answers 'how often is this site armed' but not
        'how long did the timers run' — the full trace does both."""
        kernel, stats, relay = make_instrumented_kernel()
        stats.start()          # enabled before any timer is armed
        for timer in standard_housekeeping(kernel):
            timer.start()
        kernel.run_for(seconds(10))
        # The relay trace retains expiry/cancel records; timer_stats
        # only ever saw the sets.
        from repro.tracing import EventKind
        relay_kinds = {e.kind for e in relay}
        assert EventKind.EXPIRE in relay_kinds
        assert stats.total_events == sum(
            1 for e in relay if e.kind == EventKind.SET)
