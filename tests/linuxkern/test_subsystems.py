"""Tests for the kernel subsystems that own the Table 3 timers."""

import pytest

from repro.linuxkern import LinuxKernel
from repro.linuxkern.subsystems import (ArpCache, BlockLayer,
                                        ConsoleBlanker, JournalDaemon,
                                        PeriodicKernelTimer, TcpConnection,
                                        TcpStack, standard_housekeeping)
from repro.linuxkern.subsystems.net import (TCP_RTO_MIN_NS,
                                            TCP_KEEPALIVE_NS)
from repro.sim import JIFFY, millis, seconds
from repro.tracing import EventKind, Trace
from repro.core import TimerClass, classify_trace
from repro.core.episodes import nominal_value_ns


def make_kernel():
    return LinuxKernel(seed=3)


def trace_of(kernel, duration_ns):
    return Trace(os_name="linux", workload="test", duration_ns=duration_ns,
                 events=list(kernel.sink))


class TestPeriodicKernelTimer:
    def test_fires_at_period(self):
        kernel = make_kernel()
        timer = PeriodicKernelTimer(kernel, name="x", period_ns=seconds(1),
                                    site=("x", "__mod_timer"))
        timer.start()
        kernel.run_for(seconds(10))
        assert timer.expirations == 10

    def test_classified_periodic(self):
        kernel = make_kernel()
        timer = PeriodicKernelTimer(kernel, name="x", period_ns=seconds(1),
                                    site=("x", "__mod_timer"))
        timer.start()
        kernel.run_for(seconds(30))
        verdicts = classify_trace(trace_of(kernel, seconds(30)))
        assert verdicts[0].timer_class == TimerClass.PERIODIC
        assert verdicts[0].dominant_value_ns == seconds(1)

    def test_stop(self):
        kernel = make_kernel()
        timer = PeriodicKernelTimer(kernel, name="x", period_ns=seconds(1),
                                    site=("x", "__mod_timer"))
        timer.start()
        kernel.run_for(seconds(3))
        timer.stop()
        kernel.run_for(seconds(5))
        assert timer.expirations == 3

    def test_round_jiffies_batching(self):
        kernel = make_kernel()
        kernel.run_for(millis(100))    # offset from second boundary
        timer = PeriodicKernelTimer(kernel, name="x",
                                    period_ns=seconds(2),
                                    site=("x", "__mod_timer"),
                                    use_round_jiffies=True)
        timer.start()
        kernel.run_for(seconds(10))
        expiries = [e for e in kernel.sink if e.kind == EventKind.EXPIRE]
        for event in expiries:
            assert event.expires_ns % seconds(1) == 0

    def test_standard_housekeeping_set(self):
        kernel = make_kernel()
        timers = standard_housekeeping(kernel)
        names = {t.name for t in timers}
        assert {"workqueue-timer", "clocksource-watchdog", "writeback",
                "usb-hub-poll", "e1000-watchdog"} <= names


class TestTcp:
    def test_connection_lifecycle_timers(self):
        kernel = make_kernel()
        stack = TcpStack(kernel, kernel.rng.stream("tcp"))
        closed = []
        conn = TcpConnection(stack, server_side=True, segments=2,
                             on_close=lambda: closed.append(1))
        conn.start()
        kernel.run_for(seconds(5))
        assert closed == [1]
        sites = {e.site[1] for e in kernel.sink
                 if e.kind == EventKind.SET}
        assert "inet_csk_reset_xmit_timer" in sites
        assert "tcp_send_delayed_ack" in sites
        assert "inet_csk_reset_keepalive_timer" in sites

    def test_rto_is_the_adapted_204ms(self):
        """The one online-adapted kernel value the paper highlights:
        LAN RTO = srtt + 200 ms floor -> 51 jiffies = 0.204 s."""
        kernel = make_kernel()
        stack = TcpStack(kernel, kernel.rng.stream("tcp"),
                         rtt_median_ns=200_000, loss_rate=0.0)
        TcpConnection(stack, server_side=True, segments=3).start()
        kernel.run_for(seconds(5))
        rto_sets = [e for e in kernel.sink
                    if e.kind == EventKind.SET
                    and "inet_csk_reset_xmit_timer" in e.site]
        assert rto_sets
        values = {nominal_value_ns(e, "linux") for e in rto_sets}
        assert values == {51 * JIFFY}

    def test_keepalive_7200(self):
        kernel = make_kernel()
        stack = TcpStack(kernel, kernel.rng.stream("tcp"), loss_rate=0.0)
        TcpConnection(stack, server_side=True, segments=1).start()
        kernel.run_for(seconds(2))
        ka = [e for e in kernel.sink
              if e.kind == EventKind.SET
              and "inet_csk_reset_keepalive_timer" in e.site]
        assert ka
        assert nominal_value_ns(ka[0], "linux") == TCP_KEEPALIVE_NS

    def test_socket_pool_reuses_addresses(self):
        kernel = make_kernel()
        stack = TcpStack(kernel, kernel.rng.stream("tcp"), loss_rate=0.0)
        for _ in range(20):
            TcpConnection(stack, server_side=True, segments=1).start()
            kernel.run_for(seconds(2))
        # Sequential connections reuse one pooled socket: 4 timers + the
        # time-wait reaper, not 20 * 4.
        ids = {e.timer_id for e in kernel.sink}
        assert len(ids) <= 8

    def test_loss_triggers_backoff(self):
        kernel = make_kernel()
        stack = TcpStack(kernel, kernel.rng.stream("tcp"), loss_rate=1.0)
        conn = TcpConnection(stack, server_side=True, segments=1)
        conn.start()
        kernel.run_for(seconds(60))
        assert conn.retransmits > 0


class TestArp:
    def test_five_second_timeouts_cancelled_at_random(self):
        kernel = make_kernel()
        arp = ArpCache(kernel, kernel.rng.stream("arp"),
                       lan_event_mean_ns=seconds(2))
        arp.start()
        kernel.run_for(seconds(120))
        cancels = [e for e in kernel.sink
                   if e.kind == EventKind.CANCEL
                   and e.expires_ns is not None
                   and "neigh_add_timer" in e.site]
        assert len(cancels) > 5

    def test_periodic_rows_present(self):
        kernel = make_kernel()
        arp = ArpCache(kernel, kernel.rng.stream("arp"))
        arp.start()
        kernel.run_for(seconds(30))
        values = {nominal_value_ns(e, "linux")
                  for e in kernel.sink if e.kind == EventKind.SET}
        assert {seconds(2), seconds(4), seconds(5), seconds(8)} <= values


class TestBlockAndJournal:
    def test_unplug_timer_is_timeout_class(self):
        kernel = make_kernel()
        block = BlockLayer(kernel, kernel.rng.stream("blk"),
                           io_burst_mean_ns=seconds(1))
        block.start()
        kernel.run_for(seconds(120))
        verdicts = {v.history.site[1]: v
                    for v in classify_trace(trace_of(kernel, seconds(120)))}
        assert verdicts["blk_plug_device"].timer_class == TimerClass.TIMEOUT
        assert verdicts["blk_plug_device"].dominant_value_ns == JIFFY

    def test_ide_timeout_30s_cancelled_quickly(self):
        kernel = make_kernel()
        block = BlockLayer(kernel, kernel.rng.stream("blk"),
                           io_burst_mean_ns=seconds(1))
        block.start()
        kernel.run_for(seconds(120))
        assert block.commands_issued > 10
        assert block.command_timeouts == 0
        ide_cancels = [e for e in kernel.sink
                       if e.kind == EventKind.CANCEL
                       and "ide_set_handler" in e.site
                       and e.expires_ns is not None]
        assert len(ide_cancels) == block.commands_issued

    def test_journal_under_load_cancels_late(self):
        kernel = make_kernel()
        journal = JournalDaemon(kernel, kernel.rng.stream("j"),
                                write_load=1.0)
        journal.start()
        kernel.run_for(seconds(300))
        from repro.core import duration_scatter
        from repro.core.episodes import Outcome
        scatter = duration_scatter(trace_of(kernel, seconds(300)))
        cancels = [p for p in scatter.points
                   if p.outcome == Outcome.CANCELED]
        assert cancels
        for point in cancels:
            assert 75.0 <= point.fraction_pct <= 101.0

    def test_journal_idle_expires(self):
        kernel = make_kernel()
        journal = JournalDaemon(kernel, kernel.rng.stream("j"),
                                write_load=0.0)
        journal.start()
        kernel.run_for(seconds(60))
        assert journal.commits == pytest.approx(12, abs=2)


class TestConsoleBlanker:
    def test_watchdog_never_expires_with_activity(self):
        kernel = make_kernel()
        console = ConsoleBlanker(kernel, kernel.rng.stream("con"),
                                 activity_mean_ns=seconds(60),
                                 blank_interval_ns=seconds(300))
        console.start()
        kernel.run_for(seconds(1800))
        assert console.blank_count == 0
        verdicts = classify_trace(trace_of(kernel, seconds(1800)))
        assert verdicts[0].timer_class == TimerClass.WATCHDOG

    def test_blanks_when_silent(self):
        kernel = make_kernel()
        console = ConsoleBlanker(kernel, blank_interval_ns=seconds(300))
        console.start()
        kernel.run_for(seconds(400))
        assert console.blanked
