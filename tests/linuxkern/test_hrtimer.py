"""Tests for the high-resolution timer facility."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linuxkern import LinuxKernel
from repro.sim import micros, millis, seconds
from repro.tracing import EventKind


@pytest.fixture
def kernel():
    return LinuxKernel(seed=0)


def events_of(kernel, kind):
    return [e for e in kernel.sink if e.kind == kind]


class TestHrtimerBasics:
    def test_nanosecond_precision_expiry(self, kernel):
        """No jiffy quantisation: a 1.5 ms timer fires at 1.5 ms."""
        fired = []
        timer = kernel.hrtimers.hrtimer_init(
            lambda t: fired.append(kernel.engine.now),
            site=("hrt",), owner=kernel.tasks.kernel)
        kernel.hrtimers.hrtimer_start(timer, micros(1500))
        kernel.run_for(seconds(1))
        assert fired == [micros(1500)]

    def test_sub_jiffy_timers_work(self, kernel):
        fired = []
        timer = kernel.hrtimers.hrtimer_init(
            lambda t: fired.append(kernel.engine.now),
            site=("hrt",), owner=kernel.tasks.kernel)
        kernel.hrtimers.hrtimer_start(timer, micros(100))
        kernel.run_for(millis(1))
        assert fired == [micros(100)]

    def test_cancel(self, kernel):
        fired = []
        timer = kernel.hrtimers.hrtimer_init(
            lambda t: fired.append(1), site=("hrt",),
            owner=kernel.tasks.kernel)
        kernel.hrtimers.hrtimer_start(timer, millis(10))
        assert kernel.hrtimers.hrtimer_cancel(timer) is True
        assert kernel.hrtimers.hrtimer_cancel(timer) is False
        kernel.run_for(seconds(1))
        assert fired == []

    def test_restart_replaces_expiry(self, kernel):
        fired = []
        timer = kernel.hrtimers.hrtimer_init(
            lambda t: fired.append(kernel.engine.now),
            site=("hrt",), owner=kernel.tasks.kernel)
        kernel.hrtimers.hrtimer_start(timer, millis(10))
        kernel.hrtimers.hrtimer_start(timer, millis(30))
        kernel.run_for(seconds(1))
        assert fired == [millis(30)]

    def test_callback_may_restart_for_periodic(self, kernel):
        fired = []

        def periodic(timer):
            fired.append(kernel.engine.now)
            if len(fired) < 5:
                kernel.hrtimers.hrtimer_start(
                    timer, timer.expires_ns + micros(2500))

        timer = kernel.hrtimers.hrtimer_init(
            periodic, site=("hrt",), owner=kernel.tasks.kernel)
        kernel.hrtimers.hrtimer_start(timer, micros(2500))
        kernel.run_for(seconds(1))
        assert fired == [micros(2500) * i for i in range(1, 6)]

    def test_trace_events_emitted(self, kernel):
        timer = kernel.hrtimers.hrtimer_init(
            lambda t: None, site=("hrt",), owner=kernel.tasks.kernel)
        kernel.hrtimers.hrtimer_start(timer, millis(5))
        kernel.run_for(seconds(1))
        kinds = [e.kind for e in kernel.sink]
        assert EventKind.INIT in kinds
        assert EventKind.SET in kinds
        assert EventKind.EXPIRE in kinds

    def test_next_expiry(self, kernel):
        a = kernel.hrtimers.hrtimer_init(lambda t: None, site=("a",),
                                         owner=kernel.tasks.kernel)
        b = kernel.hrtimers.hrtimer_init(lambda t: None, site=("b",),
                                         owner=kernel.tasks.kernel)
        kernel.hrtimers.hrtimer_start(a, millis(50))
        kernel.hrtimers.hrtimer_start(b, millis(20))
        assert kernel.hrtimers.next_expiry() == millis(20)
        kernel.hrtimers.hrtimer_cancel(b)
        assert kernel.hrtimers.next_expiry() == millis(50)

    def test_pending_property(self, kernel):
        timer = kernel.hrtimers.hrtimer_init(
            lambda t: None, site=("hrt",), owner=kernel.tasks.kernel)
        assert not timer.pending
        kernel.hrtimers.hrtimer_start(timer, millis(1))
        assert timer.pending
        kernel.run_for(millis(2))
        assert not timer.pending


class TestHrtimerOrderingProperty:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(1, 10_000_000), min_size=1,
                    max_size=40))
    def test_fires_in_expiry_order(self, delays):
        """Property: regardless of arming order, callbacks run in
        expiry order with stable tie-breaking."""
        kernel = LinuxKernel(seed=0)
        fired = []
        for index, delay in enumerate(delays):
            timer = kernel.hrtimers.hrtimer_init(
                lambda t, i=index: fired.append(i), site=("hrt",),
                owner=kernel.tasks.kernel)
            kernel.hrtimers.hrtimer_start(timer, delay)
        kernel.run_for(20_000_000)
        assert len(fired) == len(delays)
        expiries = [delays[i] for i in fired]
        assert expiries == sorted(expiries)
