"""Tests for the multiprocessor timer forest and SMP delete variants."""

import pytest

from repro.linuxkern import LinuxKernel
from repro.sim import JIFFY, millis, seconds
from repro.tracing import EventKind


def make_kernel(cpus=4):
    return LinuxKernel(seed=0, cpus=cpus)


class TestPlacement:
    def test_default_machine_is_single_cpu(self):
        kernel = LinuxKernel(seed=0)
        assert kernel.cpus == 1
        assert len(kernel.bases) == 1
        assert kernel.timers is kernel.bases[0]

    def test_tasks_spread_across_bases(self):
        kernel = make_kernel()
        used = set()
        for i in range(16):
            task = kernel.tasks.spawn(f"app{i}")
            timer = kernel.init_timer(site=("t",), owner=task)
            used.add(timer.kernel.cpu)
        assert used == {0, 1, 2, 3}

    def test_explicit_cpu_pins_timer(self):
        kernel = make_kernel()
        timer = kernel.init_timer(site=("t",), owner=kernel.tasks.kernel,
                                  cpu=3)
        assert timer.kernel.cpu == 3

    def test_invalid_cpu_count(self):
        with pytest.raises(ValueError):
            LinuxKernel(seed=0, cpus=0)


class TestSmpFiring:
    def test_timers_fire_on_every_cpu(self):
        kernel = make_kernel()
        fired = []
        for cpu in range(4):
            timer = kernel.init_timer(
                lambda t, c=cpu: fired.append(c), site=("t",),
                owner=kernel.tasks.kernel, cpu=cpu)
            kernel.mod_timer_rel(timer, 10 + cpu)
        kernel.run_for(seconds(1))
        assert sorted(fired) == [0, 1, 2, 3]

    def test_secondary_ticks_are_staggered(self):
        """Per-CPU timer softirqs run at offset phases within the
        jiffy, so same-jiffy timers on different CPUs fire at
        different nanosecond instants."""
        kernel = make_kernel(cpus=2)
        fired = {}
        for cpu in range(2):
            timer = kernel.init_timer(
                lambda t, c=cpu: fired.__setitem__(
                    c, kernel.engine.now), site=("t",),
                owner=kernel.tasks.kernel, cpu=cpu)
            kernel.mod_timer_rel(timer, 25)
        kernel.run_for(seconds(1))
        assert fired[0] != fired[1]
        assert abs(fired[1] - fired[0]) == JIFFY // 2

    def test_cross_base_routing_via_kernel_api(self):
        kernel = make_kernel()
        task = kernel.tasks.spawn("app")
        timer = kernel.init_timer(lambda t: None, site=("t",),
                                  owner=task, cpu=2)
        kernel.mod_timer_rel(timer, 5)     # routed to base 2
        assert kernel.bases[2].wheel.pending_count == 1
        assert kernel.del_timer(timer) is True
        assert kernel.bases[2].wheel.pending_count == 0


class TestSyncDeletion:
    def test_del_timer_sync_outside_handler(self):
        kernel = make_kernel(cpus=2)
        timer = kernel.init_timer(lambda t: None, site=("t",),
                                  owner=kernel.tasks.kernel, cpu=1)
        kernel.mod_timer_rel(timer, 10)
        assert kernel.del_timer_sync(timer) is True

    def test_del_timer_sync_from_own_handler_deadlocks(self):
        kernel = make_kernel(cpus=1)
        errors = []

        def handler(timer):
            try:
                kernel.del_timer_sync(timer)
            except RuntimeError as exc:
                errors.append(str(exc))

        timer = kernel.init_timer(handler, site=("t",),
                                  owner=kernel.tasks.kernel)
        kernel.mod_timer_rel(timer, 5)
        kernel.run_for(seconds(1))
        assert errors and "deadlock" in errors[0]

    def test_try_to_del_from_own_handler_returns_minus_one(self):
        kernel = make_kernel(cpus=1)
        results = []

        def handler(timer):
            results.append(kernel.try_to_del_timer_sync(timer))

        timer = kernel.init_timer(handler, site=("t",),
                                  owner=kernel.tasks.kernel)
        kernel.mod_timer_rel(timer, 5)
        kernel.run_for(seconds(1))
        assert results == [-1]

    def test_try_to_del_states(self):
        kernel = make_kernel()
        timer = kernel.init_timer(lambda t: None, site=("t",),
                                  owner=kernel.tasks.kernel)
        assert kernel.try_to_del_timer_sync(timer) == 0   # inactive
        kernel.mod_timer_rel(timer, 10)
        assert kernel.try_to_del_timer_sync(timer) == 1   # deactivated


class TestHotplug:
    def test_offline_migrates_pending_timers(self):
        kernel = make_kernel()
        fired = []
        timers = []
        for i in range(5):
            timer = kernel.init_timer(
                lambda t, i=i: fired.append(i), site=("t",),
                owner=kernel.tasks.kernel, cpu=3)
            kernel.mod_timer_rel(timer, 50 + i)
            timers.append(timer)
        moved = kernel.offline_cpu(3)
        assert moved == 5
        assert all(t.kernel is kernel.bases[0] for t in timers)
        kernel.run_for(seconds(1))
        assert sorted(fired) == [0, 1, 2, 3, 4]

    def test_offline_boot_cpu_rejected(self):
        kernel = make_kernel()
        with pytest.raises(ValueError):
            kernel.offline_cpu(0)

    def test_offline_cpu_unusable_afterwards(self):
        kernel = make_kernel()
        kernel.offline_cpu(2)
        with pytest.raises(ValueError):
            kernel.init_timer(site=("t",), owner=kernel.tasks.kernel,
                              cpu=2)

    def test_double_offline_is_noop(self):
        kernel = make_kernel()
        kernel.offline_cpu(1)
        assert kernel.offline_cpu(1) == 0


class TestSmpTracing:
    def test_machine_unique_timer_ids(self):
        kernel = make_kernel()
        ids = set()
        for cpu in range(4):
            for _ in range(10):
                timer = kernel.init_timer(site=("t",),
                                          owner=kernel.tasks.kernel,
                                          cpu=cpu)
                assert timer.timer_id not in ids
                ids.add(timer.timer_id)

    def test_smp_workload_trace_analyzable(self):
        """An SMP machine's trace flows through the same analyses."""
        from repro.core import summarize
        from repro.tracing import Trace
        kernel = make_kernel(cpus=2)
        for cpu in range(2):
            def rearm(timer, cpu=cpu):
                kernel.mod_timer_rel(timer, 25)
            timer = kernel.init_timer(rearm, site=(f"periodic{cpu}",),
                                      owner=kernel.tasks.kernel, cpu=cpu)
            kernel.mod_timer_rel(timer, 25)
        kernel.run_for(seconds(10))
        trace = Trace(os_name="linux", workload="smp",
                      duration_ns=seconds(10),
                      events=list(kernel.sink))
        summary = summarize(trace)
        assert summary.timers == 2
        assert summary.expired >= 190
