"""Tests for the Linux timer API model and its trace records."""

import pytest

from repro.linuxkern import LinuxKernel, round_jiffies, \
    round_jiffies_relative, msecs_to_jiffies
from repro.sim import JIFFY, PowerMeter, millis, seconds
from repro.tracing import EventKind


def make_kernel(**kwargs):
    return LinuxKernel(seed=0, **kwargs)


def events_of(kernel, kind):
    return [e for e in kernel.sink if e.kind == kind]


class TestTimerLifecycle:
    def test_init_emits_init_event(self):
        kernel = make_kernel()
        kernel.init_timer(site=("test", "__mod_timer"),
                          owner=kernel.tasks.kernel)
        assert len(events_of(kernel, EventKind.INIT)) == 1

    def test_mod_timer_fires_at_jiffy_boundary(self):
        kernel = make_kernel()
        fired = []
        timer = kernel.init_timer(lambda t: fired.append(
            kernel.engine.now), site=("t",), owner=kernel.tasks.kernel)
        kernel.mod_timer_rel(timer, 10)
        kernel.run_for(seconds(1))
        assert fired == [10 * JIFFY]

    def test_rearm_while_pending_logs_no_cancel(self):
        kernel = make_kernel()
        timer = kernel.init_timer(site=("t",), owner=kernel.tasks.kernel)
        kernel.mod_timer_rel(timer, 100)
        was_pending = kernel.mod_timer_rel(timer, 200)
        assert was_pending is True
        assert len(events_of(kernel, EventKind.SET)) == 2
        assert len(events_of(kernel, EventKind.CANCEL)) == 0

    def test_del_timer_pending_and_not(self):
        kernel = make_kernel()
        timer = kernel.init_timer(site=("t",), owner=kernel.tasks.kernel)
        kernel.mod_timer_rel(timer, 100)
        assert kernel.del_timer(timer) is True
        # "Repeated deletions of an already-deleted timer" are legal and
        # traced, as in the paper's observations.
        assert kernel.del_timer(timer) is False
        cancels = events_of(kernel, EventKind.CANCEL)
        assert len(cancels) == 2
        assert cancels[0].expires_ns is not None
        assert cancels[1].expires_ns is None

    def test_callback_can_rearm_for_periodicity(self):
        kernel = make_kernel()
        fired = []

        def periodic(timer):
            fired.append(kernel.jiffies)
            if len(fired) < 4:
                kernel.mod_timer_rel(timer, 25)

        timer = kernel.init_timer(periodic, site=("t",),
                                  owner=kernel.tasks.kernel)
        kernel.mod_timer_rel(timer, 25)
        kernel.run_for(seconds(2))
        assert fired == [25, 50, 75, 100]

    def test_add_timer_on_pending_raises(self):
        kernel = make_kernel()
        timer = kernel.init_timer(site=("t",), owner=kernel.tasks.kernel)
        kernel.mod_timer_rel(timer, 10)
        with pytest.raises(ValueError):
            kernel.add_timer(timer)


class TestTraceSemantics:
    def test_set_event_records_observed_relative_timeout(self):
        kernel = make_kernel()
        # Arm mid-jiffy: observed relative time is less than nominal.
        kernel.run_for(JIFFY // 2)
        timer = kernel.init_timer(site=("t",), owner=kernel.tasks.kernel)
        kernel.mod_timer_rel(timer, 10)
        set_event = events_of(kernel, EventKind.SET)[0]
        assert set_event.timeout_ns == 10 * JIFFY - JIFFY // 2
        assert set_event.expires_ns == (kernel.jiffies + 10) * JIFFY

    def test_explicit_timeout_value_recorded_exactly(self):
        kernel = make_kernel()
        timer = kernel.init_timer(site=("t",), owner=kernel.tasks.kernel)
        kernel.mod_timer_rel(timer, 25, timeout_ns=millis(99.9))
        set_event = events_of(kernel, EventKind.SET)[0]
        assert set_event.timeout_ns == millis(99.9)

    def test_expire_event_emitted_before_callback(self):
        kernel = make_kernel()
        seen = []
        timer = kernel.init_timer(
            lambda t: seen.append(len(events_of(kernel,
                                                EventKind.EXPIRE))),
            site=("t",), owner=kernel.tasks.kernel)
        kernel.mod_timer_rel(timer, 5)
        kernel.run_for(seconds(1))
        assert seen == [1]

    def test_domain_attribution(self):
        kernel = make_kernel()
        task = kernel.tasks.spawn("app")
        timer = kernel.init_timer(site=("t",), owner=task, domain="user")
        kernel.mod_timer_rel(timer, 5)
        assert events_of(kernel, EventKind.SET)[0].domain == "user"


class TestRoundJiffies:
    def test_rounds_up_to_whole_second(self):
        # 250 jiffies per second; j=300 is 50 past a boundary -> up to 500.
        assert round_jiffies(380, 0) == 500

    def test_rounds_down_in_first_quarter(self):
        assert round_jiffies(530, 0) == 500

    def test_never_returns_past_value(self):
        assert round_jiffies(510, 505) == 510

    def test_relative_form(self):
        assert round_jiffies_relative(380, 0) == 500

    def test_msecs_to_jiffies_rounds_up(self):
        assert msecs_to_jiffies(4) == 1
        assert msecs_to_jiffies(5) == 2
        assert msecs_to_jiffies(0) == 0


class TestDeferrableAndDynticks:
    def test_deferrable_flag_traced(self):
        kernel = make_kernel()
        timer = kernel.init_timer(site=("t",), owner=kernel.tasks.kernel,
                                  deferrable=True)
        kernel.mod_timer_rel(timer, 5)
        assert events_of(kernel, EventKind.SET)[0].deferrable

    def test_dynticks_skips_idle_ticks(self):
        busy = make_kernel(dynticks=False)
        idle = make_kernel(dynticks=True)
        for kernel in (busy, idle):
            timer = kernel.init_timer(lambda t: None, site=("t",),
                                      owner=kernel.tasks.kernel)
            kernel.mod_timer_rel(timer, 200)
            kernel.run_for(seconds(2))
        assert idle.power.wakeups < busy.power.wakeups / 5

    def test_dynticks_still_fires_timers_on_time(self):
        kernel = make_kernel(dynticks=True)
        fired = []
        timer = kernel.init_timer(
            lambda t: fired.append(kernel.engine.now), site=("t",),
            owner=kernel.tasks.kernel)
        kernel.mod_timer_rel(timer, 100)
        kernel.run_for(seconds(2))
        assert fired == [100 * JIFFY]

    def test_deferrable_does_not_wake_idle_cpu(self):
        kernel = make_kernel(dynticks=True)
        timer = kernel.init_timer(lambda t: None, site=("t",),
                                  owner=kernel.tasks.kernel,
                                  deferrable=True)
        kernel.mod_timer_rel(timer, 50)
        kernel.run_for(seconds(1))
        assert kernel.power.wakeups == 0


class TestHasWork:
    def test_has_work_respects_deferrable(self):
        kernel = make_kernel()
        timer = kernel.init_timer(site=("t",), owner=kernel.tasks.kernel,
                                  deferrable=True)
        kernel.mod_timer_rel(timer, 5)
        assert kernel.timers.has_work_at(kernel.jiffies + 5,
                                         include_deferrable=True)
        assert not kernel.timers.has_work_at(kernel.jiffies + 5,
                                             include_deferrable=False)
