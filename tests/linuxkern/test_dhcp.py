"""Tests for the DHCP client lease timers (the §5.2 overlap example)."""

import pytest

from repro.linuxkern import LinuxKernel
from repro.linuxkern.subsystems import DhcpClient
from repro.sim import seconds
from repro.core.provenance import Relation


@pytest.fixture
def kernel():
    return LinuxKernel(seed=5)


def make_client(kernel, **kwargs):
    client = DhcpClient(kernel, kernel.rng.stream("dhcp"),
                        lease_ns=seconds(600), **kwargs)
    client.start()
    return client


class TestLeaseLifecycle:
    def test_renewal_at_t1(self, kernel):
        client = make_client(kernel)
        kernel.run_for(seconds(301))
        assert client.renewals == 1
        assert client.rebinds == 0
        assert client.lease_lost == 0

    def test_t2_and_expiry_never_fire_when_server_up(self, kernel):
        client = make_client(kernel)
        kernel.run_for(seconds(3600))
        assert client.renewals >= 10
        assert client.rebinds == 0
        assert client.lease_lost == 0

    def test_rebind_then_lose_lease_when_server_down(self, kernel):
        client = make_client(kernel, server_available=False)
        kernel.run_for(seconds(601))
        assert client.renewals == 0
        assert client.rebinds == 1        # T2 at 87.5% of the lease
        assert client.lease_lost == 1

    def test_all_three_timers_pending_concurrently(self, kernel):
        """The stock arrangement the paper calls redundant."""
        client = make_client(kernel)
        kernel.run_for(seconds(10))
        assert client.concurrent_timers_stock() == 3
        assert client.concurrent_timers_rewritten() == 1


class TestOverlapDeclaration:
    def test_graph_marks_t1_redundant(self, kernel):
        client = make_client(kernel)
        graph = client.overlap_graph()
        redundant = graph.redundant_timers()
        # With OVERLAP_MAX, only the latest deadline must be armed.
        assert "dhcp-t1" in redundant
        assert "dhcp-t2" in redundant
        assert "dhcp-expiry" not in redundant

    def test_dependency_rewrite_preserves_total_deadline(self, kernel):
        client = make_client(kernel)
        graph = client.overlap_graph()
        chain = graph.as_dependency_chain("dhcp-t2", "dhcp-t1")
        assert sum(duration for _n, duration in chain) == client.t2_ns

    def test_relations_enumerated(self, kernel):
        client = make_client(kernel)
        graph = client.overlap_graph()
        kinds = {relation for _a, _b, relation in graph.relations}
        assert kinds == {Relation.OVERLAP_MAX}
