"""Tests for the syscall layer: select countdown, zero timeouts, alarm,
timer_settime, and the schedule_timeout margin."""

import pytest

from repro.linuxkern import LinuxKernel, SyscallInterface, WakeReason
from repro.sim import JIFFY, millis, seconds
from repro.tracing import EventKind


@pytest.fixture
def machine():
    kernel = LinuxKernel(seed=0)
    return kernel, SyscallInterface(kernel), kernel.tasks.spawn("app")


def sets(kernel):
    return [e for e in kernel.sink if e.kind == EventKind.SET]


class TestSelect:
    def test_timeout_path(self, machine):
        kernel, syscalls, task = machine
        results = []
        syscalls.select(task, millis(100),
                        lambda r, rem: results.append((r, rem)))
        kernel.run_for(seconds(1))
        assert results == [(WakeReason.TIMEOUT, 0)]

    def test_minimum_sleep_margin(self, machine):
        """Wakeup lands at or after the requested time, never before."""
        kernel, syscalls, task = machine
        kernel.run_for(JIFFY // 3)     # arm mid-jiffy
        woke = []
        syscalls.select(task, millis(100),
                        lambda r, rem: woke.append(kernel.engine.now))
        start = kernel.engine.now
        kernel.run_for(seconds(1))
        assert woke[0] - start >= millis(100)
        assert woke[0] - start <= millis(100) + 2 * JIFFY

    def test_fd_ready_returns_remaining(self, machine):
        kernel, syscalls, task = machine
        results = []
        call = syscalls.select(task, millis(100),
                               lambda r, rem: results.append((r, rem)))
        kernel.engine.call_after(millis(40), call.fd_ready)
        kernel.run_for(seconds(1))
        reason, remaining = results[0]
        assert reason == WakeReason.FD_READY
        assert 0 < remaining <= millis(100) - millis(40) + 2 * JIFFY

    def test_countdown_idiom(self, machine):
        """Passing the remaining value back in produces decreasing SETs."""
        kernel, syscalls, task = machine
        values = []

        def loop(remaining):
            values.append(remaining)
            if remaining > 0:
                call = syscalls.select(
                    task, remaining,
                    lambda r, rem: loop(rem if r == WakeReason.FD_READY
                                        else 0))
                kernel.engine.call_after(millis(37), call.fd_ready)

        loop(millis(500))
        kernel.run_for(seconds(5))
        assert len(values) > 3
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_zero_timeout_returns_immediately(self, machine):
        kernel, syscalls, task = machine
        results = []
        syscalls.select(task, 0, lambda r, rem: results.append(r))
        assert results == [WakeReason.TIMEOUT]
        trace_kinds = [e.kind for e in kernel.sink
                       if e.kind != EventKind.INIT]
        assert EventKind.SET in trace_kinds
        assert EventKind.EXPIRE in trace_kinds

    def test_infinite_wait_installs_no_timer(self, machine):
        kernel, syscalls, task = machine
        results = []
        call = syscalls.select(task, None, lambda r, rem: results.append(r))
        kernel.run_for(seconds(10))
        assert results == []
        assert len(sets(kernel)) == 0
        call.fd_ready()
        assert results == [WakeReason.FD_READY]

    def test_signal_completion(self, machine):
        kernel, syscalls, task = machine
        results = []
        call = syscalls.select(task, seconds(5),
                               lambda r, rem: results.append(r))
        call.signal()
        assert results == [WakeReason.SIGNAL]

    def test_set_records_exact_user_value(self, machine):
        kernel, syscalls, task = machine
        syscalls.select(task, millis(499.9), lambda r, rem: None)
        assert sets(kernel)[0].timeout_ns == millis(499.9)

    def test_timer_struct_reused_across_calls(self, machine):
        kernel, syscalls, task = machine
        syscalls.select(task, millis(10), lambda r, rem: None)
        kernel.run_for(seconds(1))
        syscalls.select(task, millis(10), lambda r, rem: None)
        ids = {e.timer_id for e in sets(kernel)}
        assert len(ids) == 1

    def test_threads_get_distinct_timers(self, machine):
        kernel, syscalls, task = machine
        syscalls.poll(task, millis(10), lambda r, rem: None, thread=0)
        syscalls.poll(task, millis(10), lambda r, rem: None, thread=1)
        ids = {e.timer_id for e in sets(kernel)}
        assert len(ids) == 2

    def test_expiry_logs_extra_inactive_delete(self, machine):
        kernel, syscalls, task = machine
        syscalls.select(task, millis(20), lambda r, rem: None)
        kernel.run_for(seconds(1))
        cancels = [e for e in kernel.sink if e.kind == EventKind.CANCEL]
        assert len(cancels) == 1
        assert cancels[0].expires_ns is None      # already inactive


class TestAlarm:
    def test_alarm_delivers_signal(self, machine):
        kernel, syscalls, task = machine
        hits = []
        syscalls.alarm(task, 2.0, lambda: hits.append(kernel.engine.now))
        kernel.run_for(seconds(5))
        assert hits == [seconds(2)]

    def test_alarm_zero_cancels(self, machine):
        kernel, syscalls, task = machine
        hits = []
        syscalls.alarm(task, 2.0, lambda: hits.append(1))
        syscalls.alarm(task, 0, lambda: hits.append(2))
        kernel.run_for(seconds(5))
        assert hits == []


class TestTimerSettime:
    def test_one_shot(self, machine):
        kernel, syscalls, task = machine
        hits = []
        syscalls.timer_settime(task, millis(500), 0,
                               lambda: hits.append(kernel.engine.now))
        kernel.run_for(seconds(2))
        assert len(hits) == 1

    def test_periodic(self, machine):
        kernel, syscalls, task = machine
        hits = []
        syscalls.timer_settime(task, millis(500), millis(500),
                               lambda: hits.append(kernel.engine.now))
        kernel.run_for(seconds(3))
        assert len(hits) >= 5

    def test_disarm(self, machine):
        kernel, syscalls, task = machine
        hits = []
        timer = syscalls.timer_settime(task, millis(500), millis(500),
                                       lambda: hits.append(1))
        kernel.run_for(seconds(1.2))
        syscalls.timer_settime(task, 0, 0, lambda: None)
        count = len(hits)
        kernel.run_for(seconds(3))
        assert len(hits) == count


class TestSetitimer:
    def test_one_shot(self, machine):
        kernel, syscalls, task = machine
        hits = []
        syscalls.setitimer(task, millis(300), 0,
                           lambda: hits.append(kernel.engine.now))
        kernel.run_for(seconds(2))
        assert len(hits) == 1

    def test_periodic_signals(self, machine):
        kernel, syscalls, task = machine
        hits = []
        syscalls.setitimer(task, millis(250), millis(250),
                           lambda: hits.append(1))
        kernel.run_for(seconds(3))
        assert len(hits) >= 10

    def test_disarm(self, machine):
        kernel, syscalls, task = machine
        hits = []
        syscalls.setitimer(task, millis(250), millis(250),
                           lambda: hits.append(1))
        kernel.run_for(seconds(1))
        syscalls.setitimer(task, 0, 0, lambda: None)
        count = len(hits)
        kernel.run_for(seconds(2))
        assert len(hits) == count
