"""Tests for the cascading timer wheel, including hypothesis properties."""

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linuxkern.wheel import MAX_TVAL, TimerWheel, WheelTimer


def collect_firings(wheel, upto):
    fired = []
    wheel.run_timers(upto, lambda t: fired.append((wheel.timer_jiffies,
                                                   t.expires)))
    return fired


class TestBasics:
    def test_add_and_fire_at_expiry(self):
        wheel = TimerWheel()
        timer = WheelTimer()
        wheel.add(timer, 10)
        fired = collect_firings(wheel, 20)
        assert fired == [(10, 10)]
        assert not timer.pending

    def test_fire_order_across_slots(self):
        wheel = TimerWheel()
        timers = [WheelTimer() for _ in range(5)]
        for i, timer in enumerate(timers):
            wheel.add(timer, 5 * (i + 1))
        fired = collect_firings(wheel, 100)
        assert [f[1] for f in fired] == [5, 10, 15, 20, 25]

    def test_remove_pending(self):
        wheel = TimerWheel()
        timer = WheelTimer()
        wheel.add(timer, 10)
        assert wheel.remove(timer) is True
        assert wheel.remove(timer) is False
        assert collect_firings(wheel, 50) == []

    def test_double_add_rejected(self):
        wheel = TimerWheel()
        timer = WheelTimer()
        wheel.add(timer, 10)
        with pytest.raises(ValueError):
            wheel.add(timer, 20)

    def test_past_expiry_fires_next_processed_jiffy(self):
        wheel = TimerWheel()
        wheel.run_timers(100, lambda t: None)
        timer = WheelTimer()
        wheel.add(timer, 50)       # already in the past
        fired = collect_firings(wheel, 101)
        assert len(fired) == 1

    def test_callback_may_rearm(self):
        wheel = TimerWheel()
        timer = WheelTimer()
        count = []

        def periodic(t):
            count.append(wheel.timer_jiffies)
            if len(count) < 3:
                wheel.add(t, t.expires + 10)

        wheel.add(timer, 10)
        wheel.run_timers(100, periodic)
        assert count == [10, 20, 30]

    def test_pending_count_tracks(self):
        wheel = TimerWheel()
        timers = [WheelTimer() for _ in range(10)]
        for i, timer in enumerate(timers):
            wheel.add(timer, 1000 + i * 300)
        assert wheel.pending_count == 10
        wheel.remove(timers[0])
        assert wheel.pending_count == 9


class TestCascading:
    def test_long_timeout_lands_in_higher_level_and_fires(self):
        wheel = TimerWheel()
        timer = WheelTimer()
        wheel.add(timer, 300)      # beyond tv1 (256)
        assert any(timer in bucket for bucket in wheel.tvn[0])
        fired = collect_firings(wheel, 400)
        assert fired == [(300, 300)]
        assert wheel.cascades > 0

    def test_very_long_timeout_fires_exactly(self):
        wheel = TimerWheel()
        timer = WheelTimer()
        expires = 256 * 64 + 12345   # tv3 territory
        wheel.add(timer, expires)
        fired = collect_firings(wheel, expires + 1)
        assert fired == [(expires, expires)]

    def test_clamping_of_huge_timeout(self):
        wheel = TimerWheel()
        timer = WheelTimer()
        wheel.add(timer, MAX_TVAL * 3)
        assert timer.pending   # parked at the wheel horizon

    def test_next_expiry(self):
        wheel = TimerWheel()
        a, b = WheelTimer(), WheelTimer()
        wheel.add(a, 500)
        wheel.add(b, 90)
        assert wheel.next_expiry() == 90
        wheel.remove(b)
        assert wheel.next_expiry() == 500

    def test_next_expiry_empty(self):
        assert TimerWheel().next_expiry() is None


class TestAgainstReferenceHeap:
    """The wheel must fire the same timers at the same jiffies as a
    straightforward priority queue (the correctness oracle)."""

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 5000),     # arm at jiffy
                              st.integers(1, 20000)),   # relative delay
                    min_size=1, max_size=60))
    def test_same_firing_schedule(self, arms):
        arms = sorted(arms)
        wheel = TimerWheel()
        fired = []

        horizon = max(at + delay for at, delay in arms) + 2
        by_arm_time: dict[int, list] = {}
        for index, (at, delay) in enumerate(arms):
            by_arm_time.setdefault(at, []).append((index, at + delay))

        timers = {}
        for jiffy in range(horizon + 1):
            for index, expires in by_arm_time.get(jiffy, []):
                timer = WheelTimer()
                timers[id(timer)] = index
                wheel.add(timer, expires)
            wheel.run_timers(jiffy, lambda t: fired.append(
                (wheel.timer_jiffies, timers[id(t)])))

        # Every timer fires exactly once...
        assert sorted(idx for _, idx in fired) == list(range(len(arms)))
        # ...at exactly its expiry jiffy (never early, never late).
        for jiffy, idx in fired:
            at, delay = arms[idx]
            assert jiffy == at + delay
