"""Tests for the soft-timer facility (Aron & Druschel model)."""

import pytest

from repro.sim import Engine, RngRegistry, micros, millis, seconds
from repro.linuxkern.softtimers import SoftTimer, SoftTimerFacility


def make(engine=None, **kwargs):
    engine = engine if engine is not None else Engine()
    return engine, SoftTimerFacility(engine, **kwargs)


class TestSoftTimers:
    def test_fires_at_trigger_point(self):
        engine, facility = make()
        fired = []
        timer = SoftTimer()
        facility.arm(timer, micros(50), lambda: fired.append(engine.now))
        engine.call_at(micros(60), facility.trigger_point)
        engine.run_until(millis(2))
        assert fired == [micros(60)]
        assert facility.fired_at_trigger == 1
        assert facility.fired_at_fallback == 0

    def test_fallback_bounds_worst_case(self):
        """With no trigger points, the fallback interrupt delivers
        within one fallback period."""
        engine, facility = make(fallback_period_ns=millis(1))
        fired = []
        timer = SoftTimer()
        facility.arm(timer, micros(100),
                     lambda: fired.append(engine.now))
        engine.run_until(millis(5))
        assert len(fired) == 1
        assert fired[0] <= micros(100) + millis(1)
        assert facility.fired_at_fallback == 1

    def test_cancel(self):
        engine, facility = make()
        fired = []
        timer = SoftTimer()
        facility.arm(timer, micros(100), lambda: fired.append(1))
        assert facility.cancel(timer) is True
        assert facility.cancel(timer) is False
        engine.run_until(millis(5))
        assert fired == []

    def test_trigger_before_expiry_does_not_fire(self):
        engine, facility = make()
        fired = []
        timer = SoftTimer()
        facility.arm(timer, millis(10), lambda: fired.append(1))
        engine.call_at(millis(1), facility.trigger_point)
        engine.run_until(millis(2))
        assert fired == []
        assert timer.armed

    def test_busy_system_gives_microsecond_latency(self):
        """The headline: with frequent trigger points, microsecond
        timers are delivered in tens of microseconds with zero extra
        interrupts."""
        engine, facility = make(fallback_period_ns=millis(1))
        rng = RngRegistry(seed=4).stream("triggers")
        facility.drive_trigger_points(rng, mean_gap_ns=micros(20),
                                      until_ns=seconds(1))
        fired = [0]
        timer = SoftTimer()

        def rearm():
            fired[0] += 1
            facility.arm(timer, micros(100), rearm)

        facility.arm(timer, micros(100), rearm)
        engine.run_until(seconds(1))
        assert fired[0] > 5000
        # Nearly everything fires at trigger points, not the fallback.
        trigger_share = facility.fired_at_trigger / fired[0]
        assert trigger_share > 0.95
        assert facility.latency_percentile(90) < micros(100)
        # Hardware interrupts stayed at the coarse fallback rate.
        assert facility.power.interrupts <= 1000 + 1

    def test_idle_system_degrades_to_fallback_latency(self):
        engine, facility = make(fallback_period_ns=millis(1))
        latencies = []
        for i in range(20):
            timer = SoftTimer()
            facility.arm(timer, micros(100) + i * millis(5),
                         lambda: None)
        engine.run_until(seconds(1))
        assert facility.fired_at_fallback == 20
        assert facility.latency_percentile(50) > micros(100)
