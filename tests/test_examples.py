"""Every shipped example must run to completion."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

CASES = [
    ("quickstart.py", []),
    ("adaptive_timeouts.py", []),
    ("power_batching.py", []),
    ("layered_timeouts.py", []),
    ("typed_interfaces.py", []),
    ("userspace_reactor.py", []),
    ("smp_forest.py", []),
    ("paper_study.py", ["--minutes", "0.25"]),
]


@pytest.mark.parametrize("script,args",
                         CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, args):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run([sys.executable, path, *args],
                            capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"
