"""Cross-cutting property tests: invariants that must hold for any
trace the machines can produce."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, SECOND, millis, seconds
from repro.sim.clock import JIFFY
from repro.tracing import EventKind
from repro.workloads import run_workload
from repro.core import summarize
from repro.core.episodes import Outcome, extract_episodes


@pytest.fixture(scope="module", params=["linux", "vista"])
def short_run(request):
    return run_workload(request.param, "idle", 45 * SECOND, seed=13)


class TestTraceInvariants:
    def test_events_are_time_ordered(self, short_run):
        timestamps = [e.ts for e in short_run.trace.events]
        assert timestamps == sorted(timestamps)

    def test_expire_only_when_pending(self, short_run):
        """A timer address never EXPIREs unless it was SET and neither
        expired nor (pending-)cancelled since."""
        pending = set()
        for event in short_run.trace.events:
            if event.kind == EventKind.SET:
                pending.add(event.timer_id)
            elif event.kind == EventKind.EXPIRE:
                assert event.timer_id in pending, event
                pending.discard(event.timer_id)
            elif event.kind == EventKind.CANCEL:
                if event.expires_ns is not None:
                    assert event.timer_id in pending, event
                pending.discard(event.timer_id)

    def test_pending_cancel_flag_is_truthful(self, short_run):
        """CANCEL carries expires_ns exactly when the timer was armed."""
        pending = set()
        for event in short_run.trace.events:
            if event.kind == EventKind.SET:
                pending.add(event.timer_id)
            elif event.kind == EventKind.EXPIRE:
                pending.discard(event.timer_id)
            elif event.kind == EventKind.CANCEL:
                was_pending = event.timer_id in pending
                assert (event.expires_ns is not None) == was_pending
                pending.discard(event.timer_id)

    def test_episodes_partition_sets(self, short_run):
        """Every SET starts exactly one episode."""
        trace = short_run.trace
        groups = trace.instances()
        total_sets = sum(1 for e in trace.events
                         if e.kind == EventKind.SET)
        total_episodes = sum(
            len([ep for ep in extract_episodes(h, trace.os_name)
                 if ep.set_at is not None])
            for h in groups)
        wait_episodes = sum(1 for e in trace.events
                            if e.kind == EventKind.WAIT_UNBLOCK
                            and e.timeout_ns is not None)
        assert total_episodes == total_sets + wait_episodes

    def test_no_episode_ends_before_it_starts(self, short_run):
        trace = short_run.trace
        for history in trace.instances():
            for episode in extract_episodes(history, trace.os_name):
                if episode.ended_at is not None:
                    assert episode.ended_at >= episode.set_at

    def test_summary_counts_bounded_by_events(self, short_run):
        trace = short_run.trace
        summary = summarize(trace)
        assert summary.set_count + summary.expired + summary.canceled \
            <= 2 * len(trace.events)
        assert summary.user_space + summary.kernel == summary.accesses

    def test_linux_expiries_land_on_jiffy_boundaries(self, short_run):
        if short_run.trace.os_name != "linux":
            pytest.skip("Linux-only invariant")
        for event in short_run.trace.events:
            if event.kind == EventKind.EXPIRE \
                    and event.expires_ns is not None \
                    and event.ts == event.expires_ns:
                assert event.expires_ns % JIFFY == 0


class TestEngineProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 10_000),    # schedule time
                              st.booleans()),            # cancel it?
                    min_size=1, max_size=60))
    def test_only_live_callbacks_fire_in_order(self, spec):
        engine = Engine()
        fired = []
        events = []
        for index, (when, _cancel) in enumerate(spec):
            events.append(engine.call_at(
                when, lambda i=index: fired.append(i)))
        for (when, cancel), event in zip(spec, events):
            if cancel:
                event.cancel()
        engine.run()
        expected = [i for i, (w, c) in enumerate(spec) if not c]
        assert sorted(fired) == expected
        times = [spec[i][0] for i in fired]
        assert times == sorted(times)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(1, 1000), min_size=1, max_size=30))
    def test_run_until_is_composable(self, delays):
        """Running to T in one go or in arbitrary chunks fires the same
        callbacks at the same times."""
        def run(chunks):
            engine = Engine()
            fired = []
            for delay in delays:
                engine.call_at(delay, lambda d=delay: fired.append(d))
            position = 0
            for chunk in chunks:
                position += chunk
                engine.run_until(position)
            engine.run_until(1001)
            return fired

        assert run([1001]) == run([250, 250, 250, 251]) \
            == run([1] * 1001)
