"""Tests for the Section 5.1 policy study harness.

The load-bearing guarantees: the grid is a pure function of
``(seed, populations, conditions, policies)`` — byte-identical across
``--jobs`` worker counts, the batch vs streaming population paths and
the ``--hosts 1 --cpus 1`` routing — and the rendered table keeps the
paper's shape (adaptive beating fixed timeouts where the distribution
is stable, paying a measured cost on a level shift).
"""

import os

import pytest

from repro.core.report import render_sec51
from repro.study import (POLICIES, Sec51LiveTracker, get_policy,
                         harvest_population, policy_names,
                         run_sec51_cells, run_sec51_study)
from repro.study.sec51 import WARMUP_WAITS, _simulate_cell

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURE = os.path.join(os.path.dirname(HERE), "data", "sec51_table.txt")

#: Synthetic populations: the golden grid needs no workload run.
GOLDEN_POPULATIONS = {"linux": (400, 1800), "vista": (500, 1700)}


def golden_sec51_result():
    """The pinned grid: one seeded WAN cell pair per backend."""
    return run_sec51_cells(GOLDEN_POPULATIONS, conditions=("wan",),
                           policies=("fixed-30", "p2-99"), seed=0,
                           jobs=1)


class TestPolicyRegistry:
    def test_builtin_policies(self):
        assert policy_names() == ["fixed-5", "fixed-15", "fixed-30",
                                  "jacobson", "p2-95", "p2-99"]
        assert get_policy("fixed-15").fixed_timeout == 15.0
        assert get_policy("p2-99").kind == "adaptive"

    def test_unknown_policy_lists_choices(self):
        with pytest.raises(KeyError, match="registered"):
            get_policy("oracle")

    def test_adaptive_factories_are_fresh(self):
        spec = POLICIES["p2-99"]
        assert spec.make() is not spec.make()


class TestCellPurity:
    def test_cell_is_pure_function_of_job(self):
        job = ("linux", "wan", "p2-99", 300, 2000, 7)
        assert _simulate_cell(job) == _simulate_cell(job)

    def test_policies_see_identical_network(self):
        """All policies in a condition column share failure count —
        the same latency stream underneath."""
        cells = {name: _simulate_cell(("linux", "wan", name, 300,
                                       2000, 0))
                 for name in policy_names()}
        assert len({cell.failures for cell in cells.values()}) == 1
        assert len({cell.waits for cell in cells.values()}) == 1

    def test_warmup_excluded_from_counters(self):
        cell = _simulate_cell(("linux", "wan", "fixed-30", 300,
                               2000, 0))
        assert cell.waits == 2000 - WARMUP_WAITS


class TestJobsDifferential:
    def test_grid_identical_serial_vs_pool(self):
        populations = {"linux": (400, 1500), "vista": (500, 1400)}
        kwargs = dict(conditions=("lan", "wan", "lan-wan-shift"),
                      policies=("fixed-5", "fixed-30", "jacobson",
                                "p2-99"),
                      seed=3)
        serial = run_sec51_cells(populations, jobs=1, **kwargs)
        pooled = run_sec51_cells(populations, jobs=2, **kwargs)
        assert render_sec51(serial) == render_sec51(pooled)
        assert serial.cells == pooled.cells

    def test_population_list_and_pair_agree(self):
        counts = [3, 5, 2, 8]
        from_list = run_sec51_cells({"linux": counts},
                                    conditions=("wan",),
                                    policies=("fixed-30",), jobs=1)
        from_pair = run_sec51_cells({"linux": (4, 18)},
                                    conditions=("wan",),
                                    policies=("fixed-30",), jobs=1)
        assert from_list.cells == from_pair.cells

    def test_bad_names_rejected_before_simulation(self):
        with pytest.raises(KeyError, match="condition"):
            run_sec51_cells({"linux": (10, 50)}, conditions=("dialup",),
                            policies=("fixed-30",))
        with pytest.raises(KeyError, match="policy"):
            run_sec51_cells({"linux": (10, 50)}, conditions=("wan",),
                            policies=("oracle",))


class TestStudyDifferential:
    """The expensive end-to-end invariants, on one short population."""

    KWARGS = dict(backends=("linux",), conditions=("lan", "wan"),
                  policies=("fixed-30", "p2-99"), minutes=0.1,
                  seed=0, connections=100, jobs=1)

    @pytest.fixture(scope="class")
    def batch(self):
        return run_sec51_study(**self.KWARGS)

    def test_batch_vs_streaming_population(self, batch):
        streamed = run_sec51_study(stream=True, **self.KWARGS)
        assert render_sec51(batch) == render_sec51(streamed)

    def test_plain_vs_hosts1_cpus1(self, batch):
        routed = run_sec51_study(hosts=1, cpus=1, **self.KWARGS)
        assert render_sec51(batch) == render_sec51(routed)

    def test_repeated_run_is_byte_identical(self, batch):
        again = run_sec51_study(**self.KWARGS)
        assert render_sec51(batch) == render_sec51(again)

    def test_adaptive_beats_fixed_on_stable_conditions(self, batch):
        for condition in ("lan", "wan"):
            adaptive = batch.cell("linux", condition, "p2-99")
            fixed = batch.cell("linux", condition, "fixed-30")
            assert adaptive.spurious_rate <= fixed.spurious_rate
            assert adaptive.detection_p99 < fixed.detection_p99

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError, match="serverfarm"):
            run_sec51_study(backends=("beos",), minutes=0.1)


class TestHarvestPopulation:
    def test_non_farm_run_rejected(self):
        from repro.workloads import run_workload
        from repro.sim.clock import SECOND
        run = run_workload("linux", "idle", 2 * SECOND, seed=0)
        with pytest.raises(ValueError, match="serverfarm"):
            harvest_population(run)


class TestGoldenTable:
    def test_rendered_grid_matches_fixture(self):
        """Byte-for-byte pin of the policy-comparison table.  If an
        intentional change moves it, regenerate via
        ``PYTHONPATH=src:. python tests/data/make_fixtures.py``."""
        with open(FIXTURE, encoding="utf-8") as fh:
            expected = fh.read()
        assert render_sec51(golden_sec51_result()) == expected

    def test_fixture_shows_adaptive_winning(self):
        with open(FIXTURE, encoding="utf-8") as fh:
            text = fh.read()
        assert "p2-99" in text and "fixed-30" in text
        assert "30.000" in text      # the fixed detection latency


class TestMetrics:
    def test_collect_sec51_series(self):
        from repro.obs import collect_sec51
        snapshot = collect_sec51(golden_sec51_result())
        text = snapshot.render()
        assert 'repro_sec51_waits_total{backend="linux",' \
               'condition="wan",policy="fixed-30"}' in text
        for name in ("repro_sec51_failures_total",
                     "repro_sec51_false_timeouts_total",
                     "repro_sec51_wakeups_total",
                     "repro_sec51_relearns_total",
                     "repro_sec51_spurious_rate",
                     "repro_sec51_detection_seconds",
                     "repro_sec51_wakeups_per_connection",
                     "repro_sec51_connections",
                     "repro_sec51_timeout_seconds"):
            assert name in text
        assert 'quantile="p99"' in text

    def test_collection_is_pure(self):
        from repro.obs import collect_sec51
        result = golden_sec51_result()
        first = collect_sec51(result).render()
        second = collect_sec51(result).render()
        assert first == second


class TestLiveTracker:
    def test_advance_is_deterministic_in_virtual_time(self):
        a = Sec51LiveTracker(seed=1)
        b = Sec51LiveTracker(seed=1)
        a.advance(10_000_000_000)
        # Two half steps land exactly on one full step.
        b.advance(5_000_000_000)
        b.advance(10_000_000_000)
        assert a._cells.keys() == b._cells.keys()
        for key in a._cells:
            assert {k: v for k, v in a._cells[key].items()
                    if k != "estimator"} == \
                   {k: v for k, v in b._cells[key].items()
                    if k != "estimator"}

    def test_collect_publishes_live_series(self):
        from repro.obs.metrics import MetricsRegistry
        tracker = Sec51LiveTracker(seed=0)
        tracker.advance(20_000_000_000)
        registry = MetricsRegistry()
        tracker.collect(registry, {"os": "linux"})
        text = registry.snapshot().render()
        assert "repro_sec51_live_waits_total" in text
        assert 'policy="p2-99"' in text


class TestCli:
    def test_sec51_cli_renders_and_exits_zero(self, capsys):
        from repro.cli import main
        code = main(["sec51", "--minutes", "0.1", "--connections",
                     "100", "--backends", "linux", "--conditions",
                     "lan", "--policies", "fixed-30,p2-99",
                     "--jobs", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Section 5.1" in out
        assert "p2-99" in out

    def test_unknown_condition_exits_2(self, capsys):
        from repro.cli import main
        code = main(["sec51", "--conditions", "dialup"])
        assert code == 2
        assert "registered" in capsys.readouterr().err
