"""Tests for the synthetic network-condition model."""

import pytest

from repro.sim.netmodel import (CONDITIONS, LevelShift, NetCondition,
                                NetModel, condition_names,
                                get_condition, register_condition)
from repro.sim.rng import RngStream


def model(name, seed=0, stream="test"):
    return NetModel(get_condition(name), RngStream(seed, stream))


class TestRegistry:
    def test_builtins_registered(self):
        for name in ("lan", "wan", "datacenter", "jittery",
                     "lossy-wan", "lan-wan-shift", "blackout"):
            assert get_condition(name).name == name
            assert name in condition_names()

    def test_unknown_name_lists_choices(self):
        with pytest.raises(KeyError, match="registered"):
            get_condition("dialup")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_condition(NetCondition("lan", median_s=1.0))

    def test_replace_allows_override(self):
        original = CONDITIONS["lan"]
        try:
            register_condition(NetCondition("lan", median_s=1.0),
                               replace=True)
            assert get_condition("lan").median_s == 1.0
        finally:
            register_condition(original, replace=True)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        assert model("wan").stream(200) == model("wan").stream(200)

    def test_stream_names_are_independent(self):
        a = NetModel(get_condition("wan"), RngStream(0, "a")).stream(50)
        b = NetModel(get_condition("wan"), RngStream(0, "b")).stream(50)
        assert a != b

    def test_policies_share_one_stream(self):
        """The study's invariant: one (seed, condition) stream feeds
        every policy, so re-materialising it gives identical draws."""
        first = model("lossy-wan", seed=3).stream(500)
        second = model("lossy-wan", seed=3).stream(500)
        assert first == second


class TestSampling:
    def test_latencies_cluster_around_median(self):
        condition = get_condition("wan")
        arrived = [s for s in model("wan").stream(2000) if s is not None]
        in_band = sum(1 for s in arrived
                      if condition.median_s / 4 < s
                      < condition.median_s * 4)
        assert in_band / len(arrived) > 0.95

    def test_failure_rate_matches_condition(self):
        net = model("wan")
        stream = net.stream(5000)
        failures = sum(1 for s in stream if s is None)
        assert failures == net.failures
        assert failures / 5000 == pytest.approx(
            get_condition("wan").failure, abs=0.01)

    def test_loss_inflates_latency_by_rto_chain(self):
        condition = get_condition("lossy-wan")
        net = model("lossy-wan")
        stream = [s for s in net.stream(2000) if s is not None]
        assert net.retransmitted > 0
        delayed = [s for s in stream if s >= condition.rto_s]
        # A retransmitted reply carries at least one full RTO.
        assert len(delayed) >= net.retransmitted * 0.5
        assert max(stream) < condition.rto_s * (1 << 7)

    def test_lossless_condition_never_retransmits(self):
        net = model("lan")
        net.stream(1000)
        assert net.retransmitted == 0


class TestLevelShifts:
    def test_regime_at_applies_script(self):
        condition = get_condition("lan-wan-shift")
        before = condition.regime_at(0.25)
        after = condition.regime_at(0.75)
        assert after[0] == pytest.approx(before[0] * 1000.0)
        assert before[1:] == after[1:]

    def test_blackout_fails_every_late_wait(self):
        stream = model("blackout").stream(400)
        late = stream[200:]
        assert all(s is None for s in late)
        assert any(s is not None for s in stream[:200])

    def test_shift_replaces_loss_and_failure(self):
        condition = NetCondition(
            "tmp", median_s=1.0, loss=0.1, failure=0.2,
            shifts=(LevelShift(at=0.5, loss_to=0.0, failure_to=0.0),))
        assert condition.regime_at(0.6) == (1.0, 0.0, 0.0)

    def test_zero_length_stream_uses_base_regime(self):
        net = model("lan-wan-shift")
        # n=0 guards the division; sample(0, 0) sees the base (LAN)
        # regime, not the shifted one.
        sample = net.sample(0, 0)
        assert sample is None or sample < 1.0
