"""Synthetic trace construction helpers for core analysis tests."""

from repro.sim.clock import MILLISECOND, SECOND
from repro.tracing import EventKind, TimerEvent, Trace


class TraceBuilder:
    """Builds event streams for one or more synthetic timers."""

    def __init__(self, os_name="linux", duration_ns=60 * SECOND):
        self.os_name = os_name
        self.duration_ns = duration_ns
        self.events = []

    def _emit(self, kind, ts, timer_id, timeout_ns=None, expires_ns=None,
              flags=0, comm="app", pid=1, domain="user",
              site=("site",)):
        self.events.append(TimerEvent(kind, ts, timer_id, pid, comm,
                                      domain, site, timeout_ns,
                                      expires_ns, flags))
        return self

    def set(self, ts, timer_id=1, timeout_ns=SECOND, **kw):
        return self._emit(EventKind.SET, ts, timer_id, timeout_ns,
                          ts + timeout_ns, **kw)

    def expire(self, ts, timer_id=1, **kw):
        return self._emit(EventKind.EXPIRE, ts, timer_id,
                          expires_ns=ts, **kw)

    def cancel(self, ts, timer_id=1, pending=True, **kw):
        return self._emit(EventKind.CANCEL, ts, timer_id,
                          expires_ns=ts if pending else None, **kw)

    def build(self, workload="synthetic") -> Trace:
        self.events.sort(key=lambda e: e.ts)
        return Trace(os_name=self.os_name, workload=workload,
                     duration_ns=self.duration_ns, events=self.events)


def periodic_timer(builder, *, period_ns=SECOND, count=20, timer_id=1,
                   start=0):
    """Always expires, immediately re-set to the same value."""
    ts = start
    for _ in range(count):
        builder.set(ts, timer_id, period_ns)
        ts += period_ns
        builder.expire(ts, timer_id)
    return builder


def watchdog_timer(builder, *, timeout_ns=10 * SECOND,
                   kick_every_ns=2 * SECOND, count=20, timer_id=1):
    """Re-set to the same value before every expiry (never fires)."""
    ts = 0
    for _ in range(count):
        builder.set(ts, timer_id, timeout_ns)
        ts += kick_every_ns
    return builder


def timeout_timer(builder, *, timeout_ns=30 * SECOND,
                  cancel_after_ns=50 * MILLISECOND,
                  gap_ns=2 * SECOND, count=20, timer_id=1):
    """Cancelled shortly after set; re-set after a non-trivial gap."""
    ts = 0
    for _ in range(count):
        builder.set(ts, timer_id, timeout_ns)
        ts += cancel_after_ns
        builder.cancel(ts, timer_id)
        ts += gap_ns
    return builder


def delay_timer(builder, *, delay_ns=5 * SECOND, work_ns=SECOND,
                count=20, timer_id=1):
    """Expires, then re-set after a non-trivial work interval."""
    ts = 0
    for _ in range(count):
        builder.set(ts, timer_id, delay_ns)
        ts += delay_ns
        builder.expire(ts, timer_id)
        ts += work_ns
    return builder


def deferred_timer(builder, *, delay_ns=5 * SECOND,
                   touches_per_round=3, rounds=6, timer_id=1):
    """Deferred a few times, then allowed to expire, then restarted."""
    ts = 0
    for _ in range(rounds):
        for _ in range(touches_per_round):
            builder.set(ts, timer_id, delay_ns)
            ts += delay_ns // 2
        ts += delay_ns - delay_ns // 2
        builder.expire(ts, timer_id)
        ts += delay_ns
    return builder


def countdown_timer(builder, *, nominal_ns=60 * SECOND,
                    step_ns=7 * SECOND, resets=3, timer_id=1):
    """The X select idiom: values count down to zero, then reset."""
    ts = 0
    for _ in range(resets):
        remaining = nominal_ns
        while remaining > 0:
            builder.set(ts, timer_id, remaining)
            ts += step_ns
            builder.cancel(ts, timer_id)
            remaining -= step_ns
    return builder
