"""Property tests for the Section 5.1 estimators.

Each estimator in :mod:`repro.core.adaptive` is checked against an
independent reference over many seeds: P² against exact offline
quantiles, the Jacobson loop against a literal RFC 6298 transcription,
backoff against its closed-form schedule, and the level-shift detector
against scripted shifted/stationary streams.
"""

import math
import random
import statistics

import pytest

from repro.core.adaptive import (AdaptiveTimeout, ExponentialBackoff,
                                 JacobsonEstimator, LevelShiftDetector,
                                 P2Quantile)

SEEDS = range(20)


class TestP2AgainstExactQuantiles:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("p", [0.5, 0.9, 0.99])
    def test_tracks_exact_quantile_within_bounded_error(self, seed, p):
        """P² stays within a bounded relative error of the exact
        offline quantile on a well-behaved (lognormal) stream."""
        rng = random.Random(seed)
        samples = [rng.lognormvariate(0.0, 0.4) for _ in range(4000)]
        estimator = P2Quantile(p)
        for x in samples:
            estimator.observe(x)
        # statistics.quantiles with n=100 gives exact percentile cuts
        # of the full sample (inclusive: data covers the extremes).
        cuts = statistics.quantiles(samples, n=1000, method="inclusive")
        exact = cuts[int(p * 1000) - 1]
        assert estimator.value() == pytest.approx(exact, rel=0.15)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_median_on_uniform_stream(self, seed):
        rng = random.Random(seed)
        samples = [rng.uniform(0.0, 1.0) for _ in range(4000)]
        estimator = P2Quantile(0.5)
        for x in samples:
            estimator.observe(x)
        exact = statistics.median(samples)
        assert estimator.value() == pytest.approx(exact, abs=0.05)

    def test_small_sample_fallback_is_order_statistic(self):
        estimator = P2Quantile(0.9)
        assert estimator.value() is None
        for x in (3.0, 1.0, 2.0):
            estimator.observe(x)
        # Below 5 samples: nearest-rank on the sorted prefix.
        assert estimator.value() == 3.0


def rfc6298_reference(samples, *, k=4.0):
    """Literal RFC 6298 step-by-step update (alpha=1/8, beta=1/4)."""
    srtt = samples[0]
    rttvar = samples[0] / 2
    for r in samples[1:]:
        rttvar = (1 - 0.25) * rttvar + 0.25 * abs(srtt - r)
        srtt = (1 - 0.125) * srtt + 0.125 * r
    return srtt, rttvar, srtt + k * rttvar


class TestJacobsonAgainstRfc6298:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_literal_rfc_updates(self, seed):
        rng = random.Random(seed)
        samples = [rng.lognormvariate(math.log(0.1), 0.5)
                   for _ in range(500)]
        estimator = JacobsonEstimator()
        for r in samples:
            estimator.observe(r)
        srtt, rttvar, rto = rfc6298_reference(samples)
        assert estimator.srtt == pytest.approx(srtt, rel=1e-9)
        assert estimator.rttvar == pytest.approx(rttvar, rel=1e-9)
        assert estimator.timeout() == pytest.approx(
            min(max(rto, estimator.min_timeout), estimator.max_timeout),
            rel=1e-9)

    def test_first_sample_initialises_per_rfc(self):
        estimator = JacobsonEstimator()
        estimator.observe(0.2)
        assert estimator.srtt == 0.2
        assert estimator.rttvar == 0.1
        assert estimator.timeout() == pytest.approx(0.2 + 4 * 0.1)


class TestJacobsonColdStart:
    """Regression: the pre-fix fallback was ``min_timeout or 1.0``,
    which read an explicit ``min_timeout=0.0`` as "unset"."""

    def test_explicit_zero_min_timeout_still_gets_default(self):
        estimator = JacobsonEstimator(min_timeout=0.0)
        assert estimator.timeout() == JacobsonEstimator.NO_SAMPLE_TIMEOUT

    def test_default_is_rfc6298_initial_rto(self):
        assert JacobsonEstimator().timeout() == 1.0

    def test_min_timeout_clamps_cold_start_up(self):
        assert JacobsonEstimator(min_timeout=5.0).timeout() == 5.0

    def test_max_timeout_clamps_cold_start_down(self):
        estimator = JacobsonEstimator(max_timeout=0.5)
        assert estimator.timeout() == 0.5

    def test_custom_no_sample_timeout(self):
        estimator = JacobsonEstimator(no_sample_timeout=30.0)
        assert estimator.timeout() == 30.0
        estimator.observe(0.1)
        assert estimator.timeout() < 30.0


class TestBackoffInvariants:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_schedule_monotone_capped_and_exhausts(self, seed):
        rng = random.Random(seed)
        base = rng.uniform(0.01, 2.0)
        factor = rng.uniform(1.1, 3.0)
        maximum = base * rng.uniform(2.0, 50.0)
        retries = rng.randrange(1, 12)
        backoff = ExponentialBackoff(base, factor=factor,
                                     maximum=maximum,
                                     max_retries=retries)
        timeouts = []
        while not backoff.exhausted:
            timeouts.append(backoff.next_timeout())
        assert len(timeouts) == retries
        assert timeouts[0] == pytest.approx(min(base, maximum))
        assert all(a <= b + 1e-12
                   for a, b in zip(timeouts, timeouts[1:]))
        assert all(t <= maximum + 1e-12 for t in timeouts)
        assert sum(timeouts) == pytest.approx(backoff.total_wait())
        backoff.reset()
        assert not backoff.exhausted
        assert backoff.next_timeout() == pytest.approx(timeouts[0])

    def test_rejects_nonpositive_base(self):
        with pytest.raises(ValueError):
            ExponentialBackoff(0.0)


class TestLevelShiftDetector:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_detects_scripted_10x_shift(self, seed):
        rng = random.Random(seed)
        detector = LevelShiftDetector()
        for _ in range(500):
            assert not detector.observe(
                1e-3 * math.exp(rng.gauss(0.0, 0.3)))
        fired = [detector.observe(1e-2 * math.exp(rng.gauss(0.0, 0.3)))
                 for _ in range(50)]
        assert any(fired)
        assert detector.shifts == 1
        # The reference re-anchors at the new level: no refiring while
        # the stream stays there.
        assert not any(
            detector.observe(1e-2 * math.exp(rng.gauss(0.0, 0.3)))
            for _ in range(200))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_never_fires_on_stationary_noise(self, seed):
        rng = random.Random(seed)
        detector = LevelShiftDetector()
        for _ in range(2000):
            assert not detector.observe(
                1e-3 * math.exp(rng.gauss(0.0, 0.3)))
        assert detector.shifts == 0

    def test_adaptive_timeout_relearns_on_shift(self):
        rng = random.Random(7)
        policy = AdaptiveTimeout(confidence=0.99, safety=2.0,
                                 initial_timeout=30.0)
        for _ in range(200):
            policy.observe(1e-3 * math.exp(rng.gauss(0.0, 0.2)))
        before = policy.timeout()
        assert before < 0.01
        for _ in range(50):
            policy.observe(1.0 * math.exp(rng.gauss(0.0, 0.2)))
        assert policy.relearned == 1
        assert policy.timeout() > 1.0
