"""Tests for cross-trace comparison tooling."""

import pytest

from repro.sim.clock import SECOND, millis
from repro.core.compare import (class_shift, compare_summaries,
                                histogram_distance, trace_value_distance)
from repro.core.values import value_histogram

from .helpers import TraceBuilder, periodic_timer, timeout_timer


def periodic_trace(period=SECOND):
    builder = TraceBuilder()
    periodic_timer(builder, period_ns=period)
    return builder.build()


class TestSummaryComparison:
    def test_identical_traces_ratio_one(self):
        comparison = compare_summaries(periodic_trace(),
                                       periodic_trace())
        for _name, a, b, ratio in comparison.rows():
            assert a == b
            assert ratio == pytest.approx(1.0)

    def test_ratio_reflects_volume(self):
        small = TraceBuilder()
        periodic_timer(small, count=10)
        big = TraceBuilder()
        periodic_timer(big, count=40)
        comparison = compare_summaries(small.build(), big.build())
        rows = dict((name, ratio) for name, _a, _b, ratio
                    in comparison.rows())
        assert rows["Set"] == pytest.approx(4.0)

    def test_render(self):
        text = compare_summaries(periodic_trace(),
                                 periodic_trace()).render()
        assert "ratio" in text and "Set" in text


class TestHistogramDistance:
    def test_identical_is_zero(self):
        h = value_histogram(periodic_trace())
        assert histogram_distance(h, h) == 0.0

    def test_disjoint_is_one(self):
        a = value_histogram(periodic_trace(SECOND))
        b = value_histogram(periodic_trace(5 * SECOND))
        assert histogram_distance(a, b) == pytest.approx(1.0)

    def test_partial_overlap(self):
        builder = TraceBuilder()
        periodic_timer(builder, period_ns=SECOND, timer_id=1, count=10)
        periodic_timer(builder, period_ns=2 * SECOND, timer_id=2,
                       count=10)
        mixed = builder.build()
        pure = periodic_trace(SECOND)
        distance = trace_value_distance(mixed, pure)
        assert 0.0 < distance < 1.0

    def test_empty_traces(self):
        empty = value_histogram(TraceBuilder().build())
        assert histogram_distance(empty, empty) == 0.0
        assert histogram_distance(
            empty, value_histogram(periodic_trace())) == 1.0


class TestClassShift:
    def test_shift_from_periodic_to_timeout(self):
        periodic = TraceBuilder()
        periodic_timer(periodic, timer_id=1)
        timeouty = TraceBuilder()
        timeout_timer(timeouty, timer_id=1)
        shift = class_shift(periodic.build(), timeouty.build())
        name, delta = shift.biggest_shift()
        assert name in ("periodic", "timeout")
        assert abs(delta) == pytest.approx(100.0)

    def test_no_shift(self):
        shift = class_shift(periodic_trace(), periodic_trace())
        assert all(d == 0 for d in shift.delta().values())

    def test_render(self):
        text = class_shift(periodic_trace(), periodic_trace()).render()
        assert "delta" in text
