"""Tests for the Section 4.1 usage-pattern classifier."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.clock import MILLISECOND, SECOND
from repro.core import (TimerClass, classify_trace, pattern_breakdown)
from repro.core.classify import classify_episodes
from repro.core.episodes import (Episode, Outcome, dominant_value,
                                 extract_episodes)

from .helpers import (TraceBuilder, countdown_timer, deferred_timer,
                      delay_timer, periodic_timer, timeout_timer,
                      watchdog_timer)


def classify_one(builder):
    trace = builder.build()
    verdicts = classify_trace(trace, logical=False)
    assert len(verdicts) == 1
    return verdicts[0]


class TestPatterns:
    def test_periodic(self):
        verdict = classify_one(periodic_timer(TraceBuilder()))
        assert verdict.timer_class == TimerClass.PERIODIC
        assert verdict.dominant_value_ns == SECOND

    def test_watchdog(self):
        verdict = classify_one(watchdog_timer(TraceBuilder()))
        assert verdict.timer_class == TimerClass.WATCHDOG

    def test_timeout(self):
        verdict = classify_one(timeout_timer(TraceBuilder()))
        assert verdict.timer_class == TimerClass.TIMEOUT
        assert verdict.dominant_value_ns == 30 * SECOND

    def test_delay(self):
        verdict = classify_one(delay_timer(TraceBuilder()))
        assert verdict.timer_class == TimerClass.DELAY

    def test_deferred(self):
        verdict = classify_one(deferred_timer(TraceBuilder(
            os_name="vista")))
        assert verdict.timer_class == TimerClass.DEFERRED

    def test_countdown(self):
        verdict = classify_one(countdown_timer(TraceBuilder()))
        assert verdict.timer_class == TimerClass.COUNTDOWN

    def test_too_few_observations_is_other(self):
        builder = TraceBuilder()
        builder.set(0, 1, SECOND)
        builder.expire(SECOND, 1)
        verdict = classify_one(builder)
        assert verdict.timer_class == TimerClass.OTHER

    def test_irregular_values_are_other(self):
        builder = TraceBuilder()
        ts = 0
        for i, value in enumerate([SECOND, 3 * SECOND, 7 * SECOND,
                                   2 * SECOND, 9 * SECOND] * 3):
            builder.set(ts, 1, value)
            ts += value // 2
            builder.cancel(ts, 1)
            ts += SECOND * (1 + i % 2)
        verdict = classify_one(builder)
        assert verdict.timer_class == TimerClass.OTHER


class TestJitterTolerance:
    def test_periodic_with_sub_tolerance_jitter(self):
        """The paper's 2 ms allowance: jitter below it must not break
        classification."""
        builder = TraceBuilder()
        ts = 0
        jitters = [0, 900_000, -700_000, 1_500_000, -1_200_000] * 4
        for jitter in jitters:
            builder.set(ts, 1, SECOND + jitter)
            ts += SECOND + jitter
            builder.expire(ts, 1)
        verdict = classify_one(builder)
        assert verdict.timer_class == TimerClass.PERIODIC

    def test_value_spread_beyond_tolerance_is_not_constant(self):
        builder = TraceBuilder()
        ts = 0
        for i in range(20):
            value = SECOND + i * 100 * MILLISECOND   # strongly varying
            builder.set(ts, 1, value)
            ts += value
            builder.expire(ts, 1)
        verdict = classify_one(builder)
        assert verdict.timer_class != TimerClass.PERIODIC


class TestCancelImmediateRearm:
    def test_blocking_watchdog_shape(self):
        """Cancel followed by an immediate same-value re-set counts as
        a deferral (the Apache connection-guard shape)."""
        builder = TraceBuilder()
        ts = 0
        for _ in range(30):
            builder.set(ts, 1, 15 * SECOND)
            ts += 3 * MILLISECOND
            builder.cancel(ts, 1)
            ts += 500_000    # back-to-back re-arm, well under 2 ms
        verdict = classify_one(builder)
        assert verdict.timer_class == TimerClass.WATCHDOG


class TestEpisodes:
    def test_extraction_outcomes(self):
        builder = TraceBuilder()
        builder.set(0, 1, SECOND)
        builder.expire(SECOND, 1)
        builder.set(2 * SECOND, 1, SECOND)
        builder.cancel(2 * SECOND + 100, 1)
        builder.set(3 * SECOND, 1, SECOND)
        builder.set(3 * SECOND + 500, 1, SECOND)      # re-arm
        trace = builder.build()
        episodes = extract_episodes(trace.instances()[0], "linux")
        outcomes = [e.outcome for e in episodes]
        assert outcomes == [Outcome.EXPIRED, Outcome.CANCELED,
                            Outcome.REARMED, Outcome.UNRESOLVED]

    def test_inactive_cancel_ignored(self):
        builder = TraceBuilder()
        builder.set(0, 1, SECOND)
        builder.expire(SECOND, 1)
        builder.cancel(SECOND + 10, 1, pending=False)
        trace = builder.build()
        episodes = extract_episodes(trace.instances()[0], "linux")
        assert len(episodes) == 1
        assert episodes[0].outcome == Outcome.EXPIRED

    def test_elapsed_fraction(self):
        builder = TraceBuilder()
        builder.set(0, 1, SECOND)
        builder.cancel(250 * MILLISECOND, 1)
        trace = builder.build()
        episode = extract_episodes(trace.instances()[0], "linux")[0]
        assert episode.elapsed_fraction == pytest.approx(0.25)

    def test_dominant_value_pools_within_tolerance(self):
        episodes = [Episode(0, SECOND + d, Outcome.EXPIRED, SECOND, None)
                    for d in (0, 500_000, -500_000, 1_000_000)]
        value, share = dominant_value(episodes)
        assert share == 1.0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.sampled_from([Outcome.EXPIRED, Outcome.CANCELED,
                                     Outcome.REARMED]),
                    min_size=3, max_size=40))
    def test_classifier_total_on_any_outcome_sequence(self, outcomes):
        """Property: the classifier never crashes and always returns a
        class for arbitrary outcome sequences."""
        episodes = []
        ts = 0
        for outcome in outcomes:
            episodes.append(Episode(ts, SECOND, outcome,
                                    ts + SECOND // 2, 0))
            ts += SECOND
        timer_class, value = classify_episodes(episodes)
        assert isinstance(timer_class, TimerClass)


class TestBreakdown:
    def test_figure2_row_sums_to_100(self):
        builder = TraceBuilder()
        periodic_timer(builder, timer_id=1)
        watchdog_timer(builder, timer_id=2)
        timeout_timer(builder, timer_id=3)
        delay_timer(builder, timer_id=4)
        countdown_timer(builder, timer_id=5)
        breakdown = pattern_breakdown(builder.build(), logical=False)
        row = breakdown.figure2_row()
        assert sum(row.values()) == pytest.approx(100.0)
        assert row["periodic"] == pytest.approx(20.0)
        assert row["watchdog"] == pytest.approx(20.0)
        assert row["timeout"] == pytest.approx(20.0)
        assert row["delay"] == pytest.approx(20.0)
        assert row["other"] == pytest.approx(20.0)   # countdown folds in

    def test_empty_trace(self):
        breakdown = pattern_breakdown(TraceBuilder().build())
        assert breakdown.total == 0
        assert breakdown.percentage(TimerClass.PERIODIC) == 0.0
