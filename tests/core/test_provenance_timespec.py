"""Tests for Sections 5.2 (provenance/dependencies) and 5.3 (flexible
time specifications and batching)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, MINUTE, SECOND, millis, seconds
from repro.core.provenance import (DependencyGraph, LayerSpec,
                                   LayeredTimeoutStack, Relation)
from repro.core.timespec import (AverageRate, Exact, FlexibleTimerQueue,
                                 Window, after, stab_windows)


class TestDependencyGraph:
    def _graph(self):
        graph = DependencyGraph()
        graph.declare("dhcp-t1", seconds(30), layer="dhcp")
        graph.declare("dhcp-t2", seconds(60), layer="dhcp")
        graph.declare("tcp-keepalive", seconds(7200), layer="tcp")
        graph.declare("tcp-rto", millis(204), layer="tcp")
        return graph

    def test_overlap_max_marks_shorter_redundant(self):
        graph = self._graph()
        graph.relate("dhcp-t2", "dhcp-t1", Relation.OVERLAP_MAX)
        assert graph.redundant_timers() == {"dhcp-t1"}

    def test_overlap_min_marks_longer_redundant(self):
        graph = self._graph()
        graph.relate("dhcp-t2", "dhcp-t1", Relation.OVERLAP_MIN)
        assert graph.redundant_timers() == {"dhcp-t2"}

    def test_cancel_propagation(self):
        graph = self._graph()
        graph.relate("tcp-keepalive", "tcp-rto", Relation.OVERLAP_CANCEL)
        assert graph.cancellation_propagation("tcp-rto") == \
            {"tcp-keepalive"}
        assert graph.cancellation_propagation("tcp-keepalive") == \
            {"tcp-rto"}

    def test_overlap_rewritten_as_dependency(self):
        """Section 5.2: set t2 only; on expiry set t1 for the rest."""
        graph = self._graph()
        chain = graph.as_dependency_chain("dhcp-t2", "dhcp-t1")
        assert chain == [("dhcp-t1", seconds(30)),
                         ("dhcp-t2", seconds(30))]
        assert sum(d for _, d in chain) == seconds(60)

    def test_rewrite_requires_longer_first(self):
        graph = self._graph()
        with pytest.raises(ValueError):
            graph.as_dependency_chain("dhcp-t1", "dhcp-t2")

    def test_provenance_chain(self):
        graph = DependencyGraph()
        graph.declare("browser", MINUTE, layer="ui")
        graph.declare("smb", seconds(20), layer="fs", parent="browser")
        graph.declare("tcp", seconds(3), layer="net", parent="smb")
        assert graph.provenance_chain("tcp") == ["tcp", "smb", "browser"]

    def test_duplicate_declare_rejected(self):
        graph = DependencyGraph()
        graph.declare("x", 1)
        with pytest.raises(ValueError):
            graph.declare("x", 2)


class TestLayeredStack:
    def test_nfs_layering_exceeds_a_minute(self):
        """Section 2.2.2: the NFS/SunRPC layer alone takes 63.5 s."""
        stack = LayeredTimeoutStack([
            LayerSpec("nfs-rpc", millis(500), retries=7,
                      backoff_factor=2.0),
        ])
        assert stack.failure_detection_ns() > MINUTE

    def test_flattened_alternative_is_fast(self):
        stack = LayeredTimeoutStack([
            LayerSpec("nfs-rpc", millis(500), retries=7,
                      backoff_factor=2.0),
        ])
        flattened = stack.flattened_timeout_ns(millis(130), safety=3.0)
        assert flattened < seconds(1)

    def test_single_layer_worst_case(self):
        assert LayerSpec("x", seconds(2), retries=3).worst_case_ns() \
            == seconds(6)

    def test_empty_stack_rejected(self):
        with pytest.raises(ValueError):
            LayeredTimeoutStack([])


class TestWindows:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            Window(10, 5)

    def test_exact_is_zero_slack(self):
        window = Exact(100)
        assert window.slack_ns == 0

    def test_after_helper(self):
        window = after(1000, 500, slack_ns=200)
        assert (window.earliest, window.latest) == (1500, 1700)

    def test_average_rate_windows(self):
        rate = AverageRate(period_ns=seconds(60),
                           horizon_ns=seconds(300))
        windows = rate.windows(0)
        assert len(windows) == 5
        for i, window in enumerate(windows):
            ideal = (i + 1) * seconds(60)
            assert window.earliest <= ideal <= window.latest


class TestStabbing:
    def test_overlapping_windows_share_a_point(self):
        windows = [Window(0, 100), Window(50, 150), Window(90, 200)]
        points = stab_windows(windows)
        assert len(points) == 1
        assert all(w.earliest <= points[0] <= w.latest for w in windows)

    def test_disjoint_windows_need_separate_points(self):
        windows = [Window(0, 10), Window(20, 30), Window(40, 50)]
        assert len(stab_windows(windows)) == 3

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 1000), st.integers(0, 200)),
                    min_size=1, max_size=25))
    def test_greedy_is_feasible_and_optimal(self, raw):
        """Property: every window is stabbed, and the number of points
        matches a brute-force optimum lower bound (maximum number of
        pairwise-disjoint windows)."""
        windows = [Window(start, start + length) for start, length in raw]
        points = stab_windows(windows)
        for window in windows:
            assert any(window.earliest <= p <= window.latest
                       for p in points)
        # Interval stabbing duality: optimum = max antichain size.
        disjoint = 0
        last_end = -1
        for window in sorted(windows, key=lambda w: w.latest):
            if window.earliest > last_end:
                disjoint += 1
                last_end = window.latest
        assert len(points) == disjoint


class TestFlexibleTimerQueue:
    def test_batching_fires_within_windows(self):
        engine = Engine()
        queue = FlexibleTimerQueue(engine, batching=True)
        timers = [queue.submit(Window(seconds(1) * i // 2 + seconds(1),
                                      seconds(1) * i // 2 + seconds(3)),
                               lambda: None)
                  for i in range(8)]
        engine.run_until(seconds(20))
        for timer in timers:
            assert timer.fired_at is not None
            assert timer.window.earliest <= timer.fired_at \
                <= timer.window.latest

    def test_batching_reduces_wakeups(self):
        def run(batching):
            engine = Engine()
            queue = FlexibleTimerQueue(engine, batching=batching)
            for i in range(20):
                start = seconds(1) + i * millis(100)
                queue.submit(Window(start, start + seconds(5)),
                             lambda: None)
            engine.run_until(seconds(30))
            assert queue.fired == 20
            return queue.wakeups

        assert run(True) < run(False)
        assert run(True) <= 2

    def test_unbatched_fires_at_latest(self):
        engine = Engine()
        queue = FlexibleTimerQueue(engine, batching=False)
        timer = queue.submit(Window(seconds(1), seconds(5)), lambda: None)
        engine.run_until(seconds(10))
        assert timer.fired_at == seconds(5)

    def test_cancel(self):
        engine = Engine()
        queue = FlexibleTimerQueue(engine)
        timer = queue.submit(Window(seconds(1), seconds(2)), lambda: None)
        assert queue.cancel(timer) is True
        assert queue.cancel(timer) is False
        engine.run_until(seconds(5))
        assert timer.fired_at is None
        assert queue.fired == 0

    def test_past_window_rejected(self):
        engine = Engine()
        engine.run_until(seconds(10))
        queue = FlexibleTimerQueue(engine)
        with pytest.raises(ValueError):
            queue.submit(Window(0, seconds(5)), lambda: None)

    def test_exact_windows_behave_like_timers(self):
        engine = Engine()
        queue = FlexibleTimerQueue(engine, batching=True)
        fired = []
        queue.submit(Exact(seconds(3)),
                     lambda: fired.append(engine.now))
        engine.run_until(seconds(5))
        assert fired == [seconds(3)]
