"""Tests for the Section 5.1 adaptive-timeout machinery."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive import (AdaptiveTimeout, ExponentialBackoff,
                                 JacobsonEstimator, LevelShiftDetector,
                                 P2Quantile, simulate_wait_policy)


class TestJacobson:
    def test_converges_to_stable_rtt(self):
        est = JacobsonEstimator()
        for _ in range(200):
            est.observe(0.1)
        assert est.srtt == pytest.approx(0.1)
        assert est.rttvar == pytest.approx(0.0, abs=1e-6)
        assert est.timeout() == pytest.approx(0.1, rel=0.01)

    def test_variance_widens_timeout(self):
        rng = random.Random(1)
        est = JacobsonEstimator()
        for _ in range(500):
            est.observe(0.1 + rng.uniform(-0.05, 0.05))
        assert est.timeout() > 0.11

    def test_min_max_clamps(self):
        est = JacobsonEstimator(min_timeout=0.2, max_timeout=1.0)
        for _ in range(50):
            est.observe(0.001)
        assert est.timeout() == 0.2
        est2 = JacobsonEstimator(max_timeout=1.0)
        for _ in range(50):
            est2.observe(5.0)
        assert est2.timeout() == 1.0


class TestBackoff:
    def test_doubles(self):
        backoff = ExponentialBackoff(0.5)
        assert [backoff.next_timeout() for _ in range(4)] == \
            [0.5, 1.0, 2.0, 4.0]

    def test_nfs_case_exceeds_a_minute(self):
        """The paper's Section 2.2.2 arithmetic: 7 retries doubling
        from 500 ms is over a minute of waiting."""
        backoff = ExponentialBackoff(0.5, max_retries=7)
        assert backoff.total_wait() == pytest.approx(63.5)
        assert backoff.total_wait() > 60.0

    def test_cap_and_exhaustion(self):
        backoff = ExponentialBackoff(1.0, maximum=4.0, max_retries=5)
        values = [backoff.next_timeout() for _ in range(5)]
        assert values == [1.0, 2.0, 4.0, 4.0, 4.0]
        assert backoff.exhausted

    def test_reset(self):
        backoff = ExponentialBackoff(1.0)
        backoff.next_timeout()
        backoff.reset()
        assert backoff.next_timeout() == 1.0

    def test_invalid_base(self):
        with pytest.raises(ValueError):
            ExponentialBackoff(0)


class TestP2Quantile:
    def test_median_of_uniform(self):
        rng = random.Random(7)
        q = P2Quantile(0.5)
        for _ in range(20000):
            q.observe(rng.random())
        assert q.value() == pytest.approx(0.5, abs=0.02)

    def test_p99_of_exponential(self):
        rng = random.Random(7)
        q = P2Quantile(0.99)
        for _ in range(50000):
            q.observe(rng.expovariate(1.0))
        # True p99 of Exp(1) is ln(100) ~ 4.605.
        assert q.value() == pytest.approx(math.log(100), rel=0.15)

    def test_before_five_samples(self):
        q = P2Quantile(0.9)
        assert q.value() is None
        q.observe(1.0)
        assert q.value() == 1.0

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            P2Quantile(1.5)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0.001, max_value=1000.0),
                    min_size=10, max_size=300),
           st.sampled_from([0.5, 0.9, 0.99]))
    def test_estimate_within_sample_range(self, samples, p):
        """Property: the P² estimate always lies within the observed
        sample range."""
        q = P2Quantile(p)
        for sample in samples:
            q.observe(sample)
        estimate = q.value()
        assert min(samples) <= estimate <= max(samples)


class TestLevelShift:
    def test_detects_sustained_jump(self):
        detector = LevelShiftDetector(factor=4.0, window=8)
        for _ in range(100):
            assert not detector.observe(1.0)
        shifted = [detector.observe(50.0) for _ in range(8)]
        assert shifted[-1] is True
        assert detector.shifts == 1

    def test_ignores_transient_outliers(self):
        detector = LevelShiftDetector(factor=4.0, window=8)
        for i in range(200):
            sample = 50.0 if i % 10 == 5 else 1.0
            assert not detector.observe(sample)

    def test_detects_drop(self):
        detector = LevelShiftDetector(factor=4.0, window=4)
        for _ in range(50):
            detector.observe(100.0)
        for _ in range(4):
            result = detector.observe(1.0)
        assert result is True


class TestAdaptiveTimeout:
    def test_learns_distribution(self):
        rng = random.Random(3)
        adaptive = AdaptiveTimeout(confidence=0.99, safety=2.0,
                                   initial_timeout=30.0)
        assert adaptive.timeout() == 30.0
        for _ in range(5000):
            adaptive.observe(rng.lognormvariate(math.log(0.13), 0.3))
        # 99th percentile of this lognormal ~ 0.26s; timeout ~ 2x that —
        # two orders of magnitude below the arbitrary 30 s.
        assert 0.3 < adaptive.timeout() < 2.0

    def test_relearns_after_level_shift(self):
        adaptive = AdaptiveTimeout(confidence=0.9, safety=2.0)
        for _ in range(100):
            adaptive.observe(0.001)
        before = adaptive.timeout()
        for _ in range(50):
            adaptive.observe(0.13)      # moved from LAN to WAN
        assert adaptive.relearned >= 1
        assert adaptive.timeout() > before * 10


class TestPolicySimulation:
    def _latencies(self, n=3000, failure_rate=0.02, seed=5):
        rng = random.Random(seed)
        out = []
        for _ in range(n):
            if rng.random() < failure_rate:
                out.append(None)
            else:
                out.append(rng.lognormvariate(math.log(0.13), 0.4))
        return out

    def test_adaptive_detects_failures_much_faster(self):
        latencies = self._latencies()
        fixed = simulate_wait_policy(latencies, policy="fixed",
                                     fixed_timeout=30.0)
        adaptive = simulate_wait_policy(latencies, policy="adaptive",
                                        fixed_timeout=30.0)
        assert fixed.mean_detection == pytest.approx(30.0)
        assert adaptive.mean_detection < fixed.mean_detection / 10

    def test_adaptive_false_timeouts_bounded(self):
        latencies = self._latencies()
        adaptive = simulate_wait_policy(latencies, policy="adaptive")
        assert adaptive.false_timeout_rate < 0.05

    def test_fixed_has_no_false_timeouts_here(self):
        latencies = self._latencies()
        fixed = simulate_wait_policy(latencies, policy="fixed",
                                     fixed_timeout=30.0)
        assert fixed.false_timeouts == 0
