"""Streaming reducers must reproduce the batch analyses exactly, with
bounded state, behind the unified ``analyze()`` surface."""

import pickle

import pytest

from repro import (StreamingSuite, analyze, render_analysis,
                   run_study_traces, run_workload)
from repro.core import (TraceIndex, duration_scatter, origin_table,
                        pattern_breakdown, rate_series, summarize,
                        value_histogram)
from repro.core.analyze import Analysis
from repro.core.streaming import ProgressSink
from repro.sim.clock import MINUTE

DURATION = int(0.5 * MINUTE)


def _traced_pair(os_name, workload, duration=DURATION, seed=0):
    """(batch trace, finished streaming suite) for one workload —
    the suite fed live from the kernel's trace sink."""
    batch = run_workload(os_name, workload, duration, seed=seed).trace
    suite = StreamingSuite(os_name, workload)
    run = run_workload(os_name, workload, duration, seed=seed,
                       sinks=[suite], retain_events=False)
    assert len(run.trace) == 0          # nothing buffered
    suite.finish(run.trace.duration_ns)
    return batch, suite


@pytest.fixture(scope="module")
def linux_pair():
    return _traced_pair("linux", "idle")


@pytest.fixture(scope="module")
def vista_pair():
    # Vista exercises the wait fast path (KeWaitForSingleObject
    # timeouts), i.e. the retroactive concurrency-sweep inserts.
    return _traced_pair("vista", "idle")


class TestStreamingEqualsBatch:
    @pytest.mark.parametrize("pair", ["linux_pair", "vista_pair"])
    def test_summary_exact(self, pair, request):
        trace, suite = request.getfixturevalue(pair)
        assert suite.summary == summarize(trace)
        assert suite.late_waits == 0

    @pytest.mark.parametrize("pair", ["linux_pair", "vista_pair"])
    def test_breakdown_exact(self, pair, request):
        trace, suite = request.getfixturevalue(pair)
        batch = pattern_breakdown(trace)
        assert suite.breakdown.counts == batch.counts
        assert suite.breakdown.total == batch.total
        assert suite.breakdown.figure2_row() == batch.figure2_row()

    @pytest.mark.parametrize("pair", ["linux_pair", "vista_pair"])
    def test_histogram_exact(self, pair, request):
        trace, suite = request.getfixturevalue(pair)
        assert suite.histogram.counts == value_histogram(trace).counts

    @pytest.mark.parametrize("pair", ["linux_pair", "vista_pair"])
    def test_scatter_exact(self, pair, request):
        trace, suite = request.getfixturevalue(pair)
        batch = duration_scatter(trace)
        assert suite.scatter.points == batch.points
        assert suite.scatter.skipped == batch.skipped
        assert suite.scatter.clipped == batch.clipped

    @pytest.mark.parametrize("pair", ["linux_pair", "vista_pair"])
    def test_origin_table_exact(self, pair, request):
        trace, suite = request.getfixturevalue(pair)
        assert suite.origin_table(min_sets=3) == \
            origin_table(trace, min_sets=3)

    @pytest.mark.parametrize("pair", ["linux_pair", "vista_pair"])
    def test_rates_exact(self, pair, request):
        trace, suite = request.getfixturevalue(pair)
        batch = rate_series(trace, duration_ns=trace.duration_ns)
        assert suite.rates.series == batch.series

    def test_fraction_quantiles_ordered_and_in_range(self, linux_pair):
        trace, suite = linux_pair
        quantiles = suite.fraction_quantiles()
        q50, q90, q99 = (quantiles[q] for q in (0.5, 0.9, 0.99))
        assert q50 <= q90 <= q99
        pcts = [p.fraction_pct for p in duration_scatter(trace).points]
        assert min(pcts) <= q50 and q99 <= max(pcts) + 1e-9


class TestBoundedState:
    def test_peak_state_far_below_event_count(self, linux_pair):
        _trace, suite = linux_pair
        assert suite.n_events > 1000
        assert 0 < suite.peak_state < suite.n_events // 10

    def test_finished_suite_pickles(self, vista_pair):
        trace, suite = vista_pair
        clone = pickle.loads(pickle.dumps(suite))
        assert clone.summary == summarize(trace)
        assert clone.scatter.points == suite.scatter.points


class TestAnalyzeSurface:
    def test_batch_inputs_agree(self, linux_pair, tmp_path):
        trace, _suite = linux_pair
        path = tmp_path / "t.jsonl.gz"
        trace.save(str(path))
        by_trace = analyze(trace)
        by_index = analyze(TraceIndex.of(trace))
        by_path = analyze(path)
        for a in (by_trace, by_index, by_path):
            assert a.mode == "batch"
            assert a.summary() == summarize(trace)
        assert by_trace.supports("nesting")
        assert isinstance(by_trace.adaptivity().render(), str)

    def test_streaming_inputs_agree(self, linux_pair):
        trace, suite = linux_pair
        by_suite = analyze(suite)
        by_events = analyze(iter(trace.events), os_name="linux",
                            workload="idle",
                            duration_ns=trace.duration_ns)
        for a in (by_suite, by_events):
            assert a.mode == "streaming"
            assert a.summary() == summarize(trace)
            assert not a.supports("nesting")
            with pytest.raises(NotImplementedError):
                a.nesting()
            with pytest.raises(NotImplementedError):
                a.adaptivity()
        with pytest.raises(ValueError):
            by_suite.value_histogram(domain="user")

    def test_unfinished_suite_needs_duration(self):
        suite = StreamingSuite("linux", "idle")
        with pytest.raises(ValueError):
            analyze(suite)
        analysis = analyze(suite, duration_ns=MINUTE)
        assert analysis.duration_ns == MINUTE

    def test_rejects_junk(self):
        with pytest.raises(TypeError):
            analyze(42)

    def test_analysis_is_idempotent_passthrough(self, linux_pair):
        trace, _suite = linux_pair
        analysis = analyze(trace)
        assert isinstance(analysis, Analysis)
        assert render_analysis(analysis) == render_analysis(trace)


class TestGoldenOutput:
    def test_analyze_text_pinned(self):
        import os
        trace = run_workload("linux", "idle", DURATION, seed=0).trace
        golden_path = os.path.join(os.path.dirname(__file__), "..",
                                   "data", "golden_analyze.txt")
        golden = open(golden_path, encoding="utf-8").read()
        assert render_analysis(trace) == golden

    def test_streaming_render_matches_batch_sections(self, linux_pair):
        trace, suite = linux_pair
        batch = render_analysis(trace)
        stream = render_analysis(suite)
        # Identical up to the batch-only tail sections.
        head = batch.split("=== Value adaptivity")[0]
        assert stream.startswith(head)
        assert "(unavailable on a streaming analysis)" in stream


class TestStudySinkFactory:
    def test_sinks_ride_the_study_driver(self):
        jobs = [("linux", "idle", DURATION, 0),
                ("vista", "idle", DURATION, 0)]
        results = run_study_traces(
            jobs, processes=2,
            sink_factory=lambda os_name, wl: [StreamingSuite(os_name, wl)])
        assert len(results) == 2
        for (os_name, wl, duration, seed), (trace, sinks) in \
                zip(jobs, results):
            (suite,) = sinks
            assert suite.finished
            assert suite.summary == summarize(trace)

    def test_retain_events_false_drops_traces(self):
        jobs = [("linux", "idle", DURATION, 0)]
        ((trace, sinks),) = run_study_traces(
            jobs, processes=1, retain_events=False,
            sink_factory=lambda os_name, wl: [StreamingSuite(os_name, wl)])
        assert len(trace) == 0
        assert sinks[0].n_events > 1000


class TestProgressSink:
    def test_counts_and_newline(self, capsys):
        sink = ProgressSink(every=10, label="x: ")
        trace = run_workload("linux", "idle", DURATION, seed=0,
                             sinks=[sink]).trace
        assert sink.finish(trace.duration_ns) == len(trace)
        assert "events" in capsys.readouterr().err


class TestEmitBatch:
    """The batch fast path must be result-identical to per-event emit."""

    @pytest.mark.parametrize("pair", ["linux_pair", "vista_pair"])
    def test_suite_batch_equals_sequential(self, pair, request):
        trace, sequential = request.getfixturevalue(pair)
        batched = StreamingSuite(trace.os_name, trace.workload)
        # Odd chunk sizes straddle the sample_every boundary on
        # purpose — the chunking logic must resample at the exact
        # same event counts regardless of how the stream is sliced.
        events = trace.events
        for start in range(0, len(events), 2999):
            batched.emit_batch(events[start:start + 2999])
        batched.finish(trace.duration_ns)
        assert batched.n_events == sequential.n_events
        assert batched.peak_state == sequential.peak_state
        assert batched.summary == sequential.summary
        assert batched.breakdown.counts == sequential.breakdown.counts
        assert batched.histogram.counts == sequential.histogram.counts
        assert batched.scatter.points == sequential.scatter.points
        assert batched.rates.series == sequential.rates.series
        assert batched.origin_table(min_sets=3) == \
            sequential.origin_table(min_sets=3)

    @pytest.mark.parametrize("os_name", ["linux", "vista"])
    def test_router_batch_equals_sequential(self, os_name):
        from repro.core.streaming import EpisodeRouter

        trace = run_workload(os_name, "idle", DURATION, seed=1).trace

        def collect(router):
            seen = []

            class Consumer:
                def on_group(self, group):
                    seen.append(("group", group.key))

                def on_episode(self, group, episode):
                    seen.append(("episode", group.key, episode.set_at,
                                 episode.outcome, episode.ended_at))

            router.subscribe(Consumer())
            return seen

        one = EpisodeRouter(os_name)
        one_seen = collect(one)
        for event in trace.events:
            one.emit(event)
        one.finish()

        many = EpisodeRouter(os_name)
        many_seen = collect(many)
        many.emit_batch(trace.events)
        many.finish()

        assert many.groups_created == one.groups_created
        assert many.episodes_routed == one.episodes_routed
        assert many_seen == one_seen
