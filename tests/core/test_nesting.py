"""Tests for nested-timeout inference."""

import pytest

from repro.sim.clock import MILLISECOND, SECOND, millis, seconds
from repro.linuxkern import LinuxKernel
from repro.core.interfaces import ScopedTimeout
from repro.core.nesting import infer_nesting, render_nesting
from repro.tracing import Trace

from .helpers import TraceBuilder


def nested_workload_trace():
    """Outer 30 s RPC guard; inner 5 s retries inside each guard."""
    builder = TraceBuilder(duration_ns=600 * SECOND)
    ts = 0
    for _round in range(8):
        outer_start = ts
        builder.set(ts, 1, 30 * SECOND, site=("outer_guard",))
        for _retry in range(3):
            builder.set(ts + MILLISECOND, 2, 5 * SECOND,
                        site=("inner_retry",))
            ts += seconds(4)
            builder.cancel(ts, 2, site=("inner_retry",))
        builder.cancel(ts + MILLISECOND, 1, site=("outer_guard",))
        ts += seconds(10)
    return builder.build()


class TestInference:
    def test_detects_nesting(self):
        pairs = infer_nesting(nested_workload_trace(), logical=False)
        assert len(pairs) == 1
        pair = pairs[0]
        assert pair.outer_site == ("outer_guard",)
        assert pair.inner_site == ("inner_retry",)
        assert pair.support == 24
        assert pair.containment == 1.0

    def test_no_false_positive_for_disjoint_timers(self):
        builder = TraceBuilder()
        ts = 0
        for _ in range(10):
            builder.set(ts, 1, SECOND, site=("a",))
            builder.expire(ts + SECOND, 1, site=("a",))
            ts += 2 * SECOND
            builder.set(ts, 2, SECOND, site=("b",))
            builder.expire(ts + SECOND, 2, site=("b",))
            ts += 2 * SECOND
        assert infer_nesting(builder.build(), logical=False) == []

    def test_cross_pid_not_nested(self):
        builder = TraceBuilder(duration_ns=600 * SECOND)
        ts = 0
        for _ in range(8):
            builder.set(ts, 1, 30 * SECOND, site=("outer",), pid=1)
            builder.set(ts + MILLISECOND, 2, 5 * SECOND,
                        site=("inner",), pid=2)
            builder.cancel(ts + seconds(4), 2, site=("inner",), pid=2)
            builder.cancel(ts + seconds(5), 1, site=("outer",), pid=1)
            ts += seconds(10)
        assert infer_nesting(builder.build(), logical=False) == []

    def test_elidable_counting(self):
        """Inner deadline beyond the outer deadline -> elidable."""
        builder = TraceBuilder(duration_ns=600 * SECOND)
        ts = 0
        for _ in range(5):
            builder.set(ts, 1, seconds(5), site=("outer",))
            # Inner timeout LONGER than the outer: can never fire first.
            builder.set(ts + MILLISECOND, 2, seconds(20),
                        site=("inner",))
            builder.cancel(ts + seconds(2), 2, site=("inner",))
            builder.cancel(ts + seconds(3), 1, site=("outer",))
            ts += seconds(10)
        pairs = infer_nesting(builder.build(), logical=False)
        assert pairs[0].elidable == pairs[0].support == 5

    def test_render(self):
        text = render_nesting(infer_nesting(nested_workload_trace(),
                                            logical=False))
        assert "nested in" in text
        assert render_nesting([]).startswith("(no nested")


class TestOnRealScopedTimeouts:
    def test_scoped_timeout_trace_shows_nesting(self):
        kernel = LinuxKernel(seed=9)
        for _ in range(6):
            with ScopedTimeout(kernel, seconds(30), lambda: None,
                               site=("rpc_outer",), elide_nested=False):
                kernel.run_for(millis(1))      # code runs before the
                with ScopedTimeout(kernel, seconds(5), lambda: None,
                                   site=("rpc_inner",),
                                   elide_nested=False):
                    kernel.run_for(millis(500))
                kernel.run_for(millis(1))      # ...and after the call
            kernel.run_for(seconds(1))
        trace = Trace(os_name="linux", workload="scoped",
                      duration_ns=kernel.engine.now,
                      events=list(kernel.sink))
        pairs = infer_nesting(trace, logical=True, min_support=3)
        sites = {(p.outer_site[0], p.inner_site[0]) for p in pairs}
        assert ("rpc_outer", "rpc_inner") in sites
