"""Tests for the planning EDF dispatcher (Section 5.5's hard part)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, millis, seconds
from repro.core.planned import AdmissionError, PlannedScheduler


def run_plans(specs, duration_ns, *, cap=1.0):
    engine = Engine()
    scheduler = PlannedScheduler(engine, utilization_cap=cap)
    plans = [scheduler.admit(name, period, cost, lambda r: None)
             for name, period, cost in specs]
    engine.run_until(duration_ns)
    return scheduler, plans


class TestAdmission:
    def test_rejects_over_cap(self):
        engine = Engine()
        scheduler = PlannedScheduler(engine, utilization_cap=0.9)
        scheduler.admit("a", millis(10), millis(5), lambda r: None)
        with pytest.raises(AdmissionError):
            scheduler.admit("b", millis(10), millis(5), lambda r: None)

    def test_rejects_infeasible_single_plan(self):
        engine = Engine()
        scheduler = PlannedScheduler(engine)
        with pytest.raises(AdmissionError):
            scheduler.admit("x", millis(10), millis(11), lambda r: None)

    def test_retired_plan_frees_budget(self):
        engine = Engine()
        scheduler = PlannedScheduler(engine, utilization_cap=0.9)
        plan = scheduler.admit("a", millis(10), millis(8),
                               lambda r: None)
        scheduler.retire(plan)
        scheduler.admit("b", millis(10), millis(8), lambda r: None)

    def test_invalid_parameters(self):
        scheduler = PlannedScheduler(Engine())
        with pytest.raises(ValueError):
            scheduler.admit("x", 0, 1, lambda r: None)


class TestEdfGuarantee:
    def test_feasible_set_meets_every_deadline(self):
        """The EDF optimality result on the model."""
        scheduler, plans = run_plans(
            [("audio", millis(20), millis(6)),
             ("video", millis(40), millis(10)),
             ("net", millis(50), millis(12)),
             ("ui", millis(100), millis(15))],
            seconds(20))
        assert scheduler.utilization < 1.0
        for plan in plans:
            assert plan.jobs_completed > 100
            assert plan.deadline_misses == 0

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.integers(5, 100),    # period ms
                              st.integers(1, 30)),    # cost ms
                    min_size=1, max_size=5))
    def test_edf_property(self, raw):
        """Property: any plan set the scheduler admits under a cap of
        1.0 completes every job by its deadline."""
        engine = Engine()
        scheduler = PlannedScheduler(engine, utilization_cap=1.0)
        admitted = []
        for index, (period_ms, cost_ms) in enumerate(raw):
            try:
                admitted.append(scheduler.admit(
                    f"p{index}", millis(period_ms),
                    millis(min(cost_ms, period_ms)), lambda r: None))
            except AdmissionError:
                pass
        engine.run_until(seconds(5))
        for plan in admitted:
            assert plan.deadline_misses == 0

    def test_contention_delays_but_edf_orders(self):
        """Two plans due together: the tighter deadline runs first."""
        engine = Engine()
        scheduler = PlannedScheduler(engine)
        order = []
        scheduler.admit("slow", millis(100), millis(10),
                        lambda r: order.append("slow"))
        scheduler.admit("fast", millis(50), millis(10),
                        lambda r: order.append("fast"))
        engine.run_until(millis(101))
        # At t=100ms both have jobs; the 150ms deadline (fast) beats
        # the 200ms deadline (slow).
        assert order[:3] == ["fast", "fast", "slow"] or \
            order[:2] == ["fast", "slow"]

    def test_cpu_never_oversubscribed(self):
        scheduler, _plans = run_plans(
            [("a", millis(10), millis(4)), ("b", millis(20), millis(8)),
             ("c", millis(40), millis(6))],
            seconds(10))
        assert scheduler.busy_ns <= seconds(10)


class TestAccounting:
    def test_job_counts(self):
        scheduler, plans = run_plans([("tick", millis(100), millis(1))],
                                     seconds(10))
        assert plans[0].jobs_completed == pytest.approx(99, abs=2)

    def test_report_renders(self):
        scheduler, _ = run_plans([("tick", millis(100), millis(1))],
                                 seconds(1))
        text = scheduler.report()
        assert "tick" in text and "utilisation" in text

    def test_retire_stops_releases(self):
        engine = Engine()
        scheduler = PlannedScheduler(engine)
        plan = scheduler.admit("a", millis(100), millis(1),
                               lambda r: None)
        engine.run_until(millis(350))
        scheduler.retire(plan)
        done = plan.jobs_completed
        engine.run_until(seconds(2))
        assert plan.jobs_completed == done
