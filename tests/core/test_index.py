"""Tests for the shared single-pass TraceIndex and the parallel
study-pipeline driver.

The index must be invisible: every analysis run against an indexed
trace has to produce exactly what it produced when it re-scanned the
event list privately.  The equivalence tests therefore compare each
analysis on the same event list twice — once through a fresh ``Trace``
wrapper (no cached index, the pre-index behaviour) and once through the
shared index.
"""

import pytest

from repro.core import (TraceIndex, adaptivity_report, classify_trace,
                        duration_scatter, infer_nesting, origin_table,
                        pattern_breakdown, rate_series, render_histogram,
                        render_nesting, render_origin_table, render_rates,
                        render_scatter, summarize, value_histogram)
from repro.core.episodes import extract_episodes
from repro.sim.clock import MINUTE, SECOND
from repro.tracing import EventKind, Trace, trace_to_bytes
from repro.workloads import run_study_traces, run_workload

from .helpers import TraceBuilder, periodic_timer, watchdog_timer

DURATION = 12 * SECOND
WORKLOADS = ("idle", "skype", "firefox", "webserver")


@pytest.fixture(scope="module")
def traces():
    return {(os_name, wl): run_workload(os_name, wl, DURATION,
                                        seed=3).trace
            for os_name in ("linux", "vista") for wl in WORKLOADS}


def fresh(trace):
    """Same events, no cached index: the pre-index scan behaviour."""
    return Trace(os_name=trace.os_name, workload=trace.workload,
                 duration_ns=trace.duration_ns, events=trace.events)


class TestGroupingEquivalence:
    def test_instances_match_direct_scan(self, traces):
        for trace in traces.values():
            index = TraceIndex.of(trace)
            direct = fresh(trace).instances()
            assert [h.key for h in index.instances] \
                == [h.key for h in direct]
            assert [h.events for h in index.instances] \
                == [h.events for h in direct]

    def test_logical_match_direct_scan(self, traces):
        for trace in traces.values():
            index = TraceIndex.of(trace)
            direct = fresh(trace).logical_timers()
            assert [h.key for h in index.logical] \
                == [h.key for h in direct]
            assert [h.events for h in index.logical] \
                == [h.events for h in direct]

    def test_episodes_match_direct_extraction(self, traces):
        for trace in traces.values():
            index = TraceIndex.of(trace)
            for logical in (False, True):
                direct = [extract_episodes(h, trace.os_name)
                          for h in index.histories(logical)]
                assert index.episodes(logical) == direct

    def test_set_like_preserves_trace_order(self, traces):
        for trace in traces.values():
            index = TraceIndex.of(trace)
            expected = [e for e in trace.events
                        if e.kind in (EventKind.SET,
                                      EventKind.WAIT_UNBLOCK)]
            assert index.set_like == expected

    def test_default_grouping_follows_os(self, traces):
        assert not TraceIndex.of(
            traces[("linux", "idle")]).default_logical
        assert TraceIndex.of(traces[("vista", "idle")]).default_logical


class TestAnalysisEquivalence:
    """Each analysis: indexed output == pre-index fresh-scan output."""

    @staticmethod
    def _verdict_rows(verdicts):
        # Classification.history compares by identity; compare the
        # semantically meaningful fields.
        return [(v.history.key, v.episodes, v.timer_class,
                 v.dominant_value_ns) for v in verdicts]

    def test_classify(self, traces):
        for trace in traces.values():
            assert self._verdict_rows(classify_trace(trace)) \
                == self._verdict_rows(classify_trace(fresh(trace)))

    def test_summary(self, traces):
        for trace in traces.values():
            assert summarize(trace).as_row() \
                == summarize(fresh(trace)).as_row()

    def test_pattern_breakdown(self, traces):
        for trace in traces.values():
            assert pattern_breakdown(trace).figure2_row() \
                == pattern_breakdown(fresh(trace)).figure2_row()

    def test_value_histogram(self, traces):
        for trace in traces.values():
            assert render_histogram(value_histogram(trace)) \
                == render_histogram(value_histogram(fresh(trace)))

    def test_duration_scatter(self, traces):
        for trace in traces.values():
            assert render_scatter(duration_scatter(trace)) \
                == render_scatter(duration_scatter(fresh(trace)))

    def test_origin_table(self, traces):
        for trace in traces.values():
            assert render_origin_table(origin_table(trace, min_sets=5)) \
                == render_origin_table(origin_table(fresh(trace),
                                                    min_sets=5))

    def test_adaptivity(self, traces):
        for trace in traces.values():
            assert adaptivity_report(trace).render() \
                == adaptivity_report(fresh(trace)).render()

    def test_nesting(self, traces):
        for trace in traces.values():
            assert render_nesting(infer_nesting(trace)) \
                == render_nesting(infer_nesting(fresh(trace)))

    def test_rate_series(self, traces):
        for trace in traces.values():
            indexed = rate_series(trace)
            plain = rate_series(fresh(trace))
            assert indexed.series == plain.series


class TestCaching:
    def test_index_is_cached_on_trace(self):
        trace = periodic_timer(TraceBuilder()).build()
        assert TraceIndex.of(trace) is TraceIndex.of(trace)

    def test_peek_only_returns_built_index(self):
        trace = periodic_timer(TraceBuilder()).build()
        assert TraceIndex.peek(trace) is None
        index = TraceIndex.of(trace)
        assert TraceIndex.peek(trace) is index

    def test_classification_is_memoized(self):
        trace = watchdog_timer(TraceBuilder()).build()
        assert classify_trace(trace) is classify_trace(trace)

    def test_extend_updates_index_in_place(self):
        builder = TraceBuilder()
        periodic_timer(builder, count=5)
        trace = builder.build()
        index = TraceIndex.of(trace)
        more = periodic_timer(TraceBuilder(), count=3,
                              timer_id=9).build().events
        trace.extend(more)
        updated = TraceIndex.of(trace)
        assert updated is index          # incrementally ingested, not rebuilt
        assert updated.n_events == len(trace.events)
        assert any(h.key == 9 for h in updated.instances)

    def test_incremental_extend_matches_rebuild(self):
        builder = TraceBuilder()
        periodic_timer(builder, count=5)
        watchdog_timer(builder)
        trace = builder.build()
        events = list(trace.events)
        split = len(events) // 2

        grown = Trace(os_name=trace.os_name, workload=trace.workload,
                      duration_ns=trace.duration_ns, events=events[:split])
        incremental = TraceIndex.of(grown)
        incremental.extend(events[split:])

        whole = TraceIndex.of(fresh(trace))
        assert incremental.n_events == whole.n_events
        assert [h.key for h in incremental.instances] \
            == [h.key for h in whole.instances]
        assert [h.key for h in incremental.logical] \
            == [h.key for h in whole.logical]
        assert [[e.ts for e in h.events] for h in incremental.logical] \
            == [[e.ts for e in h.events] for h in whole.logical]


class TestParallelDriver:
    JOBS = [("linux", "idle", 6 * SECOND, 5),
            ("vista", "idle", 6 * SECOND, 5),
            ("linux", "skype", 6 * SECOND, 5)]

    def test_serial_matches_parallel_byte_for_byte(self):
        serial = run_study_traces(self.JOBS, processes=1)
        parallel = run_study_traces(self.JOBS, processes=2)
        assert [trace_to_bytes(t) for t in serial] == \
            [trace_to_bytes(t) for t in parallel]

    def test_job_order_is_preserved(self):
        results = run_study_traces(self.JOBS, processes=2)
        assert [(t.os_name, t.workload) for t in results] \
            == [(os_name, wl) for os_name, wl, _, _ in self.JOBS]

    def test_desktop_duration_none_uses_default(self):
        (trace,) = run_study_traces(
            [("vista", "desktop", None, 0)], processes=1)
        assert trace.workload == "desktop"
        assert trace.duration_ns >= MINUTE
