"""Differential test: streaming analyze() == batch analyze().

Property-style and seeded: randomized event streams (plus real workload
traces) are sliced at arbitrary chunk boundaries and fed incrementally
through the streaming path; every shared analysis result must equal the
batch result computed from the same events in one go.  The equivalence
is the tentpole guarantee of the streaming subsystem — the determinism
sweep pins runs, this pins the *analyses*.
"""

import random

import pytest

from repro.core.analyze import analyze
from repro.core.streaming import StreamingSuite
from repro.sim.clock import MILLISECOND, SECOND
from repro.tracing.events import (FLAG_WAIT_SATISFIED, EventKind,
                                  TimerEvent, wait_unblock_event)
from repro.tracing.trace import Trace

SITES = (
    ("app!main", "mod_timer"),
    ("app!net", "poll", "mod_timer"),
    ("kernel!wd", "queue_delayed_work"),
    ("app!ui", "SetTimer", "nt!KeSetTimer"),
)
VALUES_NS = (10 * MILLISECOND, 100 * MILLISECOND, SECOND, 5 * SECOND)


def synth_stream(seed: int, os_name: str, n_timers: int = 12,
                 n_ops: int = 400) -> list:
    """A plausible random timer workload: timers arm, then expire, get
    cancelled, or are re-armed; Vista streams also issue timed waits."""
    rng = random.Random(seed)
    events = []
    now = 0
    armed = {}                       # timer_id -> (deadline, value)
    timers = [(0x1000 + i * 0x40,
               rng.randrange(100, 105),          # pid
               rng.choice(("app", "svchost", "httpd")),
               rng.choice(SITES),
               rng.choice(("user", "kernel")))
              for i in range(n_timers)]
    for _ in range(n_ops):
        now += rng.randrange(1, 50 * MILLISECOND)
        timer_id, pid, comm, site, domain = rng.choice(timers)
        # Retire any armed timer that has passed its deadline.
        for tid, (deadline, value) in sorted(armed.items()):
            if deadline <= now:
                _, epid, ecomm, esite, edomain = \
                    next(t for t in timers if t[0] == tid)
                events.append(TimerEvent(
                    EventKind.EXPIRE, deadline, tid, epid, ecomm,
                    edomain, esite, expires_ns=deadline))
                del armed[tid]
        action = rng.random()
        if os_name == "vista" and action < 0.15:
            timeout = rng.choice(VALUES_NS)
            blocked = rng.randrange(1, timeout + 1)
            events.append(wait_unblock_event(
                ts_block=now, ts_unblock=now + blocked,
                timer_id=timer_id, pid=pid, comm=comm, site=site,
                timeout_ns=timeout, satisfied=rng.random() < 0.5))
            now += blocked
        elif action < 0.7:
            value = rng.choice(VALUES_NS)
            jitter = rng.randrange(0, MILLISECOND)
            deadline = now + value + jitter
            events.append(TimerEvent(
                EventKind.SET, now, timer_id, pid, comm, domain, site,
                timeout_ns=value, expires_ns=deadline))
            armed[timer_id] = (deadline, value)
        elif timer_id in armed:
            deadline, _value = armed.pop(timer_id)
            events.append(TimerEvent(
                EventKind.CANCEL, now, timer_id, pid, comm, domain,
                site, expires_ns=deadline))
    events.sort(key=lambda e: e.ts)
    return events


def slice_at_random_boundaries(events: list, seed: int) -> list:
    """Cut the stream into chunks of arbitrary (0..n) sizes."""
    rng = random.Random(seed ^ 0xC0FFEE)
    chunks, i = [], 0
    while i < len(events):
        if rng.random() < 0.1:
            chunks.append([])        # empty slice at this boundary
        size = rng.choice((1, 2, 3, 7, 31, 100))
        chunks.append(events[i:i + size])
        i += size
    return chunks


def assert_equivalent(streaming, batch):
    assert streaming.summary() == batch.summary()
    assert streaming.pattern_breakdown() == batch.pattern_breakdown()
    assert streaming.value_histogram() == batch.value_histogram()
    assert streaming.duration_scatter() == batch.duration_scatter()
    assert streaming.rate_series() == batch.rate_series()
    assert streaming.origin_table() == batch.origin_table()


@pytest.mark.parametrize("os_name", ["linux", "vista"])
@pytest.mark.parametrize("seed", range(8))
def test_sliced_synthetic_stream_equals_batch(os_name, seed):
    events = synth_stream(seed, os_name)
    assert len(events) > 200
    duration = events[-1].ts + SECOND

    suite = StreamingSuite(os_name, "synth")
    fed = 0
    for chunk in slice_at_random_boundaries(events, seed):
        for event in chunk:
            suite.emit(event)
        fed += len(chunk)
    assert fed == len(events)
    streaming = analyze(suite, duration_ns=duration)

    batch = analyze(Trace(os_name=os_name, workload="synth",
                          duration_ns=duration, events=events))
    assert_equivalent(streaming, batch)
    # WAIT_UNBLOCK retro-intervals all landed inside the watermark.
    assert suite.late_waits == 0


@pytest.mark.parametrize("os_name,workload",
                         [("linux", "portable"), ("vista", "webserver")])
def test_sliced_real_trace_equals_batch(os_name, workload):
    from repro.workloads.portable import run_portable
    run = run_portable(workload, os_name, 3 * SECOND, seed=11)
    events = run.trace.events

    suite = StreamingSuite(os_name, workload)
    for chunk in slice_at_random_boundaries(events, 11):
        for event in chunk:
            suite.emit(event)
    streaming = analyze(suite, duration_ns=run.trace.duration_ns)
    assert_equivalent(streaming, analyze(run.trace))


@pytest.mark.parametrize("seed", range(3))
def test_event_iterable_entry_point(seed):
    """analyze() over a generator takes the same streaming path."""
    events = synth_stream(seed, "linux")
    duration = events[-1].ts + SECOND
    streaming = analyze(iter(events), os_name="linux",
                        workload="synth", duration_ns=duration)
    batch = analyze(Trace(os_name="linux", workload="synth",
                          duration_ns=duration, events=events))
    assert streaming.mode == "streaming"
    assert_equivalent(streaming, batch)
