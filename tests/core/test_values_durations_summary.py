"""Tests for the value histograms (Figs 3–7), duration scatters
(Figs 8–11), summaries (Tables 1–2), origins (Table 3) and rates
(Fig 1)."""

import pytest

from repro.sim.clock import JIFFY, MILLISECOND, SECOND
from repro.tracing import EventKind, TimerEvent, Trace
from repro.core import (OriginRow, attribute_origin, default_group,
                        duration_scatter, is_round_value, origin_table,
                        rate_series, render_histogram, render_origin_table,
                        render_scatter, round_value_share, summarize,
                        summary_table, value_histogram)
from repro.core.episodes import Outcome, nominal_value_ns

from .helpers import (TraceBuilder, periodic_timer, timeout_timer)


class TestValueHistogram:
    def _trace(self):
        builder = TraceBuilder()
        for i in range(80):
            builder.set(i * SECOND, 1, 500 * MILLISECOND)
            builder.expire(i * SECOND + 500 * MILLISECOND, 1)
        for i in range(20):
            builder.set(i * 2 * SECOND + 100, 2, 5 * SECOND)
        builder.set(0, 3, 7 * SECOND + 123)    # rare odd value
        return builder.build()

    def test_common_values_threshold(self):
        hist = value_histogram(self._trace())
        values = dict(hist.common_values(2.0))
        assert 500 * MILLISECOND in values
        assert 5 * SECOND in values
        assert 7 * SECOND + 123 not in values

    def test_percentages(self):
        hist = value_histogram(self._trace())
        assert hist.percentage_of(500 * MILLISECOND) == pytest.approx(
            100 * 80 / 101, abs=0.1)

    def test_coverage(self):
        hist = value_histogram(self._trace())
        assert hist.coverage(2.0) == pytest.approx(100 * 100 / 101,
                                                   abs=0.5)

    def test_domain_filter(self):
        builder = TraceBuilder()
        builder.set(0, 1, SECOND, domain="user")
        builder.set(1, 2, 2 * SECOND, domain="kernel")
        hist = value_histogram(builder.build(), domain="user")
        assert hist.total_sets == 1

    def test_kernel_values_quantised_to_jiffies(self):
        event = TimerEvent(EventKind.SET, 0, 1, 0, "kernel", "kernel",
                           ("site",), 51 * JIFFY - 1_500_000,
                           51 * JIFFY)
        assert nominal_value_ns(event, "linux") == 51 * JIFFY

    def test_user_values_exact(self):
        event = TimerEvent(EventKind.SET, 0, 1, 1, "app", "user",
                           ("site",), 499_900_000, None)
        assert nominal_value_ns(event, "linux") == 499_900_000

    def test_render(self):
        text = render_histogram(value_histogram(self._trace()))
        assert "%" in text and "#" in text


class TestRoundValues:
    @pytest.mark.parametrize("value,expected", [
        (500 * MILLISECOND, True), (SECOND, True), (5 * SECOND, True),
        (15 * SECOND, True), (7200 * SECOND, True),
        (100 * MILLISECOND, True), (250 * MILLISECOND, True),
        (204 * MILLISECOND, False),        # the adapted TCP RTO
        (137 * MILLISECOND + 413, False),
    ])
    def test_is_round(self, value, expected):
        assert is_round_value(value) == expected

    def test_round_share(self):
        builder = TraceBuilder()
        for i in range(9):
            builder.set(i * SECOND, 1, 5 * SECOND)
        builder.set(100 * SECOND, 2, 204 * MILLISECOND)
        share = round_value_share(value_histogram(builder.build()))
        assert share == pytest.approx(0.9)


class TestDurationScatter:
    def test_expiry_and_cancel_points(self):
        builder = TraceBuilder()
        timeout_timer(builder, timeout_ns=10 * SECOND,
                      cancel_after_ns=SECOND, timer_id=1)
        scatter = duration_scatter(builder.build(), logical=False)
        assert scatter.total() == 20
        cancels = [p for p in scatter.points
                   if p.outcome == Outcome.CANCELED]
        assert cancels[0].fraction_pct == pytest.approx(10.0)

    def test_immediate_timers_skipped(self):
        builder = TraceBuilder()
        builder.set(0, 1, 0)
        builder.expire(0, 1)
        builder.set(SECOND, 1, 0)
        builder.expire(SECOND, 1)
        builder.set(2 * SECOND, 1, 0)
        builder.expire(2 * SECOND, 1)
        scatter = duration_scatter(builder.build(), logical=False)
        assert scatter.total() == 0
        assert scatter.skipped == 3

    def test_cutoff_at_250pct(self):
        builder = TraceBuilder()
        for i in range(5):
            builder.set(i * 10 * SECOND, 1, MILLISECOND)
            builder.expire(i * 10 * SECOND + 5 * MILLISECOND, 1)
        scatter = duration_scatter(builder.build(), logical=False)
        assert scatter.total() == 0
        assert scatter.clipped == 5

    def test_share_above_100(self):
        builder = TraceBuilder()
        for i in range(4):
            builder.set(i * 10 * SECOND, 1, 10 * MILLISECOND)
            builder.expire(i * 10 * SECOND + 15 * MILLISECOND, 1)
        for i in range(4):
            builder.set(SECOND + i * 10 * SECOND, 2, 10 * SECOND)
            builder.cancel(SECOND + i * 10 * SECOND + SECOND, 2)
        scatter = duration_scatter(builder.build(), logical=False)
        assert scatter.share_above_100pct() == pytest.approx(0.5)

    def test_render(self):
        builder = TraceBuilder()
        timeout_timer(builder)
        text = render_scatter(duration_scatter(builder.build(),
                                               logical=False))
        assert "episodes" in text


class TestSummary:
    def test_linux_counting(self):
        builder = TraceBuilder()
        builder.set(0, 1, SECOND, domain="user")
        builder.cancel(SECOND // 2, 1, domain="user")
        builder.set(2 * SECOND, 1, SECOND, domain="user")
        builder.expire(3 * SECOND, 1, domain="user")
        builder.cancel(3 * SECOND + 1, 1, pending=False, domain="user")
        builder.set(0, 2, 5 * SECOND, domain="kernel")
        summary = summarize(builder.build())
        assert summary.timers == 2
        assert summary.set_count == 3
        assert summary.expired == 1
        assert summary.canceled == 1            # inactive delete excluded
        assert summary.accesses == 6
        assert summary.user_space == 5
        assert summary.kernel == 1

    def test_vista_accesses_exclude_dpc_expiry(self):
        builder = TraceBuilder(os_name="vista")
        builder.set(0, 1, SECOND)
        builder.expire(SECOND, 1)
        summary = summarize(builder.build())
        assert summary.accesses == 1
        assert summary.expired == 1

    def test_concurrency_counts_overlap(self):
        builder = TraceBuilder()
        builder.set(0, 1, 10 * SECOND)
        builder.set(SECOND, 2, 10 * SECOND)
        builder.set(2 * SECOND, 3, 10 * SECOND)
        builder.cancel(3 * SECOND, 1)
        builder.set(4 * SECOND, 4, SECOND)
        summary = summarize(builder.build())
        assert summary.concurrency == 3

    def test_rearm_at_same_instant_counts_once(self):
        builder = TraceBuilder()
        builder.set(0, 1, SECOND)
        builder.expire(SECOND, 1)
        builder.set(SECOND, 1, SECOND)
        summary = summarize(builder.build())
        assert summary.concurrency == 1

    def test_table_rendering(self):
        builder = TraceBuilder()
        builder.set(0, 1, SECOND)
        text = summary_table([summarize(builder.build())])
        assert "Timers" in text and "Canceled" in text


class TestOrigins:
    def test_attribution_by_site(self):
        assert attribute_origin(("tcp_ack", "inet_csk_reset_xmit_timer",
                                 "__mod_timer"), "kernel") \
            == "TCP retransmission timeout"

    def test_attribution_by_comm(self):
        assert attribute_origin(("sys_poll",), "firefox-bin") \
            == "Firefox polling file descriptors"

    def test_fallback_is_site_head(self):
        assert attribute_origin(("mystery_fn", "__mod_timer"),
                                "whoever") == "mystery_fn"

    def test_origin_table_rows(self):
        builder = TraceBuilder()
        periodic_timer(builder, period_ns=248 * MILLISECOND, timer_id=1)
        trace = builder.build()
        site = ("uhci_hcd", "usb_hcd_poll_rh_status", "__mod_timer")
        trace.events[:] = [event._replace(site=site)
                           for event in trace.events]
        rows = origin_table(trace, logical=False)
        assert len(rows) == 1
        assert rows[0].origin == "USB host controller status poll"
        assert rows[0].timeout_ns == 248 * MILLISECOND
        assert "periodic" in render_origin_table(rows)


class TestRates:
    def test_grouping(self):
        builder = TraceBuilder(os_name="vista")
        builder.set(0, 1, SECOND, comm="outlook.exe")
        builder.set(0, 2, SECOND, comm="iexplore.exe")
        builder.set(0, 3, SECOND, comm="svchost.exe")
        builder.set(0, 4, SECOND, comm="kernel", domain="kernel")
        rates = rate_series(builder.build())
        assert set(rates.series) == {"Outlook", "Browser", "System",
                                     "Kernel"}

    def test_buckets_and_peak(self):
        builder = TraceBuilder(os_name="vista", duration_ns=5 * SECOND)
        for i in range(10):
            builder.set(i * 100 * MILLISECOND, 1, SECOND,
                        comm="outlook.exe")
        builder.set(3 * SECOND, 2, SECOND, comm="outlook.exe")
        rates = rate_series(builder.build())
        assert rates.buckets == 5
        assert rates.peak("Outlook") == 10
        assert rates.series["Outlook"][3] == 1
