"""Tests for the adaptivity detector (Section 4.2's 'very few adaptive
timers' claim, made measurable)."""

import random

import pytest

from repro.sim.clock import MILLISECOND, SECOND, millis, seconds
from repro.core.adaptive import JacobsonEstimator
from repro.core.adaptivity import (ValueBehavior, adaptivity_report,
                                   classify_values)

from .helpers import TraceBuilder, periodic_timer


class TestClassifyValues:
    def test_constant(self):
        values = [SECOND] * 20
        assert classify_values(values) == ValueBehavior.CONSTANT

    def test_constant_with_jitter(self):
        values = [SECOND + d for d in (0, 500_000, -800_000) * 7]
        assert classify_values(values) == ValueBehavior.CONSTANT

    def test_countdown(self):
        values = []
        for _reset in range(3):
            values.extend(range(60 * SECOND, 0, -7 * SECOND))
        assert classify_values(values) == ValueBehavior.COUNTDOWN

    def test_adaptive_control_loop(self):
        """A Jacobson RTO tracking slowly varying RTTs: smooth."""
        rng = random.Random(3)
        estimator = JacobsonEstimator(min_timeout=0.0)
        values = []
        rtt = 0.1
        for _ in range(200):
            rtt = max(0.01, rtt + rng.uniform(-0.004, 0.004))
            estimator.observe(rtt)
            values.append(int(estimator.timeout() * SECOND))
        assert classify_values(values) == ValueBehavior.ADAPTIVE

    def test_irregular_event_loop_residues(self):
        rng = random.Random(4)
        values = [rng.randrange(millis(1), seconds(2))
                  for _ in range(200)]
        assert classify_values(values) == ValueBehavior.IRREGULAR

    def test_too_few_observations(self):
        assert classify_values([SECOND, SECOND]) \
            == ValueBehavior.CONSTANT
        assert classify_values([SECOND, 2 * SECOND]) \
            == ValueBehavior.IRREGULAR


class TestReport:
    def test_report_on_synthetic_trace(self):
        builder = TraceBuilder()
        periodic_timer(builder, timer_id=1, count=30)
        # A smoothly-adapting timer.
        ts = 0
        value = SECOND
        for i in range(30):
            value += 20 * MILLISECOND if i % 2 == 0 \
                else -12 * MILLISECOND
            builder.set(ts, 2, value)
            ts += value
            builder.expire(ts, 2)
        report = adaptivity_report(builder.build(), logical=False)
        assert report.timer_counts[ValueBehavior.CONSTANT] == 1
        assert report.timer_counts[ValueBehavior.ADAPTIVE] == 1
        assert report.total_sets == 60

    def test_render(self):
        builder = TraceBuilder()
        periodic_timer(builder)
        text = adaptivity_report(builder.build(), logical=False).render()
        assert "constant" in text and "% of sets" in text

    def test_idle_workload_is_overwhelmingly_nonadaptive(self):
        """The paper's finding: almost nothing adapts its timeouts."""
        from repro.workloads import run_workload
        run = run_workload("linux", "idle", 90 * SECOND, seed=2)
        report = adaptivity_report(run.trace)
        assert report.set_share(ValueBehavior.ADAPTIVE) < 0.05
        constant_like = (report.set_share(ValueBehavior.CONSTANT)
                         + report.set_share(ValueBehavior.COUNTDOWN))
        assert constant_like > 0.85
