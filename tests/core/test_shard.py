"""Tests for sharded per-trace analysis (:mod:`repro.core.shard`) and
the numpy/pure dual paths of the nesting inference."""

import pytest

from repro.core import nesting as nesting_mod
from repro.core.index import TraceIndex
from repro.core.nesting import infer_nesting
from repro.core.report import render_analysis
from repro.core.shard import shard_episodes, shard_of, sharded_analysis
from repro.sim.clock import SECOND
from repro.workloads import run_workload


@pytest.fixture(scope="module")
def traces():
    return {
        "linux": run_workload("linux", "firefox", 20 * SECOND,
                              seed=11).trace,
        "vista": run_workload("vista", "skype", 20 * SECOND,
                              seed=11).trace,
    }


class TestShardPlan:
    def test_int_keys_shard_by_id(self):
        assert shard_of(17, 0, 4) == 1
        assert shard_of(17, 3, 4) == 1      # ordinal ignored for ids

    def test_tuple_keys_shard_by_ordinal(self):
        key = (("site",), 42)
        assert shard_of(key, 5, 4) == 1
        assert shard_of(key, 6, 4) == 2

    def test_rejects_zero_jobs(self, traces):
        index = TraceIndex.of(traces["linux"])
        with pytest.raises(ValueError):
            shard_episodes(index, 0)


class TestShardedEpisodes:
    @pytest.mark.parametrize("os_name", ["linux", "vista"])
    @pytest.mark.parametrize("jobs", [1, 2, 8])
    def test_merge_equals_serial_extraction(self, traces, os_name,
                                            jobs):
        trace = traces[os_name]
        index = TraceIndex.of(trace)
        logical = index.default_logical
        serial = index.episodes(logical)
        sharded = shard_episodes(index, jobs, logical=logical)
        assert sharded == serial

    def test_adopt_rejects_wrong_length(self, traces):
        index = TraceIndex.of(traces["linux"])
        with pytest.raises(ValueError):
            index.adopt_episodes([[]], logical=False)


class TestShardedAnalysis:
    @pytest.mark.parametrize("os_name", ["linux", "vista"])
    def test_output_identical_across_jobs(self, traces, os_name):
        trace = traces[os_name]
        serial = render_analysis(trace)
        for jobs in (1, 2, 8):
            trace._index = None       # fresh index: no cache reuse
            assert sharded_analysis(trace, jobs=jobs) == serial

    def test_accepts_v2_path(self, traces, tmp_path):
        from repro.tracing import write_trace
        path = str(tmp_path / "t.bin")
        write_trace(traces["linux"], path)
        assert sharded_analysis(path, jobs=2) == \
            render_analysis(traces["linux"])

    def test_cli_jobs_matches_serial(self, traces, tmp_path, capsys):
        from repro.cli import main
        from repro.tracing import write_trace
        path = str(tmp_path / "t.bin")
        write_trace(traces["linux"], path)
        assert main(["analyze", path]) == 0
        serial = capsys.readouterr().out
        for jobs in ("2", "8"):
            assert main(["analyze", path, "--jobs", jobs]) == 0
            assert capsys.readouterr().out == serial


class TestNestingDualPath:
    def test_pure_python_fallback_matches_numpy(self, traces,
                                                monkeypatch):
        """CI has no numpy: the pure path must produce the identical
        pair list the vectorised path does."""
        trace = traces["linux"]
        with_np = infer_nesting(trace)
        monkeypatch.setattr(nesting_mod, "_np", None)
        trace._index = None
        without_np = infer_nesting(trace)
        assert without_np == with_np
