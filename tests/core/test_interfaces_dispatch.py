"""Tests for Sections 5.4 (use-case interfaces) and 5.5 (dispatcher)."""

import pytest

from repro.linuxkern import LinuxKernel
from repro.sim import Engine, JIFFY, millis, seconds
from repro.tracing import EventKind
from repro.core.dispatch import (ActivationScheduler,
                                 run_media_comparison,
                                 run_media_loop_dispatcher,
                                 run_media_loop_timers)
from repro.core.interfaces import (DeferredAction, DelayTimer,
                                   PeriodicTicker, ScopedTimeout,
                                   Watchdog)


@pytest.fixture
def kernel():
    return LinuxKernel(seed=0)


class TestPeriodicTicker:
    def test_fires_at_rate(self, kernel):
        ticker = PeriodicTicker(kernel, millis(100), lambda: None)
        ticker.start()
        kernel.run_for(seconds(10))
        assert ticker.ticks == 100

    def test_no_drift_accumulation(self, kernel):
        """Re-arming tracks the ideal phase: tick N lands at N*period
        exactly, unlike a rearm-relative-to-now loop."""
        times = []
        ticker = PeriodicTicker(kernel, millis(100),
                                lambda: times.append(kernel.engine.now))
        ticker.start()
        kernel.run_for(seconds(10))
        for n, ts in enumerate(times, start=1):
            assert ts == n * millis(100)

    def test_imprecise_mode_batches_on_seconds(self, kernel):
        kernel.run_for(millis(300))
        ticker = PeriodicTicker(kernel, seconds(2), lambda: None,
                                imprecise=True)
        ticker.start()
        kernel.run_for(seconds(10))
        expiries = [e for e in kernel.sink if e.kind == EventKind.EXPIRE]
        assert expiries
        for event in expiries:
            assert event.expires_ns % seconds(1) == 0

    def test_stop(self, kernel):
        ticker = PeriodicTicker(kernel, millis(100), lambda: None)
        ticker.start()
        kernel.run_for(seconds(1))
        ticker.stop()
        kernel.run_for(seconds(1))
        assert ticker.ticks == 10

    def test_invalid_period(self, kernel):
        with pytest.raises(ValueError):
            PeriodicTicker(kernel, 0, lambda: None)


class TestScopedTimeout:
    def test_fires_when_scope_outlives_deadline(self, kernel):
        fired = []
        scope = ScopedTimeout(kernel, millis(100), lambda: fired.append(1))
        with scope:
            kernel.run_for(seconds(1))
        assert fired == [1]
        assert scope.fired

    def test_cancelled_on_exit(self, kernel):
        fired = []
        with ScopedTimeout(kernel, seconds(10), lambda: fired.append(1)):
            kernel.run_for(millis(50))
        kernel.run_for(seconds(20))
        assert fired == []

    def test_nested_inner_longer_is_elided(self, kernel):
        """An inner timeout that cannot fire before the enclosing one
        installs no kernel timer at all (Section 5.4)."""
        before = len(kernel.sink)
        with ScopedTimeout(kernel, seconds(5), lambda: None):
            with ScopedTimeout(kernel, seconds(10),
                               lambda: None) as inner:
                assert inner.elided
                assert inner.timer is None

    def test_nested_inner_shorter_is_armed(self, kernel):
        with ScopedTimeout(kernel, seconds(10), lambda: None):
            with ScopedTimeout(kernel, seconds(5), lambda: None) as inner:
                assert not inner.elided
                assert inner.timer.pending

    def test_elision_can_be_disabled(self, kernel):
        with ScopedTimeout(kernel, seconds(5), lambda: None):
            with ScopedTimeout(kernel, seconds(10), lambda: None,
                               elide_nested=False) as inner:
                assert not inner.elided


class TestWatchdog:
    def test_kicked_watchdog_never_fires(self, kernel):
        starved = []
        watchdog = Watchdog(kernel, seconds(2), lambda: starved.append(1))
        watchdog.start()
        for _ in range(20):
            kernel.run_for(millis(500))
            watchdog.kick()
        assert starved == []

    def test_starved_watchdog_fires(self, kernel):
        starved = []
        watchdog = Watchdog(kernel, seconds(2), lambda: starved.append(1))
        watchdog.start()
        kernel.run_for(seconds(5))
        assert len(starved) >= 1

    def test_stop(self, kernel):
        watchdog = Watchdog(kernel, seconds(2), lambda: None)
        watchdog.start()
        watchdog.stop()
        kernel.run_for(seconds(5))
        assert watchdog.starved_count == 0


class TestDelayAndDeferred:
    def test_delay_timer(self, kernel):
        fired = []
        delay = DelayTimer(kernel)
        delay.arm(millis(500), lambda: fired.append(kernel.engine.now))
        kernel.run_for(seconds(1))
        assert len(fired) == 1
        assert fired[0] >= millis(500)

    def test_delay_cancel(self, kernel):
        fired = []
        delay = DelayTimer(kernel)
        delay.arm(millis(500), lambda: fired.append(1))
        assert delay.cancel() is True
        kernel.run_for(seconds(1))
        assert fired == []

    def test_deferred_action_waits_for_quiet(self, kernel):
        fired = []
        action = DeferredAction(kernel, seconds(2),
                                lambda: fired.append(kernel.engine.now))
        action.touch()
        for _ in range(5):
            kernel.run_for(seconds(1))
            action.touch()
        assert fired == []          # never quiet long enough
        kernel.run_for(seconds(5))
        assert len(fired) == 1

    def test_deferred_flush_now(self, kernel):
        fired = []
        action = DeferredAction(kernel, seconds(2),
                                lambda: fired.append(1))
        action.touch()
        action.flush_now()
        assert fired == [1]
        kernel.run_for(seconds(5))
        assert fired == [1]


class TestActivationScheduler:
    def test_periodic_requirement(self):
        engine = Engine()
        scheduler = ActivationScheduler(engine)
        hits = []
        scheduler.register_periodic(millis(20),
                                    lambda d: hits.append(d))
        engine.run_until(seconds(1))
        assert len(hits) == 50

    def test_deadline_requirement(self):
        engine = Engine()
        scheduler = ActivationScheduler(engine)
        hits = []
        scheduler.register_deadline(millis(300), hits.append)
        engine.run_until(seconds(1))
        assert hits == [millis(300)]

    def test_cancel(self):
        engine = Engine()
        scheduler = ActivationScheduler(engine)
        hits = []
        req = scheduler.register_periodic(millis(100), hits.append)
        engine.run_until(millis(350))
        scheduler.cancel(req)
        engine.run_until(seconds(2))
        assert len(hits) == 3

    def test_co_tolerant_requirements_share_wakeups(self):
        engine = Engine()
        scheduler = ActivationScheduler(engine)
        for offset in range(5):
            scheduler.register_deadline(millis(100) + offset * millis(2),
                                        lambda d: None,
                                        tolerance_ns=millis(20))
        engine.run_until(seconds(1))
        assert scheduler.upcalls == 5
        assert scheduler.wakeups == 1


class TestMediaComparison:
    def test_dispatcher_eliminates_timer_interface(self):
        results = run_media_comparison(duration_ns=5 * seconds(1))
        timers = results["timers"]
        dispatcher = results["dispatcher"]
        assert timers.frames > 200 and dispatcher.frames > 200
        # The Section 5.5 claims: no timer accesses, no per-frame
        # kernel crossings, and fewer (here: zero) deadline misses.
        assert dispatcher.timer_accesses == 0
        assert dispatcher.kernel_crossings == 1
        assert timers.kernel_crossings >= timers.frames - 1
        assert dispatcher.deadline_misses == 0
        assert timers.deadline_misses > dispatcher.deadline_misses
        assert timers.max_lateness_ns >= JIFFY
