"""End-to-end tests for the timerstudy CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_os(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "beos", "idle"])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "linux", "compile"])


class TestRunAndAnalyze:
    def test_run_writes_trace(self, tmp_path, capsys):
        out = str(tmp_path / "trace.jsonl.gz")
        assert main(["run", "linux", "idle", "--minutes", "0.5",
                     "--out", out]) == 0
        from repro.tracing import Trace
        trace = Trace.load(out)
        assert trace.os_name == "linux"
        assert len(trace) > 100

    def test_analyze_prints_all_sections(self, tmp_path, capsys):
        out = str(tmp_path / "trace.jsonl.gz")
        main(["run", "linux", "idle", "--minutes", "0.5", "--out", out])
        capsys.readouterr()
        assert main(["analyze", out, "--filter-x"]) == 0
        text = capsys.readouterr().out
        for section in ("Summary", "Usage patterns", "Common timeout",
                        "Observed durations", "Origins",
                        "Value adaptivity"):
            assert section in text

    def test_vista_run(self, tmp_path):
        out = str(tmp_path / "v.jsonl.gz")
        assert main(["run", "vista", "idle", "--minutes", "0.25",
                     "--out", out]) == 0

    def test_run_stream_analyzes_without_trace_file(self, tmp_path,
                                                    capsys,
                                                    monkeypatch):
        out = str(tmp_path / "batch.jsonl.gz")
        main(["run", "linux", "idle", "--minutes", "0.5", "--out", out])
        capsys.readouterr()
        assert main(["analyze", out]) == 0
        batch_text = capsys.readouterr().out

        # --stream writes nothing, not even the default trace file.
        monkeypatch.chdir(tmp_path)
        assert main(["run", "linux", "idle", "--minutes", "0.5",
                     "--stream"]) == 0
        captured = capsys.readouterr()
        import os
        assert not os.path.exists(tmp_path / "trace.jsonl.gz")
        assert "no trace file written" in captured.err
        # In-flight analysis matches analyzing the saved trace, minus
        # the batch-only tail sections.
        head = batch_text.split("=== Value adaptivity")[0]
        assert captured.out.startswith(head)
        assert "(unavailable on a streaming analysis)" in captured.out


class TestClusterFlags:
    def test_hosts_run_writes_v3_and_rollup(self, tmp_path, capsys):
        out = str(tmp_path / "cluster.bin")
        assert main(["run", "linux", "serverfarm", "--minutes", "0.25",
                     "--hosts", "2", "--cpus", "2", "--out", out]) == 0
        from repro.tracing import detect_format, open_trace
        assert detect_format(out) == "binfmt3"
        assert {event.host for event in open_trace(out)} == {1, 2}
        capsys.readouterr()
        assert main(["analyze", out]) == 0
        assert "Per-host rollup" in capsys.readouterr().out

    def test_hosts_one_is_byte_identical_to_plain_run(self, tmp_path):
        plain = str(tmp_path / "plain.bin")
        flagged = str(tmp_path / "flagged.bin")
        assert main(["run", "linux", "webserver", "--minutes", "0.25",
                     "--out", plain]) == 0
        assert main(["run", "linux", "webserver", "--minutes", "0.25",
                     "--hosts", "1", "--cpus", "1",
                     "--out", flagged]) == 0
        assert open(plain, "rb").read() == open(flagged, "rb").read()

    def test_cpus_only_is_byte_identical_to_plain_run(self, tmp_path):
        plain = str(tmp_path / "plain.bin")
        sharded = str(tmp_path / "sharded.bin")
        assert main(["run", "vista", "webserver", "--minutes", "0.25",
                     "--out", plain]) == 0
        assert main(["run", "vista", "webserver", "--minutes", "0.25",
                     "--cpus", "4", "--out", sharded]) == 0
        assert open(plain, "rb").read() == open(sharded, "rb").read()

    def test_cluster_analyze_parallel_matches_serial(self, tmp_path,
                                                     capsys):
        out = str(tmp_path / "cluster.bin")
        main(["run", "linux", "serverfarm", "--minutes", "0.25",
              "--hosts", "2", "--out", out])
        capsys.readouterr()
        assert main(["analyze", out]) == 0
        serial = capsys.readouterr().out
        assert main(["analyze", out, "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_stream_conflicts_with_hosts(self, capsys):
        assert main(["run", "linux", "serverfarm", "--minutes", "0.25",
                     "--hosts", "2", "--stream"]) == 2
        assert "--stream" in capsys.readouterr().err

    def test_nonpositive_hosts_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "linux", "serverfarm",
                                       "--hosts", "0"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "linux", "serverfarm",
                                       "--cpus", "-2"])

    def test_hosts_run_with_metrics(self, tmp_path, capsys):
        out = str(tmp_path / "cluster.bin")
        assert main(["run", "linux", "serverfarm", "--minutes", "0.25",
                     "--hosts", "2", "--out", out, "--metrics"]) == 0
        err = capsys.readouterr().err
        assert 'host="1"' in err and 'host="2"' in err


class TestErrorPaths:
    """The CLI's failure modes: every bad invocation must exit with a
    clear diagnostic, never a traceback."""

    def test_unknown_backend_lists_registered(self, capsys):
        # `metrics` resolves names at run time, so an unregistered
        # backend travels the KeyError path rather than argparse.
        assert main(["metrics", "beos", "idle"]) == 2
        err = capsys.readouterr().err
        assert "unknown backend" in err
        assert "linux" in err and "vista" in err
        assert "Traceback" not in err

    def test_unknown_workload_for_backend(self, capsys):
        # "desktop" is registered — but only for vista; argparse's
        # global workload choices accept it, the registry must reject.
        assert main(["run", "linux", "desktop",
                     "--minutes", "0.1"]) == 2
        err = capsys.readouterr().err
        assert "unknown linux workload 'desktop'" in err
        assert "idle" in err       # the valid choices are listed

    @pytest.mark.parametrize("bad", ["0", "-2", "two"])
    def test_bad_jobs_rejected(self, bad, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["study", "--minutes", "0.1", "--jobs", bad])
        assert excinfo.value.code == 2
        assert "--jobs" in capsys.readouterr().err

    def test_stream_conflicts_with_out(self, tmp_path, capsys):
        out = str(tmp_path / "never.jsonl.gz")
        assert main(["run", "linux", "idle", "--minutes", "0.1",
                     "--stream", "--out", out]) == 2
        err = capsys.readouterr().err
        assert "--stream" in err and "--out" in err
        import os
        assert not os.path.exists(out)


class TestMetricsFlag:
    def test_run_metrics_goes_to_stderr(self, tmp_path, capsys):
        out = str(tmp_path / "t.bin")
        assert main(["run", "linux", "idle", "--minutes", "0.25",
                     "--out", out, "--metrics"]) == 0
        captured = capsys.readouterr()
        assert "repro_engine_events_dispatched_total" in captured.err
        assert "repro_wheel_cascades_total" in captured.err
        assert "repro_" not in captured.out

    def test_metrics_out_writes_file(self, tmp_path, capsys):
        out = str(tmp_path / "t.bin")
        mpath = str(tmp_path / "metrics.prom")
        assert main(["run", "vista", "idle", "--minutes", "0.25",
                     "--out", out, "--metrics-out", mpath]) == 0
        text = open(mpath, encoding="utf-8").read()
        assert "# TYPE repro_ring_pending gauge" in text
        assert 'os="vista"' in text

    def test_stream_run_collects_streaming_metrics(self, capsys,
                                                   monkeypatch,
                                                   tmp_path):
        monkeypatch.chdir(tmp_path)
        assert main(["run", "linux", "idle", "--minutes", "0.25",
                     "--stream", "--metrics"]) == 0
        err = capsys.readouterr().err
        assert "repro_streaming_events_total" in err
        assert "repro_streaming_episodes_total" in err

    def test_metrics_subcommand_prints_exposition(self, capsys):
        assert main(["metrics", "linux", "idle",
                     "--minutes", "0.25"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# HELP repro_engine_")
        assert "repro_power_wakeups_total" in out

    def test_metrics_subcommand_profile(self, capsys):
        assert main(["metrics", "vista", "idle", "--minutes", "0.25",
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "per-subsystem virtual-time profile" in out
        assert "sim.devices" in out

    def test_metrics_out_creates_missing_parent_dirs(self, tmp_path,
                                                     capsys):
        out = str(tmp_path / "t.bin")
        mpath = str(tmp_path / "deep" / "nested" / "metrics.prom")
        assert main(["run", "linux", "idle", "--minutes", "0.25",
                     "--out", out, "--metrics-out", mpath]) == 0
        assert "repro_engine_events_dispatched_total" in \
            open(mpath, encoding="utf-8").read()

    def test_metrics_out_unwritable_exits_2(self, tmp_path, capsys):
        out = str(tmp_path / "t.bin")
        blocker = tmp_path / "file"
        blocker.write_text("")
        mpath = str(blocker / "metrics.prom")   # parent is a file
        assert main(["run", "linux", "idle", "--minutes", "0.25",
                     "--out", out, "--metrics-out", mpath]) == 2
        assert "error: cannot write metrics to" in \
            capsys.readouterr().err

    def test_metrics_subcommand_json_format(self, capsys):
        import json

        from repro.obs import MetricsSnapshot
        assert main(["metrics", "linux", "idle", "--minutes", "0.25",
                     "--format", "json"]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out)
        assert any(s["name"] == "repro_power_wakeups_total"
                   for s in doc["samples"])
        # The JSON is a faithful snapshot: it parses back into an
        # equivalent snapshot whose exposition names every series.
        snapshot = MetricsSnapshot.from_json(out)
        assert snapshot.to_json(indent=2) == out.rstrip("\n")
        assert "repro_engine_events_dispatched_total" in \
            snapshot.render()

    def test_study_output_byte_identical_with_metrics(self, capsys):
        assert main(["study", "--minutes", "0.1", "--jobs", "1"]) == 0
        plain = capsys.readouterr().out
        assert main(["study", "--minutes", "0.1", "--jobs", "1",
                     "--metrics"]) == 0
        captured = capsys.readouterr()
        assert captured.out == plain
        assert "repro_engine_events_dispatched_total" in captured.err


class TestBrowse:
    def test_unreachable(self, capsys):
        assert main(["browse", "--unreachable"]) == 0
        text = capsys.readouterr().out
        assert "unreachable" in text
        assert "NFS/SunRPC gave up" in text

    def test_adaptive(self, capsys):
        assert main(["browse", "--unreachable", "--adaptive"]) == 0
        text = capsys.readouterr().out
        assert "unreachable after 0." in text

    def test_healthy(self, capsys):
        assert main(["browse"]) == 0
        assert "connected" in capsys.readouterr().out


class TestStudy:
    def test_condensed_study_runs(self, capsys):
        assert main(["study", "--minutes", "0.25"]) == 0
        text = capsys.readouterr().out
        assert "Table 1" in text and "Table 2" in text
        assert "Figure 1" in text
        assert "Fig2" in text


class TestReport:
    def test_report_written(self, tmp_path):
        out = str(tmp_path / "report.md")
        assert main(["report", "--minutes", "0.25", "--out", out]) == 0
        text = open(out, encoding="utf-8").read()
        for section in ("Table 1", "Table 2", "Figure 2", "Figure 7",
                        "Table 3", "Figure 11", "value adaptivity",
                        "Figure 1"):
            assert section in text


class TestCompareAndBinary:
    def test_binary_roundtrip_via_cli(self, tmp_path):
        out = str(tmp_path / "trace.bin")
        assert main(["run", "linux", "idle", "--minutes", "0.5",
                     "--out", out]) == 0
        assert main(["analyze", out]) == 0

    def test_compare_two_traces(self, tmp_path, capsys):
        a = str(tmp_path / "a.bin")
        b = str(tmp_path / "b.bin")
        main(["run", "linux", "idle", "--minutes", "0.5", "--out", a])
        main(["run", "linux", "webserver", "--minutes", "0.5",
              "--out", b])
        capsys.readouterr()
        assert main(["compare", a, b]) == 0
        text = capsys.readouterr().out
        assert "ratio" in text
        assert "value-distribution distance" in text
