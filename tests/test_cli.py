"""End-to-end tests for the timerstudy CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_os(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "beos", "idle"])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "linux", "compile"])


class TestRunAndAnalyze:
    def test_run_writes_trace(self, tmp_path, capsys):
        out = str(tmp_path / "trace.jsonl.gz")
        assert main(["run", "linux", "idle", "--minutes", "0.5",
                     "--out", out]) == 0
        from repro.tracing import Trace
        trace = Trace.load(out)
        assert trace.os_name == "linux"
        assert len(trace) > 100

    def test_analyze_prints_all_sections(self, tmp_path, capsys):
        out = str(tmp_path / "trace.jsonl.gz")
        main(["run", "linux", "idle", "--minutes", "0.5", "--out", out])
        capsys.readouterr()
        assert main(["analyze", out, "--filter-x"]) == 0
        text = capsys.readouterr().out
        for section in ("Summary", "Usage patterns", "Common timeout",
                        "Observed durations", "Origins",
                        "Value adaptivity"):
            assert section in text

    def test_vista_run(self, tmp_path):
        out = str(tmp_path / "v.jsonl.gz")
        assert main(["run", "vista", "idle", "--minutes", "0.25",
                     "--out", out]) == 0

    def test_run_stream_analyzes_without_trace_file(self, tmp_path,
                                                    capsys):
        out = str(tmp_path / "never-written.jsonl.gz")
        main(["run", "linux", "idle", "--minutes", "0.5", "--out", out])
        batch = capsys.readouterr()
        assert main(["analyze", out]) == 0
        batch_text = capsys.readouterr().out

        stream_out = str(tmp_path / "stream.jsonl.gz")
        assert main(["run", "linux", "idle", "--minutes", "0.5",
                     "--stream", "--out", stream_out]) == 0
        captured = capsys.readouterr()
        import os
        assert not os.path.exists(stream_out)
        assert "no trace file written" in captured.err
        # In-flight analysis matches analyzing the saved trace, minus
        # the batch-only tail sections.
        head = batch_text.split("=== Value adaptivity")[0]
        assert captured.out.startswith(head)
        assert "(unavailable on a streaming analysis)" in captured.out


class TestBrowse:
    def test_unreachable(self, capsys):
        assert main(["browse", "--unreachable"]) == 0
        text = capsys.readouterr().out
        assert "unreachable" in text
        assert "NFS/SunRPC gave up" in text

    def test_adaptive(self, capsys):
        assert main(["browse", "--unreachable", "--adaptive"]) == 0
        text = capsys.readouterr().out
        assert "unreachable after 0." in text

    def test_healthy(self, capsys):
        assert main(["browse"]) == 0
        assert "connected" in capsys.readouterr().out


class TestStudy:
    def test_condensed_study_runs(self, capsys):
        assert main(["study", "--minutes", "0.25"]) == 0
        text = capsys.readouterr().out
        assert "Table 1" in text and "Table 2" in text
        assert "Figure 1" in text
        assert "Fig2" in text


class TestReport:
    def test_report_written(self, tmp_path):
        out = str(tmp_path / "report.md")
        assert main(["report", "--minutes", "0.25", "--out", out]) == 0
        text = open(out, encoding="utf-8").read()
        for section in ("Table 1", "Table 2", "Figure 2", "Figure 7",
                        "Table 3", "Figure 11", "value adaptivity",
                        "Figure 1"):
            assert section in text


class TestCompareAndBinary:
    def test_binary_roundtrip_via_cli(self, tmp_path):
        out = str(tmp_path / "trace.bin")
        assert main(["run", "linux", "idle", "--minutes", "0.5",
                     "--out", out]) == 0
        assert main(["analyze", out]) == 0

    def test_compare_two_traces(self, tmp_path, capsys):
        a = str(tmp_path / "a.bin")
        b = str(tmp_path / "b.bin")
        main(["run", "linux", "idle", "--minutes", "0.5", "--out", a])
        main(["run", "linux", "webserver", "--minutes", "0.5",
              "--out", b])
        capsys.readouterr()
        assert main(["compare", a, b]) == 0
        text = capsys.readouterr().out
        assert "ratio" in text
        assert "value-distribution distance" in text
