"""Integration tests: the workloads reproduce the paper's signatures."""

import pytest

from repro.sim.clock import JIFFY, SECOND, millis, seconds
from repro.core import (TimerClass, countdown_series, duration_scatter,
                        pattern_breakdown, rate_series, summarize,
                        value_histogram)
from repro.core.episodes import Outcome
from repro.workloads import (browse, browse_adaptive, run_workload,
                             run_vista_desktop)

DURATION = 90 * SECOND


@pytest.fixture(scope="module")
def linux_runs():
    return {wl: run_workload("linux", wl, DURATION, seed=7)
            for wl in ("idle", "skype", "firefox", "webserver")}


@pytest.fixture(scope="module")
def vista_runs():
    return {wl: run_workload("vista", wl, DURATION, seed=7)
            for wl in ("idle", "skype", "firefox", "webserver")}


class TestLinuxSummaries:
    def test_access_ordering_matches_table1(self, linux_runs):
        """Idle < Webserver < Skype << Firefox in total accesses."""
        acc = {wl: summarize(run.trace).accesses
               for wl, run in linux_runs.items()}
        assert acc["idle"] < acc["webserver"] < acc["skype"] \
            < acc["firefox"]
        assert acc["firefox"] > 5 * acc["webserver"]

    def test_webserver_is_kernel_dominated(self, linux_runs):
        """Table 1: only the webserver has kernel >> user accesses."""
        for wl, run in linux_runs.items():
            summary = summarize(run.trace)
            if wl == "webserver":
                assert summary.kernel > 2 * summary.user_space
            else:
                assert summary.user_space > summary.kernel

    def test_firefox_cancels_dominate(self, linux_runs):
        summary = summarize(linux_runs["firefox"].trace)
        assert summary.canceled > 3 * summary.expired

    def test_idle_expiries_exceed_cancels(self, linux_runs):
        summary = summarize(linux_runs["idle"].trace)
        assert summary.expired > summary.canceled * 0.6

    def test_timer_counts_are_dozens_not_thousands(self, linux_runs):
        for run in linux_runs.values():
            summary = summarize(run.trace)
            assert 20 <= summary.timers <= 200
            assert summary.concurrency <= summary.timers


class TestVistaSummaries:
    def test_expiries_dominate_cancels(self, vista_runs):
        """Table 2: on Vista timers more often expire; on Linux more
        are cancelled (for the interactive workloads)."""
        for run in vista_runs.values():
            summary = summarize(run.trace)
            assert summary.expired > 3 * summary.canceled

    def test_accesses_scale(self, vista_runs):
        acc = {wl: summarize(run.trace).accesses
               for wl, run in vista_runs.items()}
        assert acc["idle"] < acc["skype"] < acc["firefox"]

    def test_no_7200s_keepalive_on_vista_webserver(self, vista_runs):
        hist = value_histogram(vista_runs["webserver"].trace)
        assert hist.counts.get(seconds(7200), 0) == 0


class TestFigure2Patterns:
    def test_idle_dominated_by_periodic(self, linux_runs):
        row = pattern_breakdown(linux_runs["idle"].trace).figure2_row()
        assert row["periodic"] == max(row.values())
        assert row["watchdog"] < 5.0

    def test_webserver_watchdogs_and_timeouts(self, linux_runs):
        row = pattern_breakdown(
            linux_runs["webserver"].trace).figure2_row()
        assert row["watchdog"] > 5.0
        assert row["timeout"] > 30.0

    def test_soft_realtime_workloads_have_big_other(self, linux_runs):
        for wl in ("skype", "firefox"):
            row = pattern_breakdown(linux_runs[wl].trace).figure2_row()
            assert row["other"] > 25.0


class TestFigure3to6Values:
    def test_webserver_round_and_adapted_values(self, linux_runs):
        hist = value_histogram(linux_runs["webserver"].trace)
        common = dict(hist.common_values(2.0))
        assert millis(40) in common          # delack
        assert 51 * JIFFY in common          # adapted RTO, 0.204 s
        assert seconds(3) in common          # SYN retransmit
        assert seconds(7200) in common       # keepalive
        assert hist.coverage(2.0) > 80.0

    def test_no_sub_jiffy_values_on_linux(self, linux_runs):
        for run in linux_runs.values():
            hist = value_histogram(run.trace)
            for value in hist.counts:
                assert value == 0 or value >= JIFFY

    def test_firefox_jiffy_scale_polling(self, linux_runs):
        hist = value_histogram(linux_runs["firefox"].trace)
        common = dict(hist.common_values(2.0))
        assert JIFFY in common and 2 * JIFFY in common \
            and 3 * JIFFY in common

    def test_xorg_countdown_sawtooth(self, linux_runs):
        series = countdown_series(linux_runs["idle"].trace, "Xorg")
        assert len(series) > 50
        values = [v for _, v in series]
        drops = sum(b < a for a, b in zip(values, values[1:]))
        assert drops / (len(values) - 1) > 0.9
        assert max(values) == 600 * SECOND

    def test_filtering_x_changes_histogram(self, linux_runs):
        trace = linux_runs["idle"].trace
        unfiltered = value_histogram(trace)
        filtered = value_histogram(trace.without_comms(["Xorg",
                                                        "icewm"]))
        assert filtered.total_sets < unfiltered.total_sets

    def test_skype_syscall_constants(self, linux_runs):
        hist = value_histogram(linux_runs["skype"].trace, domain="user")
        assert hist.percentage_of(0) > 15.0
        assert hist.counts.get(millis(499.9), 0) > 0
        assert hist.counts.get(millis(500), 0) > 0


class TestFigure7VistaValues:
    def test_sub_10ms_values_present(self, vista_runs):
        hist = value_histogram(vista_runs["firefox"].trace)
        small = sum(count for value, count in hist.counts.items()
                    if 0 < value < millis(10))
        assert small / hist.total_sets > 0.3


class TestDurations:
    def test_vista_delivers_later_than_linux(self, linux_runs,
                                             vista_runs):
        linux = duration_scatter(linux_runs["idle"].trace)
        vista = duration_scatter(vista_runs["idle"].trace)
        assert vista.share_above_100pct() > linux.share_above_100pct()

    def test_skype_sub_second_cancel_cluster(self, linux_runs):
        scatter = duration_scatter(linux_runs["skype"].trace)
        assert scatter.cancel_share(value_max_ns=SECOND) > 0.4

    def test_webserver_journal_cluster(self, linux_runs):
        scatter = duration_scatter(linux_runs["webserver"].trace)
        points = scatter.points_near(seconds(4.9), rel_tol=0.04)
        cancels = [p for p in points
                   if p.outcome == Outcome.CANCELED
                   and 75 <= p.fraction_pct <= 101]
        assert sum(p.count for p in cancels) >= 5

    def test_arp_5s_column_cancelled_at_random(self, linux_runs):
        scatter = duration_scatter(linux_runs["idle"].trace)
        low, high = scatter.fraction_spread(seconds(5), rel_tol=0.01)
        assert high - low > 40.0


class TestFigure1Desktop:
    def test_rates_shape(self):
        run = run_vista_desktop(seed=3)
        rates = rate_series(run.trace)
        assert 400 < rates.mean("Kernel") < 2000
        assert 10 < rates.mean("Browser") < 150
        assert rates.peak("Outlook") > 1000       # the burst idiom
        assert rates.mean("System") < rates.mean("Kernel")


class TestFileBrowser:
    def test_unreachable_server_takes_over_a_minute(self):
        result = browse(name_resolves=True, server_reachable=False)
        assert result.outcome == "unreachable"
        assert result.elapsed_seconds > 60.0

    def test_typo_name_takes_several_seconds(self):
        result = browse(name_resolves=False, server_reachable=True)
        assert result.outcome == "name-error"
        assert result.elapsed_seconds >= 7.0

    def test_healthy_server_is_rtt_fast(self):
        result = browse(name_resolves=True, server_reachable=True,
                        rtt_ns=millis(130))
        assert result.outcome == "connected"
        assert result.elapsed_seconds < 0.5

    def test_adaptive_flattening_reports_failure_fast(self):
        slow = browse(name_resolves=True, server_reachable=False)
        fast = browse_adaptive(name_resolves=True,
                               server_reachable=False)
        assert fast.outcome == "unreachable"
        assert fast.elapsed_ns < slow.elapsed_ns / 50


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = run_workload("linux", "idle", 20 * SECOND, seed=11)
        b = run_workload("linux", "idle", 20 * SECOND, seed=11)
        assert len(a.trace) == len(b.trace)
        for ea, eb in zip(a.trace.events, b.trace.events):
            assert (ea.kind, ea.ts, ea.timer_id, ea.timeout_ns) == \
                (eb.kind, eb.ts, eb.timer_id, eb.timeout_ns)

    def test_different_seed_different_trace(self):
        a = run_workload("linux", "skype", 20 * SECOND, seed=1)
        b = run_workload("linux", "skype", 20 * SECOND, seed=2)
        assert len(a.trace) != len(b.trace)

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            run_workload("linux", "nope")


class TestVistaDeferredPattern:
    def test_registry_lazy_close_classified_deferred(self, vista_runs):
        """Section 4.1.1's fifth, Vista-only pattern appears in the
        idle trace via the registry lazy flush."""
        from repro.core import classify_trace
        trace = vista_runs["idle"].trace
        verdicts = classify_trace(trace)
        by_site = {v.history.site[0][0] if isinstance(
            v.history.key, tuple) else "": v for v in verdicts
            if v.history.site and "CmpLazyFlushWorker"
            in v.history.site[0]}
        assert by_site, "registry lazy-close timer missing from trace"
        verdict = next(iter(by_site.values()))
        assert verdict.timer_class in (TimerClass.DEFERRED,
                                       TimerClass.WATCHDOG)
