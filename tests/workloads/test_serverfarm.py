"""The serverfarm workload: the paper's TCP timer taxonomy, held
concurrently by a whole population of persistent connections.

Pins the datacenter scene behind ``benchmarks/bench_scale.py``: every
TCP timer class the paper catalogues must appear in the trace, the
keepalive asymmetry between the OSes must match §4.3's observation,
and the connection churn must actually recycle slots.
"""

import pytest

from repro.linuxkern.subsystems.net import (SITE_DELACK, SITE_KEEPALIVE,
                                            SITE_RTO, SITE_TIMEWAIT)
from repro.sim.clock import SECOND
from repro.tracing import binfmt
from repro.workloads import run_workload
from repro.workloads.serverfarm import (SITE_VISTA_REXMIT,
                                        SITE_VISTA_TIMEWAIT,
                                        run_linux_serverfarm,
                                        run_vista_serverfarm)

DURATION = 40 * SECOND
CONNECTIONS = 60


@pytest.fixture(scope="module")
def linux_farm():
    return run_linux_serverfarm(DURATION, seed=11,
                                connections=CONNECTIONS)


@pytest.fixture(scope="module")
def vista_farm():
    return run_vista_serverfarm(DURATION, seed=11,
                                connections=CONNECTIONS)


class TestLinuxFarm:
    def test_full_tcp_taxonomy_present(self, linux_farm):
        sites = {event.site for event in linux_farm.trace.events}
        for site in (SITE_RTO, SITE_DELACK, SITE_KEEPALIVE,
                     SITE_TIMEWAIT):
            assert site in sites, f"missing {site[0]}"

    def test_connections_churn(self, linux_farm):
        farm = linux_farm.components["farm"]
        assert farm.opened >= CONNECTIONS
        assert farm.closed > 0                  # slots recycled
        assert farm.opened > farm.closed        # population persists
        assert farm.active == farm.opened - farm.closed

    def test_registry_name_matches_direct_run(self):
        direct = run_linux_serverfarm(5 * SECOND, seed=2,
                                      connections=20)
        via = run_workload("linux", "serverfarm", 5 * SECOND, seed=2)
        # The registry path runs the default population; same scene,
        # same seed, different size must still be the same model.
        assert via.trace.workload == direct.trace.workload == "serverfarm"


class TestVistaFarm:
    def test_taxonomy_sites_present(self, vista_farm):
        sites = {event.site for event in vista_farm.trace.events}
        assert SITE_VISTA_REXMIT in sites
        assert SITE_VISTA_TIMEWAIT in sites

    def test_no_keepalive_on_vista(self, vista_farm):
        # §4.3: the Vista webserver trace shows no keepalive timer.
        assert not any("keepalive" in frame.lower()
                       for event in vista_farm.trace.events
                       for frame in event.site)

    def test_requests_and_churn(self, vista_farm):
        farm = vista_farm.components["farm"]
        assert farm.requests > farm.opened      # persistent connections
        assert farm.closed > 0
        assert farm.active == farm.opened - farm.closed


class TestDeterminism:
    @pytest.mark.parametrize("os_name", ["linux", "vista"])
    def test_seed_stable_at_any_population(self, os_name):
        runner = (run_linux_serverfarm if os_name == "linux"
                  else run_vista_serverfarm)
        first = runner(5 * SECOND, seed=9, connections=35)
        second = runner(5 * SECOND, seed=9, connections=35)
        assert binfmt.dumps(first.trace) == binfmt.dumps(second.trace)
