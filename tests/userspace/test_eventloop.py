"""Tests for the user-level select-loop reactor."""

import pytest

from repro.sim.clock import JIFFY, MINUTE, SECOND, millis, seconds
from repro.tracing import EventKind, RelayBuffer, Trace
from repro.userspace import UserEventLoop
from repro.workloads.base import Machine
from repro.core import TimerClass, classify_trace, value_histogram


@pytest.fixture
def machine():
    return Machine("linux", seed=6)


def make_loop(machine, **kwargs):
    loop = UserEventLoop(machine, "reactor", **kwargs)
    loop.start()
    return loop


class TestUserTimers:
    def test_call_later_fires_once(self, machine):
        loop = make_loop(machine)
        fired = []
        loop.call_later(millis(100),
                        lambda: fired.append(machine.kernel.engine.now))
        machine.kernel.run_for(seconds(1))
        assert len(fired) == 1
        # Delivered at or shortly after the due time (select rounds up
        # to jiffies and adds its margin).
        assert millis(100) <= fired[0] <= millis(100) + 3 * JIFFY

    def test_many_timers_fire_in_order(self, machine):
        loop = make_loop(machine)
        fired = []
        for delay in (millis(300), millis(100), millis(200)):
            loop.call_later(delay, lambda d=delay: fired.append(d))
        machine.kernel.run_for(seconds(1))
        assert fired == [millis(100), millis(200), millis(300)]

    def test_periodic(self, machine):
        loop = make_loop(machine)
        ticks = []
        loop.call_periodic(millis(250), lambda: ticks.append(1))
        machine.kernel.run_for(seconds(5))
        assert 15 <= len(ticks) <= 20

    def test_cancel(self, machine):
        loop = make_loop(machine)
        fired = []
        timer = loop.call_later(millis(100), lambda: fired.append(1))
        assert loop.cancel(timer) is True
        assert loop.cancel(timer) is False
        machine.kernel.run_for(seconds(1))
        assert fired == []

    def test_reset(self, machine):
        loop = make_loop(machine)
        fired = []
        timer = loop.call_later(
            millis(100), lambda: fired.append(machine.kernel.engine.now))
        loop.reset(timer, millis(500))
        machine.kernel.run_for(seconds(1))
        assert len(fired) == 1
        assert fired[0] >= millis(500)

    def test_earlier_timer_added_while_blocked(self, machine):
        """Arming a sooner timer must shorten the pending select."""
        loop = make_loop(machine)
        fired = []
        loop.call_later(seconds(10), lambda: fired.append("late"))
        machine.kernel.run_for(millis(50))
        loop.call_later(millis(100), lambda: fired.append("early"))
        machine.kernel.run_for(seconds(1))
        assert fired == ["early"]

    def test_invalid_interval(self, machine):
        loop = make_loop(machine)
        with pytest.raises(ValueError):
            loop.call_periodic(0, lambda: None)

    def test_stop_halts_loop(self, machine):
        loop = make_loop(machine)
        ticks = []
        loop.call_periodic(millis(200), lambda: ticks.append(1))
        machine.kernel.run_for(seconds(1))
        loop.stop()
        count = len(ticks)
        machine.kernel.run_for(seconds(5))
        assert len(ticks) == count


class TestEventDelivery:
    def test_deliver_runs_callback(self, machine):
        loop = make_loop(machine)
        got = []
        loop.call_later(seconds(10), lambda: None)   # loop is blocked
        machine.kernel.run_for(millis(10))
        loop.deliver(lambda: got.append(machine.kernel.engine.now))
        machine.kernel.run_for(millis(10))
        assert len(got) == 1

    def test_delivery_does_not_lose_timers(self, machine):
        loop = make_loop(machine)
        fired = []
        loop.call_later(millis(200), lambda: fired.append("timer"))
        rng = machine.rng.stream("test.delivery")
        for i in range(10):
            machine.kernel.engine.call_after(
                millis(10 + 15 * i), loop.deliver, lambda: None)
        machine.kernel.run_for(seconds(1))
        assert fired == ["timer"]


class TestTwoLayerVisibility:
    """The paper's Section 3 problem, demonstrated."""

    def _run_app(self, machine):
        user_sink = RelayBuffer()
        loop = make_loop(machine, user_sink=user_sink)
        loop.call_periodic(millis(500), lambda: None,
                           site=("app.heartbeat",))
        loop.call_periodic(seconds(2), lambda: None,
                           site=("app.cache_sweep",))
        # An RPC-style timeout that is always cancelled by the reply.
        rng = machine.rng.stream("test.rpc")

        def rpc():
            timer = loop.call_later(seconds(5), lambda: None,
                                    site=("app.rpc_guard",))
            loop_cancel_at = max(1, int(rng.exponential(millis(40))))
            machine.kernel.engine.call_after(
                loop_cancel_at, lambda t=timer: loop.cancel(t))
            machine.kernel.engine.call_after(
                loop_cancel_at + millis(300), rpc)

        rpc()
        machine.kernel.run_for(2 * MINUTE)
        kernel_trace = Trace(os_name="linux", workload="two-layer",
                             duration_ns=2 * MINUTE,
                             events=[e for e in machine.kernel.sink
                                     if e.pid == loop.task.pid])
        user_trace = Trace(os_name="linux", workload="two-layer",
                           duration_ns=2 * MINUTE,
                           events=list(user_sink))
        return kernel_trace, user_trace

    def test_kernel_sees_one_timer_user_sees_many(self, machine):
        kernel_trace, user_trace = self._run_app(machine)
        kernel_ids = {e.timer_id for e in kernel_trace.events}
        user_ids = {e.timer_id for e in user_trace.events}
        assert len(kernel_ids) == 1          # the single select timer
        # Two periodic timers plus one DelayedCall per RPC.
        assert len(user_ids) > 100

    def test_kernel_values_are_mangled_user_values_exact(self, machine):
        kernel_trace, user_trace = self._run_app(machine)
        user_hist = value_histogram(user_trace)
        # User layer: the three programmer constants, verbatim.
        assert set(user_hist.counts) == {millis(500), seconds(2),
                                         seconds(5)}
        # Kernel layer: a blur of residual values.
        kernel_hist = value_histogram(kernel_trace)
        assert len(kernel_hist.counts) > 5

    def test_user_layer_classification_recovers_intent(self, machine):
        kernel_trace, user_trace = self._run_app(machine)
        # Cluster by call site: the per-RPC DelayedCalls are fresh
        # objects, exactly like Vista's dynamically allocated KTIMERs.
        verdicts = {v.history.site[0]: v.timer_class
                    for v in classify_trace(user_trace, logical=True)}
        assert verdicts["app.heartbeat"] == TimerClass.PERIODIC
        assert verdicts["app.cache_sweep"] == TimerClass.PERIODIC
        assert verdicts["app.rpc_guard"] == TimerClass.TIMEOUT
        # Kernel layer: the single select timer cannot be classified as
        # any of those.
        kernel_verdicts = [v.timer_class for v in
                           classify_trace(kernel_trace, logical=False)]
        assert TimerClass.PERIODIC not in kernel_verdicts
