"""Failure-injection tests: overflowing buffers, dead networks, stuck
disks, pathological inputs — the system degrades the way the modelled
systems do, and the analyses stay usable."""

import pytest

from repro.sim import Engine, SECOND, millis, seconds
from repro.linuxkern import LinuxKernel
from repro.linuxkern.subsystems import BlockLayer, TcpConnection, TcpStack
from repro.tracing import RelayBuffer, Trace
from repro.tracing.relay import APPROX_RECORD_BYTES
from repro.core import summarize
from repro.core.timespec import FlexibleTimerQueue, Window
from repro.workloads.base import Machine
from repro.workloads.idle import build_linux_idle_base


class TestRelayOverflow:
    def test_small_buffer_drops_but_keeps_order(self):
        """The paper sized its buffer so nothing dropped; if it HAD
        overflowed, relayfs keeps old data and drops new."""
        sink = RelayBuffer(capacity_bytes=200 * APPROX_RECORD_BYTES)
        machine = Machine("linux", seed=1)
        machine.kernel.sink = sink
        machine.kernel.timers.sink = sink
        build_linux_idle_base(machine)
        machine.kernel.run_for(60 * SECOND)
        assert sink.dropped > 0
        assert len(sink) == 200
        timestamps = [e.ts for e in sink]
        assert timestamps == sorted(timestamps)

    def test_truncated_trace_still_analyzable(self):
        sink = RelayBuffer(capacity_bytes=500 * APPROX_RECORD_BYTES)
        machine = Machine("linux", seed=1)
        machine.kernel.sink = sink
        machine.kernel.timers.sink = sink
        build_linux_idle_base(machine)
        machine.kernel.run_for(60 * SECOND)
        trace = Trace(os_name="linux", workload="truncated",
                      duration_ns=60 * SECOND, events=list(sink))
        summary = summarize(trace)
        assert summary.set_count > 0
        # Unresolved timers (their endings were dropped) are tolerated.
        from repro.core import classify_trace
        assert classify_trace(trace)


class TestDeadNetwork:
    def test_total_loss_exhausts_retransmits_and_closes(self):
        kernel = LinuxKernel(seed=2)
        stack = TcpStack(kernel, kernel.rng.stream("tcp"), loss_rate=1.0)
        closed = []
        conn = TcpConnection(stack, server_side=True,
                             on_close=lambda: closed.append(1))
        conn.start()
        kernel.run_for(600 * seconds(1))
        assert closed == [1]
        assert conn.retransmits > 5

    def test_socket_pool_does_not_leak_under_failures(self):
        kernel = LinuxKernel(seed=2)
        stack = TcpStack(kernel, kernel.rng.stream("tcp"), loss_rate=1.0)
        for _ in range(10):
            TcpConnection(stack, server_side=True).start()
            kernel.run_for(300 * seconds(1))
        # All failed connections returned their socket to the pool.
        assert len(stack._pool) == stack._sock_count
        assert stack._sock_count <= 10


class TestNetmodelInjection:
    """The netmodel's scripted conditions driving a live TCP stack."""

    def test_blackout_shift_kills_live_stack(self):
        from repro.sim.netmodel import get_condition
        kernel = LinuxKernel(seed=4)
        stack = TcpStack(kernel, kernel.rng.stream("tcp"),
                         loss_rate=0.0)
        duration = 600 * SECOND
        condition = get_condition("blackout")
        condition.apply_to_stack(stack, kernel.engine, duration)
        # Base regime applied immediately: WAN latency, no loss.
        assert stack.rtt_median_ns == int(condition.median_s * 1e9)
        assert stack.loss_rate == 0.0
        closed = []
        early = TcpConnection(stack, server_side=True,
                              on_close=lambda: closed.append("early"))
        early.start()
        late = TcpConnection(stack, server_side=True,
                             on_close=lambda: closed.append("late"))
        kernel.engine.call_after(301 * SECOND, late.start)
        kernel.run_for(duration)
        # The scripted failure_to=1.0 landed halfway: the stack is dead.
        assert stack.loss_rate == 1.0
        # The healthy-half connection completed without retransmitting;
        # the post-shift one exhausted its retransmissions and closed.
        assert closed == ["early", "late"]
        assert early.retransmits == 0
        assert late.retransmits > 5

    def test_median_scale_shift_slows_live_stack(self):
        from repro.sim.netmodel import get_condition
        kernel = LinuxKernel(seed=5)
        stack = TcpStack(kernel, kernel.rng.stream("tcp"),
                         loss_rate=0.0)
        condition = get_condition("lan-wan-shift")
        condition.apply_to_stack(stack, kernel.engine, 100 * SECOND)
        before = stack.rtt_median_ns
        kernel.run_for(100 * SECOND)
        assert stack.rtt_median_ns == before * 1000


class TestStuckDisk:
    def test_ide_command_timeout_fires_on_hung_disk(self):
        kernel = LinuxKernel(seed=3)
        block = BlockLayer(kernel, kernel.rng.stream("blk"),
                           io_burst_mean_ns=seconds(10),
                           service_mean_ns=seconds(120))   # disk wedged
        block.start()
        kernel.run_for(600 * seconds(1))
        assert block.command_timeouts > 0


class TestPathologicalInputs:
    def test_engine_reentrancy_rejected(self):
        from repro.sim import SimulationError
        engine = Engine()

        def reenter():
            with pytest.raises(SimulationError):
                engine.run_until(seconds(10))

        engine.call_at(100, reenter)
        engine.run_until(seconds(1))

    def test_callback_exception_propagates_and_engine_recovers(self):
        engine = Engine()

        def boom():
            raise RuntimeError("callback failed")

        engine.call_at(100, boom)
        engine.call_at(200, lambda: None)
        with pytest.raises(RuntimeError):
            engine.run_until(seconds(1))
        # The engine is not wedged: remaining events still run.
        engine.run_until(seconds(1))
        assert engine.pending_count() == 0

    def test_flexible_queue_cancel_after_fire(self):
        engine = Engine()
        queue = FlexibleTimerQueue(engine)
        timer = queue.submit(Window(millis(1), millis(2)), lambda: None)
        engine.run_until(seconds(1))
        assert timer.fired_at is not None
        assert queue.cancel(timer) is False

    def test_select_with_negative_timeout_treated_as_zero(self):
        """Linux returns EINVAL; our model clamps — either way no hang."""
        from repro.linuxkern import SyscallInterface, WakeReason
        kernel = LinuxKernel(seed=0)
        syscalls = SyscallInterface(kernel)
        task = kernel.tasks.spawn("app")
        results = []
        syscalls.select(task, 0, lambda r, rem: results.append(r))
        assert results == [WakeReason.TIMEOUT]

    def test_vista_lookaside_bounded_under_churn(self):
        from repro.vistakern import VistaKernel, Winsock
        kernel = VistaKernel(seed=1)
        winsock = Winsock(kernel)
        task = kernel.tasks.spawn("app")
        for _ in range(500):
            winsock.select(task, millis(1), lambda to: None)
            kernel.run_for(millis(20))
        ids = {e.timer_id for e in kernel.sink}
        assert len(ids) <= 4       # sequential churn reuses addresses
