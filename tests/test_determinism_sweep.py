"""Determinism sweep: every backend x portable workload, re-run at many
seeds, must reproduce byte-identical traces and equal metrics.

The simulator's whole methodology rests on runs being pure functions of
``(backend, workload, duration, seed)`` — the parallel study driver,
the streaming/batch equivalence and the metrics battery all assume it.
This sweep pins that property across the OS-neutral workload matrix,
including the observability layer itself: collection must not perturb
the simulation, and two runs of one seed must produce equal
``MetricsSnapshot``s (volatile wall-clock series are excluded from
snapshot equality by design).
"""

import random

import pytest

from repro.kern import backend_names
from repro.sim.clock import SECOND
from repro.tracing.binfmt import dumps
from repro.workloads.portable import PORTABLE_WORKLOADS, run_portable

#: 20 seeds drawn once, deterministically, from a wide range.
SEEDS = random.Random(0xD5).sample(range(1_000_000), 20)

DURATION_NS = 2 * SECOND

MATRIX = [(os_name, workload) for os_name in backend_names()
          for workload in sorted(PORTABLE_WORKLOADS)]


def _ids(pair):
    return f"{pair[0]}-{pair[1]}"


@pytest.mark.parametrize("combo", MATRIX, ids=_ids)
def test_trace_and_metrics_reproducible(combo):
    os_name, workload = combo
    for seed in SEEDS:
        first = run_portable(workload, os_name, DURATION_NS, seed=seed)
        second = run_portable(workload, os_name, DURATION_NS, seed=seed)
        blob_a, blob_b = dumps(first.trace), dumps(second.trace)
        assert blob_a == blob_b, \
            f"{os_name}/{workload} seed {seed}: trace bytes diverged"
        snap_a, snap_b = first.metrics(), second.metrics()
        assert snap_a == snap_b, \
            f"{os_name}/{workload} seed {seed}: metrics diverged"
        # Wall-clock series exist but are excluded from equality.
        assert snap_a.get("repro_engine_wall_seconds", os=os_name,
                          workload=workload) > 0


@pytest.mark.parametrize("combo", MATRIX, ids=_ids)
def test_seeds_actually_differ(combo):
    """Different seeds must change the trace — otherwise the sweep
    above would be vacuously comparing one canned run."""
    os_name, workload = combo
    blobs = {dumps(run_portable(workload, os_name, DURATION_NS,
                                seed=seed).trace)
             for seed in SEEDS[:4]}
    assert len(blobs) == 4


def test_collection_is_observation_only():
    """A run whose metrics were collected mid-flight stays on the same
    trajectory as an untouched one."""
    os_name, workload = MATRIX[0]
    plain = run_portable(workload, os_name, DURATION_NS, seed=SEEDS[0])
    observed = run_portable(workload, os_name, DURATION_NS,
                            seed=SEEDS[0])
    observed.metrics()
    observed.metrics()                 # twice, for good measure
    assert dumps(plain.trace) == dumps(observed.trace)
    assert plain.metrics() == observed.metrics()
