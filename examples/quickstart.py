#!/usr/bin/env python3
"""Quickstart: trace a workload and ask the paper's basic questions.

Runs one minute of the Linux "idle desktop" workload on the simulated
machine, then reproduces the paper's core analyses on the trace:

* the Table 1 summary (how many timers, how often set/expired/canceled),
* the Figure 2 usage-pattern taxonomy,
* the Figure 3/5 common-value histogram,
* Table 3 origin attribution.

Run:  python examples/quickstart.py
"""

from repro.sim.clock import MINUTE
from repro.core import (origin_table, pattern_breakdown,
                        render_histogram, render_origin_table,
                        round_value_share, summarize, summary_table,
                        value_histogram)
from repro.workloads import run_workload


def main() -> None:
    print("Running 1 virtual minute of the Linux idle workload...")
    run = run_workload("linux", "idle", duration_ns=1 * MINUTE, seed=1)
    trace = run.trace
    print(f"captured {len(trace)} timer events\n")

    print("=== Trace summary (Table 1 schema) ===")
    print(summary_table([summarize(trace)]))

    print("\n=== Usage patterns (Figure 2 schema) ===")
    breakdown = pattern_breakdown(trace)
    for name, pct in breakdown.figure2_row().items():
        print(f"  {name:<10} {pct:5.1f}% of {breakdown.total} timers")

    print("\n=== Common timeout values, X/icewm filtered "
          "(Figure 5 schema) ===")
    hist = value_histogram(trace.without_comms(["Xorg", "icewm"]))
    print(render_histogram(hist))
    print(f"\nround-number share: {round_value_share(hist) * 100:.1f}% "
          "(the paper's point: programmers pick round values)")

    print("\n=== Timeout origins (Table 3 schema) ===")
    print(render_origin_table(origin_table(trace, min_sets=5)))


if __name__ == "__main__":
    main()
