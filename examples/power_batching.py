#!/usr/bin/env python3
"""Section 5.3 in action: what a better notion of time buys in power.

The same population of periodic housekeeping timers (the ones that keep
an "idle" system waking up) runs under four policies:

1. precise per-timer expiries over the stock periodic tick,
2. round_jiffies whole-second batching,
3. dynticks with deferrable timers,
4. window-based flexible specifications ("any time in the next N
   seconds") batched by the interval-stabbing scheduler.

Run:  python examples/power_batching.py
"""

from repro.sim import Engine, millis, seconds
from repro.sim.clock import MINUTE, SECOND
from repro.linuxkern import LinuxKernel
from repro.linuxkern.subsystems.housekeeping import PeriodicKernelTimer
from repro.core.timespec import FlexibleTimerQueue, Window

POPULATION = (
    ("workqueue", seconds(1)), ("kworkqueue", seconds(2)),
    ("clocksource", millis(500)), ("writeback", seconds(5)),
    ("usb-poll", millis(250)), ("e1000", seconds(2)),
    ("pktsched", seconds(5)), ("neigh", seconds(2)),
    ("neigh-gc", seconds(4)), ("arp-flush", seconds(8)),
)
DURATION = 2 * MINUTE


def kernel_policy(label, *, rounded, dynticks, deferrable):
    kernel = LinuxKernel(seed=1, dynticks=dynticks)
    rng = kernel.rng.stream("stagger")
    for name, period in POPULATION:
        # Sub-second pollers need their precision; only the slow
        # housekeeping opts into rounding/deferral.  Start phases are
        # staggered, as after a real boot.
        imprecise = period >= seconds(1)
        timer = PeriodicKernelTimer(kernel, name=name, period_ns=period,
                                    site=(name, "__mod_timer"),
                                    use_round_jiffies=rounded and imprecise,
                                    deferrable=deferrable and imprecise)
        kernel.engine.call_after(rng.randrange(1, seconds(1)),
                                 timer.start)
    kernel.run_for(DURATION)
    meter = kernel.power
    print(f"  {label:28s} {meter.wakeups_per_second(DURATION):8.1f} "
          f"wakeups/s  {meter.average_watts(DURATION):6.2f} W avg")


def flexible_policy():
    engine = Engine()
    queue = FlexibleTimerQueue(engine, batching=True)

    def periodic(period):
        def fire():
            start = engine.now + period
            queue.submit(Window(start, start + period // 2), fire)
        start = engine.now + period
        queue.submit(Window(start, start + period // 2), fire)

    for _name, period in POPULATION:
        periodic(period)
    engine.run_until(DURATION)
    rate = queue.wakeups / (DURATION / SECOND)
    print(f"  {'flexible windows (stabbed)':28s} {rate:8.1f} "
          f"wakeups/s  ({queue.fired} expiries delivered)")


def main() -> None:
    print(f"{len(POPULATION)} periodic timers over "
          f"{DURATION // MINUTE} virtual minutes:\n")
    kernel_policy("stock periodic tick", rounded=False,
                  dynticks=False, deferrable=False)
    kernel_policy("dynticks, precise timers", rounded=False,
                  dynticks=True, deferrable=False)
    kernel_policy("dynticks + round_jiffies", rounded=True,
                  dynticks=True, deferrable=False)
    kernel_policy("dynticks + deferrable", rounded=True,
                  dynticks=True, deferrable=True)
    flexible_policy()
    print("\nEach step trades expiry precision the callers never "
          "needed for fewer CPU wakeups — the generalisation the "
          "paper argues for in Section 5.3.")


if __name__ == "__main__":
    main()
