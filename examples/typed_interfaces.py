#!/usr/bin/env python3
"""Section 5.4 in action: building a service on typed timer interfaces.

A small "download manager" is written twice against the simulated
kernel: once with raw set/cancel timers (today's style), once with the
use-case interfaces (PeriodicTicker / ScopedTimeout / Watchdog /
DeferredAction).  Both are traced; the classifier is then run over both
traces to show that the typed version's intent is explicit while the
raw version must be reverse-engineered from its episode patterns.

Run:  python examples/typed_interfaces.py
"""

from repro.sim.clock import MINUTE, millis, seconds
from repro.linuxkern import LinuxKernel
from repro.core import classify_trace
from repro.core.interfaces import (DeferredAction, PeriodicTicker,
                                   ScopedTimeout, Watchdog)
from repro.tracing import Trace


def run_typed() -> Trace:
    kernel = LinuxKernel(seed=4)
    rng = kernel.rng.stream("downloads")

    progress_ticks = []
    ticker = PeriodicTicker(kernel, millis(500),
                            lambda: progress_ticks.append(1),
                            site=("ui_progress_tick",))
    ticker.start()

    stalls = []
    watchdog = Watchdog(kernel, seconds(10), lambda: stalls.append(1),
                        site=("transfer_watchdog",))
    watchdog.start()

    flushes = []
    metadata = DeferredAction(kernel, seconds(2),
                              lambda: flushes.append(1),
                              site=("metadata_lazy_flush",))

    def one_chunk() -> None:
        # Each chunk request is guarded by a scoped timeout.
        with ScopedTimeout(kernel, seconds(30), lambda: None,
                           site=("chunk_request_guard",)):
            kernel.run_for(int(rng.lognormal_latency(millis(80),
                                                     sigma=0.5)))
        watchdog.kick()
        metadata.touch()

    for _ in range(300):
        one_chunk()
        kernel.run_for(int(rng.exponential(millis(50))))

    print(f"typed version: {len(progress_ticks)} progress ticks, "
          f"{len(stalls)} stalls, {len(flushes)} metadata flushes")
    return Trace(os_name="linux", workload="typed",
                 duration_ns=kernel.engine.now,
                 events=list(kernel.sink))


def run_raw() -> Trace:
    kernel = LinuxKernel(seed=4)
    rng = kernel.rng.stream("downloads")
    from repro.sim.clock import to_jiffies

    tick = kernel.init_timer(site=("raw_tick",),
                             owner=kernel.tasks.kernel)

    def tick_fn(timer):
        kernel.mod_timer_rel(timer, to_jiffies(millis(500)))
    tick.function = tick_fn
    kernel.mod_timer_rel(tick, to_jiffies(millis(500)))

    guard_dog = kernel.init_timer(lambda t: None, site=("raw_watchdog",),
                                  owner=kernel.tasks.kernel)
    kernel.mod_timer_rel(guard_dog, to_jiffies(seconds(10)))
    flush = kernel.init_timer(lambda t: None, site=("raw_flush",),
                              owner=kernel.tasks.kernel)
    chunk_guard = kernel.init_timer(lambda t: None,
                                    site=("raw_chunk_guard",),
                                    owner=kernel.tasks.kernel)

    for _ in range(300):
        kernel.mod_timer_rel(chunk_guard, to_jiffies(seconds(30)))
        kernel.run_for(int(rng.lognormal_latency(millis(80), sigma=0.5)))
        kernel.del_timer(chunk_guard)
        kernel.mod_timer_rel(guard_dog, to_jiffies(seconds(10)))
        kernel.mod_timer_rel(flush, to_jiffies(seconds(2)))
        kernel.run_for(int(rng.exponential(millis(50))))

    return Trace(os_name="linux", workload="raw",
                 duration_ns=kernel.engine.now,
                 events=list(kernel.sink))


def main() -> None:
    typed_trace = run_typed()
    raw_trace = run_raw()

    print("\nWhat the paper's classifier recovers from the raw trace "
          "(intent reverse-engineered):")
    for verdict in classify_trace(raw_trace, logical=True):
        site = verdict.history.site[0]
        print(f"  {site:<22} -> {verdict.timer_class.value:<9} "
              f"({verdict.set_count} sets)")

    print("\nSame behaviour through the typed interfaces "
          "(intent explicit in the API; scoped guards cluster by "
          "call site):")
    for verdict in classify_trace(typed_trace, logical=True):
        site = verdict.history.site[0]
        print(f"  {site:<22} -> {verdict.timer_class.value:<9} "
              f"({verdict.set_count} sets)")

    print("\nThe typed version also elides nested chunk guards and "
          "corrects ticker drift — see benchmarks/bench_sec54_*.")


if __name__ == "__main__":
    main()
