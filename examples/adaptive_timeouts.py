#!/usr/bin/env python3
"""Section 5.1 in action: "time out once the system is 99% confident
that a message will never be arriving".

An RPC client issues requests against a server whose replies follow a
lognormal latency distribution, with a small rate of genuine failures
(no reply at all).  We compare:

* the arbitrary fixed 30-second timeout of the paper's title,
* a learned 99%-confidence adaptive timeout,

on failure-detection latency and false-timeout rate — then move the
client from the office LAN to a hotel WAN mid-run and watch the
level-shift detector relearn the distribution.

Run:  python examples/adaptive_timeouts.py
"""

import math
import random

from repro.core.adaptive import AdaptiveTimeout, simulate_wait_policy


def make_latencies(rng, count, median, failure_rate=0.02):
    return [None if rng.random() < failure_rate
            else rng.lognormvariate(math.log(median), 0.4)
            for _ in range(count)]


def main() -> None:
    rng = random.Random(2008)

    print("Phase 1: steady LAN fileserver (median reply 130 ms), "
          "2% real failures, 4000 requests")
    latencies = make_latencies(rng, 4000, 0.13)
    fixed = simulate_wait_policy(latencies, policy="fixed",
                                 fixed_timeout=30.0)
    adaptive = simulate_wait_policy(latencies, policy="adaptive",
                                    fixed_timeout=30.0)
    print(f"  {'policy':10s} {'mean failure detection':>24s} "
          f"{'false timeouts':>15s}")
    for outcome in (fixed, adaptive):
        print(f"  {outcome.policy:10s} "
              f"{outcome.mean_detection:22.2f} s "
              f"{outcome.false_timeouts:11d} "
              f"({outcome.false_timeout_rate * 100:.2f}%)")
    speedup = fixed.mean_detection / adaptive.mean_detection
    print(f"  -> failures surface {speedup:.0f}x faster with the "
          "learned timeout\n")

    print("Phase 2: the user travels — the same share moves from LAN "
          "(130 us) to WAN (130 ms)")
    model = AdaptiveTimeout(confidence=0.99, safety=2.0,
                            initial_timeout=30.0)
    lan = make_latencies(rng, 2000, 0.00013)
    wan = make_latencies(rng, 2000, 0.13)
    outcome = simulate_wait_policy(lan + wan, policy="adaptive",
                                   adaptive=model)
    print(f"  timeout while on LAN:      "
          f"{outcome.timeline[1999] * 1000:8.3f} ms")
    print(f"  level shifts detected:     {model.relearned}")
    print(f"  timeout after relearning:  "
          f"{outcome.timeline[-1] * 1000:8.1f} ms")
    print(f"  false timeouts around the shift: "
          f"{outcome.false_timeouts} of {outcome.waits} waits "
          f"({outcome.false_timeout_rate * 100:.2f}%)")
    print("  -> a brief burst of spurious timeouts, then the model "
          "tracks the new regime;")
    print("     a fixed 130 us-calibrated timeout would have failed "
          "every WAN request forever.")


if __name__ == "__main__":
    main()
