#!/usr/bin/env python3
"""Section 2.1/3 in action: the two timer multiplexing layers.

A Twisted-style application runs three kinds of user-level timers —
a 500 ms heartbeat, a 2 s cache sweep, and a 5 s RPC guard cancelled by
each reply — over the select-loop reactor.  The same trace analyses
are then run at both layers:

* below the syscall boundary (what the paper's Linux instrumentation
  could see): ONE select timer whose value varies call to call;
* above it (the instrumentation the paper wishes it had): the three
  programmer-intended timers with their exact constants and classes.

Run:  python examples/userspace_reactor.py
"""

from repro.sim.clock import MINUTE, millis, seconds
from repro.core import (classify_trace, render_histogram,
                        value_histogram)
from repro.tracing import RelayBuffer, Trace
from repro.userspace import UserEventLoop
from repro.workloads.base import Machine


def main() -> None:
    machine = Machine("linux", seed=8)
    user_sink = RelayBuffer()
    loop = UserEventLoop(machine, "twistd", user_sink=user_sink)
    loop.start()

    beats = []
    loop.call_periodic(millis(500), lambda: beats.append(1),
                       site=("app.heartbeat",))
    loop.call_periodic(seconds(2), lambda: None,
                       site=("app.cache_sweep",))

    rng = machine.rng.stream("rpc")

    def one_rpc() -> None:
        guard = loop.call_later(seconds(5), lambda: None,
                                site=("app.rpc_guard",))
        reply_at = max(1, int(rng.exponential(millis(40))))
        machine.kernel.engine.call_after(
            reply_at, lambda: loop.cancel(guard))
        machine.kernel.engine.call_after(reply_at + millis(250), one_rpc)

    one_rpc()
    duration = 2 * MINUTE
    machine.kernel.run_for(duration)
    print(f"ran 2 virtual minutes: {len(beats)} heartbeats, "
          f"{loop.kernel_selects} kernel selects, "
          f"{loop.user_fires} user timer fires\n")

    kernel_trace = Trace(os_name="linux", workload="reactor",
                         duration_ns=duration,
                         events=[e for e in machine.kernel.sink
                                 if e.pid == loop.task.pid])
    user_trace = Trace(os_name="linux", workload="reactor",
                       duration_ns=duration, events=list(user_sink))

    print("=== What the kernel instrumentation sees ===")
    kernel_ids = {e.timer_id for e in kernel_trace.events}
    print(f"distinct timer structs: {len(kernel_ids)} "
          "(everything multiplexed onto one select timer)")
    print("value histogram (>=2%):")
    print(render_histogram(value_histogram(kernel_trace)))
    for verdict in classify_trace(kernel_trace, logical=False):
        print(f"classified as: {verdict.timer_class.value} "
              f"({verdict.set_count} sets)")

    print("\n=== What user-level instrumentation sees ===")
    print("value histogram:")
    print(render_histogram(value_histogram(user_trace)))
    print("per-callsite classification:")
    for verdict in classify_trace(user_trace, logical=True):
        print(f"  {verdict.history.site[0]:<18} -> "
              f"{verdict.timer_class.value:<9} "
              f"({verdict.set_count} sets)")

    print("\nThis is the paper's Section 3 instrumentation problem: "
          "the kernel-level log alone cannot recover the application's "
          "timers, which is why the study records stack traces and "
          "argues for timeout provenance (Section 5.2).")


if __name__ == "__main__":
    main()
