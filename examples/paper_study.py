#!/usr/bin/env python3
"""The whole paper in one run: all eight traces, all analyses.

Runs the four workloads on both OS models (at a configurable fraction
of the paper's 30 minutes), then prints every table and the data behind
every figure.  With ``--full`` it runs the paper's full half hour per
trace (slow; several million events).

Run:  python examples/paper_study.py [--minutes N] [--seed S] [--full]
"""

import argparse

from repro.kern import backend_names, backend_traits
from repro.sim.clock import MINUTE, SECOND
from repro.core import (duration_scatter, pattern_breakdown, rate_series,
                        render_histogram, render_origin_table,
                        render_rates, render_scatter, origin_table,
                        summarize, summary_table, value_histogram)
from repro.workloads import run_vista_desktop, run_workload

WORKLOADS = ("idle", "skype", "firefox", "webserver")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--minutes", type=float, default=2.0,
                        help="virtual minutes per trace (paper: 30)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--full", action="store_true",
                        help="run the paper's full 30 minutes")
    args = parser.parse_args()
    minutes = 30.0 if args.full else args.minutes
    duration = int(minutes * MINUTE)

    runs = {}
    for os_name in backend_names():
        for workload in WORKLOADS:
            print(f"tracing {os_name}/{workload} "
                  f"({minutes:g} virtual minutes)...")
            runs[(os_name, workload)] = run_workload(
                os_name, workload, duration, seed=args.seed)

    for os_name in backend_names():
        table = backend_traits(os_name).table_label
        print(f"\n=== {table}: {os_name} trace summary ===")
        print(summary_table([summarize(runs[(os_name, wl)].trace)
                             for wl in WORKLOADS]))

    print("\n=== Figure 2: Linux usage patterns (% of timers) ===")
    for workload in WORKLOADS:
        row = pattern_breakdown(runs[("linux", workload)].trace)
        cells = "  ".join(f"{k}={v:5.1f}"
                          for k, v in row.figure2_row().items())
        print(f"  {workload:<10} {cells}")

    print("\n=== Figure 3/5: common Linux values (webserver, "
          "X filtered) ===")
    trace = runs[("linux", "webserver")].trace.without_comms(
        ["Xorg", "icewm"])
    print(render_histogram(value_histogram(trace)))

    print("\n=== Figure 6: Linux syscall values (skype) ===")
    print(render_histogram(value_histogram(
        runs[("linux", "skype")].trace, domain="user")))

    print("\n=== Figure 7: Vista values (skype) ===")
    print(render_histogram(value_histogram(
        runs[("vista", "skype")].trace)))

    print("\n=== Table 3: Linux timeout origins (webserver) ===")
    print(render_origin_table(origin_table(
        runs[("linux", "webserver")].trace, min_sets=10)))

    for workload, figure in zip(WORKLOADS, ("8", "9", "10", "11")):
        print(f"\n=== Figure {figure}: durations, {workload} ===")
        for os_name in backend_names():
            scatter = duration_scatter(runs[(os_name, workload)].trace)
            print(f"--- {os_name} "
                  f"(late deliveries: "
                  f"{scatter.share_above_100pct() * 100:.0f}%) ---")
            print(render_scatter(scatter))

    print("\n=== Figure 1: Vista desktop set rates (90 s) ===")
    desktop = run_vista_desktop(seed=args.seed)
    print(render_rates(rate_series(desktop.trace),
                       groups=["Outlook", "Browser", "System", "Kernel"]))


if __name__ == "__main__":
    main()
