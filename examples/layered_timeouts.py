#!/usr/bin/env python3
"""Section 2.2.2 in action: why a typo can take a minute to report.

Simulates the Windows file-browser scenario: parallel name lookups
(WINS/DNS/mDNS), then parallel connects over SMB, NFS-over-SunRPC
(7 retries doubling from 500 ms) and WebDAV — and shows the wall-clock
timeline of failure propagation versus a provenance-aware flattened
timeout.

Run:  python examples/layered_timeouts.py
"""

from repro.sim.clock import SECOND, millis
from repro.tracing import RequestTracker
from repro.workloads import browse, browse_adaptive


def show(result, title):
    print(f"{title}: reported '{result.outcome}' after "
          f"{result.elapsed_seconds:.2f}s")
    for ts, what in result.timeline:
        print(f"    {ts / SECOND:8.3f}s  {what}")
    print()


def main() -> None:
    rtt = millis(130)
    print(f"Network round-trip time: {rtt / 1e6:.0f} ms\n")

    show(browse(name_resolves=True, server_reachable=True, rtt_ns=rtt),
         "Healthy server")
    show(browse(name_resolves=False, server_reachable=True, rtt_ns=rtt),
         "Typo in the server name (all lookups must fail)")
    show(browse(name_resolves=True, server_reachable=False, rtt_ns=rtt),
         "Server unreachable (every protocol backs off independently)")

    print("The request's timeout tree, as Section 5.2 provenance "
          "would record it:\n")
    tracker = RequestTracker()
    browse(name_resolves=True, server_reachable=False, rtt_ns=rtt,
           tracker=tracker)
    request = tracker.requests[0]
    print(request.render())
    dominant = " -> ".join(f"{n.layer}/{n.name}"
                           for n in request.dominant_path())
    print(f"\ndominant path: {dominant}\n")

    print("With timer provenance + a learned RTT distribution "
          "(Sections 5.1/5.2):\n")
    show(browse_adaptive(name_resolves=True, server_reachable=False,
                         rtt_ns=rtt),
         "Server unreachable, flattened adaptive timeout")


if __name__ == "__main__":
    main()
