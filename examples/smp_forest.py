#!/usr/bin/env python3
"""The multiprocessor timer *forest* of Section 2, plus the kernel's
own statistics facility.

Boots a 4-CPU Linux machine, spreads periodic subsystem timers across
the per-CPU bases, watches them through `/proc/timer_stats`, then
offlines a CPU and shows its pending timers migrating — the
`migrate_timers` hotplug path.  Also demonstrates the SMP deletion
variants the paper lists (`del_timer_sync`, `try_to_del_timer_sync`).

Run:  python examples/smp_forest.py
"""

from repro.sim.clock import MINUTE, millis, seconds
from repro.linuxkern import LinuxKernel, TimerStats
from repro.tracing import RelayBuffer, TeeSink


def main() -> None:
    stats = TimerStats()
    kernel = LinuxKernel(seed=3, cpus=4,
                         sink=TeeSink([RelayBuffer(), stats]))
    stats.start()

    # Subsystem timers pinned across the forest, as on a real SMP boot.
    periods = [(f"cpu{cpu}-poll", millis(250 + 250 * cpu), cpu)
               for cpu in range(4)]
    periods += [("writeback", seconds(5), 1), ("neigh", seconds(2), 2)]
    from repro.sim.clock import to_jiffies
    timers = []
    for name, period, cpu in periods:
        timer = kernel.init_timer(site=(name, "__mod_timer"),
                                  owner=kernel.tasks.kernel, cpu=cpu)

        def rearm(t, period=period):
            kernel.mod_timer_rel(t, to_jiffies(period))

        timer.function = rearm
        kernel.mod_timer_rel(timer, to_jiffies(period))
        timers.append((name, timer))

    kernel.run_for(1 * MINUTE)

    print("Per-CPU pending timers after one minute:")
    for base in kernel.bases:
        print(f"  cpu{base.cpu}: {base.wheel.pending_count} pending")

    print("\n/proc/timer_stats:")
    print(stats.render())

    print("\nSMP deletion variants:")
    name, victim = timers[0]
    print(f"  try_to_del_timer_sync({name}) -> "
          f"{kernel.try_to_del_timer_sync(victim)} "
          "(1 = deactivated)")

    moved = kernel.offline_cpu(3)
    print(f"\nCPU 3 offlined: {moved} pending timer(s) migrated to "
          "CPU 0")
    for base in kernel.bases:
        print(f"  cpu{base.cpu}: {base.wheel.pending_count} pending")

    kernel.run_for(1 * MINUTE)
    print("\n...one more minute later, the migrated timers are still "
          "running:")
    print(f"  cpu0 now holds {kernel.bases[0].wheel.pending_count} "
          "pending timers")


if __name__ == "__main__":
    main()
