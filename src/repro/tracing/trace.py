"""Trace container and per-timer correlation.

A :class:`Trace` bundles the raw event stream from one workload run with
the metadata the analyses need (OS model, workload name, duration).  It
provides the two grouping operations the paper's post-processing relies
on:

* :meth:`Trace.instances` — group by timer structure address.  Works
  directly on Linux, where timer structs are statically allocated and
  reused.
* :meth:`Trace.logical_timers` — cluster by (call site, pid).  Needed on
  Vista, where "repeatedly calling select on the same socket will not
  typically result in operations on the same kernel timer" (Section 3.3).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Tuple

from .events import EventKind, TimerEvent


class TimerHistory:
    """All events observed for one timer (physical or logical)."""

    __slots__ = ("key", "events")

    def __init__(self, key, events: list[TimerEvent]):
        self.key = key
        self.events = events

    @property
    def sets(self) -> list[TimerEvent]:
        return [e for e in self.events if e.kind == EventKind.SET]

    @property
    def pid(self) -> int:
        return self.events[0].pid

    @property
    def comm(self) -> str:
        return self.events[0].comm

    @property
    def site(self) -> Tuple[str, ...]:
        for event in self.events:
            if event.kind == EventKind.SET:
                return event.site
        return self.events[0].site

    def __len__(self) -> int:
        return len(self.events)


class Trace:
    """One instrumented workload run."""

    def __init__(self, *, os_name: str, workload: str, duration_ns: int,
                 events: Optional[list[TimerEvent]] = None):
        # Any registered backend is a valid trace origin (the registry
        # lives above this layer, so resolve it lazily).
        from ..kern.registry import backend_names
        if os_name not in backend_names():
            raise ValueError(f"unknown os {os_name!r}; registered "
                             f"backends: {list(backend_names())}")
        self.os_name = os_name
        self.workload = workload
        self.duration_ns = duration_ns
        self.events: list[TimerEvent] = events if events is not None else []
        #: Cached :class:`repro.core.index.TraceIndex`; analyses share it
        #: via ``TraceIndex.of(trace)``.
        self._index = None

    # -- construction ---------------------------------------------------

    def extend(self, events: Iterable[TimerEvent]) -> None:
        """Append events; a cached index ingests them incrementally
        rather than being thrown away."""
        events = list(events)
        self.events.extend(events)
        if self._index is not None:
            self._index.ingest(events)

    # -- filtering ------------------------------------------------------

    def filtered(self, predicate: Callable[[TimerEvent], bool]) -> "Trace":
        """A new Trace containing only events matching ``predicate``."""
        return Trace(os_name=self.os_name, workload=self.workload,
                     duration_ns=self.duration_ns,
                     events=[e for e in self.events if predicate(e)])

    def without_comms(self, comms: Iterable[str]) -> "Trace":
        """Drop events charged to the given command names.

        This is the paper's filtering of the X server and icewm
        select-countdown timers from Figures 5 onward.
        """
        excluded = set(comms)
        return self.filtered(lambda e: e.comm not in excluded)

    def user_events(self) -> list[TimerEvent]:
        return [e for e in self.events if e.domain == "user"]

    def kernel_events(self) -> list[TimerEvent]:
        return [e for e in self.events if e.domain == "kernel"]

    def of_kind(self, kind: EventKind) -> list[TimerEvent]:
        return [e for e in self.events if e.kind == kind]

    # -- correlation ----------------------------------------------------

    def instances(self) -> list[TimerHistory]:
        """Group events by timer structure address, in trace order.

        Cluster traces (``event.host != 0``) qualify the key by host:
        each machine allocates timer ids from its own counter, so the
        same raw address on two hosts is two distinct timers.
        """
        groups: dict = {}
        for event in self.events:
            key = (event.host, event.timer_id) if event.host \
                else event.timer_id
            groups.setdefault(key, []).append(event)
        return [TimerHistory(tid, evs) for tid, evs in groups.items()]

    def logical_timers(self) -> list[TimerHistory]:
        """Cluster events by (set-site, pid).

        Events on a timer id are attributed to the site of that id's
        SET event, so cancels/expiries issued from other stacks join
        the cluster of the timer they act on.  Cluster traces qualify
        both the id lookup and the cluster key by host.
        """
        site_of_id: dict = {}
        groups: dict = {}
        for event in self.events:
            host = event.host
            timer_id = (host, event.timer_id) if host else event.timer_id
            if event.kind in (EventKind.SET, EventKind.INIT,
                              EventKind.WAIT_UNBLOCK):
                key = (host, event.site, event.pid) if host \
                    else (event.site, event.pid)
                site_of_id[timer_id] = key
            else:
                key = site_of_id.get(
                    timer_id, (host, event.site, event.pid) if host
                    else (event.site, event.pid))
            groups.setdefault(key, []).append(event)
        return [TimerHistory(key, evs) for key, evs in groups.items()]

    # -- persistence ----------------------------------------------------

    def save(self, path: str) -> None:
        """Write the trace; the extension picks the format.

        Routes through the format registry
        (:func:`repro.tracing.formats.write_trace`): ``*.bin`` selects
        the v2 columnar codec, ``*.bin1`` the legacy v1 codec, anything
        else gzipped JSON lines.
        """
        from .formats import write_trace
        write_trace(self, path)

    @classmethod
    def load(cls, path: str) -> "Trace":
        """Load a trace in any registered format (sniffed by magic)
        and materialise it as a full in-memory :class:`Trace`.

        Prefer :func:`repro.tracing.open_trace` for large binary
        traces — it returns the zero-copy columnar view instead of
        hydrating every event up front.
        """
        from .formats import materialize, open_trace
        return materialize(open_trace(path))

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return (f"<Trace {self.os_name}/{self.workload} "
                f"{len(self.events)} events>")
