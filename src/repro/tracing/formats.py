"""One trace I/O surface: a format registry behind two functions.

Historically the package grew five ways to read or write a trace
(``save_binary``/``load_binary``/``dumps``/``loads`` on the binary
codec plus ``Trace.save``/``Trace.load`` for JSON lines).  This module
collapses them into::

    from repro.tracing import open_trace, write_trace

    trace = open_trace("run.bin")            # sniffs the format
    write_trace(trace, "run.bin")            # extension picks v2
    write_trace(trace, "run.bin", format="binfmt")   # force v1

Formats are registry entries (:class:`TraceFormat`), each with a magic
sniffer, path and bytes codecs, and the extensions it claims on write:

* ``jsonl`` — gzipped JSON lines, the portable interchange format;
* ``binfmt`` — the version-1 packed-record binary codec (readable
  forever, no longer the default);
* ``binfmt2`` — the version-2 columnar codec; loading returns a
  zero-copy :class:`~repro.tracing.binfmt2.ColumnarTrace`.  Saving a
  cluster trace (any nonzero ``host``/``cpu``) auto-upgrades the
  stream to version 3; single-host traces stay byte-identical v2;
* ``binfmt3`` — the version-3 columnar codec forced explicitly: v2
  plus trailing ``host`` (u8) and ``cpu`` (u16) identity columns.

``open_trace`` returns whatever the format's loader produces — a
:class:`~repro.tracing.trace.Trace` or a ``ColumnarTrace``; every
analysis entry point (``analyze()``, ``as_index()``, the renderers)
accepts both.  Use :func:`materialize` when a plain ``Trace`` is
required.
"""

from __future__ import annotations

import gzip
import io
import json
import os
from dataclasses import dataclass, field
from typing import Callable, Union

from .binfmt2 import (ColumnarTrace, dumps_v2, dumps_v3, load_v2,
                      loads_v2, save_v2, save_v3)
from .errors import TraceFormatError
from .events import TimerEvent
from .trace import Trace

TraceLike = Union[Trace, ColumnarTrace]

#: Bytes of header a sniffer may inspect.
SNIFF_LEN = 16


@dataclass(frozen=True)
class TraceFormat:
    """One registered on-disk trace format."""

    name: str
    description: str
    #: ``sniff(header)`` -> True if the first bytes identify this format.
    sniff: Callable[[bytes], bool]
    load_path: Callable[[str], TraceLike]
    save_path: Callable[[Trace, str], None]
    from_bytes: Callable[[bytes], TraceLike]
    to_bytes: Callable[[Trace], bytes]
    #: Path suffixes this format claims when writing with format="auto".
    extensions: tuple = field(default=())


_REGISTRY: dict[str, TraceFormat] = {}

#: Plain per-format I/O tallies (loads/saves/bytes), bumped by the
#: public surface below and mirrored into a metrics registry by
#: :func:`repro.obs.collect.collect_trace_io` — the same pull-based,
#: zero-perturbation pattern as the rest of the instrumentation map.
IO_COUNTERS: dict[str, dict[str, int]] = {}


def _io_tally(name: str, op: str, nbytes: int) -> None:
    fmt = IO_COUNTERS.get(name)
    if fmt is None:
        fmt = IO_COUNTERS[name] = {
            "loads": 0, "saves": 0, "bytes_read": 0, "bytes_written": 0}
    fmt[op] += 1
    fmt["bytes_read" if op == "loads" else "bytes_written"] += nbytes


def register_format(fmt: TraceFormat) -> None:
    """Add (or replace) a format in the registry."""
    _REGISTRY[fmt.name] = fmt


def trace_formats() -> list[str]:
    """Registered format names, in registration order."""
    return list(_REGISTRY)


def _get(name: str) -> TraceFormat:
    fmt = _REGISTRY.get(name)
    if fmt is None:
        raise TraceFormatError(
            f"unknown trace format {name!r}; registered: "
            f"{', '.join(_REGISTRY)}")
    return fmt


# -- the three built-in formats ---------------------------------------------

def _jsonl_dump(trace: Trace, fh) -> None:
    header = {"os": trace.os_name, "workload": trace.workload,
              "duration_ns": trace.duration_ns}
    fh.write(json.dumps(header) + "\n")
    for event in trace.events:
        fh.write(json.dumps(event.to_dict()) + "\n")


def _jsonl_parse(fh) -> Trace:
    try:
        line = fh.readline()
        header = json.loads(line)
        events = [TimerEvent.from_dict(json.loads(line))
                  for line in fh if line.strip()]
    except (json.JSONDecodeError, KeyError, UnicodeDecodeError,
            gzip.BadGzipFile, EOFError) as err:
        raise TraceFormatError(f"corrupt JSON-lines trace: {err}") \
            from err
    try:
        return Trace(os_name=header["os"], workload=header["workload"],
                     duration_ns=header["duration_ns"], events=events)
    except (KeyError, TypeError) as err:
        raise TraceFormatError(
            f"JSON-lines trace header missing field: {err}") from err


def _jsonl_save(trace: Trace, path: str) -> None:
    with gzip.open(path, "wt", encoding="utf-8") as fh:
        _jsonl_dump(trace, fh)


def _jsonl_load(path: str) -> Trace:
    with gzip.open(path, "rt", encoding="utf-8") as fh:
        return _jsonl_parse(fh)


def _jsonl_to_bytes(trace: Trace) -> bytes:
    raw = io.BytesIO()
    # mtime=0 keeps the bytes deterministic for identical traces.
    with gzip.GzipFile(fileobj=raw, mode="wb", mtime=0) as gz:
        with io.TextIOWrapper(gz, encoding="utf-8") as fh:
            _jsonl_dump(trace, fh)
    return raw.getvalue()


def _jsonl_from_bytes(data: bytes) -> Trace:
    with gzip.open(io.BytesIO(data), "rt", encoding="utf-8") as fh:
        return _jsonl_parse(fh)


def _v1_save(trace: Trace, path: str) -> None:
    from . import binfmt
    with open(path, "wb") as fh:
        binfmt.dump_trace(trace, fh)


def _v1_load(path: str) -> Trace:
    from . import binfmt
    with open(path, "rb") as fh:
        return binfmt.load_trace(fh)


def _v1_to_bytes(trace: Trace) -> bytes:
    from . import binfmt
    out = io.BytesIO()
    binfmt.dump_trace(trace, out)
    return out.getvalue()


def _v1_from_bytes(data: bytes) -> Trace:
    from . import binfmt
    return binfmt.load_trace(io.BytesIO(data))


def _magic_version(header: bytes) -> int:
    from .binfmt import MAGIC
    if len(header) >= 10 and header[:8] == MAGIC:
        return int.from_bytes(header[8:10], "little")
    return -1


register_format(TraceFormat(
    name="jsonl",
    description="gzipped JSON lines (portable interchange)",
    sniff=lambda header: header[:2] == b"\x1f\x8b",
    load_path=_jsonl_load, save_path=_jsonl_save,
    from_bytes=_jsonl_from_bytes, to_bytes=_jsonl_to_bytes,
    extensions=(".jsonl.gz", ".json.gz", ".jsonl", ".gz"),
))

register_format(TraceFormat(
    name="binfmt",
    description="v1 packed-record binary (legacy, still readable)",
    sniff=lambda header: _magic_version(header) == 1,
    load_path=_v1_load, save_path=_v1_save,
    from_bytes=_v1_from_bytes, to_bytes=_v1_to_bytes,
    extensions=(".bin1",),
))

register_format(TraceFormat(
    name="binfmt2",
    description="v2 columnar binary (zero-copy mmap load; cluster "
                "traces auto-upgrade to the v3 columns)",
    sniff=lambda header: _magic_version(header) == 2,
    load_path=load_v2, save_path=save_v2,
    from_bytes=loads_v2, to_bytes=dumps_v2,
    extensions=(".bin", ".bin2"),
))

register_format(TraceFormat(
    name="binfmt3",
    description="v3 columnar binary (v2 plus host/cpu cluster "
                "identity columns)",
    sniff=lambda header: _magic_version(header) == 3,
    load_path=load_v2, save_path=save_v3,
    from_bytes=loads_v2, to_bytes=dumps_v3,
    extensions=(".bin3",),
))


# -- the public surface -----------------------------------------------------

def sniff_format(header: bytes) -> str:
    """Name the format whose magic matches ``header`` (first
    :data:`SNIFF_LEN` bytes of a file), or raise
    :class:`TraceFormatError`."""
    for fmt in _REGISTRY.values():
        if fmt.sniff(header):
            return fmt.name
    version = _magic_version(header)
    if version >= 0:
        raise TraceFormatError(
            f"unsupported trace version {version}; readable versions: "
            f"1 (binfmt), 2 (binfmt2), 3 (binfmt3)")
    raise TraceFormatError("not a recognised timer trace "
                           "(unknown magic bytes)")


def detect_format(path: Union[str, "os.PathLike"]) -> str:
    """Sniff the format of a trace file on disk."""
    with open(path, "rb") as fh:
        return sniff_format(fh.read(SNIFF_LEN))


def open_trace(path: Union[str, "os.PathLike"], *,
               format: str = "auto") -> TraceLike:
    """Load a trace file in any registered format.

    ``format="auto"`` (the default) sniffs the file's magic bytes.
    Returns whatever the format's loader produces: a :class:`Trace`
    for ``jsonl``/``binfmt``, a zero-copy
    :class:`~repro.tracing.binfmt2.ColumnarTrace` for ``binfmt2``.
    """
    path = os.fspath(path)
    try:
        name = detect_format(path) if format == "auto" else format
        loaded = _get(name).load_path(path)
        _io_tally(name, "loads", os.path.getsize(path))
        return loaded
    except TraceFormatError as exc:
        message = str(exc)
        if path not in message:
            raise TraceFormatError(f"{path}: {message}") from exc
        raise


def _format_for_path(path: str) -> str:
    best = ""
    best_name = "jsonl"
    for fmt in _REGISTRY.values():
        for ext in fmt.extensions:
            if path.endswith(ext) and len(ext) > len(best):
                best = ext
                best_name = fmt.name
    return best_name


def write_trace(trace: TraceLike, path: Union[str, "os.PathLike"], *,
                format: str = "auto") -> str:
    """Write ``trace`` to ``path``; returns the format name used.

    ``format="auto"`` picks by extension: ``*.bin``/``*.bin2`` get the
    v2 columnar codec, ``*.bin1`` the legacy v1 codec, anything else
    gzipped JSON lines.
    """
    path = os.fspath(path)
    name = _format_for_path(path) if format == "auto" else format
    _get(name).save_path(materialize(trace), path)
    _io_tally(name, "saves", os.path.getsize(path))
    return name


def trace_to_bytes(trace: TraceLike, *, format: str = "binfmt2") -> bytes:
    """Serialise a trace to bytes in the named format."""
    data = _get(format).to_bytes(materialize(trace))
    _io_tally(format, "saves", len(data))
    return data


def trace_from_bytes(data: bytes, *, format: str = "auto") -> TraceLike:
    """Deserialise trace bytes, sniffing the format by default."""
    name = sniff_format(data[:SNIFF_LEN]) if format == "auto" else format
    loaded = _get(name).from_bytes(data)
    _io_tally(name, "loads", len(data))
    return loaded


def materialize(source: TraceLike) -> Trace:
    """Coerce any trace-like object to a plain in-memory
    :class:`Trace` (hydrating a columnar view if needed)."""
    if isinstance(source, Trace):
        return source
    if isinstance(source, ColumnarTrace):
        return source.as_trace()
    raise TypeError(f"expected Trace or ColumnarTrace, got "
                    f"{type(source).__name__}")
