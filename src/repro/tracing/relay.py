"""relayfs-style ring buffer sink (the Linux instrumentation path).

The paper logged binary records into a 512 MiB in-kernel relayfs buffer
sized so no trace overflowed, with guaranteed event ordering and no
overwrite of old data (Section 3.2).  :class:`RelayBuffer` mirrors those
semantics: a capacity bound, append ordering, and an explicit dropped
counter if the bound is ever hit (the analyses assert it is zero, as the
paper did by construction).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from .events import TimerEvent, wait_unblock_event


#: Rough size of one encoded record; the paper's binary records carried a
#: timestamp, addresses and a truncated stack.  Used only to express the
#: capacity in bytes the way the paper does.
APPROX_RECORD_BYTES = 64

#: The paper's buffer size.
DEFAULT_CAPACITY_BYTES = 512 * 1024 * 1024


class RelayBuffer:
    """Bounded, ordered, no-overwrite event log."""

    def __init__(self, capacity_bytes: int = DEFAULT_CAPACITY_BYTES):
        self.capacity_events = max(1, capacity_bytes // APPROX_RECORD_BYTES)
        self._events: list[TimerEvent] = []
        #: Records offered over the buffer's lifetime.  Invariant:
        #: ``emitted == len(self) + dropped + drained``.
        self.emitted = 0
        self.dropped = 0
        #: Records handed to :meth:`drain` (the user-space reader).
        self.drained = 0
        #: Most records ever held at once; at most ``capacity_events``.
        self.high_water = 0
        #: Emulated per-record instrumentation cost; the paper measured
        #: 236 cycles to gather and log one record.
        self.record_cost_cycles = 236

    def emit(self, event: TimerEvent) -> None:
        """Append one record, or count it as dropped when full.

        The boundary is exact: record ``capacity_events`` is retained,
        record ``capacity_events + 1`` is the first drop, and
        ``emitted == retained + dropped + drained`` always holds (the
        drop accounting previously drifted from the retained count once
        the buffer had been drained).
        """
        self.emitted += 1
        events = self._events
        if len(events) >= self.capacity_events:
            self.dropped += 1
            return
        events.append(event)
        if len(events) > self.high_water:
            self.high_water = len(events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TimerEvent]:
        return iter(self._events)

    def drain(self) -> list[TimerEvent]:
        """Read out the buffer, emptying it (the user-space reader)."""
        events, self._events = self._events, []
        self.drained += len(events)
        return events

    def estimated_cycles(self) -> int:
        """Total instrumentation cycles charged for this buffer.

        Every offered record is charged — the 236 cycles gather the
        record before the capacity check, and records already drained
        were still paid for (the old ``retained + dropped`` formula
        forgot them).
        """
        return self.emitted * self.record_cost_cycles


class NullSink:
    """Sink used for 'unmodified kernel' runs in the overhead benchmark
    and for streaming runs that aggregate without retaining events."""

    dropped = 0

    def emit(self, event: TimerEvent) -> None:  # pragma: no cover - trivial
        pass

    def emit_wait_unblock(self, **kwargs) -> None:  # pragma: no cover
        pass


class TeeSink:
    """Fan an event stream out to several sinks (e.g. buffer + online
    streaming reducers).  Implements the full sink protocol, including
    the ETW thread-unblock record, so it can stand in for either the
    relayfs buffer or an ETW session in front of a kernel."""

    def __init__(self, sinks: Iterable) -> None:
        self.sinks = list(sinks)

    def add(self, sink) -> None:
        """Live attachment: start copying the stream to ``sink``."""
        self.sinks.append(sink)

    def emit(self, event: TimerEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def emit_wait_unblock(self, *, ts_block: int, ts_unblock: int,
                          timer_id: int, pid: int, comm: str, site,
                          timeout_ns: Optional[int],
                          satisfied: bool) -> None:
        """Build the unblock record once, fan it out to every sink."""
        self.emit(wait_unblock_event(
            ts_block=ts_block, ts_unblock=ts_unblock, timer_id=timer_id,
            pid=pid, comm=comm, site=site, timeout_ns=timeout_ns,
            satisfied=satisfied))


class HostStampSink:
    """Stamps every record with one machine's cluster identity.

    Sits between a kernel and its trace buffer on cluster runs: each
    event is rewritten with the machine's ``host`` id and the CPU its
    timer is affined to before being forwarded.  The affinity is the
    per-CPU wheels' modulo hash applied above the allocator's
    alignment bits — timer ids are spaced like slab addresses
    (0x40-aligned), so a plain ``timer_id % cpus`` would pin every
    timer to CPU 0 for any power-of-two CPU count.  Single-machine
    runs never build one, so their event streams are untouched.
    """

    def __init__(self, sink, host: int, cpus: int = 1) -> None:
        if host < 1:
            raise ValueError(f"host must be >= 1 on a cluster, got {host}")
        self.sink = sink
        self.host = host
        self.cpus = cpus

    def emit(self, event: TimerEvent) -> None:
        self.sink.emit(event._replace(
            host=self.host, cpu=(event.timer_id >> 6) % self.cpus))

    def emit_wait_unblock(self, **kwargs) -> None:
        self.emit(wait_unblock_event(**kwargs))


class CountingSink:
    """Online per-kind counter, for streaming analyses that don't need
    the full event list (mirrors the paper's call-count comparison)."""

    def __init__(self) -> None:
        self.counts: dict[int, int] = {}
        self.total = 0

    def emit(self, event: TimerEvent) -> None:
        self.total += 1
        self.counts[event.kind] = self.counts.get(event.kind, 0) + 1

    def count(self, kind) -> int:
        return self.counts.get(int(kind), 0)
