"""Compact binary trace encoding.

The paper's relayfs instrumentation wrote fixed-size binary records
into the kernel buffer and converted them to text offline
(Section 3.2).  This codec provides the same style of storage for our
traces: a string table for comms and interned call sites, followed by
fixed-layout little-endian records — about 5x smaller and much faster
to load than the JSON-lines format, which matters for 30-minute
Firefox traces with millions of events.

Format (little-endian)::

    magic  b"TMRTRACE" | version u16 | os u8 | reserved u8
    workload: u16 length + utf-8
    duration_ns: u64
    comm table:  u32 count, each u16 length + utf-8
    site table:  u32 count, each u8 frame-count x (u16 length + utf-8)
    events: u64 count, each:
        kind u8 | flags u8 | domain u8 (0 kernel, 1 user) | pad u8
        comm_idx u32 | site_idx u32 | pid u32
        ts i64 | timer_id u64
        timeout_ns i64  (-1 encodes None)
        expires_ns i64  (-1 encodes None)
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO

from .events import EventKind, TimerEvent
from .trace import Trace

MAGIC = b"TMRTRACE"
VERSION = 1
_OS_CODES = {"linux": 0, "vista": 1}
_OS_NAMES = {code: name for name, code in _OS_CODES.items()}

_EVENT = struct.Struct("<BBBBIIIqQqq")
_NONE = -1


def _write_str(out: BinaryIO, text: str) -> None:
    data = text.encode("utf-8")
    if len(data) > 0xFFFF:
        raise ValueError("string too long for trace format")
    out.write(struct.pack("<H", len(data)))
    out.write(data)


def _read_str(buf: BinaryIO) -> str:
    (length,) = struct.unpack("<H", buf.read(2))
    return buf.read(length).decode("utf-8")


def dump_trace(trace: Trace, out: BinaryIO) -> None:
    """Serialise ``trace`` to a binary stream."""
    out.write(MAGIC)
    out.write(struct.pack("<HBB", VERSION, _OS_CODES[trace.os_name], 0))
    _write_str(out, trace.workload)
    out.write(struct.pack("<Q", trace.duration_ns))

    comms: dict[str, int] = {}
    sites: dict[tuple, int] = {}
    for event in trace.events:
        comms.setdefault(event.comm, len(comms))
        sites.setdefault(event.site, len(sites))

    out.write(struct.pack("<I", len(comms)))
    for comm in comms:                  # insertion order == index order
        _write_str(out, comm)
    out.write(struct.pack("<I", len(sites)))
    for site in sites:
        out.write(struct.pack("<B", len(site)))
        for frame in site:
            _write_str(out, frame)

    out.write(struct.pack("<Q", len(trace.events)))
    pack = _EVENT.pack
    write = out.write
    for event in trace.events:
        write(pack(
            int(event.kind), event.flags & 0xFF,
            1 if event.domain == "user" else 0, 0,
            comms[event.comm], sites[event.site], event.pid,
            event.ts, event.timer_id,
            _NONE if event.timeout_ns is None else event.timeout_ns,
            _NONE if event.expires_ns is None else event.expires_ns))


def load_trace(buf: BinaryIO) -> Trace:
    """Deserialise a trace written by :func:`dump_trace`."""
    if buf.read(8) != MAGIC:
        raise ValueError("not a timer trace file")
    version, os_code, _pad = struct.unpack("<HBB", buf.read(4))
    if version != VERSION:
        raise ValueError(f"unsupported trace version {version}")
    workload = _read_str(buf)
    (duration_ns,) = struct.unpack("<Q", buf.read(8))

    (n_comms,) = struct.unpack("<I", buf.read(4))
    comms = [_read_str(buf) for _ in range(n_comms)]
    (n_sites,) = struct.unpack("<I", buf.read(4))
    sites = []
    for _ in range(n_sites):
        (frames,) = struct.unpack("<B", buf.read(1))
        sites.append(tuple(_read_str(buf) for _ in range(frames)))

    (n_events,) = struct.unpack("<Q", buf.read(8))
    size = _EVENT.size
    unpack = _EVENT.unpack
    events = []
    append = events.append
    data = buf.read(n_events * size)
    for offset in range(0, n_events * size, size):
        (kind, flags, domain_code, _pad, comm_idx, site_idx, pid, ts,
         timer_id, timeout_ns, expires_ns) = unpack(
            data[offset:offset + size])
        append(TimerEvent(
            EventKind(kind), ts, timer_id, pid, comms[comm_idx],
            "user" if domain_code else "kernel", sites[site_idx],
            None if timeout_ns == _NONE else timeout_ns,
            None if expires_ns == _NONE else expires_ns, flags))
    return Trace(os_name=_OS_NAMES[os_code], workload=workload,
                 duration_ns=duration_ns, events=events)


def save_binary(trace: Trace, path: str) -> None:
    """Write a trace to ``path`` in the binary format."""
    with open(path, "wb") as fh:
        dump_trace(trace, fh)


def load_binary(path: str) -> Trace:
    with open(path, "rb") as fh:
        return load_trace(fh)


def dumps(trace: Trace) -> bytes:
    out = io.BytesIO()
    dump_trace(trace, out)
    return out.getvalue()


def loads(data: bytes) -> Trace:
    return load_trace(io.BytesIO(data))
