"""Compact binary trace encoding.

The paper's relayfs instrumentation wrote fixed-size binary records
into the kernel buffer and converted them to text offline
(Section 3.2).  This codec provides the same style of storage for our
traces: a string table for comms and interned call sites, followed by
fixed-layout little-endian records — about 5x smaller and much faster
to load than the JSON-lines format, which matters for 30-minute
Firefox traces with millions of events.

Format (little-endian)::

    magic  b"TMRTRACE" | version u16 | os u8 | reserved u8
    workload: u16 length + utf-8
    duration_ns: u64
    comm table:  u32 count, each u16 length + utf-8
    site table:  u32 count, each u8 frame-count x (u16 length + utf-8)
    events: u64 count, each:
        kind u8 | flags u8 | domain u8 (0 kernel, 1 user) | pad u8
        comm_idx u32 | site_idx u32 | pid u32
        ts i64 | timer_id u64
        timeout_ns i64  (-1 encodes None)
        expires_ns i64  (-1 encodes None)
"""

from __future__ import annotations

import io
import struct
import warnings
from typing import BinaryIO

from .errors import TraceFormatError
from .events import EventKind, TimerEvent
from .trace import Trace

MAGIC = b"TMRTRACE"
VERSION = 1
_OS_CODES = {"linux": 0, "vista": 1}
_OS_NAMES = {code: name for name, code in _OS_CODES.items()}

_EVENT = struct.Struct("<BBBBIIIqQqq")
_NONE = -1


def _write_str(out: BinaryIO, text: str) -> None:
    data = text.encode("utf-8")
    if len(data) > 0xFFFF:
        raise TraceFormatError(
            f"string too long for trace format ({len(data)} bytes, "
            f"limit 65535)")
    out.write(struct.pack("<H", len(data)))
    out.write(data)


def _read_exact(buf: BinaryIO, n: int) -> bytes:
    data = buf.read(n)
    if len(data) != n:
        raise TraceFormatError("truncated trace header")
    return data


def _read_str(buf: BinaryIO) -> str:
    head = buf.read(2)
    if len(head) != 2:
        raise TraceFormatError("truncated trace header")
    (length,) = struct.unpack("<H", head)
    data = buf.read(length)
    if len(data) != length:
        raise TraceFormatError("truncated trace header")
    return data.decode("utf-8")


def dump_trace(trace: Trace, out: BinaryIO) -> None:
    """Serialise ``trace`` to a binary stream."""
    out.write(MAGIC)
    out.write(struct.pack("<HBB", VERSION, _OS_CODES[trace.os_name], 0))
    _write_str(out, trace.workload)
    out.write(struct.pack("<Q", trace.duration_ns))

    comms: dict[str, int] = {}
    sites: dict[tuple, int] = {}
    for event in trace.events:
        comms.setdefault(event.comm, len(comms))
        sites.setdefault(event.site, len(sites))

    out.write(struct.pack("<I", len(comms)))
    for comm in comms:                  # insertion order == index order
        _write_str(out, comm)
    out.write(struct.pack("<I", len(sites)))
    for site in sites:
        out.write(struct.pack("<B", len(site)))
        for frame in site:
            _write_str(out, frame)

    out.write(struct.pack("<Q", len(trace.events)))
    pack = _EVENT.pack
    write = out.write
    for event in trace.events:
        write(pack(
            int(event.kind), event.flags & 0xFF,
            1 if event.domain == "user" else 0, 0,
            comms[event.comm], sites[event.site], event.pid,
            event.ts, event.timer_id,
            _NONE if event.timeout_ns is None else event.timeout_ns,
            _NONE if event.expires_ns is None else event.expires_ns))


def load_trace(buf: BinaryIO) -> Trace:
    """Deserialise a trace written by :func:`dump_trace`.

    Negotiates the version: v1 streams are decoded here; a v2
    (columnar) stream is handed to :mod:`repro.tracing.binfmt2` and
    materialised, so old call sites keep reading new files.
    """
    if buf.read(8) != MAGIC:
        raise TraceFormatError("not a timer trace file")
    head = buf.read(4)
    if len(head) != 4:
        raise TraceFormatError("truncated trace header")
    version, os_code, _pad = struct.unpack("<HBB", head)
    if version != VERSION:
        if version == 2:
            from .binfmt2 import MAGIC as magic2, load_columnar
            data = magic2 + head + buf.read()
            return load_columnar(memoryview(data)).as_trace()
        raise TraceFormatError(
            f"unsupported trace version {version}; readable "
            f"versions: 1, 2")
    workload = _read_str(buf)
    (duration_ns,) = struct.unpack("<Q", _read_exact(buf, 8))

    (n_comms,) = struct.unpack("<I", _read_exact(buf, 4))
    comms = [_read_str(buf) for _ in range(n_comms)]
    (n_sites,) = struct.unpack("<I", _read_exact(buf, 4))
    sites = []
    for _ in range(n_sites):
        (frames,) = struct.unpack("<B", _read_exact(buf, 1))
        sites.append(tuple(_read_str(buf) for _ in range(frames)))

    (n_events,) = struct.unpack("<Q", _read_exact(buf, 8))
    size = _EVENT.size
    unpack = _EVENT.unpack
    events = []
    append = events.append
    data = buf.read(n_events * size)
    if len(data) != n_events * size:
        raise TraceFormatError(
            f"truncated trace: {n_events} records need "
            f"{n_events * size} bytes, got {len(data)}")
    for offset in range(0, n_events * size, size):
        (kind, flags, domain_code, _pad, comm_idx, site_idx, pid, ts,
         timer_id, timeout_ns, expires_ns) = unpack(
            data[offset:offset + size])
        append(TimerEvent(
            EventKind(kind), ts, timer_id, pid, comms[comm_idx],
            "user" if domain_code else "kernel", sites[site_idx],
            None if timeout_ns == _NONE else timeout_ns,
            None if expires_ns == _NONE else expires_ns, flags))
    return Trace(os_name=_OS_NAMES[os_code], workload=workload,
                 duration_ns=duration_ns, events=events)


# -- deprecated five-way surface (use repro.tracing.open_trace /
#    write_trace instead) --------------------------------------------------

_warned: set = set()


def _deprecated(name: str, instead: str) -> None:
    if name in _warned:
        return
    _warned.add(name)
    warnings.warn(
        f"repro.tracing.binfmt.{name}() is deprecated; use "
        f"{instead} from repro.tracing.formats instead",
        DeprecationWarning, stacklevel=3)


def save_binary(trace: Trace, path: str) -> None:
    """Deprecated: use :func:`repro.tracing.write_trace` (which picks
    the v2 columnar codec for ``*.bin``).  Still writes v1 bytes."""
    _deprecated("save_binary", 'write_trace(trace, path, format="binfmt")')
    with open(path, "wb") as fh:
        dump_trace(trace, fh)


def load_binary(path: str) -> Trace:
    """Deprecated: use :func:`repro.tracing.open_trace`.  Reads any
    binary version and materialises a full :class:`Trace`."""
    _deprecated("load_binary", "open_trace(path)")
    with open(path, "rb") as fh:
        return load_trace(fh)


def dumps(trace: Trace) -> bytes:
    """Deprecated: use :func:`repro.tracing.formats.trace_to_bytes`."""
    _deprecated("dumps", 'trace_to_bytes(trace, format="binfmt")')
    out = io.BytesIO()
    dump_trace(trace, out)
    return out.getvalue()


def loads(data: bytes) -> Trace:
    """Deprecated: use :func:`repro.tracing.formats.trace_from_bytes`."""
    _deprecated("loads", "trace_from_bytes(data)")
    return load_trace(io.BytesIO(data))
