"""Request-scoped timeout provenance (Section 5.2's tracing argument).

"There are clear parallels here with the labeling of requests in
multi-tier applications: being able to trace execution through the
system is a critical requirement for understanding anomalous
behavior."  This module provides that labelling for timeouts: a
*request* (one user-visible operation, like typing a server name into
the file browser) carries an id; every timeout armed on its behalf is
recorded with its layer and its parent timeout, forming the per-request
timeout tree the paper wants preserved across abstraction boundaries.

From a recorded tree one can compute exactly the things Section 2.2.2
laments are invisible today: the end-to-end worst case implied by the
layered timeouts, which layer dominated an observed delay, and which
timers were redundant (see
:meth:`RequestRecord.dominant_path`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional


@dataclass
class TimeoutNode:
    """One timeout armed on behalf of a request."""

    name: str
    layer: str
    timeout_ns: int
    armed_at_ns: int
    parent: Optional["TimeoutNode"] = None
    children: list["TimeoutNode"] = field(default_factory=list)
    outcome: Optional[str] = None       # "cancelled" | "expired"
    resolved_at_ns: Optional[int] = None

    def resolve(self, outcome: str, at_ns: int) -> None:
        self.outcome = outcome
        self.resolved_at_ns = at_ns

    @property
    def deadline_ns(self) -> int:
        return self.armed_at_ns + self.timeout_ns

    def walk(self) -> Iterator["TimeoutNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def subtree_worst_case_ns(self) -> int:
        """Worst time to failure-report below this node: its own
        timeout, or its children's combined budget if they outlast it
        (the layering pathology)."""
        if not self.children:
            return self.timeout_ns
        # Siblings run in parallel: the report waits for the slowest.
        children_worst = max(c.subtree_worst_case_ns()
                             for c in self.children)
        return max(self.timeout_ns, children_worst)


@dataclass
class RequestRecord:
    """The timeout tree of one labelled request."""

    request_id: int
    name: str
    started_at_ns: int
    roots: list[TimeoutNode] = field(default_factory=list)
    finished_at_ns: Optional[int] = None
    outcome: Optional[str] = None

    def finish(self, outcome: str, at_ns: int) -> None:
        self.outcome = outcome
        self.finished_at_ns = at_ns

    def all_nodes(self) -> list[TimeoutNode]:
        out: list[TimeoutNode] = []
        for root in self.roots:
            out.extend(root.walk())
        return out

    @property
    def timer_count(self) -> int:
        return len(self.all_nodes())

    def worst_case_ns(self) -> int:
        """End-to-end failure-report bound implied by the whole tree."""
        if not self.roots:
            return 0
        return max(root.subtree_worst_case_ns() for root in self.roots)

    def dominant_path(self) -> list[TimeoutNode]:
        """The chain of timeouts that sets the worst case."""
        if not self.roots:
            return []

        def descend(node: TimeoutNode) -> list[TimeoutNode]:
            if not node.children:
                return [node]
            best = max(node.children,
                       key=lambda c: c.subtree_worst_case_ns())
            if best.subtree_worst_case_ns() > node.timeout_ns:
                return [node] + descend(best)
            return [node]

        root = max(self.roots, key=lambda r: r.subtree_worst_case_ns())
        return descend(root)

    def render(self) -> str:
        lines = [f"request #{self.request_id} {self.name!r}: "
                 f"outcome={self.outcome}, "
                 f"{self.timer_count} timeouts, worst case "
                 f"{self.worst_case_ns() / 1e9:.1f}s"]

        def emit(node: TimeoutNode, depth: int) -> None:
            state = node.outcome or "pending"
            lines.append(f"{'  ' * (depth + 1)}{node.layer}/{node.name} "
                         f"{node.timeout_ns / 1e9:g}s [{state}]")
            for child in node.children:
                emit(child, depth + 1)

        for root in self.roots:
            emit(root, 0)
        return "\n".join(lines)


class RequestTracker:
    """Creates and stores labelled requests."""

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self.requests: list[RequestRecord] = []

    def begin(self, name: str, *, now_ns: int = 0) -> RequestRecord:
        record = RequestRecord(next(self._ids), name, now_ns)
        self.requests.append(record)
        return record

    def arm(self, request: RequestRecord, name: str, layer: str,
            timeout_ns: int, *, now_ns: int = 0,
            parent: Optional[TimeoutNode] = None) -> TimeoutNode:
        """Record a timeout armed for ``request`` under ``parent``."""
        node = TimeoutNode(name, layer, timeout_ns, now_ns, parent)
        if parent is None:
            request.roots.append(node)
        else:
            parent.children.append(node)
        return node

    def slowest_requests(self, count: int = 5) -> list[RequestRecord]:
        finished = [r for r in self.requests
                    if r.finished_at_ns is not None]
        finished.sort(key=lambda r: r.finished_at_ns - r.started_at_ns,
                      reverse=True)
        return finished[:count]
