"""Timer trace event records.

One :class:`TimerEvent` is emitted for every operation on a kernel
timer: initialisation, (re)arming, cancellation, and expiry, plus the
thread-wait events the Vista instrumentation needed (Section 3.3).

Records are deliberately compact (``__slots__``, interned call sites)
because a 30-minute Firefox trace contains millions of them — the paper
hit the same constraint and used a 512 MiB relayfs buffer.
"""

from __future__ import annotations

from enum import IntEnum
from typing import NamedTuple, Optional, Tuple


class EventKind(IntEnum):
    """What happened to the timer."""

    INIT = 0      #: init_timer / timer object allocation
    SET = 1       #: __mod_timer / KeSetTimer — timer armed or re-armed
    CANCEL = 2    #: del_timer / KeCancelTimer
    EXPIRE = 3    #: callback fired from __run_timers / the expiry DPC
    WAIT_BLOCK = 4    #: thread blocked with a timeout (Vista fast path)
    WAIT_UNBLOCK = 5  #: thread unblocked; payload says satisfied/timed out


#: Flag bits carried on SET events (mirrors Linux timer flags).
FLAG_DEFERRABLE = 1 << 0
FLAG_ROUNDED = 1 << 1      #: value passed through round_jiffies
FLAG_ABSOLUTE = 1 << 2     #: caller passed an absolute expiry (Vista)
FLAG_WAIT_SATISFIED = 1 << 3   #: WAIT_UNBLOCK: wait satisfied, not timed out


class TimerEvent(NamedTuple):
    """A single instrumentation record.

    A NamedTuple: a two-minute desktop trace already holds hundreds of
    thousands of records and every analysis walks them, so records get
    tuple-cheap construction and let hot loops unpack all twelve fields
    in one C-level step instead of attribute lookups.

    Attributes
    ----------
    kind:
        The :class:`EventKind`.
    ts:
        Virtual timestamp in nanoseconds.
    timer_id:
        The timer structure's "address".  Linux reuses statically
        allocated structures so the id is stable across uses; the Vista
        model allocates fresh ids, exactly the correlation problem the
        paper describes.
    pid / comm / domain:
        The task charged with the operation.
    site:
        Interned call-stack tuple, innermost frame last.
    timeout_ns:
        SET: the *relative* timeout requested.  WAIT_*: the wait
        timeout.  Otherwise ``None``.
    expires_ns:
        SET: absolute expiry after any quantisation (jiffy rounding,
        round_jiffies).  Otherwise ``None``.
    flags:
        FLAG_* bits.
    host / cpu:
        Machine identity in a cluster scene.  ``host`` is the
        machine's id (0 on a standalone single-host run, 1..N in a
        :class:`~repro.kern.cluster.Cluster`); ``cpu`` is the CPU the
        operation is affined to when the host shards its timing wheel
        per CPU (the Vista TCP re-architecture of Section 1).  Both
        default to 0 so single-machine traces are unchanged.
    """

    kind: EventKind
    ts: int
    timer_id: int
    pid: int
    comm: str
    domain: str
    site: Tuple[str, ...]
    timeout_ns: Optional[int] = None
    expires_ns: Optional[int] = None
    flags: int = 0
    host: int = 0
    cpu: int = 0

    @property
    def is_user(self) -> bool:
        """True if the access originated in user space (via a syscall)."""
        return self.domain == "user"

    @property
    def deferrable(self) -> bool:
        return bool(self.flags & FLAG_DEFERRABLE)

    def to_dict(self) -> dict:
        """JSON-serialisable form (used by Trace.save).

        ``host``/``cpu`` are only emitted when set so single-host
        traces serialise byte-identically to pre-cluster records.
        """
        data = {
            "kind": int(self.kind), "ts": self.ts,
            "timer_id": self.timer_id, "pid": self.pid, "comm": self.comm,
            "domain": self.domain, "site": list(self.site),
            "timeout_ns": self.timeout_ns, "expires_ns": self.expires_ns,
            "flags": self.flags,
        }
        if self.host or self.cpu:
            data["host"] = self.host
            data["cpu"] = self.cpu
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "TimerEvent":
        return cls(EventKind(data["kind"]), data["ts"], data["timer_id"],
                   data["pid"], data["comm"], data["domain"],
                   tuple(data["site"]), data["timeout_ns"],
                   data["expires_ns"], data["flags"],
                   data.get("host", 0), data.get("cpu", 0))

    def __repr__(self) -> str:
        where = f" host={self.host} cpu={self.cpu}" \
            if self.host or self.cpu else ""
        return (f"<TimerEvent {self.kind.name} ts={self.ts} "
                f"timer={self.timer_id:#x} {self.comm}({self.pid}) "
                f"site={'/'.join(self.site[-2:])}{where}>")


def wait_unblock_event(*, ts_block: int, ts_unblock: int, timer_id: int,
                       pid: int, comm: str, site: Tuple[str, ...],
                       timeout_ns: Optional[int],
                       satisfied: bool) -> TimerEvent:
    """Build the paper's single thread-unblock record (Section 3.3).

    ``timeout_ns`` is the user-supplied timeout; ``expires_ns`` carries
    the block timestamp so the blocked duration is recoverable.  Shared
    by every sink that offers ``emit_wait_unblock``.
    """
    flags = FLAG_WAIT_SATISFIED if satisfied else 0
    return TimerEvent(EventKind.WAIT_UNBLOCK, ts_unblock, timer_id, pid,
                      comm, "user", site, timeout_ns, ts_block, flags)


class CallSiteRegistry:
    """Interns call-stack tuples so records share one object per site.

    The paper's instrumentation logs a stack trace per event; in the
    simulation each timer client declares its stack once, and the
    registry guarantees identical stacks share identity, which both
    saves memory and makes grouping by site a dict lookup.
    """

    def __init__(self) -> None:
        self._sites: dict[Tuple[str, ...], Tuple[str, ...]] = {}

    def intern(self, frames: Tuple[str, ...]) -> Tuple[str, ...]:
        found = self._sites.get(frames)
        if found is None:
            self._sites[frames] = frames
            found = frames
        return found

    def __len__(self) -> int:
        return len(self._sites)

    def all_sites(self) -> list[Tuple[str, ...]]:
        return list(self._sites.values())
