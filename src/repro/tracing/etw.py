"""Event Tracing for Windows (ETW) style sink — the Vista path.

The paper added four custom ETW events to the Vista kernel: KeSetTimer,
KeCancelTimer, the clock-interrupt expiration DPC, and a thread-unblock
event carrying the block/unblock timestamps, the user timeout, and a
satisfied/timed-out boolean (Section 3.3).  ETW captures both kernel-
and user-mode stacks, which is what later lets the analysis cluster the
dynamically-allocated KTIMER objects by call site.

Functionally this is a bounded append log like relayfs; the class exists
separately to model the *schema* difference (wait events, stack pairs).
"""

from __future__ import annotations

from typing import Iterator, Optional

from .events import TimerEvent, wait_unblock_event

#: Provider GUID for the paper's four custom timer events.  Real ETW
#: providers are keyed by GUID and described by a manifest (name,
#: keywords, event schema); the serve-side provider-manifest registry
#: (:mod:`repro.serve.manifest`) resolves sessions back to readable
#: provider names the same way winevt-kb keys Windows event providers.
TIMER_PROVIDER_GUID = "{7f0e9c5a-4e75-42d8-b6c2-0d9f1e2a3b4c}"


class EtwSession:
    """A logging session with the paper's four custom timer events."""

    #: GUID of the provider this session logs; third-party ETW-style
    #: sinks override it (and register their own manifest) so the
    #: telemetry daemon can label their streams.
    provider_guid = TIMER_PROVIDER_GUID

    @classmethod
    def provider_manifest(cls) -> dict:
        """Manifest describing this session's provider — consumed by
        :func:`repro.serve.manifest.register_provider` at import time.
        """
        return {
            "guid": cls.provider_guid,
            "name": "Repro-Timer-Provider",
            "keywords": ("timer", "wait"),
            "events": ("KeSetTimer", "KeCancelTimer", "ExpireDpc",
                       "WaitUnblock"),
        }

    def __init__(self, capacity_events: int = 16_000_000):
        self.capacity_events = capacity_events
        self._events: list[TimerEvent] = []
        #: Same lifetime accounting as RelayBuffer; invariant
        #: ``emitted == len(self) + dropped + drained``.
        self.emitted = 0
        self.dropped = 0
        self.drained = 0
        self.high_water = 0

    def emit(self, event: TimerEvent) -> None:
        self.emitted += 1
        events = self._events
        if len(events) >= self.capacity_events:
            self.dropped += 1
            return
        events.append(event)
        if len(events) > self.high_water:
            self.high_water = len(events)

    def emit_wait_unblock(self, *, ts_block: int, ts_unblock: int,
                          timer_id: int, pid: int, comm: str,
                          site, timeout_ns: Optional[int],
                          satisfied: bool) -> None:
        """The single thread-unblock event the paper added.

        It logs both timestamps; we record it as a WAIT_UNBLOCK whose
        ``timeout_ns`` is the user-supplied timeout and whose
        ``expires_ns`` field carries the block timestamp so the blocked
        duration is recoverable, exactly as in the paper's record.
        """
        self.emit(wait_unblock_event(
            ts_block=ts_block, ts_unblock=ts_unblock, timer_id=timer_id,
            pid=pid, comm=comm, site=site, timeout_ns=timeout_ns,
            satisfied=satisfied))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TimerEvent]:
        return iter(self._events)

    def drain(self) -> list[TimerEvent]:
        events, self._events = self._events, []
        self.drained += len(events)
        return events
