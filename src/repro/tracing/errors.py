"""Typed trace I/O errors.

:class:`TraceFormatError` subclasses :class:`ValueError` so existing
callers that caught the untyped errors keep working, while the CLI and
the format registry can distinguish "this file is not a readable trace"
(exit code 2) from programming errors.
"""

from __future__ import annotations


class TraceFormatError(ValueError):
    """A trace file/stream violates the on-disk format.

    Raised for bad magic, unsupported versions, truncated or corrupt
    payloads, and for values that cannot be represented on write (e.g.
    a string longer than its length field).
    """
