"""Instrumentation substrate: event records, sinks, and trace containers.

Mirrors the paper's Section 3 tooling: a relayfs-style bounded binary
log for the Linux model, an ETW-style session (with thread-wait events)
for the Vista model, and a :class:`Trace` container providing the
per-timer correlation the analyses need.
"""

from .events import (FLAG_ABSOLUTE, FLAG_DEFERRABLE, FLAG_ROUNDED,
                     FLAG_WAIT_SATISFIED, CallSiteRegistry, EventKind,
                     TimerEvent, wait_unblock_event)
from .binfmt import dumps, load_binary, load_trace, loads, save_binary, \
    dump_trace
from .etw import EtwSession
from .relay import (CountingSink, NullSink, RelayBuffer, TeeSink)
from .requests import RequestRecord, RequestTracker, TimeoutNode
from .trace import TimerHistory, Trace

__all__ = [
    "FLAG_ABSOLUTE", "FLAG_DEFERRABLE", "FLAG_ROUNDED",
    "FLAG_WAIT_SATISFIED", "CallSiteRegistry", "EventKind", "TimerEvent",
    "EtwSession", "CountingSink", "NullSink", "RelayBuffer", "TeeSink",
    "dumps", "load_binary", "load_trace", "loads", "save_binary",
    "dump_trace",
    "TimerHistory", "Trace", "RequestRecord", "RequestTracker",
    "TimeoutNode", "wait_unblock_event",
]
