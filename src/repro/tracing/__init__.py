"""Instrumentation substrate: event records, sinks, and trace containers.

Mirrors the paper's Section 3 tooling: a relayfs-style bounded binary
log for the Linux model, an ETW-style session (with thread-wait events)
for the Vista model, and a :class:`Trace` container providing the
per-timer correlation the analyses need.

Trace I/O goes through one surface (:mod:`repro.tracing.formats`)::

    trace = open_trace("run.bin")       # sniffs jsonl / v1 / v2
    write_trace(trace, "run.bin")       # extension picks the format

The old five-way surface (``save_binary``/``load_binary``/``dumps``/
``loads``) still imports from here but warns on first use.
"""

from .events import (FLAG_ABSOLUTE, FLAG_DEFERRABLE, FLAG_ROUNDED,
                     FLAG_WAIT_SATISFIED, CallSiteRegistry, EventKind,
                     TimerEvent, wait_unblock_event)
from .errors import TraceFormatError
from .binfmt import dump_trace, load_trace
from .binfmt2 import ColumnarTrace, dump_trace_v2
from .formats import (TraceFormat, detect_format, materialize,
                      open_trace, register_format, sniff_format,
                      trace_formats, trace_from_bytes, trace_to_bytes,
                      write_trace)
from .etw import EtwSession
from .relay import (CountingSink, NullSink, RelayBuffer, TeeSink)
from .requests import RequestRecord, RequestTracker, TimeoutNode
from .trace import TimerHistory, Trace

#: Deprecated names still importable from this package; resolved
#: lazily so no internal module imports them (the CI gate checks).
_DEPRECATED = ("save_binary", "load_binary", "dumps", "loads")


def __getattr__(name: str):
    if name in _DEPRECATED:
        from . import binfmt
        return getattr(binfmt, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "FLAG_ABSOLUTE", "FLAG_DEFERRABLE", "FLAG_ROUNDED",
    "FLAG_WAIT_SATISFIED", "CallSiteRegistry", "EventKind", "TimerEvent",
    "EtwSession", "CountingSink", "NullSink", "RelayBuffer", "TeeSink",
    "TraceFormatError", "TraceFormat", "ColumnarTrace",
    "dump_trace", "dump_trace_v2", "load_trace",
    "open_trace", "write_trace", "detect_format", "sniff_format",
    "materialize", "register_format", "trace_formats",
    "trace_from_bytes", "trace_to_bytes",
    "TimerHistory", "Trace", "RequestRecord", "RequestTracker",
    "TimeoutNode", "wait_unblock_event",
]
