"""Columnar binary trace encoding (format version 2).

Version 1 (:mod:`repro.tracing.binfmt`) stores one packed 44-byte
struct per event, so loading a trace decodes and allocates one
:class:`~repro.tracing.events.TimerEvent` per record up front.  For the
multi-million-event traces the paper's 30-minute runs produce, that
allocation dominates load time and doubles peak memory.

Version 2 stores the same information as fixed-stride little-endian
*columns*: one contiguous block per field, 8-byte aligned, so a loader
can ``mmap`` the file and expose every column as a zero-copy
``memoryview`` cast — no per-event decoding, no object allocation.
:class:`ColumnarTrace` is that view; events are hydrated lazily only
where an analysis genuinely needs :class:`TimerEvent` objects (episode
extraction, the trace index).

Layout (little-endian)::

    magic  b"TMRTRACE" | version u16 (=2) | reserved u16
    os: u16 length + utf-8        (names the backend; no code table)
    workload: u16 length + utf-8
    duration_ns u64 | n_events u64
    comm table:  u32 count, each u16 length + utf-8
    site table:  u32 count, each u8 frame-count x (u16 length + utf-8)
    zero padding to the next 8-byte boundary
    columns, each n_events entries, in this order:
        ts i64 | timer_id u64 | timeout_ns i64 | expires_ns i64
        pid u32 | comm_idx u32 | site_idx u32
        kind u8 | flags u8 | domain u8 (0 kernel, 1 user)
        [version 3 only] host u8 | cpu u16

``timeout_ns`` / ``expires_ns`` use -1 to encode ``None`` (these fields
are always non-negative when present), exactly as version 1 does.

Version 3 extends version 2 with two trailing columns carrying the
cluster identity of every event: ``host`` (machine id, u8) and ``cpu``
(per-host CPU affinity, u16).  The writer picks the version from the
data — a trace in which every event has ``host == cpu == 0`` (every
single-machine trace) serialises as byte-identical version 2, so
cluster support costs existing traces nothing; any nonzero identity
upgrades the stream to version 3.  The loader accepts both versions
and synthesises all-zero host/cpu columns for version-2 files, so v2
and single-host v3 hydrate to identical events.

On big-endian hosts the zero-copy casts are replaced by ``array``
copies with a byteswap — same values, same API, just not zero-copy.
"""

from __future__ import annotations

import io
import mmap
import struct
import sys
from array import array
from typing import BinaryIO, Iterator, Optional

from .errors import TraceFormatError
from .events import EventKind, TimerEvent
from .trace import Trace

MAGIC = b"TMRTRACE"
VERSION2 = 2
VERSION3 = 3
_NONE = -1
_LITTLE = sys.byteorder == "little"

_HEAD = struct.Struct("<HH")          # version, reserved
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

#: (struct code, itemsize) per column, in file order.
_COLUMN_LAYOUT = (
    ("ts", "q", 8), ("timer_id", "Q", 8),
    ("timeout_ns", "q", 8), ("expires_ns", "q", 8),
    ("pid", "I", 4), ("comm_idx", "I", 4), ("site_idx", "I", 4),
    ("kind", "B", 1), ("flags", "B", 1), ("domain", "B", 1),
)

#: The two cluster-identity columns appended by version 3.
_V3_EXTRA = (("host", "B", 1), ("cpu", "H", 2))
_COLUMN_LAYOUT_V3 = _COLUMN_LAYOUT + _V3_EXTRA

_KIND_BY_CODE = [None] * (max(int(k) for k in EventKind) + 1)
for _k in EventKind:
    _KIND_BY_CODE[int(_k)] = _k
_DOMAINS = (sys.intern("kernel"), sys.intern("user"))


def _write_str(out: BinaryIO, text: str) -> None:
    data = text.encode("utf-8")
    if len(data) > 0xFFFF:
        raise TraceFormatError(
            f"string too long for trace format ({len(data)} bytes, "
            f"limit 65535)")
    out.write(_U16.pack(len(data)))
    out.write(data)


def trace_is_multihost(trace: Trace) -> bool:
    """True if any event carries a nonzero host/cpu identity."""
    return any(event[10] or event[11] for event in trace.events)


def dump_trace_v2(trace: Trace, out: BinaryIO, *,
                  version: Optional[int] = None) -> None:
    """Serialise ``trace`` to a v2/v3 columnar stream.

    The version is picked from the data unless forced: single-host
    traces (every ``host``/``cpu`` zero) write byte-identical v2;
    cluster traces write v3 with the two extra identity columns.
    """
    if version is None:
        version = VERSION3 if trace_is_multihost(trace) else VERSION2
    elif version not in (VERSION2, VERSION3):
        raise TraceFormatError(
            f"columnar writer cannot produce version {version}")
    with_identity = version == VERSION3
    out.write(MAGIC)
    out.write(_HEAD.pack(version, 0))
    _write_str(out, trace.os_name)
    _write_str(out, trace.workload)
    events = trace.events
    out.write(_U64.pack(trace.duration_ns))
    out.write(_U64.pack(len(events)))

    comms: dict[str, int] = {}
    sites: dict[tuple, int] = {}
    for event in events:
        comms.setdefault(event.comm, len(comms))
        sites.setdefault(event.site, len(sites))

    out.write(_U32.pack(len(comms)))
    for comm in comms:                  # insertion order == index order
        _write_str(out, comm)
    out.write(_U32.pack(len(sites)))
    for site in sites:
        if len(site) > 0xFF:
            raise TraceFormatError(
                f"call site too deep for trace format ({len(site)} "
                f"frames, limit 255)")
        out.write(struct.pack("<B", len(site)))
        for frame in site:
            _write_str(out, frame)

    # Columns start at the next 8-byte boundary.
    written = out.tell() if out.seekable() else None
    if written is None:
        raise TraceFormatError("v2 writer needs a seekable stream")
    out.write(b"\x00" * (-written % 8))

    ts_col = array("q")
    id_col = array("Q")
    to_col = array("q")
    ex_col = array("q")
    pid_col = array("I")
    comm_col = array("I")
    site_col = array("I")
    kind_col = bytearray(len(events))
    flag_col = bytearray(len(events))
    dom_col = bytearray(len(events))
    host_col = bytearray(len(events)) if with_identity else None
    cpu_col = array("H") if with_identity else None
    for i, event in enumerate(events):
        ts_col.append(event.ts)
        id_col.append(event.timer_id)
        timeout = event.timeout_ns
        to_col.append(_NONE if timeout is None else timeout)
        expires = event.expires_ns
        ex_col.append(_NONE if expires is None else expires)
        pid_col.append(event.pid)
        comm_col.append(comms[event.comm])
        site_col.append(sites[event.site])
        kind_col[i] = int(event.kind)
        flag_col[i] = event.flags & 0xFF
        dom_col[i] = 1 if event.domain == "user" else 0
        if with_identity:
            host, cpu = event.host, event.cpu
            if not 0 <= host <= 0xFF or not 0 <= cpu <= 0xFFFF:
                raise TraceFormatError(
                    f"host/cpu out of range for trace format "
                    f"(host={host}, cpu={cpu}; limits 255/65535)")
            host_col[i] = host
            cpu_col.append(cpu)
    for col in (ts_col, id_col, to_col, ex_col,
                pid_col, comm_col, site_col):
        if not _LITTLE:
            col.byteswap()
        out.write(col.tobytes())
    out.write(bytes(kind_col))
    out.write(bytes(flag_col))
    out.write(bytes(dom_col))
    if with_identity:
        out.write(bytes(host_col))
        if not _LITTLE:
            cpu_col.byteswap()
        out.write(cpu_col.tobytes())


class ColumnarTrace:
    """Zero-copy columnar view of a v2 trace file.

    Columns are ``memoryview`` casts straight into the mapped file (or
    the given buffer): ``ts``, ``timer_id``, ``timeout_ns``,
    ``expires_ns`` as signed/unsigned 64-bit, ``pid`` / ``comm_idx`` /
    ``site_idx`` as unsigned 32-bit, ``kind`` / ``flags`` / ``domain``
    as bytes.  ``comms`` and ``sites`` resolve the index columns.

    Nothing is hydrated on load.  ``event(i)`` builds one
    :class:`TimerEvent`; iterating the view (or reading the cached
    :attr:`events` property) hydrates lazily; :meth:`as_trace` wraps
    the hydrated events in a full :class:`Trace` — the only places
    real event objects come into existence.
    """

    __slots__ = ("os_name", "workload", "duration_ns", "n_events",
                 "comms", "sites", "ts", "timer_id", "timeout_ns",
                 "expires_ns", "pid", "comm_idx", "site_idx", "kind",
                 "flags", "domain", "host", "cpu", "_mmap", "_events",
                 "_trace")

    def __init__(self, *, os_name, workload, duration_ns, n_events,
                 comms, sites, columns, mapped=None):
        self.os_name = os_name
        self.workload = workload
        self.duration_ns = duration_ns
        self.n_events = n_events
        self.comms = comms
        self.sites = sites
        (self.ts, self.timer_id, self.timeout_ns, self.expires_ns,
         self.pid, self.comm_idx, self.site_idx, self.kind,
         self.flags, self.domain, self.host, self.cpu) = columns
        self._mmap = mapped
        self._events: Optional[list[TimerEvent]] = None
        self._trace: Optional[Trace] = None

    def __len__(self) -> int:
        return self.n_events

    def __repr__(self) -> str:
        state = "hydrated" if self._events is not None else "cold"
        return (f"<ColumnarTrace {self.os_name}/{self.workload} "
                f"{self.n_events} events, {state}>")

    # -- lazy hydration --------------------------------------------------

    def event(self, i: int) -> TimerEvent:
        """Hydrate the single event at index ``i``."""
        if i < 0:
            i += self.n_events
        if not 0 <= i < self.n_events:
            raise IndexError(i)
        timeout = self.timeout_ns[i]
        expires = self.expires_ns[i]
        return TimerEvent(
            _KIND_BY_CODE[self.kind[i]], self.ts[i], self.timer_id[i],
            self.pid[i], self.comms[self.comm_idx[i]],
            _DOMAINS[self.domain[i]], self.sites[self.site_idx[i]],
            None if timeout == _NONE else timeout,
            None if expires == _NONE else expires, self.flags[i],
            self.host[i], self.cpu[i])

    def iter_events(self) -> Iterator[TimerEvent]:
        """Hydrate events one at a time, without caching the list."""
        if self._events is not None:
            return iter(self._events)
        comms = self.comms
        sites = self.sites
        kinds = _KIND_BY_CODE
        domains = _DOMAINS
        return (TimerEvent(
            kinds[kind], ts, timer_id, pid, comms[comm_idx],
            domains[dom], sites[site_idx],
            None if timeout == _NONE else timeout,
            None if expires == _NONE else expires, flags, host, cpu)
            for kind, ts, timer_id, pid, comm_idx, dom, site_idx,
            timeout, expires, flags, host, cpu
            in zip(self.kind, self.ts, self.timer_id, self.pid,
                   self.comm_idx, self.domain, self.site_idx,
                   self.timeout_ns, self.expires_ns, self.flags,
                   self.host, self.cpu))

    __iter__ = iter_events

    @property
    def events(self) -> list[TimerEvent]:
        """The fully hydrated event list (built once, then cached)."""
        if self._events is None:
            self._events = list(self.iter_events())
        return self._events

    def as_trace(self) -> Trace:
        """A full :class:`Trace` over the (cached) hydrated events."""
        if self._trace is None:
            self._trace = Trace(os_name=self.os_name,
                                workload=self.workload,
                                duration_ns=self.duration_ns,
                                events=self.events)
        return self._trace

    # -- resource management --------------------------------------------

    def close(self) -> None:
        """Release the underlying mapping (hydrated events survive)."""
        mapped = self._mmap
        self._mmap = None
        empty = (memoryview(b""),) * 12
        (self.ts, self.timer_id, self.timeout_ns, self.expires_ns,
         self.pid, self.comm_idx, self.site_idx, self.kind,
         self.flags, self.domain, self.host, self.cpu) = empty
        self.n_events = 0 if self._events is None else self.n_events
        if mapped is not None:
            mapped.close()

    def __enter__(self) -> "ColumnarTrace":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _read_str(view: memoryview, off: int, limit: int) -> tuple[str, int]:
    if off + 2 > limit:
        raise TraceFormatError("truncated trace header")
    (length,) = _U16.unpack_from(view, off)
    off += 2
    if off + length > limit:
        raise TraceFormatError("truncated trace header")
    return str(view[off:off + length], "utf-8"), off + length


def _cast_column(view: memoryview, off: int, code: str, itemsize: int,
                 n: int):
    end = off + itemsize * n
    block = view[off:end]
    if code == "B":
        return block
    if _LITTLE:
        return block.cast(code)
    col = array(code)
    col.frombytes(block)
    col.byteswap()
    return col


def load_columnar(view: memoryview, mapped=None) -> ColumnarTrace:
    """Build a :class:`ColumnarTrace` over an in-memory v2/v3 buffer.

    Version-2 files get synthesised all-zero host/cpu columns, so both
    versions expose the same twelve-column view.
    """
    limit = len(view)
    if limit < 12 or bytes(view[:8]) != MAGIC:
        raise TraceFormatError("not a timer trace file")
    version, _reserved = _HEAD.unpack_from(view, 8)
    if version not in (VERSION2, VERSION3):
        raise TraceFormatError(f"unsupported trace version {version} "
                               f"(this reader handles versions 2-3)")
    off = 12
    os_name, off = _read_str(view, off, limit)
    workload, off = _read_str(view, off, limit)
    if off + 16 > limit:
        raise TraceFormatError("truncated trace header")
    (duration_ns,) = _U64.unpack_from(view, off)
    (n_events,) = _U64.unpack_from(view, off + 8)
    off += 16

    if off + 4 > limit:
        raise TraceFormatError("truncated trace header")
    (n_comms,) = _U32.unpack_from(view, off)
    off += 4
    comms = []
    for _ in range(n_comms):
        comm, off = _read_str(view, off, limit)
        comms.append(sys.intern(comm))
    if off + 4 > limit:
        raise TraceFormatError("truncated trace header")
    (n_sites,) = _U32.unpack_from(view, off)
    off += 4
    sites = []
    for _ in range(n_sites):
        if off + 1 > limit:
            raise TraceFormatError("truncated trace header")
        frames = view[off]
        off += 1
        parts = []
        for _ in range(frames):
            frame, off = _read_str(view, off, limit)
            parts.append(sys.intern(frame))
        sites.append(tuple(parts))

    off += -off % 8
    layout = _COLUMN_LAYOUT_V3 if version == VERSION3 else _COLUMN_LAYOUT
    body = sum(size * n_events for _, _, size in layout)
    if off + body > limit:
        raise TraceFormatError(
            f"truncated trace: column section needs {body} bytes, "
            f"{limit - off} available")
    columns = []
    for _name, code, itemsize in layout:
        columns.append(_cast_column(view, off, code, itemsize, n_events))
        off += itemsize * n_events
    if version == VERSION2:
        # Pre-cluster file: every event is host 0 / cpu 0.
        columns.append(memoryview(bytes(n_events)))
        columns.append(memoryview(bytes(2 * n_events)).cast("H"))
    return ColumnarTrace(os_name=os_name, workload=workload,
                         duration_ns=duration_ns, n_events=n_events,
                         comms=comms, sites=sites, columns=columns,
                         mapped=mapped)


class _Mapping:
    """Keeps the mmap (and its file) alive as long as the view needs it."""

    __slots__ = ("_fh", "_mm", "view")

    def __init__(self, path: str):
        self._fh = open(path, "rb")
        try:
            self._mm = mmap.mmap(self._fh.fileno(), 0,
                                 access=mmap.ACCESS_READ)
        except (ValueError, OSError):
            # Empty or unmappable file: fall back to a plain read.
            self._mm = None
            self.view = memoryview(self._fh.read())
            self._fh.close()
            self._fh = None
            return
        self.view = memoryview(self._mm)

    def close(self) -> None:
        self.view.release()
        if self._mm is not None:
            self._mm.close()
        if self._fh is not None:
            self._fh.close()


def load_v2(path: str) -> ColumnarTrace:
    """``mmap`` a v2 trace file into a zero-copy :class:`ColumnarTrace`."""
    mapped = _Mapping(path)
    try:
        return load_columnar(mapped.view, mapped)
    except Exception:
        mapped.close()
        raise


def save_v2(trace: Trace, path: str) -> None:
    """Write ``trace`` to ``path`` in the columnar format, picking v2
    for single-host data and v3 when cluster identity is present."""
    with open(path, "wb") as fh:
        dump_trace_v2(trace, fh)


def dumps_v2(trace: Trace) -> bytes:
    out = io.BytesIO()
    dump_trace_v2(trace, out)
    return out.getvalue()


def loads_v2(data: bytes) -> ColumnarTrace:
    return load_columnar(memoryview(data))


def save_v3(trace: Trace, path: str) -> None:
    """Write ``trace`` to ``path`` forcing columnar version 3 (the
    host/cpu columns are emitted even when all zero)."""
    with open(path, "wb") as fh:
        dump_trace_v2(trace, fh, version=VERSION3)


def dumps_v3(trace: Trace) -> bytes:
    out = io.BytesIO()
    dump_trace_v2(trace, out, version=VERSION3)
    return out.getvalue()
