"""A planning CPU dispatcher (the hard part of Section 5.5).

"The CPU scheduler must now deal with complex constraints (which can
be thought of as short-term execution 'plans', by analogy with
database systems) from multiple applications as well as a system-wide
CPU allocation policy."  :class:`PlannedScheduler` is a working model
of that design:

* applications *admit* periodic plans (period, worst-case execution
  cost, jitter tolerance); admission is controlled by an EDF
  utilisation bound, the system-wide policy;
* released jobs contend for the single CPU and are dispatched
  earliest-deadline-first; execution takes real (virtual) time, so one
  application's work delays another's — unlike the instantaneous
  callbacks of a timer facility;
* per-plan deadline accounting exposes who misses under overload.

The classical EDF result holds on this model and is asserted in the
tests: any admitted plan set with total utilisation <= 1 meets every
deadline; refusing admission (rather than best-effort timers silently
degrading) is the behavioural difference from today's kernels.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..sim.engine import Engine


class AdmissionError(RuntimeError):
    """The plan would push the CPU past its utilisation bound."""


@dataclass
class Plan:
    """One admitted periodic execution plan."""

    name: str
    period_ns: int
    cost_ns: int
    callback: Callable[[int], None]
    tolerance_ns: int = 0
    #: accounting
    jobs_released: int = 0
    jobs_completed: int = 0
    deadline_misses: int = 0
    max_lateness_ns: int = 0
    active: bool = True

    @property
    def utilization(self) -> float:
        return self.cost_ns / self.period_ns

    @property
    def miss_rate(self) -> float:
        if self.jobs_completed == 0:
            return 0.0
        return self.deadline_misses / self.jobs_completed


@dataclass(order=True)
class _Job:
    deadline_ns: int
    seq: int
    plan: Plan = field(compare=False)
    release_ns: int = field(compare=False, default=0)


class PlannedScheduler:
    """Single-CPU EDF dispatcher with admission control."""

    def __init__(self, engine: Engine, *,
                 utilization_cap: float = 1.0):
        self.engine = engine
        self.utilization_cap = utilization_cap
        self.plans: list[Plan] = []
        self._ready: list[_Job] = []
        self._seq = 0
        #: (job, remaining_ns, slice_start_ns, completion event)
        self._current: Optional[tuple] = None
        self._remaining: dict[int, int] = {}
        self.dispatches = 0
        self.preemptions = 0
        self.busy_ns = 0

    # -- admission (the system-wide policy) ---------------------------------

    @property
    def utilization(self) -> float:
        return sum(p.utilization for p in self.plans if p.active)

    def admit(self, name: str, period_ns: int, cost_ns: int,
              callback: Callable[[int], None], *,
              tolerance_ns: int = 0) -> Plan:
        """Admit a periodic plan, or refuse it outright.

        Refusal is the point: a timer interface would accept the load
        and let every application degrade unpredictably.
        """
        if cost_ns <= 0 or period_ns <= 0:
            raise ValueError("period and cost must be positive")
        if cost_ns > period_ns:
            raise AdmissionError(
                f"plan {name!r} alone needs more than the CPU")
        plan = Plan(name, period_ns, cost_ns, callback, tolerance_ns)
        if self.utilization + plan.utilization > self.utilization_cap:
            raise AdmissionError(
                f"plan {name!r} would take utilisation to "
                f"{self.utilization + plan.utilization:.2f} "
                f"(cap {self.utilization_cap:.2f})")
        self.plans.append(plan)
        self._release(plan, self.engine.now + period_ns)
        return plan

    def retire(self, plan: Plan) -> None:
        plan.active = False

    # -- job lifecycle --------------------------------------------------------

    def _release(self, plan: Plan, release_ns: int) -> None:
        if not plan.active:
            return
        self.engine.call_at(release_ns, self._released, plan, release_ns)

    def _released(self, plan: Plan, release_ns: int) -> None:
        if not plan.active:
            return
        plan.jobs_released += 1
        self._seq += 1
        job = _Job(release_ns + plan.period_ns, self._seq, plan,
                   release_ns)
        heapq.heappush(self._ready, job)
        # Next period's release, regardless of when this job runs.
        self._release(plan, release_ns + plan.period_ns)
        self._maybe_dispatch()

    def _maybe_dispatch(self) -> None:
        """Preemptive EDF: the earliest-deadline ready job gets the CPU,
        preempting the running job if it has a later deadline."""
        now = self.engine.now
        # Skip retired entries at the head.
        while self._ready and not self._ready[0].plan.active:
            heapq.heappop(self._ready)
        if not self._ready:
            return
        head = self._ready[0]
        if self._current is not None:
            job, remaining, slice_start, event = self._current
            if head.deadline_ns >= job.deadline_ns:
                return                     # current job keeps the CPU
            # Preempt: bank the executed slice, requeue the rest.
            event.cancel()
            executed = now - slice_start
            self.preemptions += 1
            self.busy_ns += executed
            heapq.heappush(self._ready, job)
            self._remaining[job.seq] = remaining - executed
            self._current = None
        job = heapq.heappop(self._ready)
        self._start_slice(job)

    def _start_slice(self, job: _Job) -> None:
        plan = job.plan
        remaining = self._remaining.pop(job.seq, None)
        if remaining is None:
            remaining = plan.cost_ns
            # The plan's code is entered when the job first runs.
            self.dispatches += 1
            plan.callback(job.release_ns)
        start = self.engine.now
        event = self.engine.call_at(start + remaining, self._complete,
                                    job)
        self._current = (job, remaining, start, event)

    def _complete(self, job: _Job) -> None:
        plan = job.plan
        if self._current is not None:
            _job, _remaining, slice_start, _event = self._current
            self.busy_ns += self.engine.now - slice_start
        self._current = None
        plan.jobs_completed += 1
        lateness = max(0, self.engine.now - job.deadline_ns)
        plan.max_lateness_ns = max(plan.max_lateness_ns, lateness)
        if lateness > plan.tolerance_ns:
            plan.deadline_misses += 1
        self._maybe_dispatch()

    # -- reporting --------------------------------------------------------------

    def report(self) -> str:
        lines = [f"{'plan':14s} {'util':>6s} {'jobs':>6s} {'misses':>7s} "
                 f"{'max late':>10s}"]
        for plan in self.plans:
            lines.append(
                f"{plan.name:14s} {plan.utilization:6.2f} "
                f"{plan.jobs_completed:6d} {plan.deadline_misses:7d} "
                f"{plan.max_lateness_ns / 1e6:8.2f}ms")
        lines.append(f"total utilisation {self.utilization:.2f}, "
                     f"{self.dispatches} dispatches")
        return "\n".join(lines)
