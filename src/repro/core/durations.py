"""Observed timer durations (the paper's Figures 8–11).

For every episode we plot the set timeout value against the time after
which the timer actually expired or was cancelled, expressed as a
percentage of the set value.  Expiries land at or slightly above 100%
(delivery happens at tick granularity, so short timeouts exceed 100%
by a large relative margin); cancellations scatter below 100%.

As in the paper: timers set to expire immediately or in the past are
not plotted, and the y axis is cut off at 250%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sim.clock import SECOND
from .episodes import Outcome
from .index import as_index

CUTOFF_PCT = 250.0


@dataclass
class ScatterPoint:
    """One aggregated circle: (value, fraction) with multiplicity."""

    value_ns: int
    fraction_pct: float
    count: int
    outcome: Outcome


@dataclass
class DurationScatter:
    """The data behind one panel of Figures 8–11."""

    workload: str
    os_name: str
    points: list[ScatterPoint] = field(default_factory=list)
    clipped: int = 0        #: points above the 250% cutoff
    skipped: int = 0        #: immediate/past expiries, not plotted

    # -- summary statistics used by the benchmarks ----------------------

    def total(self) -> int:
        return sum(p.count for p in self.points)

    def share_above_100pct(self) -> float:
        """Fraction of plotted points delivered late (>100%)."""
        total = self.total()
        if total == 0:
            return 0.0
        late = sum(p.count for p in self.points if p.fraction_pct > 100.0)
        return late / total

    def cancel_share(self, *, value_min_ns: int = 0,
                     value_max_ns: Optional[int] = None) -> float:
        """Fraction of episodes in a value band that were cancelled."""
        selected = [p for p in self.points
                    if p.value_ns >= value_min_ns
                    and (value_max_ns is None or p.value_ns <= value_max_ns)]
        total = sum(p.count for p in selected)
        if total == 0:
            return 0.0
        canceled = sum(p.count for p in selected
                       if p.outcome == Outcome.CANCELED)
        return canceled / total

    def points_near(self, value_ns: int, rel_tol: float = 0.1
                    ) -> list[ScatterPoint]:
        """Points whose set value is within ``rel_tol`` of ``value_ns``
        (the paper's 'column at 5 seconds' style observations)."""
        lo, hi = value_ns * (1 - rel_tol), value_ns * (1 + rel_tol)
        return [p for p in self.points if lo <= p.value_ns <= hi]

    def fraction_spread(self, value_ns: int, rel_tol: float = 0.1
                        ) -> tuple[float, float]:
        """(min, max) cancellation/expiry fraction at one value column."""
        pts = self.points_near(value_ns, rel_tol)
        if not pts:
            return (0.0, 0.0)
        fracs = [p.fraction_pct for p in pts]
        return (min(fracs), max(fracs))


def duration_scatter(source, *, logical: Optional[bool] = None,
                     cutoff_pct: float = CUTOFF_PCT) -> DurationScatter:
    """Build the Figure 8–11 scatter for one trace or index."""
    index = as_index(source)
    if logical is None:
        logical = index.default_logical
    scatter = DurationScatter(index.trace.workload, index.os_name)
    # Only EXPIRED and CANCELED episodes survive the filters below, so
    # aggregate into one dict per outcome keyed by plain (int, float)
    # tuples — no enum hashing on the per-episode path.
    agg_e: dict[tuple[int, float], int] = {}
    agg_c: dict[tuple[int, float], int] = {}
    agg_e_get = agg_e.get
    agg_c_get = agg_c.get
    skipped = clipped = 0
    UNRESOLVED = Outcome.UNRESOLVED
    REARMED = Outcome.REARMED
    EXPIRED = Outcome.EXPIRED
    for episodes in index.episodes(logical):
        for set_at, value_ns, outcome, ended_at, _gap in episodes:
            if outcome is UNRESOLVED or outcome is REARMED:
                continue
            if value_ns <= 0:
                skipped += 1
                continue
            if ended_at is None:
                continue
            pct = round(100.0 * (ended_at - set_at) / value_ns, 1)
            if pct > cutoff_pct:
                clipped += 1
                continue
            key = (value_ns, pct)
            if outcome is EXPIRED:
                agg_e[key] = agg_e_get(key, 0) + 1
            else:
                agg_c[key] = agg_c_get(key, 0) + 1
    scatter.skipped = skipped
    scatter.clipped = clipped
    combined = [(v, pct, outcome, n)
                for outcome, agg in ((EXPIRED, agg_e),
                                     (Outcome.CANCELED, agg_c))
                for (v, pct), n in agg.items()]
    scatter.points = [
        ScatterPoint(v, pct, n, outcome) for v, pct, outcome, n in
        sorted(combined, key=lambda t: (t[0], t[1], t[2].value))]
    return scatter


def render_scatter(scatter: DurationScatter, *, rows: int = 12,
                   cols: int = 64) -> str:
    """Coarse ASCII rendering of the scatter (log-x, linear-y)."""
    import math
    if not scatter.points:
        return "(no points)"
    min_v = min(p.value_ns for p in scatter.points)
    max_v = max(p.value_ns for p in scatter.points)
    lo, hi = math.log10(min_v), math.log10(max_v) + 1e-9
    grid = [[" "] * cols for _ in range(rows)]
    for p in scatter.points:
        x = int((math.log10(p.value_ns) - lo) / (hi - lo + 1e-12)
                * (cols - 1))
        y = int(min(p.fraction_pct, CUTOFF_PCT) / CUTOFF_PCT * (rows - 1))
        row = rows - 1 - y
        char = "o" if p.count < 100 else "O"
        grid[row][x] = char
    labels = [f"{CUTOFF_PCT:.0f}%"] + [""] * (rows - 2) + ["0%"]
    lines = [f"{labels[i]:>5}|" + "".join(grid[i]) for i in range(rows)]
    lines.append(" " * 6 + f"{min_v / SECOND:.4g}s ... {max_v / SECOND:.4g}s"
                 f"  (log scale, {scatter.total()} episodes)")
    return "\n".join(lines)
