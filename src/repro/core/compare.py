"""Cross-trace comparison — the A/B questions the paper answers in prose.

The paper constantly contrasts traces: Linux against Vista for the same
workload ("on Vista timers more often expire, whereas on Linux more
timers are canceled"), a workload against Idle ("the Webserver workload
on Vista appears similar to the Idle workload"), before/after filtering
X.  This module makes those comparisons first-class:

* :func:`compare_summaries` — side-by-side Table 1/2 metrics with
  ratios;
* :func:`histogram_distance` — total-variation distance between two
  value distributions (0 = identical, 1 = disjoint), quantifying
  "appears similar to";
* :func:`class_shift` — how the Figure 2 pattern mix moved between two
  traces.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..tracing.trace import Trace
from .classify import pattern_breakdown
from .summary import TraceSummary, summarize
from .values import ValueHistogram, value_histogram


@dataclass
class SummaryComparison:
    """Per-metric (a, b, b/a) rows for two trace summaries."""

    a: TraceSummary
    b: TraceSummary

    def rows(self) -> list[tuple[str, int, int, float]]:
        out = []
        for name, va in self.a.as_row().items():
            vb = self.b.as_row()[name]
            ratio = vb / va if va else float("inf") if vb else 1.0
            out.append((name, va, vb, ratio))
        return out

    def render(self) -> str:
        label_a = f"{self.a.os_name}/{self.a.workload}"
        label_b = f"{self.b.os_name}/{self.b.workload}"
        lines = [f"{'metric':<14}{label_a:>16}{label_b:>16}{'ratio':>8}"]
        for name, va, vb, ratio in self.rows():
            lines.append(f"{name:<14}{va:>16}{vb:>16}{ratio:>8.2f}")
        return "\n".join(lines)


def compare_summaries(a: Trace, b: Trace) -> SummaryComparison:
    return SummaryComparison(summarize(a), summarize(b))


def histogram_distance(a: ValueHistogram, b: ValueHistogram) -> float:
    """Total-variation distance between two value distributions."""
    if a.total_sets == 0 or b.total_sets == 0:
        return 1.0 if a.total_sets != b.total_sets else 0.0
    values = set(a.counts) | set(b.counts)
    distance = 0.0
    for value in values:
        pa = a.counts.get(value, 0) / a.total_sets
        pb = b.counts.get(value, 0) / b.total_sets
        distance += abs(pa - pb)
    return distance / 2


def trace_value_distance(a: Trace, b: Trace, **kwargs) -> float:
    return histogram_distance(value_histogram(a, **kwargs),
                              value_histogram(b, **kwargs))


@dataclass
class ClassShift:
    """Figure 2 mix in two traces and the per-class delta (pp)."""

    a_row: dict
    b_row: dict

    def delta(self) -> dict:
        return {name: self.b_row[name] - self.a_row[name]
                for name in self.a_row}

    def biggest_shift(self) -> tuple[str, float]:
        deltas = self.delta()
        name = max(deltas, key=lambda k: abs(deltas[k]))
        return name, deltas[name]

    def render(self) -> str:
        lines = [f"{'class':<10}{'a':>8}{'b':>8}{'delta':>8}"]
        for name, d in self.delta().items():
            lines.append(f"{name:<10}{self.a_row[name]:>7.1f}%"
                         f"{self.b_row[name]:>7.1f}%{d:>+7.1f}pp")
        return "\n".join(lines)


def class_shift(a: Trace, b: Trace) -> ClassShift:
    return ClassShift(pattern_breakdown(a).figure2_row(),
                      pattern_breakdown(b).figure2_row())
