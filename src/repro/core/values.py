"""Common-timeout-value analysis (the paper's Figures 3–7).

The paper's most immediate finding: the distribution of timeout values
is dominated by a handful of fixed, human-chosen round numbers.  This
module computes

* value histograms over all SET operations (Figure 3/5/7), optionally
  restricted to syscall-level user values (Figure 6),
* the select-loop countdown series behind Figure 4,
* a round-number metric quantifying "0.5, 1, 5, or 15 seconds"-style
  human values versus measured ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim.clock import JIFFY, MILLISECOND, SECOND, to_seconds
from ..tracing.events import EventKind
from .episodes import quantizes_to_jiffies
from .index import as_index


@dataclass
class ValueHistogram:
    """Timeout-value frequency table for one trace."""

    workload: str
    os_name: str
    total_sets: int
    #: value_ns -> count, for every distinct nominal value.
    counts: dict[int, int]

    def common_values(self, threshold_pct: float = 2.0
                      ) -> list[tuple[int, float]]:
        """Values responsible for at least ``threshold_pct`` of sets,
        sorted by value — the bars of Figures 3/5/6/7."""
        if self.total_sets == 0:
            return []
        out = [(value, 100.0 * count / self.total_sets)
               for value, count in self.counts.items()
               if 100.0 * count / self.total_sets >= threshold_pct]
        return sorted(out)

    def coverage(self, threshold_pct: float = 2.0) -> float:
        """What % of all sets the common values account for — the
        paper quotes e.g. 97% for the Linux webserver trace."""
        return sum(pct for _, pct in self.common_values(threshold_pct))

    def percentage_of(self, value_ns: int) -> float:
        if self.total_sets == 0:
            return 0.0
        return 100.0 * self.counts.get(value_ns, 0) / self.total_sets


def value_histogram(source, *, domain: Optional[str] = None,
                    include_waits: bool = True,
                    raw_user_values: bool = True) -> ValueHistogram:
    """Histogram of nominal SET values over a trace or index.

    ``domain="user"`` restricts to syscall-level accesses (Figure 6).
    ``raw_user_values`` keeps user values exactly as requested; kernel
    observations are quantised back to jiffies on Linux.
    """
    index = as_index(source)
    counts: dict[int, int] = {}
    counts_get = counts.get
    total = 0
    WAIT_UNBLOCK = EventKind.WAIT_UNBLOCK
    # nominal_value_ns, with the backend-trait lookup hoisted out of
    # the per-event path.
    quantize = raw_user_values and quantizes_to_jiffies(index.os_name)
    for (kind, _ts, _tid, _pid, _comm, event_domain, _site,
         timeout, _expires, _flags, _host, _cpu) in index.set_like:
        if kind is WAIT_UNBLOCK:
            if not include_waits or timeout is None:
                continue
        if domain is not None and event_domain != domain:
            continue
        value = timeout or 0
        if quantize and value > 0 and event_domain != "user":
            value = -(-value // JIFFY) * JIFFY
        counts[value] = counts_get(value, 0) + 1
        total += 1
    return ValueHistogram(index.trace.workload, index.os_name, total,
                          counts)


def countdown_series(source, comm: str) -> list[tuple[int, int]]:
    """(timestamp, set value) pairs for one process — Figure 4's dots."""
    return [(e.ts, e.timeout_ns or 0)
            for e in as_index(source).by_comm.get(comm, [])
            if e.kind == EventKind.SET]


#: Values humans pick: multiples of these read as "round".
_ROUND_BASES_NS = (
    100 * MILLISECOND, 250 * MILLISECOND, 500 * MILLISECOND, SECOND,
)


def is_round_value(value_ns: int, tolerance_ns: int = MILLISECOND) -> bool:
    """Heuristic for a human-chosen "round number" timeout.

    A value is round if it is (a) within tolerance of a multiple of
    100 ms, 250 ms, 500 ms or a whole second (covering the paper's 0.5,
    1, 5, 15, 30, 7200 examples); (b) the jiffy-*truncation* of such a
    multiple, like the USB poll's 248 ms (62 jiffies standing in for
    250 ms) — but NOT a value a few ms *above* a multiple, so the
    adapted TCP RTO of 204 ms stays non-round; or (c) a small whole
    number of jiffies under 100 ms (the 1/2/3-jiffy soft-realtime polls
    are "minimal" rather than measured).
    """
    if value_ns <= 0:
        return True
    if value_ns < 100 * MILLISECOND and value_ns % JIFFY == 0:
        return True
    for base in _ROUND_BASES_NS:
        remainder = value_ns % base
        if min(remainder, base - remainder) <= tolerance_ns:
            return True
        if base - remainder < JIFFY:     # truncated-to-jiffy round value
            return True
    return False


def round_value_share(histogram: ValueHistogram) -> float:
    """Fraction of sets whose value is a round number (0..1)."""
    if histogram.total_sets == 0:
        return 0.0
    round_count = sum(count for value, count in histogram.counts.items()
                      if is_round_value(value))
    return round_count / histogram.total_sets


def render_histogram(histogram: ValueHistogram,
                     threshold_pct: float = 2.0, width: int = 46) -> str:
    """ASCII rendering in the style of the paper's bar charts."""
    rows = histogram.common_values(threshold_pct)
    if not rows:
        return "(no values above threshold)"
    peak = max(pct for _, pct in rows)
    lines = []
    for value, pct in rows:
        bar = "#" * max(1, round(width * pct / peak))
        lines.append(f"{_fmt_value(value):>14} {pct:5.1f}% {bar}")
    lines.append(f"{'coverage':>14} {histogram.coverage(threshold_pct):5.1f}%"
                 f" of {histogram.total_sets} sets")
    return "\n".join(lines)


def _fmt_value(value_ns: int) -> str:
    seconds_value = to_seconds(value_ns)
    if seconds_value >= 1 and value_ns % SECOND == 0:
        return f"{int(seconds_value)}"
    return f"{seconds_value:.4g}"
