"""One unified entry point over every trace analysis.

``analyze(source)`` accepts whatever representation of a timer trace
you happen to hold — a :class:`~repro.tracing.trace.Trace`, a
pre-built :class:`~repro.core.index.TraceIndex`, a path to a saved
trace file, a finished :class:`~repro.core.streaming.StreamingSuite`,
or a plain iterable of :class:`~repro.tracing.events.TimerEvent` — and
returns an :class:`Analysis` with lazy, cached accessors for each of
the paper's analyses (Tables 1–3, Figures 1–11, the Section 4.2
adaptivity claim and the Section 5.2 nesting inference).

Two modes, one surface:

* **batch** — the source is (or loads into) a full in-memory trace;
  every analysis is available and computed on demand through the
  shared single-pass index.
* **streaming** — the source is a finished streaming suite, or an
  event iterable that gets folded through one here.  The core
  analyses come straight from the suite's incremental reducers
  (byte-identical to batch); the two analyses that inherently need
  random access to full episode lists (:meth:`Analysis.adaptivity`
  and :meth:`Analysis.nesting`) raise :class:`NotImplementedError` —
  probe with :meth:`Analysis.supports` first.
"""

from __future__ import annotations

import os as _os
from typing import Iterable, Optional, Union

from ..tracing.events import TimerEvent
from ..tracing.trace import Trace
from .adaptivity import AdaptivityReport, adaptivity_report
from .classify import PatternBreakdown, pattern_breakdown
from .durations import DurationScatter, duration_scatter
from .index import TraceIndex, as_index
from .nesting import NestedPair, infer_nesting
from .origins import OriginRow, origin_table
from .rates import RateSeries, rate_series
from .streaming import StreamingSuite
from .summary import TraceSummary, summarize
from .values import ValueHistogram, value_histogram

Source = Union[Trace, TraceIndex, StreamingSuite, str, "_os.PathLike",
               Iterable[TimerEvent]]

#: Analyses that need the full episode lists in memory and therefore
#: exist only in batch mode.
_BATCH_ONLY = frozenset({"adaptivity", "nesting"})


class Analysis:
    """Lazy facade over one trace's analyses (see :func:`analyze`).

    Accessors compute on first call and cache; in batch mode keyword
    overrides bypass the cache and recompute.  ``mode`` is ``"batch"``
    or ``"streaming"``.
    """

    def __init__(self, *, index: Optional[TraceIndex] = None,
                 suite: Optional[StreamingSuite] = None):
        if (index is None) == (suite is None):
            raise ValueError("exactly one of index/suite required")
        self._index = index
        self._suite = suite
        self._cache: dict = {}

    # -- metadata -------------------------------------------------------

    @property
    def mode(self) -> str:
        return "batch" if self._index is not None else "streaming"

    @property
    def os_name(self) -> str:
        return self._index.os_name if self._index is not None \
            else self._suite.os_name

    @property
    def workload(self) -> str:
        return self._index.trace.workload if self._index is not None \
            else self._suite.workload

    @property
    def duration_ns(self) -> int:
        return self._index.trace.duration_ns if self._index is not None \
            else self._suite.duration_ns

    @property
    def n_events(self) -> int:
        return self._index.n_events if self._index is not None \
            else self._suite.n_events

    @property
    def trace(self) -> Trace:
        """The underlying trace (batch mode only)."""
        self._require_batch("trace")
        return self._index.trace

    @property
    def index(self) -> TraceIndex:
        self._require_batch("index")
        return self._index

    @property
    def suite(self) -> Optional[StreamingSuite]:
        return self._suite

    def supports(self, name: str) -> bool:
        """Whether accessor ``name`` works in this mode."""
        return self._index is not None or name not in _BATCH_ONLY

    def _require_batch(self, name: str) -> None:
        if self._index is None:
            raise NotImplementedError(
                f"{name} needs the full trace in memory; it is not "
                f"available on a streaming analysis (check "
                f"Analysis.supports({name!r}))")

    def _cached(self, name: str, compute, kwargs: dict):
        if kwargs:     # explicit overrides: recompute, don't cache
            return compute(self._index, **kwargs)
        if name not in self._cache:
            self._cache[name] = compute(self._index)
        return self._cache[name]

    def _no_overrides(self, name: str, kwargs: dict) -> None:
        if kwargs:
            raise ValueError(
                f"{name} options are fixed at streaming time; "
                f"configure the StreamingSuite instead "
                f"(got {sorted(kwargs)})")

    # -- the paper's analyses -------------------------------------------

    def summary(self) -> TraceSummary:
        """Tables 1/2 row."""
        if self._suite is not None:
            return self._suite.summary
        return self._cached("summary", summarize, {})

    def pattern_breakdown(self, **kwargs) -> PatternBreakdown:
        """Figure 2 usage-pattern shares."""
        if self._suite is not None:
            self._no_overrides("pattern_breakdown", kwargs)
            return self._suite.breakdown
        return self._cached("breakdown", pattern_breakdown, kwargs)

    def value_histogram(self, **kwargs) -> ValueHistogram:
        """Figures 3–7 common-value histogram."""
        if self._suite is not None:
            self._no_overrides("value_histogram", kwargs)
            return self._suite.histogram
        return self._cached("histogram", value_histogram, kwargs)

    def duration_scatter(self, **kwargs) -> DurationScatter:
        """Figures 8–11 expiry/cancel scatter."""
        if self._suite is not None:
            self._no_overrides("duration_scatter", kwargs)
            return self._suite.scatter
        return self._cached("scatter", duration_scatter, kwargs)

    def rate_series(self, **kwargs) -> RateSeries:
        """Figure 1 set-rate series."""
        if self._suite is not None:
            self._no_overrides("rate_series", kwargs)
            return self._suite.rates
        return self._cached("rates", rate_series, kwargs)

    def origin_table(self, *, min_sets: int = 3, **kwargs
                     ) -> list[OriginRow]:
        """Table 3 rows."""
        if self._suite is not None:
            self._no_overrides("origin_table", kwargs)
            return self._suite.origin_table(min_sets=min_sets)
        return origin_table(self._index, min_sets=min_sets, **kwargs)

    def adaptivity(self, **kwargs) -> AdaptivityReport:
        """Section 4.2 value-adaptivity shares (batch only)."""
        self._require_batch("adaptivity")
        return self._cached("adaptivity", adaptivity_report, kwargs)

    def nesting(self, **kwargs) -> list[NestedPair]:
        """Section 5.2 inferred nested timeouts (batch only)."""
        self._require_batch("nesting")
        return self._cached("nesting", infer_nesting, kwargs)


def analyze(source: Source, *, os_name: Optional[str] = None,
            workload: Optional[str] = None,
            duration_ns: Optional[int] = None) -> Analysis:
    """Build an :class:`Analysis` from any trace representation.

    * ``Trace`` / ``TraceIndex`` / ``ColumnarTrace`` → batch mode over
      the shared index (a columnar view hydrates lazily, once).
    * ``str`` / path → :func:`repro.tracing.open_trace` (format
      sniffed by magic), then batch mode.
    * ``StreamingSuite`` → streaming mode; an unfinished suite is
      finished here (``duration_ns`` required in that case).
    * any other iterable of :class:`TimerEvent` → streaming mode: the
      events are folded through a fresh suite (``os_name``,
      ``workload`` and ``duration_ns`` describe the stream; the first
      two default to ``"unknown"``).
    """
    if isinstance(source, StreamingSuite):
        if not source.finished:
            if duration_ns is None:
                raise ValueError("duration_ns required to finish an "
                                 "unfinished StreamingSuite")
            source.finish(duration_ns)
        return Analysis(suite=source)
    if isinstance(source, (str, _os.PathLike)):
        from ..tracing.formats import open_trace
        source = open_trace(_os.fspath(source))
    from ..tracing.binfmt2 import ColumnarTrace
    if isinstance(source, (Trace, TraceIndex, ColumnarTrace)):
        return Analysis(index=as_index(source))
    try:
        events = iter(source)
    except TypeError:
        raise TypeError(
            f"analyze() expects a Trace, TraceIndex, StreamingSuite, "
            f"path or iterable of TimerEvent, got "
            f"{type(source).__name__}") from None
    suite = StreamingSuite(os_name or "unknown", workload or "unknown")
    last_ts = 0
    for event in events:
        suite.emit(event)
        last_ts = event.ts
    suite.finish(duration_ns if duration_ns is not None else last_ts)
    return Analysis(suite=suite)
