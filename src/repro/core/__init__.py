"""The paper's contribution: trace analyses (Section 4) and the
clean-slate timer design machinery (Section 5).

Analysis side: :mod:`~repro.core.summary` (Tables 1–2),
:mod:`~repro.core.classify` (the usage taxonomy, Figure 2),
:mod:`~repro.core.values` (common values, Figures 3–7),
:mod:`~repro.core.durations` (expiry/cancel fractions, Figures 8–11),
:mod:`~repro.core.origins` (Table 3), :mod:`~repro.core.rates`
(Figure 1) — all consuming the shared single-pass
:mod:`~repro.core.index` instead of re-scanning the trace.

One roof over all of it: :func:`~repro.core.analyze.analyze` wraps a
trace, index, saved file, event stream or finished
:class:`~repro.core.streaming.StreamingSuite` in a lazy
:class:`~repro.core.analyze.Analysis`; :mod:`~repro.core.streaming`
holds the bounded-memory incremental reducers behind it.

Design side: :mod:`~repro.core.adaptive` (5.1),
:mod:`~repro.core.provenance` (5.2), :mod:`~repro.core.timespec` (5.3),
:mod:`~repro.core.interfaces` (5.4), :mod:`~repro.core.dispatch` (5.5).
"""

from .adaptivity import (AdaptivityReport, ValueBehavior,
                         adaptivity_report, classify_values)
from .analyze import Analysis, analyze
from .adaptive import (AdaptiveTimeout, ExponentialBackoff,
                       JacobsonEstimator, LevelShiftDetector, P2Quantile,
                       WaitOutcome, simulate_wait_policy)
from .classify import (Classification, PatternBreakdown, TimerClass,
                       classify_episodes, classify_timer, classify_trace,
                       pattern_breakdown)
from .dispatch import (ActivationScheduler, MediaLoopResult, Requirement,
                       run_media_comparison, run_media_loop_dispatcher,
                       run_media_loop_timers)
from .durations import (DurationScatter, ScatterPoint, duration_scatter,
                        render_scatter)
from .episodes import (DEFAULT_TOLERANCE_NS, Episode, Outcome,
                       dominant_value, extract_episodes, nominal_value_ns)
from .index import TraceIndex, as_index
from .interfaces import (DeferredAction, DelayTimer, PeriodicTicker,
                         ScopedTimeout, Watchdog)
from .nesting import NestedPair, infer_nesting, render_nesting
from .compare import (ClassShift, SummaryComparison, class_shift,
                      compare_summaries, histogram_distance,
                      trace_value_distance)
from .planned import AdmissionError, Plan, PlannedScheduler
from .origins import (OriginRow, attribute_origin, origin_table,
                      render_origin_table, value_origins)
from .provenance import (DependencyGraph, LayeredTimeoutStack, LayerSpec,
                         Relation)
from .rates import RateSeries, default_group, rate_series, render_rates
from .report import generate_report, render_analysis
from .streaming import (EpisodeRouter, ProgressSink, StreamingClassifier,
                        StreamingDurations, StreamingRates,
                        StreamingSuite, StreamingSummary,
                        StreamingValues)
from .summary import TraceSummary, summarize, summary_table
from .timespec import (AverageRate, Exact, FlexibleTimer,
                       FlexibleTimerQueue, Window, after, stab_windows)
from .values import (ValueHistogram, countdown_series, is_round_value,
                     render_histogram, round_value_share, value_histogram)

__all__ = [name for name in dir() if not name.startswith("_")]
