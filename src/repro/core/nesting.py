"""Inferring nested timeouts from traces (Section 5.2's provenance,
recovered after the fact).

"Common idioms we have seen in GUI programming suggest that timeouts
are frequently nested — operations that time out at one layer are
retried until a higher-level, enclosing timeout fires."  Without
explicit provenance, nesting can still be *inferred* from a trace:
timer B is (probably) nested inside timer A when B's armed episodes
are repeatedly contained within A's episodes on the same process, with
A armed first and outliving B.

The inference feeds the Section 5.2 optimisations: a confirmed nested
pair whose inner timeout exceeds the enclosing remaining time is a
candidate for elision (see :class:`repro.core.interfaces.ScopedTimeout`).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Optional, Tuple

from .episodes import Episode
from .index import as_index

try:                     # optional accelerator, never required: the
    import numpy as _np  # pure-python paths below are the reference
except ImportError:      # and produce identical output.
    _np = None


@dataclass
class NestedPair:
    """Evidence that ``inner`` timers run inside ``outer`` timers."""

    outer_site: Tuple[str, ...]
    inner_site: Tuple[str, ...]
    pid: int
    #: How many inner episodes were contained in some outer episode.
    support: int
    #: Fraction of all inner episodes that were contained.
    containment: float
    #: How many contained inner episodes could never have fired first
    #: (inner deadline at or after the enclosing deadline): the
    #: elision opportunity of Section 5.4.
    elidable: int

    def __str__(self) -> str:
        return (f"{'/'.join(self.inner_site[-1:])} nested in "
                f"{'/'.join(self.outer_site[-1:])} "
                f"(pid {self.pid}, support {self.support}, "
                f"containment {self.containment:.0%}, "
                f"{self.elidable} elidable)")


def _resolved_intervals(episodes: list[Episode]
                        ) -> list[tuple[int, int, int]]:
    """(start, end, deadline) for each completed episode."""
    return [(set_at, ended_at, set_at + value_ns)
            for set_at, value_ns, _outcome, ended_at, _gap in episodes
            if ended_at is not None]


class _TimerIntervals:
    """One timer's resolved episodes plus the search structures the
    pairwise containment test needs.

    Containment asks, per inner episode, for the *first* (in episode
    order) outer episode with ``o_start <= i_start`` and
    ``i_end <= o_end``.  The first episode whose end reaches ``i_end``
    is always a running-maximum *record* of the ends sequence (an
    earlier episode with a greater-or-equal end would match first), and
    the records' ends are strictly increasing — so a single ``bisect``
    over the record ends answers each query in O(log n).  The start
    constraint then reduces to one comparison because starts are
    chronological for almost every timer; unsorted starts (mixed
    SET/WAIT clusters) fall back to the plain first-match scan.
    Results are identical to the brute-force pairwise scan either way.
    """

    __slots__ = ("site", "intervals", "starts", "sorted_starts",
                 "min_start", "max_start", "min_end", "max_end",
                 "record_ends", "record_at", "starts_sorted",
                 "ends_sorted", "_columns")

    def __init__(self, site, intervals: list[tuple[int, int, int]]):
        self.site = site
        self.intervals = intervals
        starts = [iv[0] for iv in intervals]
        self.starts = starts
        self.sorted_starts = all(a <= b for a, b in
                                 zip(starts, starts[1:]))
        self.min_start = min(starts)
        self.max_start = max(starts)
        ends = [iv[1] for iv in intervals]
        self.min_end = min(ends)
        record_ends: list[int] = []
        record_at: list[int] = []
        peak = -1
        for j, (_start, end, _deadline) in enumerate(intervals):
            if end > peak:
                peak = end
                record_ends.append(end)
                record_at.append(j)
        self.max_end = peak
        self.record_ends = record_ends
        self.record_at = record_at
        # Sorted views for the pair-level support upper bound: how many
        # of *this* timer's episodes could possibly fit inside a given
        # outer's [min_start, max_end] envelope.
        self.starts_sorted = starts if self.sorted_starts \
            else sorted(starts)
        ends.sort()
        self.ends_sorted = ends
        self._columns = None

    def columns(self):
        """(starts, ends, deadlines) int64 columns in episode order,
        built lazily for the vectorised containment tally."""
        cols = self._columns
        if cols is None:
            # One C pass over the (start, end, deadline) tuples beats
            # three per-element generator fromiters.
            arr = _np.array(self.intervals, dtype=_np.int64)
            cols = self._columns = (arr[:, 0], arr[:, 1], arr[:, 2])
        return cols

    def first_containing(self, i_start: int, i_end: int
                         ) -> Optional[tuple[int, int, int]]:
        """First episode containing [i_start, i_end] (an identical
        interval does not count as containing itself)."""
        intervals = self.intervals
        if self.sorted_starts:
            record_ends = self.record_ends
            k = bisect_left(record_ends, i_end)
            if k == len(record_ends):
                return None
            j = self.record_at[k]
            candidate = intervals[j]
            # Sorted starts make "index < bisect(starts, i_start)"
            # equivalent to this one comparison.
            if candidate[0] > i_start:
                return None
            if candidate[0] != i_start or candidate[1] != i_end:
                return candidate
            # Rare: the first match is the identical interval (another
            # timer armed and ended at exactly the same instants).
            # Fall through to the ordered scan past it.
            hi = bisect_right(self.starts, i_start)
            for j2 in range(j + 1, hi):
                candidate = intervals[j2]
                if candidate[1] >= i_end and \
                        (candidate[0] != i_start or candidate[1] != i_end):
                    return candidate
            return None
        for candidate in intervals:
            o_start, o_end, _o_deadline = candidate
            if o_start <= i_start and i_end <= o_end \
                    and (o_start, o_end) != (i_start, i_end):
                return candidate
        return None


_MISS = object()   # memo sentinel: None is a valid cached answer


def _support_floor(n_inner: int, min_support: int,
                   min_containment: float) -> int:
    """The smallest support count that could let a pair with ``n_inner``
    inner episodes qualify — the same float comparison the emission
    check uses, so pruning below this floor can never change output."""
    needed = int(min_containment * n_inner)
    if needed < min_support:
        needed = min_support
    while needed <= n_inner and needed / n_inner < min_containment:
        needed += 1
    return needed


def _support_ceiling(inner: _TimerIntervals, o_min_start: int,
                     o_max_end: int) -> int:
    """Upper bound on how many of ``inner``'s episodes any outer with
    this [min_start, max_end] envelope can contain: an episode needs
    ``i_start >= some o_start >= o_min_start`` and
    ``i_end <= some o_end <= o_max_end``.  Two bisects over the sorted
    start/end views bound both conditions."""
    starts_ok = len(inner.starts_sorted) - \
        bisect_left(inner.starts_sorted, o_min_start)
    ends_ok = bisect_right(inner.ends_sorted, o_max_end)
    return starts_ok if starts_ok < ends_ok else ends_ok


def _batch_first_containing(outer: _TimerIntervals,
                            queries: list[tuple[int, int]]
                            ) -> list[Optional[tuple[int, int, int]]]:
    """Answer :meth:`_TimerIntervals.first_containing` for many queries
    against an unsorted-starts outer in O((n + q) log n) total.

    The first match in episode-list order is the *minimum list index*
    among episodes with ``start <= i_start`` and ``end >= i_end``.
    Sweep queries in ``i_start`` order, admitting episodes as their
    start is passed, and keep a min-index Fenwick tree over the
    (compressed, reversed) episode ends so "min index with end >= Y"
    is a prefix query.
    """
    intervals = outer.intervals
    n = len(intervals)
    # Decorated tuple sorts: the C-level tuple comparison beats a
    # Python key callable per element on these hot, large inputs.
    by_start = sorted((iv[0], j) for j, iv in enumerate(intervals))
    ends_sorted = sorted({iv[1] for iv in intervals})
    end_pos = {end: pos for pos, end in enumerate(ends_sorted)}
    m = len(ends_sorted)
    tree = [n] * (m + 1)    # min-BIT over reversed end positions

    answers: list[Optional[tuple[int, int, int]]] = [None] * len(queries)
    order = sorted((qs, q) for q, (qs, _qe) in enumerate(queries))
    redo_memo: dict = {}    # collision query -> exclusion-aware answer
    ptr = 0
    for _qs, q in order:
        i_start, i_end = queries[q]
        while ptr < n and by_start[ptr][0] <= i_start:
            j = by_start[ptr][1]
            node = m - end_pos[intervals[j][1]]
            while node <= m:
                if tree[node] <= j:
                    # Update-path ranges nest, so every node above
                    # already holds a smaller index: stop early.
                    break
                tree[node] = j
                node += node & -node
            ptr += 1
        kpos = bisect_left(ends_sorted, i_end)
        if kpos == m:
            continue
        node = m - kpos
        best = n
        while node > 0:
            if tree[node] < best:
                best = tree[node]
            node -= node & -node
        if best == n:
            continue
        candidate = intervals[best]
        if candidate[0] == i_start and candidate[1] == i_end:
            # Identical interval: redo this one query with the
            # exclusion-aware linear scan.  Tick quantisation makes the
            # same collision repeat heavily, so memoize per sweep.
            key = (i_start, i_end)
            candidate = redo_memo.get(key, _MISS)
            if candidate is _MISS:
                candidate = redo_memo[key] = \
                    outer.first_containing(i_start, i_end)
        answers[q] = candidate
    return answers


def infer_nesting(source, *, min_support: int = 3,
                  min_containment: float = 0.6,
                  logical: Optional[bool] = None) -> list[NestedPair]:
    """Find nested-timeout pairs in a trace (or pre-built index).

    Containment is strict on the start side (the outer timer must be
    armed first) and inclusive on the end side.  Pairs must share a
    pid: nesting across processes is not meaningful at this level.
    """
    index = as_index(source)
    if logical is None:
        logical = index.default_logical
    per_pid: dict[int, list] = {}
    for history, episodes in index.grouped(logical):
        if episodes:
            per_pid.setdefault(history.pid, []).append(
                (history.site, episodes))

    pairs: list[NestedPair] = []
    for pid, timers in per_pid.items():
        prepared = []
        for site, episodes in timers:
            intervals = _resolved_intervals(episodes)
            if intervals:
                prepared.append(_TimerIntervals(site, intervals))
        for outer in prepared:
            o_intervals = outer.intervals
            record_ends = outer.record_ends
            record_at = outer.record_at
            n_records = len(record_ends)
            # Pair-level reject: no outer episode starts early enough /
            # ends late enough for any inner episode.
            eligible = [inner for inner in prepared
                        if inner.site is not outer.site
                        and outer.min_start <= inner.max_start
                        and outer.max_end >= inner.min_end]
            o_min_start = outer.min_start
            o_max_end = outer.max_end
            tallies: dict[int, tuple[int, int]] = {}
            fc_memo: dict = {}    # (i_start, i_end) -> first_containing
            if outer.sorted_starts:
                if _np is not None:
                    # Vectorised fast path: the record bisect, the
                    # start comparison and the deadline test run as
                    # int64 column operations; only the (rare)
                    # identical-interval collisions fall back to the
                    # exclusion-aware scan.  Identical tallies to the
                    # reference loop below.
                    o_starts_a, o_ends_a, o_deads_a = outer.columns()
                    rec_at_a = _np.fromiter(record_at, _np.intp,
                                            n_records)
                    rec_ends_a = o_ends_a[rec_at_a]
                    rec_starts_a = o_starts_a[rec_at_a]
                    rec_deads_a = o_deads_a[rec_at_a]
                    for idx, inner in enumerate(eligible):
                        needed = _support_floor(len(inner.intervals),
                                                min_support,
                                                min_containment)
                        if _support_ceiling(inner, o_min_start,
                                            o_max_end) < needed:
                            continue      # pair can never qualify
                        starts_a, ends_a, deads_a = inner.columns()
                        k = rec_ends_a.searchsorted(ends_a, side="left")
                        valid = k < n_records
                        kc = _np.where(valid, k, 0)
                        m_start = rec_starts_a[kc]
                        contained = valid & (m_start <= starts_a)
                        identical = contained & (m_start == starts_a) \
                            & (rec_ends_a[kc] == ends_a)
                        plain = contained & ~identical
                        support = int(plain.sum())
                        elidable = int((plain &
                                        (deads_a >= rec_deads_a[kc]))
                                       .sum())
                        if identical.any():
                            # Tick quantisation repeats the same
                            # collision queries across this outer's
                            # inners: resolve each through the
                            # per-outer memo, tallying in plain Python
                            # (tolist hands back machine ints in one C
                            # pass; the rows are unique within one
                            # inner, so np.unique buys nothing here).
                            idxs = _np.nonzero(identical)[0]
                            c_rows = _np.stack(
                                (starts_a[idxs], ends_a[idxs],
                                 deads_a[idxs]), axis=1).tolist()
                            for c_start, c_stop, c_dead in c_rows:
                                q = (c_start, c_stop)
                                match = fc_memo.get(q, _MISS)
                                if match is _MISS:
                                    match = fc_memo[q] = \
                                        outer.first_containing(*q)
                                if match is not None:
                                    support += 1
                                    if c_dead >= match[2]:
                                        elidable += 1
                        tallies[idx] = (support, elidable)
                else:
                    # Inlined reference loop of first_containing (this
                    # double loop dominates the whole analysis battery
                    # on busy traces when numpy is absent).
                    for idx, inner in enumerate(eligible):
                        needed = _support_floor(len(inner.intervals),
                                                min_support,
                                                min_containment)
                        if _support_ceiling(inner, o_min_start,
                                            o_max_end) < needed:
                            continue      # pair can never qualify
                        support = elidable = 0
                        remaining = len(inner.intervals)
                        for i_start, i_end, i_deadline in inner.intervals:
                            remaining -= 1
                            k = bisect_left(record_ends, i_end)
                            if k == n_records:
                                if support + remaining < needed:
                                    break
                                continue
                            match = o_intervals[record_at[k]]
                            if match[0] > i_start:
                                if support + remaining < needed:
                                    break
                                continue
                            if match[0] == i_start and match[1] == i_end:
                                # Identical interval: the exclusion-
                                # aware scan, memoized per query (tick
                                # quantisation makes exact collisions
                                # repeat heavily).
                                q = (i_start, i_end)
                                match = fc_memo.get(q, _MISS)
                                if match is _MISS:
                                    match = fc_memo[q] = \
                                        outer.first_containing(i_start,
                                                               i_end)
                                if match is None:
                                    if support + remaining < needed:
                                        break
                                    continue
                            support += 1
                            if i_deadline >= match[2]:
                                elidable += 1
                        tallies[idx] = (support, elidable)
            else:
                # Unsorted starts (interleaved SET/WAIT clusters): one
                # offline sweep answers every inner's queries at once.
                queries = []
                meta = []
                for idx, inner in enumerate(eligible):
                    needed = _support_floor(len(inner.intervals),
                                            min_support, min_containment)
                    if _support_ceiling(inner, o_min_start,
                                        o_max_end) < needed:
                        continue      # pair can never qualify
                    for i_start, i_end, i_deadline in inner.intervals:
                        queries.append((i_start, i_end))
                        meta.append((idx, i_deadline))
                for (idx, i_deadline), match in zip(
                        meta, _batch_first_containing(outer, queries)):
                    if match is not None:
                        support, elidable = tallies.get(idx, (0, 0))
                        tallies[idx] = (support + 1, elidable +
                                        (1 if i_deadline >= match[2]
                                         else 0))
            for idx, inner in enumerate(eligible):
                support, elidable = tallies.get(idx, (0, 0))
                containment = support / len(inner.intervals)
                if support >= min_support \
                        and containment >= min_containment:
                    pairs.append(NestedPair(outer.site, inner.site,
                                            pid, support, containment,
                                            elidable))
    pairs.sort(key=lambda p: -p.support)
    return pairs


def render_nesting(pairs: list[NestedPair]) -> str:
    if not pairs:
        return "(no nested timeout pairs found)"
    return "\n".join(str(pair) for pair in pairs)
