"""Inferring nested timeouts from traces (Section 5.2's provenance,
recovered after the fact).

"Common idioms we have seen in GUI programming suggest that timeouts
are frequently nested — operations that time out at one layer are
retried until a higher-level, enclosing timeout fires."  Without
explicit provenance, nesting can still be *inferred* from a trace:
timer B is (probably) nested inside timer A when B's armed episodes
are repeatedly contained within A's episodes on the same process, with
A armed first and outliving B.

The inference feeds the Section 5.2 optimisations: a confirmed nested
pair whose inner timeout exceeds the enclosing remaining time is a
candidate for elision (see :class:`repro.core.interfaces.ScopedTimeout`).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Optional, Tuple

from .episodes import Episode
from .index import as_index


@dataclass
class NestedPair:
    """Evidence that ``inner`` timers run inside ``outer`` timers."""

    outer_site: Tuple[str, ...]
    inner_site: Tuple[str, ...]
    pid: int
    #: How many inner episodes were contained in some outer episode.
    support: int
    #: Fraction of all inner episodes that were contained.
    containment: float
    #: How many contained inner episodes could never have fired first
    #: (inner deadline at or after the enclosing deadline): the
    #: elision opportunity of Section 5.4.
    elidable: int

    def __str__(self) -> str:
        return (f"{'/'.join(self.inner_site[-1:])} nested in "
                f"{'/'.join(self.outer_site[-1:])} "
                f"(pid {self.pid}, support {self.support}, "
                f"containment {self.containment:.0%}, "
                f"{self.elidable} elidable)")


def _resolved_intervals(episodes: list[Episode]
                        ) -> list[tuple[int, int, int]]:
    """(start, end, deadline) for each completed episode."""
    out = []
    for episode in episodes:
        if episode.ended_at is None:
            continue
        deadline = episode.set_at + episode.value_ns
        out.append((episode.set_at, episode.ended_at, deadline))
    return out


class _TimerIntervals:
    """One timer's resolved episodes plus the search structures the
    pairwise containment test needs.

    Containment asks, per inner episode, for the *first* (in episode
    order) outer episode with ``o_start <= i_start`` and
    ``i_end <= o_end``.  The first episode whose end reaches ``i_end``
    is always a running-maximum *record* of the ends sequence (an
    earlier episode with a greater-or-equal end would match first), and
    the records' ends are strictly increasing — so a single ``bisect``
    over the record ends answers each query in O(log n).  The start
    constraint then reduces to one comparison because starts are
    chronological for almost every timer; unsorted starts (mixed
    SET/WAIT clusters) fall back to the plain first-match scan.
    Results are identical to the brute-force pairwise scan either way.
    """

    __slots__ = ("site", "intervals", "starts", "sorted_starts",
                 "min_start", "max_start", "min_end", "max_end",
                 "record_ends", "record_at")

    def __init__(self, site, intervals: list[tuple[int, int, int]]):
        self.site = site
        self.intervals = intervals
        starts = [iv[0] for iv in intervals]
        self.starts = starts
        self.sorted_starts = all(a <= b for a, b in
                                 zip(starts, starts[1:]))
        self.min_start = min(starts)
        self.max_start = max(starts)
        self.min_end = min(iv[1] for iv in intervals)
        record_ends: list[int] = []
        record_at: list[int] = []
        peak = -1
        for j, (_start, end, _deadline) in enumerate(intervals):
            if end > peak:
                peak = end
                record_ends.append(end)
                record_at.append(j)
        self.max_end = peak
        self.record_ends = record_ends
        self.record_at = record_at

    def first_containing(self, i_start: int, i_end: int
                         ) -> Optional[tuple[int, int, int]]:
        """First episode containing [i_start, i_end] (an identical
        interval does not count as containing itself)."""
        intervals = self.intervals
        if self.sorted_starts:
            record_ends = self.record_ends
            k = bisect_left(record_ends, i_end)
            if k == len(record_ends):
                return None
            j = self.record_at[k]
            candidate = intervals[j]
            # Sorted starts make "index < bisect(starts, i_start)"
            # equivalent to this one comparison.
            if candidate[0] > i_start:
                return None
            if candidate[0] != i_start or candidate[1] != i_end:
                return candidate
            # Rare: the first match is the identical interval (another
            # timer armed and ended at exactly the same instants).
            # Fall through to the ordered scan past it.
            hi = bisect_right(self.starts, i_start)
            for j2 in range(j + 1, hi):
                candidate = intervals[j2]
                if candidate[1] >= i_end and \
                        (candidate[0] != i_start or candidate[1] != i_end):
                    return candidate
            return None
        for candidate in intervals:
            o_start, o_end, _o_deadline = candidate
            if o_start <= i_start and i_end <= o_end \
                    and (o_start, o_end) != (i_start, i_end):
                return candidate
        return None


def _batch_first_containing(outer: _TimerIntervals,
                            queries: list[tuple[int, int]]
                            ) -> list[Optional[tuple[int, int, int]]]:
    """Answer :meth:`_TimerIntervals.first_containing` for many queries
    against an unsorted-starts outer in O((n + q) log n) total.

    The first match in episode-list order is the *minimum list index*
    among episodes with ``start <= i_start`` and ``end >= i_end``.
    Sweep queries in ``i_start`` order, admitting episodes as their
    start is passed, and keep a min-index Fenwick tree over the
    (compressed, reversed) episode ends so "min index with end >= Y"
    is a prefix query.
    """
    intervals = outer.intervals
    n = len(intervals)
    by_start = sorted(range(n), key=lambda j: intervals[j][0])
    ends_sorted = sorted({iv[1] for iv in intervals})
    end_pos = {end: pos for pos, end in enumerate(ends_sorted)}
    m = len(ends_sorted)
    tree = [n] * (m + 1)    # min-BIT over reversed end positions

    answers: list[Optional[tuple[int, int, int]]] = [None] * len(queries)
    order = sorted(range(len(queries)), key=lambda q: queries[q][0])
    ptr = 0
    for q in order:
        i_start, i_end = queries[q]
        while ptr < n and intervals[by_start[ptr]][0] <= i_start:
            j = by_start[ptr]
            node = m - end_pos[intervals[j][1]]
            while node <= m:
                if tree[node] > j:
                    tree[node] = j
                node += node & -node
            ptr += 1
        kpos = bisect_left(ends_sorted, i_end)
        if kpos == m:
            continue
        node = m - kpos
        best = n
        while node > 0:
            if tree[node] < best:
                best = tree[node]
            node -= node & -node
        if best == n:
            continue
        candidate = intervals[best]
        if candidate[0] == i_start and candidate[1] == i_end:
            # Rare identical interval: redo this one query with the
            # exclusion-aware linear scan.
            candidate = outer.first_containing(i_start, i_end)
        answers[q] = candidate
    return answers


def infer_nesting(source, *, min_support: int = 3,
                  min_containment: float = 0.6,
                  logical: Optional[bool] = None) -> list[NestedPair]:
    """Find nested-timeout pairs in a trace (or pre-built index).

    Containment is strict on the start side (the outer timer must be
    armed first) and inclusive on the end side.  Pairs must share a
    pid: nesting across processes is not meaningful at this level.
    """
    index = as_index(source)
    if logical is None:
        logical = index.default_logical
    per_pid: dict[int, list] = {}
    for history, episodes in index.grouped(logical):
        if episodes:
            per_pid.setdefault(history.pid, []).append(
                (history.site, episodes))

    pairs: list[NestedPair] = []
    for pid, timers in per_pid.items():
        prepared = []
        for site, episodes in timers:
            intervals = _resolved_intervals(episodes)
            if intervals:
                prepared.append(_TimerIntervals(site, intervals))
        for outer in prepared:
            o_intervals = outer.intervals
            record_ends = outer.record_ends
            record_at = outer.record_at
            n_records = len(record_ends)
            # Pair-level reject: no outer episode starts early enough /
            # ends late enough for any inner episode.
            eligible = [inner for inner in prepared
                        if inner.site is not outer.site
                        and outer.min_start <= inner.max_start
                        and outer.max_end >= inner.min_end]
            tallies: dict[int, tuple[int, int]] = {}
            if outer.sorted_starts:
                # Inlined fast path of first_containing (this double
                # loop dominates the whole analysis battery on busy
                # traces).
                for idx, inner in enumerate(eligible):
                    support = elidable = 0
                    for i_start, i_end, i_deadline in inner.intervals:
                        k = bisect_left(record_ends, i_end)
                        if k == n_records:
                            continue
                        match = o_intervals[record_at[k]]
                        if match[0] > i_start:
                            continue
                        if match[0] == i_start and match[1] == i_end:
                            # Identical interval: rare, let the method
                            # handle the scan past it.
                            match = outer.first_containing(i_start, i_end)
                            if match is None:
                                continue
                        support += 1
                        if i_deadline >= match[2]:
                            elidable += 1
                    tallies[idx] = (support, elidable)
            else:
                # Unsorted starts (interleaved SET/WAIT clusters): one
                # offline sweep answers every inner's queries at once.
                queries = []
                meta = []
                for idx, inner in enumerate(eligible):
                    for i_start, i_end, i_deadline in inner.intervals:
                        queries.append((i_start, i_end))
                        meta.append((idx, i_deadline))
                for (idx, i_deadline), match in zip(
                        meta, _batch_first_containing(outer, queries)):
                    if match is not None:
                        support, elidable = tallies.get(idx, (0, 0))
                        tallies[idx] = (support + 1, elidable +
                                        (1 if i_deadline >= match[2]
                                         else 0))
            for idx, inner in enumerate(eligible):
                support, elidable = tallies.get(idx, (0, 0))
                containment = support / len(inner.intervals)
                if support >= min_support \
                        and containment >= min_containment:
                    pairs.append(NestedPair(outer.site, inner.site,
                                            pid, support, containment,
                                            elidable))
    pairs.sort(key=lambda p: -p.support)
    return pairs


def render_nesting(pairs: list[NestedPair]) -> str:
    if not pairs:
        return "(no nested timeout pairs found)"
    return "\n".join(str(pair) for pair in pairs)
