"""Inferring nested timeouts from traces (Section 5.2's provenance,
recovered after the fact).

"Common idioms we have seen in GUI programming suggest that timeouts
are frequently nested — operations that time out at one layer are
retried until a higher-level, enclosing timeout fires."  Without
explicit provenance, nesting can still be *inferred* from a trace:
timer B is (probably) nested inside timer A when B's armed episodes
are repeatedly contained within A's episodes on the same process, with
A armed first and outliving B.

The inference feeds the Section 5.2 optimisations: a confirmed nested
pair whose inner timeout exceeds the enclosing remaining time is a
candidate for elision (see :class:`repro.core.interfaces.ScopedTimeout`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..tracing.trace import Trace
from .episodes import Episode, extract_episodes


@dataclass
class NestedPair:
    """Evidence that ``inner`` timers run inside ``outer`` timers."""

    outer_site: Tuple[str, ...]
    inner_site: Tuple[str, ...]
    pid: int
    #: How many inner episodes were contained in some outer episode.
    support: int
    #: Fraction of all inner episodes that were contained.
    containment: float
    #: How many contained inner episodes could never have fired first
    #: (inner deadline at or after the enclosing deadline): the
    #: elision opportunity of Section 5.4.
    elidable: int

    def __str__(self) -> str:
        return (f"{'/'.join(self.inner_site[-1:])} nested in "
                f"{'/'.join(self.outer_site[-1:])} "
                f"(pid {self.pid}, support {self.support}, "
                f"containment {self.containment:.0%}, "
                f"{self.elidable} elidable)")


def _resolved_intervals(episodes: list[Episode]
                        ) -> list[tuple[int, int, int]]:
    """(start, end, deadline) for each completed episode."""
    out = []
    for episode in episodes:
        if episode.ended_at is None:
            continue
        deadline = episode.set_at + episode.value_ns
        out.append((episode.set_at, episode.ended_at, deadline))
    return out


def infer_nesting(trace: Trace, *, min_support: int = 3,
                  min_containment: float = 0.6,
                  logical: Optional[bool] = None) -> list[NestedPair]:
    """Find nested-timeout pairs in a trace.

    Containment is strict on the start side (the outer timer must be
    armed first) and inclusive on the end side.  Pairs must share a
    pid: nesting across processes is not meaningful at this level.
    """
    if logical is None:
        logical = trace.os_name == "vista"
    groups = trace.logical_timers() if logical else trace.instances()
    per_pid: dict[int, list] = {}
    for history in groups:
        episodes = extract_episodes(history, trace.os_name)
        if episodes:
            per_pid.setdefault(history.pid, []).append(
                (history.site, episodes))

    pairs: list[NestedPair] = []
    for pid, timers in per_pid.items():
        for outer_site, outer_eps in timers:
            outer_iv = _resolved_intervals(outer_eps)
            if not outer_iv:
                continue
            for inner_site, inner_eps in timers:
                if inner_site is outer_site:
                    continue
                inner_iv = _resolved_intervals(inner_eps)
                if not inner_iv:
                    continue
                support = elidable = 0
                for i_start, i_end, i_deadline in inner_iv:
                    for o_start, o_end, o_deadline in outer_iv:
                        if o_start <= i_start and i_end <= o_end \
                                and (o_start, o_end) != (i_start, i_end):
                            support += 1
                            if i_deadline >= o_deadline:
                                elidable += 1
                            break
                containment = support / len(inner_iv)
                if support >= min_support \
                        and containment >= min_containment:
                    pairs.append(NestedPair(outer_site, inner_site,
                                            pid, support, containment,
                                            elidable))
    pairs.sort(key=lambda p: -p.support)
    return pairs


def render_nesting(pairs: list[NestedPair]) -> str:
    if not pairs:
        return "(no nested timeout pairs found)"
    return "\n".join(str(pair) for pair in pairs)
