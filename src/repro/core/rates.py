"""Timer set-rate time series (the paper's Figure 1).

Figure 1 plots timers set per second by Outlook, a web browser, other
system processes and the kernel over a 90-second excerpt of a Vista
desktop trace: the kernel around a thousand per second, a browser tens
per second, Outlook ~70/s with bursts up to 7000/s caused by its
wrap-every-upcall-in-a-5-second-timeout idiom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..sim.clock import SECOND
from ..tracing.events import EventKind, TimerEvent
from ..tracing.trace import Trace
from .index import SET_LIKE_KINDS, TraceIndex


@dataclass
class RateSeries:
    """Per-group timers-set-per-second series."""

    bucket_ns: int
    buckets: int
    series: dict[str, list[int]]

    def peak(self, group: str) -> int:
        return max(self.series.get(group, [0]))

    def mean(self, group: str) -> float:
        values = self.series.get(group, [])
        if not values:
            return 0.0
        return sum(values) / len(values)

    def per_second(self, group: str) -> list[float]:
        scale = SECOND / self.bucket_ns
        return [v * scale for v in self.series.get(group, [])]


def default_group(event: TimerEvent) -> str:
    """Figure 1's grouping: named apps, system processes, the kernel."""
    if event.domain == "kernel" or event.comm == "kernel":
        return "Kernel"
    comm = event.comm.lower()
    if "outlook" in comm:
        return "Outlook"
    if "iexplore" in comm or "firefox" in comm or "browser" in comm:
        return "Browser"
    return "System"


def rate_series(source, *, bucket_ns: int = SECOND,
                group_fn: Callable[[TimerEvent], str] = default_group,
                kinds: tuple = (EventKind.SET, EventKind.WAIT_UNBLOCK),
                duration_ns: Optional[int] = None) -> RateSeries:
    """Count timer sets per bucket per group (trace or index input).

    WAIT_UNBLOCK events count as one set at their block time, matching
    the paper's instrumentation of the wait fast path.
    """
    # The default kinds are exactly the index's set-like view.  Use an
    # index when handed or already cached; a rate series alone is a
    # single scan either way, so never force a full build for it.
    if isinstance(source, TraceIndex):
        trace, index = source.trace, source
    elif isinstance(source, Trace):
        trace, index = source, TraceIndex.peek(source)
    else:
        from ..tracing.binfmt2 import ColumnarTrace
        if not isinstance(source, ColumnarTrace):
            raise TypeError(f"expected Trace, ColumnarTrace or "
                            f"TraceIndex, got {type(source).__name__}")
        trace = source.as_trace()
        index = TraceIndex.peek(trace)
    total = duration_ns if duration_ns is not None else trace.duration_ns
    n_buckets = max(1, -(-total // bucket_ns))
    series: dict[str, list[int]] = {}
    events = index.set_like \
        if index is not None and tuple(kinds) == SET_LIKE_KINDS \
        else trace.events
    WAIT_UNBLOCK = EventKind.WAIT_UNBLOCK
    # The default grouping is a pure function of (domain, comm), both
    # drawn from small sets — memoise it per pair instead of paying
    # the string scans once per event.
    group_memo: Optional[dict] = {} if group_fn is default_group else None
    for event in events:
        kind = event.kind
        if kind not in kinds:
            continue
        ts = event.ts
        if kind == WAIT_UNBLOCK:
            if event.timeout_ns is None:
                continue
            ts = event.expires_ns    # block timestamp
        bucket = ts // bucket_ns
        if bucket >= n_buckets:
            continue
        if group_memo is None:
            group = group_fn(event)
        else:
            memo_key = (event.domain, event.comm)
            group = group_memo.get(memo_key)
            if group is None:
                group = group_memo[memo_key] = group_fn(event)
        bucket_list = series.get(group)
        if bucket_list is None:
            bucket_list = [0] * n_buckets
            series[group] = bucket_list
        bucket_list[bucket] += 1
    return RateSeries(bucket_ns, n_buckets, series)


def render_rates(rates: RateSeries, *, groups: Optional[list[str]] = None,
                 max_rows: int = 30) -> str:
    """Tabular rendering of the per-second series."""
    if groups is None:
        groups = sorted(rates.series)
    header = "t[s]  " + "".join(f"{g:>10}" for g in groups)
    lines = [header]
    step = max(1, rates.buckets // max_rows)
    for index in range(0, rates.buckets, step):
        cells = "".join(
            f"{rates.series.get(g, [0] * rates.buckets)[index]:>10}"
            for g in groups)
        lines.append(f"{index * rates.bucket_ns // SECOND:>4}  {cells}")
    summary = "mean  " + "".join(f"{rates.mean(g):>10.1f}" for g in groups)
    peak = "peak  " + "".join(f"{rates.peak(g):>10}" for g in groups)
    lines.extend([summary, peak])
    return "\n".join(lines)
