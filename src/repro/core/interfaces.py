"""Use-case-specific timer interfaces (the paper's Section 5.4).

Instead of one generic set/cancel facility, the paper proposes typed
abstractions matching the observed usage patterns:

* :class:`PeriodicTicker` — "every time period of length t, invoke f",
  with drift correction (no accumulated re-arm error) and an optional
  precision class that tolerates local variation while holding the
  average frequency.
* :class:`ScopedTimeout` — the Win32 auto-object idiom as a context
  manager: "if this procedure has not returned in time t, invoke e".
  Nested scopes on the same thread are tracked, and an inner timeout
  that could not fire before an enclosing one is *elided* — the
  optimisation 5.4 describes.
* :class:`Watchdog` — "if this code path has not executed within t,
  invoke f", with a ``kick()`` operation.
* :class:`DelayTimer` — "after time t, invoke e" (the raw facility).
* :class:`DeferredAction` — the Vista lazy-close pattern: run an action
  once activity has been quiet for t.

All of them are implemented over a :class:`~repro.linuxkern.LinuxKernel`
timer base, so their trace signatures can be compared with the raw
interface in the Section 5.4 benchmark.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from ..sim.clock import to_jiffies
from ..linuxkern.kernel import LinuxKernel
from ..linuxkern.timer import KernelTimer


class PeriodicTicker:
    """Fixed-rate callback with drift-free re-arming.

    A naive user-space loop re-arms relative to "now" inside the
    callback, accumulating one quantisation error per period; the
    ticker instead tracks the ideal phase.  ``imprecise=True`` lets the
    next expiry be rounded for batching (round_jiffies), trading local
    jitter for fewer wakeups while maintaining average frequency —
    Section 5.4's "periodic tasks requiring much less precise ticks".
    """

    def __init__(self, kernel: LinuxKernel, period_ns: int,
                 callback: Callable[[], None], *,
                 site: Tuple[str, ...] = ("periodic_ticker",),
                 owner=None, imprecise: bool = False):
        if period_ns <= 0:
            raise ValueError("period must be positive")
        self.kernel = kernel
        self.period_jiffies = to_jiffies(period_ns)
        self.callback = callback
        self.imprecise = imprecise
        self.ticks = 0
        self._next_jiffy = 0
        owner = owner if owner is not None else kernel.tasks.kernel
        self.timer = kernel.init_timer(self._fire, site=site, owner=owner)
        self.running = False

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._next_jiffy = self.kernel.jiffies + self.period_jiffies
        self._arm()

    def stop(self) -> None:
        self.running = False
        if self.timer.pending:
            self.kernel.del_timer(self.timer)

    def _arm(self) -> None:
        expires = self._next_jiffy
        rounded = False
        if self.imprecise:
            new = self.kernel.round_jiffies(expires)
            rounded = new != expires
            expires = new
        self.kernel.mod_timer(self.timer, expires, rounded=rounded)

    def _fire(self, _timer: KernelTimer) -> None:
        self.ticks += 1
        # Advance the ideal phase, never "now": drift cannot accumulate.
        self._next_jiffy += self.period_jiffies
        if self._next_jiffy <= self.kernel.jiffies:
            self._next_jiffy = self.kernel.jiffies + self.period_jiffies
        if self.callback is not None:
            self.callback()
        if self.running:
            self._arm()


class _TimeoutStack:
    """Per-kernel stack of active scoped timeouts (one 'thread')."""

    def __init__(self) -> None:
        self.frames: list["ScopedTimeout"] = []

    def innermost_deadline(self) -> Optional[int]:
        deadlines = [f.deadline_ns for f in self.frames if f.armed]
        return min(deadlines) if deadlines else None


class ScopedTimeout:
    """Context manager: constructor installs, destructor cancels.

    If an enclosing scope's deadline is earlier than this scope's would
    be, the inner timeout can never fire first and is *elided* — no
    kernel timer is armed at all.  ``elided_count`` on the stack lets
    the benchmark count saved timer operations.
    """

    _stacks: dict[int, _TimeoutStack] = {}
    elided_total = 0

    def __init__(self, kernel: LinuxKernel, timeout_ns: int,
                 on_timeout: Callable[[], None], *,
                 site: Tuple[str, ...] = ("scoped_timeout",),
                 owner=None, elide_nested: bool = True):
        self.kernel = kernel
        self.timeout_ns = timeout_ns
        self.on_timeout = on_timeout
        self.site = site
        self.owner = owner if owner is not None else kernel.tasks.kernel
        self.elide_nested = elide_nested
        self.deadline_ns = 0
        self.armed = False
        self.elided = False
        self.fired = False
        self.timer: Optional[KernelTimer] = None

    @property
    def _stack(self) -> _TimeoutStack:
        stack = self._stacks.get(id(self.kernel))
        if stack is None:
            stack = _TimeoutStack()
            self._stacks[id(self.kernel)] = stack
        return stack

    def __enter__(self) -> "ScopedTimeout":
        now = self.kernel.engine.now
        self.deadline_ns = now + self.timeout_ns
        enclosing = self._stack.innermost_deadline()
        if self.elide_nested and enclosing is not None \
                and enclosing <= self.deadline_ns:
            # The outer timeout fires first anyway: skip the kernel timer.
            self.elided = True
            ScopedTimeout.elided_total += 1
        else:
            self.timer = self.kernel.init_timer(self._fire, site=self.site,
                                                owner=self.owner)
            self.kernel.mod_timer_rel(self.timer,
                                      to_jiffies(self.timeout_ns),
                                      timeout_ns=self.timeout_ns)
            self.armed = True
        self._stack.frames.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        frames = self._stack.frames
        if frames and frames[-1] is self:
            frames.pop()
        else:   # exotic unwind order; remove wherever we are
            frames.remove(self)
        if self.timer is not None and self.timer.pending:
            self.kernel.del_timer(self.timer)
        self.armed = False

    def _fire(self, _timer: KernelTimer) -> None:
        self.armed = False
        self.fired = True
        self.on_timeout()


class Watchdog:
    """"If this code path has not executed within t, invoke f"."""

    def __init__(self, kernel: LinuxKernel, timeout_ns: int,
                 on_starved: Callable[[], None], *,
                 site: Tuple[str, ...] = ("watchdog",), owner=None):
        self.kernel = kernel
        self.timeout_jiffies = to_jiffies(timeout_ns)
        self.on_starved = on_starved
        self.starved_count = 0
        owner = owner if owner is not None else kernel.tasks.kernel
        self.timer = kernel.init_timer(self._fire, site=site, owner=owner)
        self.running = False

    def start(self) -> None:
        self.running = True
        self.kick()

    def stop(self) -> None:
        self.running = False
        if self.timer.pending:
            self.kernel.del_timer(self.timer)

    def kick(self) -> None:
        """The guarded code path ran: defer the deadline."""
        if self.running:
            self.kernel.mod_timer_rel(self.timer, self.timeout_jiffies)

    def _fire(self, _timer: KernelTimer) -> None:
        self.starved_count += 1
        self.on_starved()
        if self.running:
            self.kernel.mod_timer_rel(self.timer, self.timeout_jiffies)


class DelayTimer:
    """"After time t, invoke e" — one-shot."""

    def __init__(self, kernel: LinuxKernel, *,
                 site: Tuple[str, ...] = ("delay_timer",), owner=None):
        self.kernel = kernel
        owner = owner if owner is not None else kernel.tasks.kernel
        self.timer = kernel.init_timer(self._fire, site=site, owner=owner)
        self._callback: Optional[Callable[[], None]] = None

    def arm(self, delay_ns: int, callback: Callable[[], None]) -> None:
        self._callback = callback
        self.kernel.mod_timer_rel(self.timer, to_jiffies(delay_ns),
                                  timeout_ns=delay_ns)

    def cancel(self) -> bool:
        if self.timer.pending:
            return self.kernel.del_timer(self.timer)
        return False

    def _fire(self, _timer: KernelTimer) -> None:
        if self._callback is not None:
            self._callback()


class DeferredAction:
    """Run once activity has been quiet for ``quiet_ns`` (Vista's lazy
    registry flush, as a first-class abstraction)."""

    def __init__(self, kernel: LinuxKernel, quiet_ns: int,
                 action: Callable[[], None], *,
                 site: Tuple[str, ...] = ("deferred_action",), owner=None):
        self.kernel = kernel
        self.quiet_jiffies = to_jiffies(quiet_ns)
        self.action = action
        self.fired_count = 0
        owner = owner if owner is not None else kernel.tasks.kernel
        self.timer = kernel.init_timer(self._fire, site=site, owner=owner)

    def touch(self) -> None:
        """Activity happened: (re)defer the action."""
        self.kernel.mod_timer_rel(self.timer, self.quiet_jiffies)

    def flush_now(self) -> None:
        """Force the action immediately and disarm."""
        if self.timer.pending:
            self.kernel.del_timer(self.timer)
        self._run()

    def _fire(self, _timer: KernelTimer) -> None:
        self._run()

    def _run(self) -> None:
        self.fired_count += 1
        self.action()
