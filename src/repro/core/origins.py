"""Timeout provenance: attributing values to subsystems (Table 3).

"In Linux we see a high correlation between timeout values and the
static addresses of timer structures.  This allows us to create
Table 3, which shows a detailed list of the origins of these frequent
timeouts within the kernel" (Section 4.2).  Here the recorded call
stacks play the role of the static addresses: a rule table maps stack
frames (and, for syscall-level timers, the process name) to the
human-readable origins the paper lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..sim.clock import to_seconds
from ..tracing.events import EventKind
from .classify import TimerClass, classify_trace
from .episodes import nominal_value_ns
from .index import as_index

#: (needle, where, origin label).  ``where`` is "site" to search stack
#: frames or "comm" to match the process name.
_ORIGIN_RULES: list[tuple[str, str, str]] = [
    ("blk_plug_device", "site", "Block I/O scheduler"),
    ("ide_set_handler", "site", "IDE Command timeout"),
    ("journal_commit_transaction", "site", "Filesystem journal commit"),
    ("tcp_send_delayed_ack", "site", "Sockets"),
    ("inet_csk_reset_xmit_timer", "site", "TCP retransmission timeout"),
    ("inet_csk_reset_keepalive_timer", "site", "TCP keepalive"),
    ("reqsk_queue_hash_req", "site", "Sockets"),
    ("inet_twsk_schedule", "site", "Sockets"),
    ("usb_hcd_poll_rh_status", "site", "USB host controller status poll"),
    ("clocksource_watchdog", "site",
     "High-Res timers clocksource watchdog"),
    ("delayed_work_timer_fn", "site", "Kernel workqueue timer"),
    ("run_workqueue", "site", "Kernel workqueue"),
    ("neigh_periodic_timer", "site", "ARP"),
    ("neigh_periodic_work", "site", "ARP"),
    ("neigh_add_timer", "site", "ARP"),
    ("rt_secret_rebuild", "site", "ARP cache flush"),
    ("e1000_watchdog", "site", "e1000 Watchdog Timer"),
    ("qdisc_watchdog", "site", "Packet scheduler"),
    ("wb_timer_fn", "site", "Dirty memory page write-back"),
    ("poke_blanked_console", "site", "Console blank timeout"),
    ("pdflush", "site", "Dirty memory page write-back"),
    ("firefox-bin", "comm", "Firefox polling file descriptors"),
    ("skype", "comm", "Skype"),
    ("apache2", "comm", "Apache"),
    ("init", "comm", "init polling children"),
    ("Xorg", "comm", "X server select loop"),
    ("icewm", "comm", "icewm select loop"),
]


def attribute_origin(site: Tuple[str, ...], comm: str) -> str:
    """Best-effort origin label for one timer."""
    for needle, where, label in _ORIGIN_RULES:
        if where == "site":
            if any(needle in frame for frame in site):
                return label
        elif comm == needle:
            return label
    if site:
        return site[0]
    return comm


@dataclass
class OriginRow:
    """One row of Table 3."""

    timeout_ns: int
    origin: str
    timer_class: TimerClass
    set_count: int

    @property
    def timeout_seconds(self) -> float:
        return to_seconds(self.timeout_ns)


def origin_table(source, *, min_sets: int = 3,
                 logical: Optional[bool] = None) -> list[OriginRow]:
    """Regenerate Table 3 from a trace or index.

    Groups timers by (dominant value, origin); a row's class is the
    majority classifier verdict among its timers, mirroring how the
    paper combined trace data with code inspection.
    """
    rows: dict[tuple[int, str], dict] = {}
    for verdict in classify_trace(as_index(source), logical=logical):
        if verdict.dominant_value_ns is None \
                or verdict.dominant_value_ns <= 0:
            continue
        origin = attribute_origin(verdict.history.site,
                                  verdict.history.comm)
        key = (verdict.dominant_value_ns, origin)
        entry = rows.setdefault(key, {"sets": 0, "classes": {}})
        entry["sets"] += verdict.set_count
        entry["classes"][verdict.timer_class] = \
            entry["classes"].get(verdict.timer_class, 0) + 1
    out = []
    for (value, origin), entry in rows.items():
        if entry["sets"] < min_sets:
            continue
        majority = max(entry["classes"].items(), key=lambda kv: kv[1])[0]
        out.append(OriginRow(value, origin, majority, entry["sets"]))
    out.sort(key=lambda r: (r.timeout_ns, r.origin))
    return out


def render_origin_table(rows: list[OriginRow]) -> str:
    lines = [f"{'Timeout [s]':>12}  {'Origin':<42} {'Class':<10} {'Sets':>7}"]
    for row in rows:
        lines.append(f"{row.timeout_seconds:>12.4g}  {row.origin:<42} "
                     f"{row.timer_class.value:<10} {row.set_count:>7}")
    return "\n".join(lines)


def value_origins(source, value_ns: int,
                  tolerance_ns: int = 2_000_000) -> dict[str, int]:
    """Which origins set (approximately) this value, with counts —
    supports spot checks like 'who sets 5 s timers?'."""
    index = as_index(source)
    counts: dict[str, int] = {}
    for event in index.events_of_kind(EventKind.SET):
        value = nominal_value_ns(event, index.os_name)
        if abs(value - value_ns) <= tolerance_ns:
            origin = attribute_origin(event.site, event.comm)
            counts[origin] = counts.get(origin, 0) + 1
    return counts
