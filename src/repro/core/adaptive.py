"""Adaptive timeouts (the paper's Section 5.1).

"Rather than specifying a willingness to wait for an (arbitrary) 30
seconds, the programmer should request to time out once the system is
99% confident that a message will never be arriving."  This module
provides the machinery for that:

* :class:`JacobsonEstimator` — the TCP SRTT/RTTVAR control loop the
  paper holds up as the prominent existing adaptive timeout.
* :class:`ExponentialBackoff` — the companion loss response.
* :class:`P2Quantile` — online quantile estimation (Jain & Chlamtac's
  P² algorithm) so a timeout can be placed at a chosen confidence level
  of the learned wait-time distribution without storing samples.
* :class:`LevelShiftDetector` — the paper's caveat: "sudden and
  long-lived level shifts in latency will cause the whole learned
  distribution to shift" (LAN → WAN).  Detects such shifts and lets
  the model re-learn.
* :class:`AdaptiveTimeout` — the assembled policy, plus
  :func:`simulate_wait_policy`, the harness behind the Section 5.1
  benchmark comparing fixed and adaptive timeouts on failure-detection
  latency and false-timeout rate.

Not to be confused with :mod:`repro.core.adaptivity`, which *detects*
whether the timers in a recorded trace behaved adaptively (the
Section 4.2 classification).  Rule of thumb: ``adaptivity`` asks
"were they adaptive?", ``adaptive`` (this module) answers "here is
how to be adaptive".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

__all__ = [
    "AdaptiveTimeout", "ExponentialBackoff", "JacobsonEstimator",
    "LevelShiftDetector", "P2Quantile", "WaitOutcome",
    "simulate_wait_policy",
]


class JacobsonEstimator:
    """TCP's smoothed RTT estimator (RFC 6298 coefficients)."""

    #: Timeout handed out before the first sample (RFC 6298's initial
    #: RTO is 1 s); clamped into [min_timeout, max_timeout].
    NO_SAMPLE_TIMEOUT = 1.0

    def __init__(self, *, k: float = 4.0, min_timeout: float = 0.0,
                 max_timeout: float = math.inf,
                 no_sample_timeout: Optional[float] = None):
        self.k = k
        self.min_timeout = min_timeout
        self.max_timeout = max_timeout
        self.no_sample_timeout = (self.NO_SAMPLE_TIMEOUT
                                  if no_sample_timeout is None
                                  else no_sample_timeout)
        self.srtt: Optional[float] = None
        self.rttvar: float = 0.0

    def observe(self, sample: float) -> None:
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2
            return
        err = sample - self.srtt
        self.srtt += err / 8
        self.rttvar += (abs(err) - self.rttvar) / 4

    def timeout(self) -> float:
        """srtt + k*rttvar, clamped.

        Before any sample arrives this is the explicit
        ``no_sample_timeout`` (clamped like every other value) — not
        ``min_timeout or 1.0``, which silently read an explicitly
        configured ``min_timeout=0.0`` as "unset" and not
        ``max_timeout``, which turned a cap into a cold-start value.
        """
        if self.srtt is None:
            raw = self.no_sample_timeout
        else:
            raw = self.srtt + self.k * self.rttvar
        return min(max(raw, self.min_timeout), self.max_timeout)


class ExponentialBackoff:
    """Doubling backoff with a cap, as TCP applies on retransmission."""

    def __init__(self, base: float, *, factor: float = 2.0,
                 maximum: float = math.inf, max_retries: int = 7):
        if base <= 0:
            raise ValueError("backoff base must be positive")
        self.base = base
        self.factor = factor
        self.maximum = maximum
        self.max_retries = max_retries
        self.attempt = 0

    def next_timeout(self) -> float:
        """Timeout for the current attempt, then advance."""
        value = min(self.base * self.factor ** self.attempt, self.maximum)
        self.attempt += 1
        return value

    @property
    def exhausted(self) -> bool:
        return self.attempt >= self.max_retries

    def reset(self) -> None:
        self.attempt = 0

    def total_wait(self) -> float:
        """Worst-case cumulative wait over all retries — how 'recovering
        from a typing error can take over a minute' (Section 2.2.2)."""
        return sum(min(self.base * self.factor ** i, self.maximum)
                   for i in range(self.max_retries))


class P2Quantile:
    """Jain & Chlamtac's P² online quantile estimator.

    Tracks one quantile with five markers in O(1) space — suitable for
    a kernel learning wait-time distributions per timer object.
    """

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError("p must be in (0, 1)")
        self.p = p
        self._initial: list[float] = []
        self.n = 0
        self._q: list[float] = []       # marker heights
        self._pos: list[float] = []     # marker positions
        self._desired: list[float] = []
        self._inc: list[float] = []

    def observe(self, x: float) -> None:
        self.n += 1
        if len(self._initial) < 5:
            self._initial.append(x)
            if len(self._initial) == 5:
                self._initial.sort()
                self._q = list(self._initial)
                self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
                p = self.p
                self._desired = [1.0, 1 + 2 * p, 1 + 4 * p, 3 + 2 * p, 5.0]
                self._inc = [0.0, p / 2, p, (1 + p) / 2, 1.0]
            return
        q, pos = self._q, self._pos
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and not (q[k] <= x < q[k + 1]):
                k += 1
        for i in range(k + 1, 5):
            pos[i] += 1
        for i in range(5):
            self._desired[i] += self._inc[i]
        # Adjust the three middle markers with parabolic interpolation.
        for i in range(1, 4):
            d = self._desired[i] - pos[i]
            if (d >= 1 and pos[i + 1] - pos[i] > 1) or \
                    (d <= -1 and pos[i - 1] - pos[i] < -1):
                step = 1.0 if d >= 1 else -1.0
                candidate = self._parabolic(i, step)
                if q[i - 1] < candidate < q[i + 1]:
                    q[i] = candidate
                else:
                    q[i] = self._linear(i, step)
                pos[i] += step

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self._q, self._pos
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))

    def _linear(self, i: int, d: float) -> float:
        q, n = self._q, self._pos
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    def value(self) -> Optional[float]:
        """Current quantile estimate (None until 5 samples seen)."""
        if len(self._initial) < 5:
            if not self._initial:
                return None
            ordered = sorted(self._initial)
            index = min(len(ordered) - 1,
                        int(self.p * len(ordered)))
            return ordered[index]
        return self._q[2]


class LevelShiftDetector:
    """Detects a sustained shift of the latency level.

    Keeps an exponentially-weighted reference level; if ``window``
    consecutive samples land more than ``factor`` times above (or
    below 1/factor of) the reference, a shift is declared.
    """

    def __init__(self, *, factor: float = 4.0, window: int = 8,
                 alpha: float = 0.05):
        self.factor = factor
        self.window = window
        self.alpha = alpha
        self.reference: Optional[float] = None
        self._streak = 0
        self.shifts = 0

    def observe(self, sample: float) -> bool:
        """Feed one sample; returns True if a level shift is declared."""
        if self.reference is None:
            self.reference = sample
            return False
        high = sample > self.reference * self.factor
        low = sample < self.reference / self.factor
        if high or low:
            self._streak += 1
        else:
            self._streak = 0
            self.reference += self.alpha * (sample - self.reference)
        if self._streak >= self.window:
            self.reference = sample
            self._streak = 0
            self.shifts += 1
            return True
        return False


class AdaptiveTimeout:
    """Confidence-interval timeout with level-shift recovery.

    The timeout sits at the ``confidence`` quantile of the learned
    wait-time distribution, scaled by ``safety``; on a detected level
    shift the distribution is relearned from scratch (seeded with the
    shifted sample) instead of slowly dragging the old model along.
    """

    def __init__(self, *, confidence: float = 0.99, safety: float = 2.0,
                 initial_timeout: float = 30.0,
                 min_timeout: float = 0.0):
        self.confidence = confidence
        self.safety = safety
        self.initial_timeout = initial_timeout
        self.min_timeout = min_timeout
        self._quantile = P2Quantile(confidence)
        self._shift = LevelShiftDetector()
        self.relearned = 0

    def observe(self, wait_time: float) -> None:
        """Record a completed wait (the event did arrive)."""
        if self._shift.observe(wait_time):
            self._quantile = P2Quantile(self.confidence)
            self.relearned += 1
        self._quantile.observe(wait_time)

    def timeout(self) -> float:
        """Current timeout value."""
        estimate = self._quantile.value()
        if estimate is None or self._quantile.n < 5:
            return self.initial_timeout
        return max(estimate * self.safety, self.min_timeout)


# ---------------------------------------------------------------------------
# Policy simulation harness (Section 5.1 benchmark)
# ---------------------------------------------------------------------------

@dataclass
class WaitOutcome:
    """Result of simulating one policy over a wait workload."""

    policy: str
    waits: int = 0
    failures: int = 0
    false_timeouts: int = 0      #: timed out although a reply was coming
    detection_total: float = 0.0  #: summed failure detection latency
    detection_max: float = 0.0
    #: Timer expirations: the timeout actually fired (a genuine
    #: failure detected, or a spurious wakeup on a late reply).  A
    #: cancelled timer (reply beat the timeout) costs no wakeup.
    wakeups: int = 0
    timeline: list[float] = field(default_factory=list)
    #: Per-failure detection latency, in stream order (the tail — p99,
    #: max — of failure detection, not just its mean).
    detections: list[float] = field(default_factory=list)

    @property
    def false_timeout_rate(self) -> float:
        successes = self.waits - self.failures
        if successes == 0:
            return 0.0
        return self.false_timeouts / successes

    @property
    def mean_detection(self) -> float:
        if self.failures == 0:
            return 0.0
        return self.detection_total / self.failures

    def detection_quantile(self, q: float) -> float:
        """Nearest-rank quantile of the detection-latency tail."""
        if not self.detections:
            return 0.0
        ordered = sorted(self.detections)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]


def simulate_wait_policy(latencies: Sequence[Optional[float]], *,
                         policy: str, fixed_timeout: float = 30.0,
                         adaptive: Optional[AdaptiveTimeout] = None,
                         warmup: int = 0) -> WaitOutcome:
    """Run a wait workload through a timeout policy.

    ``latencies`` holds the true reply latency per wait, or ``None``
    for a genuine failure (no reply ever).  ``policy`` is "fixed" or
    "adaptive"; for "adaptive", ``adaptive`` is any estimator with
    ``observe(sample)``/``timeout()`` (an :class:`AdaptiveTimeout`, a
    bare :class:`JacobsonEstimator`, ...) and defaults to a fresh
    :class:`AdaptiveTimeout`.  A *false timeout* is declared when the
    policy timed out although the reply would have arrived.

    The first ``warmup`` waits train the estimator but are excluded
    from the outcome's counters and tails (the timeline still records
    them), so steady-state comparisons are not dominated by the
    cold-start ``initial_timeout`` — both fixed and adaptive policies
    skip the same prefix, keeping the comparison fair.
    """
    if policy == "adaptive" and adaptive is None:
        adaptive = AdaptiveTimeout(initial_timeout=fixed_timeout)
    outcome = WaitOutcome(policy=policy)
    for i, latency in enumerate(latencies):
        timeout = fixed_timeout if policy == "fixed" else adaptive.timeout()
        counted = i >= warmup
        outcome.timeline.append(timeout)
        if counted:
            outcome.waits += 1
        if latency is None:
            if counted:
                outcome.failures += 1
                outcome.wakeups += 1
                outcome.detection_total += timeout
                outcome.detection_max = max(outcome.detection_max,
                                            timeout)
                outcome.detections.append(timeout)
            continue
        if latency > timeout and counted:
            outcome.false_timeouts += 1
            outcome.wakeups += 1
            # The waiter gave up; the system keeps monitoring and the
            # model still learns the true arrival (Section 5.1 requires
            # continued monitoring after timeout).
        if policy == "adaptive":
            adaptive.observe(latency)
    return outcome
