"""Expressive time specifications and expiry batching (Section 5.3).

"The programmer probably meant: *please wake up this thread at some
convenient time in the next 10 minutes*" — so a timer request should
carry how much precision it actually needs.  This module provides:

* :class:`Window` — "any time between earliest and latest";
* :class:`Exact` — the traditional precise deadline (a zero-width
  window);
* :class:`AverageRate` — "every 5 minutes, on average over an hour";
* :class:`FlexibleTimerQueue` — a queue that schedules such requests
  with the minimum number of distinct wakeups, using the classical
  greedy stabbing algorithm for interval point-cover.  This is the
  generalisation of Linux's ``round_jiffies``/deferrable-timer hacks
  the paper calls for, and the engine of the Section 5.3 power
  benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..sim.engine import Engine, Event


@dataclass(frozen=True)
class Window:
    """Fire anywhere inside [earliest, latest]."""

    earliest: int
    latest: int

    def __post_init__(self):
        if self.latest < self.earliest:
            raise ValueError("window ends before it starts")

    @property
    def slack_ns(self) -> int:
        return self.latest - self.earliest


def Exact(at: int) -> Window:
    """A precise deadline is a zero-slack window."""
    return Window(at, at)


def after(engine_now: int, delay_ns: int, *,
          slack_ns: int = 0) -> Window:
    """"Any time after ``delay`` (within ``slack``)" — the delay-timer
    form of Section 5.3's examples."""
    start = engine_now + delay_ns
    return Window(start, start + slack_ns)


@dataclass
class AverageRate:
    """"Every ``period``, on average over ``horizon``."

    The scheduler may place individual firings anywhere, as long as the
    average rate over the horizon holds; each firing is materialised as
    a window spanning half a period around the ideal instant.
    """

    period_ns: int
    horizon_ns: int

    def windows(self, start_ns: int) -> list[Window]:
        count = max(1, self.horizon_ns // self.period_ns)
        out = []
        for i in range(count):
            center = start_ns + (i + 1) * self.period_ns
            half = self.period_ns // 2
            out.append(Window(max(start_ns, center - half), center + half))
        return out


@dataclass
class FlexibleTimer:
    """One pending flexible request."""

    window: Window
    callback: Callable[[], None]
    fired_at: Optional[int] = None


def stab_windows(windows: list[Window]) -> list[int]:
    """Minimum set of instants such that every window contains one.

    Greedy: sort by ``latest``; place a point at the latest edge of the
    first uncovered window.  Optimal for interval stabbing.
    """
    points: list[int] = []
    for window in sorted(windows, key=lambda w: w.latest):
        if points and points[-1] >= window.earliest:
            continue
        points.append(window.latest)
    return points


class FlexibleTimerQueue:
    """Batches flexible timers onto shared wakeups.

    Requests whose windows overlap are coalesced onto a single engine
    event placed at the stabbing point.  With ``batching=False`` every
    request gets its own wakeup at its latest instant — the behaviour
    of today's precise timer interfaces — which is the baseline the
    power benchmark compares against.
    """

    def __init__(self, engine: Engine, *, batching: bool = True):
        self.engine = engine
        self.batching = batching
        self.wakeups = 0
        self.fired = 0
        self._pending: list[FlexibleTimer] = []
        self._scheduled: Optional[Event] = None
        self._scheduled_for: Optional[int] = None

    def submit(self, window: Window, callback: Callable[[], None]
               ) -> FlexibleTimer:
        if window.latest < self.engine.now:
            raise ValueError("window entirely in the past")
        timer = FlexibleTimer(window, callback)
        self._pending.append(timer)
        self._reschedule()
        return timer

    def cancel(self, timer: FlexibleTimer) -> bool:
        try:
            self._pending.remove(timer)
        except ValueError:
            return False
        self._reschedule()
        return True

    # -- internal ------------------------------------------------------------

    def _next_point(self) -> Optional[int]:
        if not self._pending:
            return None
        now = self.engine.now
        if not self.batching:
            return max(now, min(t.window.latest for t in self._pending))
        windows = [Window(max(t.window.earliest, now), t.window.latest)
                   for t in self._pending]
        return stab_windows(windows)[0]

    def _reschedule(self) -> None:
        point = self._next_point()
        if point == self._scheduled_for:
            return
        if self._scheduled is not None:
            self._scheduled.cancel()
            self._scheduled = None
        self._scheduled_for = point
        if point is not None:
            self._scheduled = self.engine.call_at(point, self._wakeup)

    def _wakeup(self) -> None:
        self.wakeups += 1
        self._scheduled = None
        self._scheduled_for = None
        now = self.engine.now
        if self.batching:
            due = [t for t in self._pending if t.window.earliest <= now]
        else:
            due = [t for t in self._pending if t.window.latest <= now]
        self._pending = [t for t in self._pending if t not in due]
        for timer in due:
            timer.fired_at = now
            self.fired += 1
            timer.callback()
        self._reschedule()
