"""Timer-free dispatching via a scheduler interface (Section 5.5).

The paper observes that "setting a timer implicitly requests that a
piece of code run at a particular time in the future" — which is the
CPU scheduler's job — and asks whether a scheduler-activations-style
dispatcher could subsume the application timer interface entirely.

:class:`ActivationScheduler` is that dispatcher: applications register
*temporal requirements* (periodic with a jitter tolerance, or one-shot
deadlines) and the scheduler upcalls the right piece of code at the
right time, directly from its dispatch loop, with no per-wakeup
syscalls and no generic timer multiplexing.

:func:`run_media_comparison` is the Section 5.5 experiment: a
soft-realtime media loop (a Skype-like 20 ms audio frame task — the
paper's conjecture for the flood of 1–3 jiffy timers in Figure 2)
implemented (a) with select-loop timers over the Linux model and
(b) as a dispatcher requirement, comparing deadline misses and kernel
crossings.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Optional

from ..sim.clock import MILLISECOND, SECOND
from ..sim.engine import Engine
from ..linuxkern.kernel import LinuxKernel
from ..linuxkern.syscalls import SyscallInterface, WakeReason


@dataclass
class Requirement:
    """One registered temporal requirement."""

    callback: Callable[[int], None]     #: receives the ideal deadline
    period_ns: Optional[int]            #: None for one-shot
    tolerance_ns: int
    next_deadline: int
    active: bool = True
    dispatches: int = 0
    misses: int = 0
    max_lateness_ns: int = 0


class ActivationScheduler:
    """Dispatches registered code at registered times.

    The scheduler owns a single programmable interrupt (the engine) and
    runs application code by direct upcall.  Tolerances are honoured by
    coalescing: any requirement whose window includes the dispatch
    instant runs, so co-tolerant requirements share wakeups.
    """

    def __init__(self, engine: Engine):
        self.engine = engine
        self._queue: list[tuple[int, int, Requirement]] = []
        self._seq = 0
        self.wakeups = 0
        self.upcalls = 0

    def register_periodic(self, period_ns: int,
                          callback: Callable[[int], None], *,
                          tolerance_ns: int = 0) -> Requirement:
        req = Requirement(callback, period_ns, tolerance_ns,
                          self.engine.now + period_ns)
        self._push(req)
        return req

    def register_deadline(self, deadline_ns: int,
                          callback: Callable[[int], None], *,
                          tolerance_ns: int = 0) -> Requirement:
        req = Requirement(callback, None, tolerance_ns, deadline_ns)
        self._push(req)
        return req

    def cancel(self, req: Requirement) -> None:
        req.active = False

    def _push(self, req: Requirement) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (req.next_deadline, self._seq, req))
        self.engine.call_at(req.next_deadline, self._dispatch)

    def _dispatch(self) -> None:
        now = self.engine.now
        queue = self._queue
        ran = False
        while queue:
            deadline, seq, req = queue[0]
            if not req.active:
                heapq.heappop(queue)
                continue
            if deadline - req.tolerance_ns > now:
                break
            heapq.heappop(queue)
            if deadline != req.next_deadline:
                continue            # stale entry after re-registration
            ran = True
            self.upcalls += 1
            req.dispatches += 1
            lateness = max(0, now - deadline)
            req.max_lateness_ns = max(req.max_lateness_ns, lateness)
            if lateness > req.tolerance_ns:
                req.misses += 1
            req.callback(deadline)
            if req.period_ns is not None and req.active:
                req.next_deadline = deadline + req.period_ns
                self._push(req)
        if ran:
            self.wakeups += 1


# ---------------------------------------------------------------------------
# The Section 5.5 comparison experiment
# ---------------------------------------------------------------------------

@dataclass
class MediaLoopResult:
    """Metrics for one implementation of the 20 ms media loop."""

    implementation: str
    frames: int = 0
    deadline_misses: int = 0
    kernel_crossings: int = 0
    timer_accesses: int = 0
    max_lateness_ns: int = 0

    @property
    def miss_rate(self) -> float:
        return self.deadline_misses / self.frames if self.frames else 0.0


def run_media_loop_timers(duration_ns: int, *, frame_ns: int = 20_000_000,
                          tolerance_ns: int = 2 * MILLISECOND, seed: int = 0
                          ) -> MediaLoopResult:
    """Media loop over the classic interface: sleep via select."""
    kernel = LinuxKernel(seed=seed)
    syscalls = SyscallInterface(kernel)
    rng = kernel.rng.stream("media.processing")
    task = kernel.tasks.spawn("media-app")
    result = MediaLoopResult("select-loop timers")
    state = {"deadline": frame_ns}

    def rearm() -> None:
        next_wait = max(0, state["deadline"] - kernel.engine.now)
        if kernel.engine.now < duration_ns:
            result.kernel_crossings += 1
            syscalls.select(task, next_wait, frame_done)

    def frame_done(reason: WakeReason, _remaining: int) -> None:
        now = kernel.engine.now
        result.frames += 1
        lateness = max(0, now - state["deadline"])
        result.max_lateness_ns = max(result.max_lateness_ns, lateness)
        if lateness > tolerance_ns:
            result.deadline_misses += 1
        state["deadline"] += frame_ns
        # Frame processing takes real time before the loop can sleep
        # again; the subsequent jiffy-quantised wakeup is what makes
        # soft-realtime-over-select miss deadlines.
        processing = int(rng.lognormal_latency(1_500_000, sigma=0.6))
        kernel.engine.call_after(processing, rearm)

    result.kernel_crossings += 1
    syscalls.select(task, frame_ns, frame_done)
    kernel.run_for(duration_ns)
    result.timer_accesses = len(kernel.sink)
    return result


def run_media_loop_dispatcher(duration_ns: int, *,
                              frame_ns: int = 20_000_000,
                              tolerance_ns: int = 2 * MILLISECOND
                              ) -> MediaLoopResult:
    """Media loop as a scheduler requirement: no timer interface at all."""
    engine = Engine()
    scheduler = ActivationScheduler(engine)
    result = MediaLoopResult("activation dispatcher")

    def frame(_deadline: int) -> None:
        result.frames += 1

    req = scheduler.register_periodic(frame_ns, frame,
                                      tolerance_ns=tolerance_ns)
    result.kernel_crossings = 1          # the single registration call
    engine.run_until(duration_ns)
    result.deadline_misses = req.misses
    result.max_lateness_ns = req.max_lateness_ns
    result.timer_accesses = 0
    return result


def run_media_comparison(duration_ns: int = 10 * SECOND
                         ) -> dict[str, MediaLoopResult]:
    """Both implementations side by side (the §5.5 benchmark's core)."""
    return {
        "timers": run_media_loop_timers(duration_ns),
        "dispatcher": run_media_loop_dispatcher(duration_ns),
    }
