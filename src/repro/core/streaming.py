"""Streaming incremental analyses — the online half of ``analyze()``.

The batch analyses in :mod:`repro.core` read a fully materialised event
list (the paper's 512 MiB relayfs dump read after the fact).  The
reducers here consume :class:`~repro.tracing.events.TimerEvent` records
one at a time through the sink protocol (anything with ``emit``), so
they can be attached *live* to a running machine
(:meth:`LinuxKernel.attach_sink` / :meth:`VistaKernel.attach_sink`) and
aggregate a trace of any length in memory proportional to the number of
*active* timers, not the number of events:

* :class:`StreamingSummary` — Tables 1/2 (including exact maximum
  concurrency, via a watermarked interval sweep),
* :class:`StreamingClassifier` — Figure 2 usage patterns and the
  Table 3 origin rows, from O(1)-per-timer accumulators fed by the
  shared :class:`~repro.core.episodes.EpisodeBuilder` state machine,
* :class:`StreamingValues` — the Figure 3–7 value histograms,
* :class:`StreamingDurations` — the Figure 8–11 scatter, plus exact
  quantiles of the expiry/cancel fraction (free: the fractions are
  already in the bounded cell aggregation),
* :class:`StreamingRates` — the Figure 1 set-rate series,
* :class:`StreamingSuite` — all of the above behind one sink.

Exactness: every reducer is designed to reproduce its batch counterpart
*byte-identically* on the same event stream (the equivalence tests pin
this).  The one subtlety is concurrency: the Vista thread-unblock
record arrives at unblock time but describes an interval that *started*
at block time, so the sweep buffers endpoint deltas inside a sliding
watermark window (``wait_horizon_ns``, generously above the longest
wait timeout any workload uses) and counts any event that still lands
behind the watermark in :attr:`StreamingSummary.late_waits` — zero in
every workload, asserted by the tests, so the streamed maximum equals
the batch maximum.
"""

from __future__ import annotations

import heapq
import sys
from itertools import islice
from typing import Callable, Iterable, Optional, Tuple

from ..sim.clock import JIFFY, SECOND
from ..tracing.events import (FLAG_WAIT_SATISFIED, EventKind, TimerEvent)
from .classify import PatternBreakdown, TimerClass, TimerStats
from .durations import CUTOFF_PCT, DurationScatter, ScatterPoint
from .episodes import (DEFAULT_TOLERANCE_NS, Episode, EpisodeBuilder,
                       Outcome, quantizes_to_jiffies)
from .origins import OriginRow, attribute_origin
from .rates import RateSeries, default_group
from .summary import TraceSummary
from .values import ValueHistogram

#: Sliding-window slack for retroactive WAIT_UNBLOCK interval starts.
#: A wait unblocks at most its timeout after it blocks; the longest
#: timed wait any modelled workload issues is 60 s, so 120 s of slack
#: keeps the streamed concurrency sweep exact (``late_waits == 0``)
#: while bounding the delta buffer to a two-minute window.
DEFAULT_WAIT_HORIZON_NS = 120 * SECOND


class StreamingSummary:
    """Online Table 1/2 metrics (see :func:`repro.core.summarize`).

    Counters are trivially exact; distinct-timer and concurrency
    tracking keep O(timers) and O(active + horizon window) state.
    """

    def __init__(self, os_name: str, workload: str, *,
                 wait_horizon_ns: Optional[int] = None):
        self.os_name = os_name
        self.workload = workload
        from ..kern.registry import backend_traits
        self._vista = backend_traits(os_name).etw_style
        if wait_horizon_ns is None:
            wait_horizon_ns = DEFAULT_WAIT_HORIZON_NS if self._vista else 0
        self.wait_horizon_ns = wait_horizon_ns
        self.n_events = 0
        #: Interval endpoints that arrived behind the committed
        #: watermark (would make the streamed concurrency inexact).
        self.late_waits = 0
        self.result: Optional[TraceSummary] = None
        self._timer_ids: set[int] = set()
        self._pending: set[int] = set()
        self._deltas: dict[int, list] = {}   # ts -> [closes, opens]
        self._heap: list[int] = []
        self._level = 0
        self._concurrency = 0
        self._committed_ts = -1
        self._user = self._kernel = 0
        self._accesses = 0
        self._set = self._expired = self._canceled = 0

    # -- the interval sweep, incrementally ------------------------------

    def _delta(self, ts: int, idx: int) -> None:
        """Buffer one endpoint (idx 0 = close, 1 = open) at ``ts``."""
        if ts <= self._committed_ts:
            self.late_waits += 1
            ts = self._committed_ts + 1
        cell = self._deltas.get(ts)
        if cell is None:
            cell = self._deltas[ts] = [0, 0]
            heapq.heappush(self._heap, ts)
        cell[idx] += 1

    def _commit(self, watermark: int) -> None:
        """Apply every buffered instant strictly below ``watermark``.

        Closes apply before opens at the same instant — the batch
        sweep's sort places ``(ts, -1)`` before ``(ts, +1)`` — so a
        timer re-armed at time t counts once, not twice.
        """
        heap, deltas = self._heap, self._deltas
        while heap and heap[0] < watermark:
            ts = heapq.heappop(heap)
            closes, opens = deltas.pop(ts)
            self._level += opens - closes
            if self._level > self._concurrency:
                self._concurrency = self._level
            self._committed_ts = ts

    # -- sink protocol ---------------------------------------------------

    def emit(self, event: TimerEvent) -> None:
        self.n_events += 1
        kind = event.kind
        ts = event.ts
        timer_id = event.timer_id
        if event.host:
            # Cluster traces: ids are per-host counters, so the same
            # raw id on two hosts is two distinct timers.
            timer_id = (event.host, timer_id)
        self._timer_ids.add(timer_id)

        if not (self._vista and (kind == EventKind.EXPIRE
                                 or kind == EventKind.INIT)):
            self._accesses += 1
            if event.domain == "user":
                self._user += 1
            else:
                self._kernel += 1

        pending = self._pending
        if kind == EventKind.SET:
            self._set += 1
            if timer_id in pending:
                self._delta(ts, 0)
            else:
                pending.add(timer_id)
            self._delta(ts, 1)
        elif kind == EventKind.EXPIRE:
            self._expired += 1
            if timer_id in pending:
                pending.discard(timer_id)
                self._delta(ts, 0)
        elif kind == EventKind.CANCEL:
            if event.expires_ns is not None:
                self._canceled += 1
            if timer_id in pending:
                pending.discard(timer_id)
                self._delta(ts, 0)
        elif kind == EventKind.WAIT_UNBLOCK:
            if event.timeout_ns is not None:
                self._set += 1
                if event.flags & FLAG_WAIT_SATISFIED:
                    self._canceled += 1
                else:
                    self._expired += 1
                self._delta(event.expires_ns, 1)   # block timestamp
                self._delta(ts, 0)
        self._commit(ts - self.wait_horizon_ns)

    def emit_batch(self, events: Iterable[TimerEvent]) -> None:
        """Per-event :meth:`emit` with the kind dispatch and the
        commit sweep inlined — state-identical to the sequential path
        (the sweep applies the same instants at the same watermarks).
        """
        set_kind = EventKind.SET
        expire_kind = EventKind.EXPIRE
        cancel_kind = EventKind.CANCEL
        wait_kind = EventKind.WAIT_UNBLOCK
        init_kind = EventKind.INIT
        satisfied = FLAG_WAIT_SATISFIED
        vista = self._vista
        horizon = self.wait_horizon_ns
        add_id = self._timer_ids.add
        pending = self._pending
        deltas = self._deltas
        heap = self._heap
        heappop = heapq.heappop
        delta = self._delta
        n = accesses = user = kernel = 0
        sets = expired = canceled = 0
        # One C-level unpack of the event tuple per iteration replaces
        # the per-field attribute lookups this loop used to pay.
        for (kind, ts, timer_id, _pid, _comm, domain, _site,
             timeout_ns, expires_ns, flags, host, _cpu) in events:
            n += 1
            if host:
                # Cluster traces: ids are per-host counters, so the
                # same raw id on two hosts is two distinct timers.
                timer_id = (host, timer_id)
            add_id(timer_id)

            if not (vista and (kind is expire_kind or kind is init_kind)):
                accesses += 1
                if domain == "user":
                    user += 1
                else:
                    kernel += 1

            if kind is set_kind:
                sets += 1
                if timer_id in pending:
                    delta(ts, 0)
                else:
                    pending.add(timer_id)
                delta(ts, 1)
            elif kind is expire_kind:
                expired += 1
                if timer_id in pending:
                    pending.discard(timer_id)
                    delta(ts, 0)
            elif kind is cancel_kind:
                if expires_ns is not None:
                    canceled += 1
                if timer_id in pending:
                    pending.discard(timer_id)
                    delta(ts, 0)
            elif kind is wait_kind:
                if timeout_ns is not None:
                    sets += 1
                    if flags & satisfied:
                        canceled += 1
                    else:
                        expired += 1
                    delta(expires_ns, 1)   # block timestamp
                    delta(ts, 0)

            # _commit(ts - horizon), inlined.
            watermark = ts - horizon
            while heap and heap[0] < watermark:
                cts = heappop(heap)
                closes, opens = deltas.pop(cts)
                level = self._level + opens - closes
                self._level = level
                if level > self._concurrency:
                    self._concurrency = level
                self._committed_ts = cts
        self.n_events += n
        self._accesses += accesses
        self._user += user
        self._kernel += kernel
        self._set += sets
        self._expired += expired
        self._canceled += canceled

    def state_size(self) -> int:
        """Entries of *transient* sweep state (pending timers plus
        buffered endpoint instants) — the part that would be O(events)
        if the trace were buffered instead."""
        return len(self._pending) + len(self._deltas)

    def finish(self, duration_ns: int) -> TraceSummary:
        # Still-armed timers occupy their slot until the trace ends
        # (their opening +1 was streamed at the SET).
        for _timer_id in self._pending:
            self._delta(duration_ns, 0)
        self._commit(float("inf"))
        self.result = TraceSummary(
            workload=self.workload, os_name=self.os_name,
            timers=len(self._timer_ids), concurrency=self._concurrency,
            accesses=self._accesses, user_space=self._user,
            kernel=self._kernel, set_count=self._set,
            expired=self._expired, canceled=self._canceled)
        self._timer_ids = set()
        self._pending = set()
        self._deltas = {}
        self._heap = []
        return self.result


# ---------------------------------------------------------------------------
# Shared per-timer episode routing
# ---------------------------------------------------------------------------

class _Group:
    """One timer grouping (per-address or per-(site, pid) cluster)."""

    __slots__ = ("key", "comm", "first_site", "set_site", "builder")

    def __init__(self, key, event: TimerEvent, builder: EpisodeBuilder):
        self.key = key
        self.comm = event.comm
        self.first_site = event.site
        self.set_site: Optional[Tuple[str, ...]] = None
        self.builder = builder

    @property
    def site(self) -> Tuple[str, ...]:
        # TimerHistory.site: the first SET's stack, else the first
        # event's stack.
        return self.set_site if self.set_site is not None \
            else self.first_site


class EpisodeRouter:
    """Route an event stream to per-group :class:`EpisodeBuilder`\\ s.

    Replicates :class:`~repro.core.index.TraceIndex`'s grouping logic
    incrementally: per timer address (``logical=False``) or per
    (most-recent-SET-site, pid) cluster (``logical=True``, the Vista
    default).  Subscribers get ``on_group(group)`` at group creation
    (in first-event order, matching the batch grouping dicts) and
    ``on_episode(group, episode)`` for every completed episode; only
    the open episode per group is retained.
    """

    def __init__(self, os_name: str, *, logical: Optional[bool] = None):
        if logical is None:
            from ..kern.registry import backend_traits
            logical = backend_traits(os_name).logical_timers
        self.os_name = os_name
        self.logical = logical
        self._groups: dict = {}
        self._site_of_id: dict = {}
        self._subscribers: list = []
        #: Routing volume counters (mirrored into repro.obs metrics).
        self.groups_created = 0
        self.episodes_routed = 0

    def subscribe(self, consumer) -> None:
        self._subscribers.append(consumer)

    def groups(self) -> Iterable[_Group]:
        return self._groups.values()

    def open_episodes(self) -> int:
        return sum(1 for group in self._groups.values()
                   if group.builder is not None
                   and group.builder._armed_at is not None)

    def _key_for(self, event: TimerEvent):
        # Host-qualified keys on cluster traces: raw timer ids (and
        # (site, pid) clusters) are per-host namespaces.
        host = event.host
        if not self.logical:
            return (host, event.timer_id) if host else event.timer_id
        timer_id = (host, event.timer_id) if host else event.timer_id
        kind = event.kind
        if kind == EventKind.SET or kind == EventKind.INIT \
                or kind == EventKind.WAIT_UNBLOCK:
            key = (host, event.site, event.pid) if host \
                else (event.site, event.pid)
            self._site_of_id[timer_id] = key
            return key
        return self._site_of_id.get(
            timer_id, (host, event.site, event.pid) if host
            else (event.site, event.pid))

    def _new_group(self, key, event: TimerEvent) -> _Group:
        builder = EpisodeBuilder(self.os_name)
        group = self._groups[key] = _Group(key, event, builder)
        self.groups_created += 1
        subscribers = self._subscribers

        def dispatch(episode: Episode, group=group,
                     subscribers=subscribers,
                     router=self) -> None:
            router.episodes_routed += 1
            for consumer in subscribers:
                consumer.on_episode(group, episode)

        builder.on_episode = dispatch
        for consumer in subscribers:
            consumer.on_group(group)
        return group

    def emit(self, event: TimerEvent) -> None:
        key = self._key_for(event)
        group = self._groups.get(key)
        if group is None:
            group = self._new_group(key, event)
        if group.set_site is None and event.kind == EventKind.SET:
            group.set_site = event.site
        group.builder.push(event)

    def emit_batch(self, events: Iterable[TimerEvent]) -> None:
        """Route a whole batch of events in one call.

        Result-identical to calling :meth:`emit` per event — the same
        groups in the same creation order, the same episodes in the
        same dispatch order — with the per-event overhead (the call
        frame, key-routing attribute lookups, the group-dict method
        resolution) hoisted out of the loop.  This is the fast path the
        engine's bucket-batch dispatch feeds: one drained bucket, one
        ``emit_batch``.
        """
        logical = self.logical
        lookup = self._groups.get
        site_of_id = self._site_of_id
        site_lookup = site_of_id.get
        new_group = self._new_group
        SET = EventKind.SET
        INIT = EventKind.INIT
        WAIT_UNBLOCK = EventKind.WAIT_UNBLOCK
        # The logical/instance decision is loop-invariant; the hot
        # per-event fields come from C-level tuple subscripts.
        if logical:
            for event in events:
                kind = event[0]
                host = event[10]
                timer_id = (host, event[2]) if host else event[2]
                if kind is SET or kind is INIT or kind is WAIT_UNBLOCK:
                    key = (host, event[6], event[3]) if host \
                        else (event[6], event[3])      # (site, pid)
                    site_of_id[timer_id] = key
                else:
                    key = site_lookup(timer_id)
                    if key is None:
                        key = (host, event[6], event[3]) if host \
                            else (event[6], event[3])
                group = lookup(key)
                if group is None:
                    group = new_group(key, event)
                if group.set_site is None and kind is SET:
                    group.set_site = event[6]
                group.builder.push(event)
        else:
            for event in events:
                host = event[10]
                key = (host, event[2]) if host else event[2]
                group = lookup(key)
                if group is None:
                    group = new_group(key, event)
                if group.set_site is None and event[0] is SET:
                    group.set_site = event[6]
                group.builder.push(event)

    def finish(self) -> None:
        """Flush still-open episodes as UNRESOLVED, then drop the
        builders (and their dispatch closures) so finished consumers
        pickle cleanly across process boundaries."""
        for group in self._groups.values():
            if group.builder is not None:
                group.builder.finish()
                group.builder = None
        self._site_of_id = {}


#: The per-group accumulator moved to :mod:`repro.core.classify` so the
#: batch classifier shares it; the old private name stays importable.
_TimerStats = TimerStats


class StreamingClassifier:
    """Online Figure 2 / Table 3: per-group classification counters fed
    by an :class:`EpisodeRouter` (its own unless one is shared)."""

    def __init__(self, os_name: str, workload: str, *,
                 router: Optional[EpisodeRouter] = None,
                 logical: Optional[bool] = None,
                 tolerance_ns: int = DEFAULT_TOLERANCE_NS):
        self.os_name = os_name
        self.workload = workload
        self.tolerance_ns = tolerance_ns
        self._own_router = router is None
        self.router = EpisodeRouter(os_name, logical=logical) \
            if router is None else router
        self.router.subscribe(self)
        #: (group, stats) in group-creation order — the iteration order
        #: of the batch grouping dicts, which tie-breaks must match.
        self._stats: list[tuple[_Group, _TimerStats]] = []
        self._stats_by_id: dict[int, _TimerStats] = {}
        self.breakdown: Optional[PatternBreakdown] = None
        self._origin_rows: Optional[dict] = None

    # -- router callbacks ------------------------------------------------

    def on_group(self, group: _Group) -> None:
        stats = _TimerStats(self.tolerance_ns)
        self._stats.append((group, stats))
        self._stats_by_id[id(group)] = stats

    def on_episode(self, group: _Group, episode: Episode) -> None:
        self._stats_by_id[id(group)].add(episode)

    def emit(self, event: TimerEvent) -> None:
        """Standalone-sink mode: only forward when this classifier owns
        its router (a shared router is fed by the suite)."""
        if self._own_router:
            self.router.emit(event)

    def state_size(self) -> int:
        return self.router.open_episodes()

    # -- results ---------------------------------------------------------

    def finish(self, duration_ns: int = 0) -> PatternBreakdown:
        if self._own_router:
            self.router.finish()
        breakdown = PatternBreakdown(self.workload, self.os_name)
        origin_rows: dict = {}
        for group, stats in self._stats:
            timer_class, value = stats.classify()
            breakdown.counts[timer_class] = \
                breakdown.counts.get(timer_class, 0) + 1
            breakdown.total += 1
            if value is None or value <= 0:
                continue
            origin = attribute_origin(group.site, group.comm)
            key = (value, origin)
            entry = origin_rows.get(key)
            if entry is None:
                entry = origin_rows[key] = {"sets": 0, "classes": {}}
            entry["sets"] += stats.n
            entry["classes"][timer_class] = \
                entry["classes"].get(timer_class, 0) + 1
        self.breakdown = breakdown
        self._origin_rows = origin_rows
        self._stats = []
        self._stats_by_id = {}
        return breakdown

    def origin_table(self, *, min_sets: int = 3) -> list[OriginRow]:
        """The Table 3 rows (call after :meth:`finish`)."""
        if self._origin_rows is None:
            raise RuntimeError("origin_table() requires finish() first")
        out = []
        for (value, origin), entry in self._origin_rows.items():
            if entry["sets"] < min_sets:
                continue
            majority = max(entry["classes"].items(),
                           key=lambda kv: kv[1])[0]
            out.append(OriginRow(value, origin, majority, entry["sets"]))
        out.sort(key=lambda r: (r.timeout_ns, r.origin))
        return out


class StreamingValues:
    """Online Figure 3–7 value histogram (exact: a counter per distinct
    nominal value, same keys and counts as the batch scan)."""

    def __init__(self, os_name: str, workload: str, *,
                 domain: Optional[str] = None,
                 include_waits: bool = True,
                 raw_user_values: bool = True):
        self.os_name = os_name
        self.workload = workload
        self.domain = domain
        self.include_waits = include_waits
        self.raw_user_values = raw_user_values
        #: The backend's value-quantisation trait, resolved once — the
        #: per-event ``nominal_value_ns`` is inlined in the hot loops.
        self._quantize = quantizes_to_jiffies(os_name)
        self._counts: dict[int, int] = {}
        self._total = 0
        self.result: Optional[ValueHistogram] = None

    def emit(self, event: TimerEvent) -> None:
        kind = event.kind
        if kind == EventKind.WAIT_UNBLOCK:
            if not self.include_waits or event.timeout_ns is None:
                return
        elif kind != EventKind.SET:
            return
        if self.domain is not None and event.domain != self.domain:
            return
        value = event.timeout_ns or 0
        if self.raw_user_values and value > 0 and self._quantize \
                and event.domain != "user":
            value = -(-value // JIFFY) * JIFFY
        self._counts[value] = self._counts.get(value, 0) + 1
        self._total += 1

    def emit_batch(self, events: Iterable[TimerEvent]) -> None:
        """Per-event :meth:`emit`, with the filters and the
        quantisation rule hoisted out of the loop."""
        set_kind = EventKind.SET
        wait_kind = EventKind.WAIT_UNBLOCK
        include_waits = self.include_waits
        domain = self.domain
        quantize = self.raw_user_values and self._quantize
        counts = self._counts
        get = counts.get
        total = 0
        for (kind, _ts, _tid, _pid, _comm, event_domain, _site,
             timeout_ns, _expires, _flags, _host, _cpu) in events:
            if kind is wait_kind:
                if not include_waits or timeout_ns is None:
                    continue
            elif kind is not set_kind:
                continue
            if domain is not None and event_domain != domain:
                continue
            value = timeout_ns or 0
            if quantize and value > 0 and event_domain != "user":
                value = -(-value // JIFFY) * JIFFY
            counts[value] = get(value, 0) + 1
            total += 1
        self._total += total

    def state_size(self) -> int:
        return 0       # the histogram itself is the result, not state

    def finish(self, duration_ns: int = 0) -> ValueHistogram:
        self.result = ValueHistogram(self.workload, self.os_name,
                                     self._total, self._counts)
        return self.result


class StreamingDurations:
    """Online Figure 8–11 scatter.

    The aggregated (value, fraction, outcome) cells are exact — the
    batch scatter sorts its cells, so interleaved cross-timer episode
    order cannot show.  Fraction quantiles are exact too, and cost
    nothing per episode: every plotted fraction already lives in the
    bounded cell aggregation with its multiplicity, so
    :meth:`fraction_quantiles` takes weighted quantiles over the cells
    instead of running per-episode online estimators (the P² estimator
    this reducer used to feed lives on in :mod:`repro.core.adaptive`).
    """

    QUANTILES = (0.5, 0.9, 0.99)

    def __init__(self, os_name: str, workload: str, *,
                 router: Optional[EpisodeRouter] = None,
                 logical: Optional[bool] = None,
                 cutoff_pct: float = CUTOFF_PCT):
        self.os_name = os_name
        self.workload = workload
        self.cutoff_pct = cutoff_pct
        self._own_router = router is None
        self.router = EpisodeRouter(os_name, logical=logical) \
            if router is None else router
        self.router.subscribe(self)
        self._agg: dict = {}
        self._skipped = 0
        self._clipped = 0
        self._fq: Optional[dict] = None
        self.result: Optional[DurationScatter] = None

    def on_group(self, group: _Group) -> None:
        pass

    def on_episode(self, _group: _Group, episode: Episode) -> None:
        outcome = episode.outcome
        if outcome == Outcome.UNRESOLVED or outcome == Outcome.REARMED:
            return
        if episode.value_ns <= 0:
            self._skipped += 1
            return
        fraction = episode.elapsed_fraction
        if fraction is None:
            return
        pct = round(100.0 * fraction, 1)
        if pct > self.cutoff_pct:
            self._clipped += 1
            return
        key = (episode.value_ns, pct, outcome)
        self._agg[key] = self._agg.get(key, 0) + 1

    def emit(self, event: TimerEvent) -> None:
        if self._own_router:
            self.router.emit(event)

    def state_size(self) -> int:
        return self.router.open_episodes() if self._own_router else 0

    def fraction_quantiles(self) -> dict[float, Optional[float]]:
        """Exact weighted quantiles of the plotted fraction
        distribution (%), computed from the aggregation cells (or the
        snapshot :meth:`finish` takes before dropping them)."""
        if self._fq is not None:
            return dict(self._fq)
        weights: dict[float, int] = {}
        for (_value, pct, _outcome), n in self._agg.items():
            weights[pct] = weights.get(pct, 0) + n
        total = sum(weights.values())
        if not total:
            return {p: None for p in self.QUANTILES}
        ordered = sorted(weights.items())
        out: dict[float, Optional[float]] = {}
        for p in self.QUANTILES:
            rank = p * total
            cum = 0
            for pct, n in ordered:
                cum += n
                if cum >= rank:
                    out[p] = pct
                    break
        return out

    def finish(self, duration_ns: int = 0) -> DurationScatter:
        if self._own_router:
            self.router.finish()
        self._fq = self.fraction_quantiles()
        scatter = DurationScatter(self.workload, self.os_name)
        scatter.skipped = self._skipped
        scatter.clipped = self._clipped
        scatter.points = [
            ScatterPoint(v, pct, n, outcome) for (v, pct, outcome), n in
            sorted(self._agg.items(), key=lambda kv: (kv[0][0], kv[0][1],
                                                      kv[0][2].value))]
        self.result = scatter
        self._agg = {}
        return scatter


class StreamingRates:
    """Online Figure 1 set-rate series (sparse buckets; the series is
    materialised at :meth:`finish`, once the duration is known)."""

    def __init__(self, os_name: str, workload: str, *,
                 bucket_ns: int = SECOND,
                 group_fn: Callable[[TimerEvent], str] = default_group,
                 kinds: tuple = (EventKind.SET, EventKind.WAIT_UNBLOCK)):
        self.os_name = os_name
        self.workload = workload
        self.bucket_ns = bucket_ns
        self.group_fn = group_fn
        self.kinds = kinds
        self._sparse: dict[str, dict[int, int]] = {}
        self.result: Optional[RateSeries] = None

    def emit(self, event: TimerEvent) -> None:
        kind = event.kind
        if kind not in self.kinds:
            return
        ts = event.ts
        if kind == EventKind.WAIT_UNBLOCK:
            if event.timeout_ns is None:
                return
            ts = event.expires_ns        # block timestamp
        bucket = ts // self.bucket_ns
        group = self._sparse.get(self.group_fn(event))
        if group is None:
            group = self._sparse[self.group_fn(event)] = {}
        group[bucket] = group.get(bucket, 0) + 1

    def emit_batch(self, events: Iterable[TimerEvent]) -> None:
        """Per-event :meth:`emit` with the filter and bucket math
        hoisted out of the loop."""
        kinds = self.kinds
        wait_kind = EventKind.WAIT_UNBLOCK
        bucket_ns = self.bucket_ns
        group_fn = self.group_fn
        sparse = self._sparse
        sparse_get = sparse.get
        for event in events:
            kind = event[0]
            if kind not in kinds:
                continue
            ts = event[1]
            if kind is wait_kind:
                if event[7] is None:          # timeout_ns
                    continue
                ts = event[8]                 # block timestamp
            name = group_fn(event)
            group = sparse_get(name)
            if group is None:
                group = sparse[name] = {}
            bucket = ts // bucket_ns
            group[bucket] = group.get(bucket, 0) + 1

    def state_size(self) -> int:
        return 0       # the series is the result, not transient state

    def finish(self, duration_ns: int) -> RateSeries:
        n_buckets = max(1, -(-duration_ns // self.bucket_ns))
        series: dict[str, list[int]] = {}
        for name, sparse in self._sparse.items():
            row = [0] * n_buckets
            for bucket, count in sparse.items():
                if bucket < n_buckets:
                    row[bucket] = count
            series[name] = row
        self.result = RateSeries(self.bucket_ns, n_buckets, series)
        self._sparse = {}
        return self.result


class StreamingSuite:
    """Every streaming reducer behind one sink.

    Attach to a machine (``sinks=[suite]`` on any workload runner, or
    ``kernel.attach_sink(suite)`` mid-run), then call
    :meth:`finish` with the trace duration; results land on
    :attr:`summary`, :attr:`breakdown`, :attr:`histogram`,
    :attr:`scatter`, :attr:`rates` and :meth:`origin_table`.  After
    ``finish`` the suite holds only plain result dataclasses, so it
    pickles across process boundaries (the ``run_study_traces``
    ``sink_factory`` path).

    :meth:`state_size` counts the transient aggregation entries (open
    episodes, pending timers, buffered sweep instants); ``peak_state``
    samples its maximum every ``sample_every`` events — the number the
    bounded-memory benchmark tracks.
    """

    def __init__(self, os_name: str, workload: str, *,
                 logical: Optional[bool] = None,
                 tolerance_ns: int = DEFAULT_TOLERANCE_NS,
                 sample_every: int = 4096):
        self.os_name = os_name
        self.workload = workload
        self.n_events = 0
        self.sample_every = sample_every
        self.peak_state = 0
        self.router = EpisodeRouter(os_name, logical=logical)
        self.summary_reducer = StreamingSummary(os_name, workload)
        self.classifier = StreamingClassifier(
            os_name, workload, router=self.router,
            tolerance_ns=tolerance_ns)
        self.values_reducer = StreamingValues(os_name, workload)
        self.durations_reducer = StreamingDurations(
            os_name, workload, router=self.router)
        self.rates_reducer = StreamingRates(os_name, workload)
        self.finished = False
        self.duration_ns: Optional[int] = None
        self._groups_routed = 0
        self._episodes_routed = 0
        self.summary: Optional[TraceSummary] = None
        self.breakdown: Optional[PatternBreakdown] = None
        self.histogram: Optional[ValueHistogram] = None
        self.scatter: Optional[DurationScatter] = None
        self.rates: Optional[RateSeries] = None

    def emit(self, event: TimerEvent) -> None:
        self.n_events += 1
        self.summary_reducer.emit(event)
        self.values_reducer.emit(event)
        self.rates_reducer.emit(event)
        self.router.emit(event)
        if self.n_events % self.sample_every == 0:
            size = self.state_size()
            if size > self.peak_state:
                self.peak_state = size

    def emit_batch(self, events: Iterable[TimerEvent]) -> None:
        """Fold a whole batch of events through every reducer.

        Result-identical to calling :meth:`emit` per event.  The
        reducers are mutually independent (each one's state is touched
        only by its own ``emit``), so the batch is processed
        column-wise — one batch call per reducer, then one
        :meth:`EpisodeRouter.emit_batch` — in chunks aligned to the
        ``sample_every`` boundary, which keeps every reducer's event
        order *and* the ``peak_state`` sampling points identical to
        the sequential path (see ``benchmarks/bench_streaming.py``).

        A zero-copy :class:`~repro.tracing.binfmt2.ColumnarTrace` is a
        first-class source: its ``__iter__`` hydrates events lazily
        from the mmap'd columns, so each chunk is materialised once,
        shared by all four reducer loops, and released — the whole
        event list never exists in memory.
        """
        it = iter(events)
        sample_every = self.sample_every
        summary_batch = self.summary_reducer.emit_batch
        values_batch = self.values_reducer.emit_batch
        rates_batch = self.rates_reducer.emit_batch
        route_batch = self.router.emit_batch
        while True:
            take = sample_every - self.n_events % sample_every
            chunk = list(islice(it, take))
            if not chunk:
                return
            summary_batch(chunk)
            values_batch(chunk)
            rates_batch(chunk)
            route_batch(chunk)
            self.n_events += len(chunk)
            if len(chunk) == take:
                size = self.state_size()
                if size > self.peak_state:
                    self.peak_state = size

    def state_size(self) -> int:
        return self.summary_reducer.state_size() \
            + self.router.open_episodes()

    def finish(self, duration_ns: int) -> "StreamingSuite":
        if self.finished:
            return self
        size = self.state_size()
        if size > self.peak_state:
            self.peak_state = size
        self.duration_ns = duration_ns
        self.router.finish()
        self.summary = self.summary_reducer.finish(duration_ns)
        self.breakdown = self.classifier.finish(duration_ns)
        self.histogram = self.values_reducer.finish(duration_ns)
        self.scatter = self.durations_reducer.finish(duration_ns)
        self.rates = self.rates_reducer.finish(duration_ns)
        self._groups_routed = self.router.groups_created
        self._episodes_routed = self.router.episodes_routed
        self.router = None          # drop dispatch closures: picklable
        self.classifier.router = None
        self.durations_reducer.router = None
        self.finished = True
        return self

    @property
    def late_waits(self) -> int:
        return self.summary_reducer.late_waits

    @property
    def groups_routed(self) -> int:
        """Timer groups created by the shared router (live or final)."""
        router = self.router
        return self._groups_routed if router is None \
            else router.groups_created

    @property
    def episodes_routed(self) -> int:
        """Completed episodes dispatched to subscribers."""
        router = self.router
        return self._episodes_routed if router is None \
            else router.episodes_routed

    def live_state(self) -> dict:
        """Point-in-time progress counters, safe both mid-run and after
        :meth:`finish` (when the transient state has been dropped) —
        the ``timerstudy serve`` daemon reports these on ``/statusz``.
        """
        return {
            "events": self.n_events,
            "state_entries": 0 if self.finished else self.state_size(),
            "state_peak": self.peak_state,
            "groups": self.groups_routed,
            "episodes": self.episodes_routed,
            "late_waits": self.late_waits,
            "finished": self.finished,
        }

    def origin_table(self, *, min_sets: int = 3) -> list[OriginRow]:
        return self.classifier.origin_table(min_sets=min_sets)

    def fraction_quantiles(self) -> dict[float, Optional[float]]:
        return self.durations_reducer.fraction_quantiles()


class ProgressSink:
    """Live event counter for ``timerstudy run --stream``: prints a
    carriage-return progress line every ``every`` events."""

    def __init__(self, every: int = 200_000, label: str = "",
                 stream=None):
        self.every = every
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.n_events = 0
        self._printed = False

    def emit(self, event: TimerEvent) -> None:
        self.n_events += 1
        if self.n_events % self.every == 0:
            print(f"\r{self.label}{self.n_events:,} events",
                  end="", file=self.stream, flush=True)
            self._printed = True

    def finish(self, duration_ns: int = 0) -> int:
        if self._printed:
            print(file=self.stream)
            self._printed = False
        return self.n_events
