"""Detecting adaptive timeout values in traces (Section 4.2's claim).

"Very few regular uses of timers are adaptive (in that they react to
measured timeouts or cancelation times via a control loop), and many
timers are set to round number values."  This module makes that claim
measurable: each (logical) timer's sequence of set values is classified
as

* **CONSTANT** — one dominant value (within the jitter tolerance):
  the overwhelmingly common case the paper found;
* **COUNTDOWN** — the select remaining-time idiom (decreasing runs);
* **ADAPTIVE** — values vary, but *smoothly*: successive values are
  close relative to the overall spread, the signature of a control
  loop nudging its estimate (TCP RTO on a varying path, the journal's
  load-adjusted commit interval);
* **IRREGULAR** — values vary with no smooth structure (Skype's
  event-loop residues).

Not to be confused with :mod:`repro.core.adaptive`, which *builds*
adaptive timeout policies (the Section 5.1 estimator/backoff/quantile
machinery).  Rule of thumb: ``adaptivity`` (this module) asks "were
the traced timers adaptive?", ``adaptive`` answers "here is how to be
adaptive".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

from .episodes import DEFAULT_TOLERANCE_NS
from .index import as_index

__all__ = [
    "AdaptivityReport", "ValueBehavior", "adaptivity_report",
    "classify_values",
]


class ValueBehavior(enum.Enum):
    CONSTANT = "constant"
    COUNTDOWN = "countdown"
    ADAPTIVE = "adaptive"
    IRREGULAR = "irregular"


def classify_values(values: Sequence[int], *,
                    tolerance_ns: int = DEFAULT_TOLERANCE_NS,
                    min_observations: int = 5) -> ValueBehavior:
    """Classify one timer's sequence of set values."""
    if len(values) < min_observations:
        return ValueBehavior.CONSTANT if len(set(values)) <= 1 \
            else ValueBehavior.IRREGULAR
    ordered = sorted(values)
    n = len(ordered)
    p10 = ordered[n // 10]
    p90 = ordered[(9 * n) // 10]
    spread = p90 - p10
    if spread <= 2 * tolerance_ns:
        return ValueBehavior.CONSTANT

    # classify._is_countdown's pair counters, computed straight off the
    # value sequence (no per-value episode shims on this hot path).
    if n >= 4:
        decreasing = resets = 0
        prev = values[0]
        for cur in values[1:]:
            if cur < prev - tolerance_ns:
                decreasing += 1
            elif cur > prev + tolerance_ns:
                resets += 1
            prev = cur
        if decreasing / (n - 1) >= 0.55 and resets >= 1:
            return ValueBehavior.COUNTDOWN

    # Smoothness: mean step between successive values, relative to the
    # overall spread.  A control loop moves gradually; an event loop
    # jumps around its whole range.
    steps = [abs(b - a) for a, b in zip(values, values[1:])]
    mean_step = sum(steps) / len(steps)
    if mean_step < 0.25 * spread:
        return ValueBehavior.ADAPTIVE
    return ValueBehavior.IRREGULAR


@dataclass
class AdaptivityReport:
    """Per-trace share of timer sets by value behaviour."""

    workload: str
    os_name: str
    set_counts: dict[ValueBehavior, int] = field(default_factory=dict)
    timer_counts: dict[ValueBehavior, int] = field(default_factory=dict)

    @property
    def total_sets(self) -> int:
        return sum(self.set_counts.values())

    def set_share(self, behavior: ValueBehavior) -> float:
        total = self.total_sets
        if total == 0:
            return 0.0
        return self.set_counts.get(behavior, 0) / total

    def render(self) -> str:
        lines = [f"{'behaviour':<10} {'timers':>7} {'sets':>9} "
                 f"{'% of sets':>10}"]
        for behavior in ValueBehavior:
            lines.append(
                f"{behavior.value:<10} "
                f"{self.timer_counts.get(behavior, 0):>7} "
                f"{self.set_counts.get(behavior, 0):>9} "
                f"{self.set_share(behavior) * 100:>9.1f}%")
        return "\n".join(lines)


def adaptivity_report(source, *, logical: Optional[bool] = None,
                      tolerance_ns: int = DEFAULT_TOLERANCE_NS
                      ) -> AdaptivityReport:
    """Measure how much of a trace's timer traffic is adaptive."""
    index = as_index(source)
    if logical is None:
        logical = index.default_logical
    report = AdaptivityReport(index.trace.workload, index.os_name)
    for episodes in index.episodes(logical):
        values = [value for _set_at, value, _o, _e, _g in episodes]
        if not values:
            continue
        behavior = classify_values(values, tolerance_ns=tolerance_ns)
        report.timer_counts[behavior] = \
            report.timer_counts.get(behavior, 0) + 1
        report.set_counts[behavior] = \
            report.set_counts.get(behavior, 0) + len(values)
    return report
