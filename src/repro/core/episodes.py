"""Per-timer episode extraction.

An *episode* is one arming of a timer and its outcome: it expired, it
was cancelled while pending, or it was re-armed (``mod_timer`` on a
pending timer) before either happened.  Episodes are the unit both the
usage-pattern classifier (Section 4.1) and the duration analysis
(Section 4.3) operate on.

Nominal timeout values: the Linux kernel quantises expiry to jiffies,
so a kernel-side observation of 50.3 jiffies of relative time means a
nominal 51-jiffy (0.204 s) timeout; user-space values are recorded
exactly at the syscall and Vista values are taken as requested.  The
2 ms tolerance the paper determined experimentally (Section 3.1) is
applied when comparing values.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..sim.clock import JIFFY, MILLISECOND
from ..tracing.events import FLAG_WAIT_SATISFIED, EventKind
from ..tracing.trace import TimerHistory

#: The jitter allowance the paper determined from the workqueue timer.
DEFAULT_TOLERANCE_NS = 2 * MILLISECOND


class Outcome(enum.Enum):
    EXPIRED = "expired"
    CANCELED = "canceled"
    REARMED = "rearmed"        #: re-set while still pending
    UNRESOLVED = "unresolved"  #: trace ended while pending


@dataclass
class Episode:
    """One arming of a timer."""

    set_at: int            #: timestamp of the SET
    value_ns: int          #: nominal relative timeout
    outcome: Outcome
    ended_at: Optional[int]   #: when the outcome occurred
    gap_before_ns: Optional[int]  #: idle time since previous episode end

    @property
    def elapsed_ns(self) -> Optional[int]:
        if self.ended_at is None:
            return None
        return self.ended_at - self.set_at

    @property
    def elapsed_fraction(self) -> Optional[float]:
        """Elapsed life as a fraction of the set value (Figures 8–11)."""
        if self.ended_at is None or self.value_ns <= 0:
            return None
        return (self.ended_at - self.set_at) / self.value_ns


def nominal_value_ns(event, os_name: str) -> int:
    """Recover the nominal timeout from an observed SET event."""
    timeout = event.timeout_ns or 0
    if os_name == "linux" and event.domain != "user" and timeout > 0:
        # Kernel-side observation: quantise back to whole jiffies
        # (arming happened mid-jiffy, so observed <= nominal).
        return -(-timeout // JIFFY) * JIFFY
    return timeout


def extract_episodes(history: TimerHistory, os_name: str) -> list[Episode]:
    """Walk one timer's events and produce its episode list."""
    episodes: list[Episode] = []
    armed_at: Optional[int] = None
    armed_value = 0
    last_end: Optional[int] = None

    def close(outcome: Outcome, ended_at: Optional[int]) -> None:
        nonlocal armed_at, last_end
        gap = None
        if last_end is not None and armed_at is not None:
            gap = armed_at - last_end
        episodes.append(Episode(armed_at, armed_value, outcome,
                                ended_at, gap))
        last_end = ended_at if ended_at is not None else armed_at
        armed_at = None

    for event in history.events:
        kind = event.kind
        if kind == EventKind.SET:
            if armed_at is not None:
                close(Outcome.REARMED, event.ts)
            armed_at = event.ts
            armed_value = nominal_value_ns(event, os_name)
        elif kind == EventKind.EXPIRE:
            if armed_at is not None:
                close(Outcome.EXPIRED, event.ts)
        elif kind == EventKind.CANCEL:
            # Cancels of an inactive timer carry expires_ns=None and do
            # not end an episode (they are the "repeated deletions").
            if armed_at is not None and event.expires_ns is not None:
                close(Outcome.CANCELED, event.ts)
        elif kind == EventKind.WAIT_UNBLOCK:
            # Self-contained: expires_ns holds the block timestamp.
            if event.timeout_ns is None:
                continue
            armed_at = event.expires_ns
            armed_value = event.timeout_ns
            satisfied = bool(event.flags & FLAG_WAIT_SATISFIED)
            close(Outcome.CANCELED if satisfied else Outcome.EXPIRED,
                  event.ts)
    if armed_at is not None:
        close(Outcome.UNRESOLVED, None)
    return episodes


def dominant_value(episodes: list[Episode],
                   tolerance_ns: int = DEFAULT_TOLERANCE_NS
                   ) -> tuple[Optional[int], float]:
    """Most common set value and the fraction of episodes using it.

    Values within the tolerance of each other are pooled, mirroring the
    paper's jitter allowance.
    """
    if not episodes:
        return None, 0.0
    buckets: dict[int, int] = {}
    for ep in episodes:
        placed = False
        for center in buckets:
            if abs(ep.value_ns - center) <= tolerance_ns:
                buckets[center] += 1
                placed = True
                break
        if not placed:
            buckets[ep.value_ns] = 1
    best = max(buckets.items(), key=lambda kv: kv[1])
    return best[0], best[1] / len(episodes)
