"""Per-timer episode extraction.

An *episode* is one arming of a timer and its outcome: it expired, it
was cancelled while pending, or it was re-armed (``mod_timer`` on a
pending timer) before either happened.  Episodes are the unit both the
usage-pattern classifier (Section 4.1) and the duration analysis
(Section 4.3) operate on.

Nominal timeout values: the Linux kernel quantises expiry to jiffies,
so a kernel-side observation of 50.3 jiffies of relative time means a
nominal 51-jiffy (0.204 s) timeout; user-space values are recorded
exactly at the syscall and Vista values are taken as requested.  The
2 ms tolerance the paper determined experimentally (Section 3.1) is
applied when comparing values.
"""

from __future__ import annotations

import enum
from bisect import bisect_left, bisect_right, insort
from typing import NamedTuple, Optional

from ..kern.registry import backend_traits
from ..sim.clock import JIFFY, MILLISECOND
from ..tracing.events import FLAG_WAIT_SATISFIED, EventKind
from ..tracing.trace import TimerHistory

#: The jitter allowance the paper determined from the workqueue timer.
DEFAULT_TOLERANCE_NS = 2 * MILLISECOND


class ValueBuckets:
    """First-fit tolerance pooling of set values.

    Each value joins the *earliest-created* bucket whose center lies
    within the tolerance, or opens a new bucket at itself — the exact
    semantics of scanning the bucket dict in insertion order, but
    found through a sorted view of the centers, so countdown timers
    (every set value distinct) cost O(log n) per episode instead of a
    full scan.
    """

    __slots__ = ("tolerance_ns", "counts", "_seq", "_sorted")

    def __init__(self, tolerance_ns: int):
        self.tolerance_ns = tolerance_ns
        #: center -> count, in bucket-creation order.
        self.counts: dict[int, int] = {}
        self._seq: dict[int, int] = {}
        self._sorted: list[int] = []

    def add(self, value: int) -> None:
        counts = self.counts
        if value in counts:
            # Exact center hit.  Centers are pairwise more than the
            # tolerance apart (a bucket only opens when no existing
            # center is within tolerance), so this bucket is the only
            # candidate — the dominant case for periodic timers
            # re-arming one fixed value.
            counts[value] += 1
            return
        lo = bisect_left(self._sorted, value - self.tolerance_ns)
        hi = bisect_right(self._sorted, value + self.tolerance_ns)
        if lo < hi:
            center = min(self._sorted[lo:hi], key=self._seq.__getitem__)
            self.counts[center] += 1
        else:
            self.counts[value] = 1
            self._seq[value] = len(self._seq)
            insort(self._sorted, value)

    def dominant(self) -> tuple[int, int]:
        """(center, count) of the fullest bucket; ties go to the
        earliest-created bucket, as with ``max`` over the dict."""
        return max(self.counts.items(), key=lambda kv: kv[1])


class Outcome(enum.Enum):
    EXPIRED = "expired"
    CANCELED = "canceled"
    REARMED = "rearmed"        #: re-set while still pending
    UNRESOLVED = "unresolved"  #: trace ended while pending


class Episode(NamedTuple):
    """One arming of a timer.

    A NamedTuple rather than a dataclass: episode extraction builds
    hundreds of thousands of these per trace, and tuple construction
    is the cheapest object allocation Python offers while keeping the
    named-field API every analysis reads.
    """

    set_at: int            #: timestamp of the SET
    value_ns: int          #: nominal relative timeout
    outcome: Outcome
    ended_at: Optional[int]   #: when the outcome occurred
    gap_before_ns: Optional[int]  #: idle time since previous episode end

    @property
    def elapsed_ns(self) -> Optional[int]:
        if self.ended_at is None:
            return None
        return self.ended_at - self.set_at

    @property
    def elapsed_fraction(self) -> Optional[float]:
        """Elapsed life as a fraction of the set value (Figures 8–11)."""
        if self.ended_at is None or self.value_ns <= 0:
            return None
        return (self.ended_at - self.set_at) / self.value_ns


def quantizes_to_jiffies(os_name: str) -> bool:
    """Whether kernel-side timeout observations on this backend must be
    quantised back to whole jiffies — the backend trait the hot loops
    hoist out of their per-event path."""
    return backend_traits(os_name).jiffy_values


def nominal_value_ns(event, os_name: str) -> int:
    """Recover the nominal timeout from an observed SET event.

    The quantisation rule is a backend trait
    (:func:`repro.kern.registry.backend_traits`), not a hard-coded OS
    check, so plugin backends choose their own value semantics.
    """
    timeout = event.timeout_ns or 0
    if (timeout > 0 and event.domain != "user"
            and quantizes_to_jiffies(os_name)):
        # Kernel-side observation: quantise back to whole jiffies
        # (arming happened mid-jiffy, so observed <= nominal).
        return -(-timeout // JIFFY) * JIFFY
    return timeout


#: Kind singletons hoisted to module level for the per-event dispatch.
_SET = EventKind.SET
_EXPIRE = EventKind.EXPIRE
_CANCEL = EventKind.CANCEL
_WAIT_UNBLOCK = EventKind.WAIT_UNBLOCK


class EpisodeBuilder:
    """Incremental episode extraction for one timer's event stream.

    The batch path (:func:`extract_episodes`) and the streaming
    reducers (:mod:`repro.core.streaming`) share this state machine, so
    an episode produced online is byte-identical to one produced from a
    materialized :class:`~repro.tracing.trace.TimerHistory`.

    Push events in trace order with :meth:`push`; completed episodes
    are either appended to :attr:`episodes` or handed to the
    ``on_episode`` callback (streaming mode, which retains only the
    open-episode state — O(1) per timer).  Call :meth:`finish` once at
    end of stream to close a still-armed episode as UNRESOLVED.
    """

    __slots__ = ("os_name", "on_episode", "episodes",
                 "_armed_at", "_armed_value", "_last_end", "_quantize")

    def __init__(self, os_name: str, on_episode=None):
        self.os_name = os_name
        self.on_episode = on_episode
        self.episodes: list[Episode] = []
        self._armed_at: Optional[int] = None
        self._armed_value = 0
        self._last_end: Optional[int] = None
        self._quantize = quantizes_to_jiffies(os_name)

    def _close(self, outcome: Outcome, ended_at: Optional[int]) -> None:
        armed_at = self._armed_at
        gap = None
        if self._last_end is not None and armed_at is not None:
            gap = armed_at - self._last_end
        episode = Episode(armed_at, self._armed_value, outcome,
                          ended_at, gap)
        if self.on_episode is not None:
            self.on_episode(episode)
        else:
            self.episodes.append(episode)
        self._last_end = ended_at if ended_at is not None else armed_at
        self._armed_at = None

    def push(self, event) -> None:
        # Tuple subscripts over the TimerEvent NamedTuple: this runs
        # once per event in the streaming router's hot path.
        kind = event[0]
        if kind is _SET:
            if self._armed_at is not None:
                self._close(Outcome.REARMED, event[1])
            self._armed_at = event[1]
            timeout = event[7] or 0            # timeout_ns
            if timeout > 0 and self._quantize and event[5] != "user":
                timeout = -(-timeout // JIFFY) * JIFFY
            self._armed_value = timeout
        elif kind is _EXPIRE:
            if self._armed_at is not None:
                self._close(Outcome.EXPIRED, event[1])
        elif kind is _CANCEL:
            # Cancels of an inactive timer carry expires_ns=None and do
            # not end an episode (they are the "repeated deletions").
            if self._armed_at is not None and event[8] is not None:
                self._close(Outcome.CANCELED, event[1])
        elif kind is _WAIT_UNBLOCK:
            # Self-contained: expires_ns holds the block timestamp.
            if event[7] is None:
                return
            self._armed_at = event[8]
            self._armed_value = event[7]
            satisfied = bool(event[9] & FLAG_WAIT_SATISFIED)
            self._close(Outcome.CANCELED if satisfied else Outcome.EXPIRED,
                        event[1])

    def finish(self) -> list[Episode]:
        if self._armed_at is not None:
            self._close(Outcome.UNRESOLVED, None)
        return self.episodes


def extract_episodes(history: TimerHistory, os_name: str) -> list[Episode]:
    """Walk one timer's events and produce its episode list.

    This is :class:`EpisodeBuilder`'s state machine inlined with local
    state — the batch path walks millions of events per study, and the
    per-event method dispatch of ``push`` was its dominant cost.  The
    streaming reducers keep using the builder; the differential tests
    in ``tests/core`` pin the two paths to identical output.
    """
    SET = EventKind.SET
    EXPIRE = EventKind.EXPIRE
    CANCEL = EventKind.CANCEL
    WAIT_UNBLOCK = EventKind.WAIT_UNBLOCK
    REARMED = Outcome.REARMED
    EXPIRED = Outcome.EXPIRED
    CANCELED = Outcome.CANCELED
    quantize = quantizes_to_jiffies(os_name)

    episodes: list[Episode] = []
    append = episodes.append
    armed_at = None
    armed_value = 0
    last_end = None
    # One C-level unpack of the event tuple per iteration replaces the
    # per-field attribute lookups this loop used to pay; episodes are
    # built through tuple.__new__ directly, skipping the generated
    # NamedTuple __new__ wrapper (all five fields always supplied).
    E = Episode
    new = tuple.__new__
    for (kind, ts, _tid, _pid, _comm, domain, _site,
         timeout_ns, expires_ns, flags, _host, _cpu) in history.events:
        if kind is SET:
            if armed_at is not None:
                gap = None if last_end is None else armed_at - last_end
                append(new(E, (armed_at, armed_value, REARMED, ts, gap)))
                last_end = ts
            armed_at = ts
            timeout = timeout_ns or 0
            if timeout > 0 and quantize and domain != "user":
                timeout = -(-timeout // JIFFY) * JIFFY
            armed_value = timeout
        elif kind is EXPIRE:
            if armed_at is not None:
                gap = None if last_end is None else armed_at - last_end
                append(new(E, (armed_at, armed_value, EXPIRED, ts, gap)))
                last_end = ts
                armed_at = None
        elif kind is CANCEL:
            if armed_at is not None and expires_ns is not None:
                gap = None if last_end is None else armed_at - last_end
                append(new(E, (armed_at, armed_value, CANCELED, ts,
                               gap)))
                last_end = ts
                armed_at = None
        elif kind is WAIT_UNBLOCK:
            if timeout_ns is None:
                continue
            armed_at = expires_ns
            armed_value = timeout_ns
            gap = None if last_end is None else armed_at - last_end
            outcome = CANCELED if flags & FLAG_WAIT_SATISFIED \
                else EXPIRED
            append(new(E, (armed_at, armed_value, outcome, ts, gap)))
            last_end = ts
            armed_at = None
    if armed_at is not None:
        gap = None if last_end is None else armed_at - last_end
        append(new(E, (armed_at, armed_value, Outcome.UNRESOLVED,
                       None, gap)))
    return episodes


def dominant_value(episodes: list[Episode],
                   tolerance_ns: int = DEFAULT_TOLERANCE_NS
                   ) -> tuple[Optional[int], float]:
    """Most common set value and the fraction of episodes using it.

    Values within the tolerance of each other are pooled, mirroring the
    paper's jitter allowance.
    """
    if not episodes:
        return None, 0.0
    buckets = ValueBuckets(tolerance_ns)
    for ep in episodes:
        buckets.add(ep.value_ns)
    center, count = buckets.dominant()
    return center, count / len(episodes)
