"""Single-pass trace indexing shared by every analysis.

Historically each analysis in :mod:`repro.core` independently re-grouped
the whole event list (``trace.instances()`` / ``trace.logical_timers()``)
and re-ran :func:`~repro.core.episodes.extract_episodes`, so a full
study re-scanned a multi-million-event trace roughly ten times.  The
:class:`TraceIndex` computes everything those analyses need in one pass:

* both timer groupings (per-address *instances* and per-(site, pid)
  *logical* clusters), byte-identical to the direct scans,
* the "set-like" event list (SET plus WAIT_UNBLOCK, in trace order)
  that the value/rate analyses iterate,
* per-kind, per-pid and per-comm event views (lazy: each is built by
  its own single pass on first use, then shared),
* lazily-extracted, cached episode lists per grouping, and
* a ``memo`` dict where analyses cache derived results (the usage
  classification, the Table 1/2 summary) so e.g. Table 3 reuses the
  Figure 2 classification instead of recomputing it.

The scan is *incremental*: the grouping dicts are live state, so
:meth:`TraceIndex.extend` can ingest new events without re-reading the
ones already indexed (``Trace.extend`` keeps a cached index current the
same way).  Derived views and memoized results are invalidated on
ingestion and rebuilt lazily.

The index is cached on the :class:`~repro.tracing.trace.Trace` itself
(``trace._index``) and rebuilt automatically if the event list grows
behind its back, so callers just write ``TraceIndex.of(trace)`` — or
the public :func:`as_index`, which every analysis routes through so a
``Trace`` and a ``TraceIndex`` are interchangeable arguments.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

from ..tracing.events import EventKind, TimerEvent
from ..tracing.trace import TimerHistory, Trace
from .episodes import Episode, extract_episodes

#: Event kinds that arm a timer (or describe a timed wait): the events
#: the value histograms and rate series iterate.
SET_LIKE_KINDS = (EventKind.SET, EventKind.WAIT_UNBLOCK)


class TraceIndex:
    """Every shared grouping/view of one trace, built in a single pass."""

    __slots__ = ("trace", "os_name", "n_events", "set_like", "memo",
                 "_instance_groups", "_logical_groups", "_site_of_id",
                 "_instances", "_logical",
                 "_by_kind", "_by_pid", "_by_comm",
                 "_instance_episodes", "_logical_episodes")

    def __init__(self, trace: Trace):
        self.trace = trace
        self.os_name = trace.os_name
        self.n_events = 0
        self._instance_groups: dict[int, list[TimerEvent]] = {}
        self._site_of_id: dict[int, Tuple[Tuple[str, ...], int]] = {}
        self._logical_groups: dict[Tuple[Tuple[str, ...], int],
                                   list[TimerEvent]] = {}
        self.set_like: list[TimerEvent] = []
        self.memo: dict = {}
        self._invalidate_views()
        self.ingest(trace.events)

    def _invalidate_views(self) -> None:
        self._instances: Optional[list[TimerHistory]] = None
        self._logical: Optional[list[TimerHistory]] = None
        self._by_kind: Optional[dict] = None
        self._by_pid: Optional[dict] = None
        self._by_comm: Optional[dict] = None
        self._instance_episodes: Optional[list[list[Episode]]] = None
        self._logical_episodes: Optional[list[list[Episode]]] = None

    # -- construction / incremental growth ------------------------------

    def ingest(self, events: Iterable[TimerEvent]) -> None:
        """Index ``events`` (already appended to the trace) without
        re-scanning earlier ones.  Derived views and memos are dropped;
        the groupings stay byte-identical to a from-scratch build."""
        instance_groups = self._instance_groups
        logical_groups = self._logical_groups
        site_of_id = self._site_of_id
        set_like = self.set_like

        set_kind = EventKind.SET
        wait_kind = EventKind.WAIT_UNBLOCK
        init_kind = EventKind.INIT
        set_like_append = set_like.append
        if not isinstance(events, list):
            events = list(events)
        count = len(events)
        # Index access (event[0], event[2], ...) over the TimerEvent
        # NamedTuple: C-level tuple reads on the hottest loop we run.
        # Group lookups go through try/except subscripts: with a few
        # dozen timers and hundreds of thousands of events, hits
        # outnumber misses by orders of magnitude.
        for event in events:
            kind = event[0]
            host = event[10]
            # Cluster traces: timer ids (and (site, pid) clusters) are
            # per-host namespaces, so the grouping keys carry the host.
            # host == 0 (every single-machine trace) keeps the plain
            # keys, so existing groupings are bit-for-bit unchanged.
            timer_id = (host, event[2]) if host else event[2]

            # Per-address grouping (Trace.instances).
            try:
                group = instance_groups[timer_id]
            except KeyError:
                group = instance_groups[timer_id] = []
            group.append(event)

            # Per-(set-site, pid) clustering (Trace.logical_timers):
            # events on a timer id join the cluster of that id's most
            # recent SET/INIT/WAIT site.
            if kind is set_kind or kind is init_kind or kind is wait_kind:
                key = (host, event[6], event[3]) if host \
                    else (event[6], event[3])      # (site, pid)
                site_of_id[timer_id] = key
                if kind is not init_kind:
                    set_like_append(event)
            else:
                try:
                    key = site_of_id[timer_id]
                except KeyError:
                    key = (host, event[6], event[3]) if host \
                        else (event[6], event[3])
            try:
                group = logical_groups[key]
            except KeyError:
                group = logical_groups[key] = []
            group.append(event)

        if count:
            self.memo.clear()
            self._invalidate_views()
        self.n_events += count

    def extend(self, events: Iterable[TimerEvent]) -> None:
        """Append ``events`` to the underlying trace and index them
        incrementally — the streaming-friendly growth path."""
        self.trace.extend(list(events))   # routes back through ingest

    # -- access ---------------------------------------------------------

    @classmethod
    def of(cls, trace: Trace) -> "TraceIndex":
        """The trace's cached index, building (or rebuilding) it if the
        event list changed length behind the index's back."""
        index = getattr(trace, "_index", None)
        if index is None or index.n_events != len(trace.events):
            index = cls(trace)
            trace._index = index
        return index

    @classmethod
    def peek(cls, trace: Trace) -> "Optional[TraceIndex]":
        """The cached index if one is already built and current, else
        ``None`` — for analyses that can run off a plain scan and only
        want the index when it is free."""
        index = getattr(trace, "_index", None)
        if index is not None and index.n_events == len(trace.events):
            return index
        return None

    @property
    def n_timers(self) -> int:
        """Distinct timer ids seen — Table 1/2's "timers" count."""
        return len(self._instance_groups)

    @property
    def instances(self) -> list[TimerHistory]:
        if self._instances is None:
            self._instances = [TimerHistory(tid, evs) for tid, evs
                               in self._instance_groups.items()]
        return self._instances

    @property
    def logical(self) -> list[TimerHistory]:
        if self._logical is None:
            self._logical = [TimerHistory(key, evs) for key, evs
                             in self._logical_groups.items()]
        return self._logical

    @property
    def default_logical(self) -> bool:
        """Backends with dynamically allocated timers (Vista's
        lookaside reuse, Section 3.3) need call-site clustering; Linux
        groups by the statically allocated timer address.  Resolved
        through the backend traits, not an OS string compare."""
        from ..kern.registry import backend_traits
        return backend_traits(self.os_name).logical_timers

    def histories(self, logical: bool) -> list[TimerHistory]:
        return self.logical if logical else self.instances

    def episodes(self, logical: bool) -> list[list[Episode]]:
        """Episode lists parallel to :meth:`histories`, extracted once."""
        cached = self._logical_episodes if logical \
            else self._instance_episodes
        if cached is None:
            cached = [extract_episodes(history, self.os_name)
                      for history in self.histories(logical)]
            if logical:
                self._logical_episodes = cached
            else:
                self._instance_episodes = cached
        return cached

    def adopt_episodes(self, episode_lists: list[list[Episode]], *,
                       logical: bool) -> None:
        """Install externally-extracted episode lists for one grouping
        (parallel to :meth:`histories`) — the merge step of the
        sharded analysis path (:mod:`repro.core.shard`).  The lists
        must be exactly what :meth:`episodes` would build; adopting
        them only skips the extraction work, never changes results."""
        histories = self.histories(logical)
        if len(episode_lists) != len(histories):
            raise ValueError(
                f"episode lists do not match the grouping: "
                f"{len(episode_lists)} != {len(histories)}")
        if logical:
            self._logical_episodes = list(episode_lists)
        else:
            self._instance_episodes = list(episode_lists)

    def grouped(self, logical: Optional[bool] = None
                ) -> Iterator[tuple[TimerHistory, list[Episode]]]:
        """Iterate (history, episodes) pairs for one grouping."""
        if logical is None:
            logical = self.default_logical
        return zip(self.histories(logical), self.episodes(logical))

    # -- lazy secondary views (built on first use, then shared) ---------

    @property
    def by_kind(self) -> dict[EventKind, list[TimerEvent]]:
        if self._by_kind is None:
            view: dict[EventKind, list[TimerEvent]] = \
                {kind: [] for kind in EventKind}
            for event in self.trace.events:
                view[event.kind].append(event)
            self._by_kind = view
        return self._by_kind

    @property
    def by_pid(self) -> dict[int, list[TimerEvent]]:
        if self._by_pid is None:
            view: dict[int, list[TimerEvent]] = {}
            for event in self.trace.events:
                group = view.get(event.pid)
                if group is None:
                    group = view[event.pid] = []
                group.append(event)
            self._by_pid = view
        return self._by_pid

    @property
    def by_comm(self) -> dict[str, list[TimerEvent]]:
        if self._by_comm is None:
            view: dict[str, list[TimerEvent]] = {}
            for event in self.trace.events:
                group = view.get(event.comm)
                if group is None:
                    group = view[event.comm] = []
                group.append(event)
            self._by_comm = view
        return self._by_comm

    def events_of_kind(self, kind: EventKind) -> list[TimerEvent]:
        return self.by_kind[kind]

    def __repr__(self) -> str:
        return (f"<TraceIndex {self.os_name}/{self.trace.workload} "
                f"{self.n_events} events, {len(self.instances)} timers, "
                f"{len(self.logical)} logical>")


def as_index(source) -> TraceIndex:
    """Normalize an analysis argument to a :class:`TraceIndex`.

    Every analysis in :mod:`repro.core` accepts a
    :class:`~repro.tracing.trace.Trace`, a zero-copy
    :class:`~repro.tracing.binfmt2.ColumnarTrace`, or an already-built
    :class:`TraceIndex`; this is the one place that coercion lives.
    A columnar view is hydrated here (once, cached on the view) —
    the index and the episode machinery are exactly the endpoints
    that need real :class:`~repro.tracing.events.TimerEvent` objects.
    """
    if isinstance(source, TraceIndex):
        return source
    if isinstance(source, Trace):
        return TraceIndex.of(source)
    from ..tracing.binfmt2 import ColumnarTrace
    if isinstance(source, ColumnarTrace):
        return TraceIndex.of(source.as_trace())
    raise TypeError(f"expected Trace, ColumnarTrace or TraceIndex, got "
                    f"{type(source).__name__}")
