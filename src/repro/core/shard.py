"""Sharded per-trace analysis: one big trace, many workers.

The study driver (:func:`repro.workloads.run_study_traces`) already
parallelises across *traces*; this module parallelises *within* one
trace.  The per-timer analyses are embarrassingly parallel once the
events are grouped — episode extraction touches one timer's history at
a time — so the trace's timer groups are split across ``--jobs N``
shards, each shard extracts its groups' episodes independently, and
the results are merged back **in group-creation order** before the
standard battery renders them.  The merge is pure repositioning, so
the output is byte-identical to a serial run for any worker count
(the determinism tests pin ``--jobs 1/2/8``).

Shard assignment is deterministic and process-independent:

* per-address groups (the Linux grouping) shard by ``timer_id % N`` —
  the id is stable trace data, so the same file always produces the
  same plan;
* per-(site, pid) clusters (the Vista grouping) shard by their
  creation ordinal modulo ``N`` (the cluster key is a tuple; its hash
  is salted per process and must not leak into the plan);
* host-qualified groups from cluster traces — ``(host, timer_id)`` or
  ``(host, site, pid)`` — shard by ``host % N``, so one machine's
  timers stay on one worker and a multi-host trace decomposes along
  its natural per-host axis.

Workers go through ``multiprocessing`` when the host actually has
spare CPUs; otherwise (or when the pool cannot be set up — sandboxes,
unpicklable payloads) the shards run in-process in shard order, which
exercises the identical split/merge path.  Zero-copy columnar traces
(:class:`~repro.tracing.binfmt2.ColumnarTrace`) hydrate once in the
parent; only each shard's own group histories cross the process
boundary.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from typing import Optional

from .episodes import Episode, extract_episodes
from .index import TraceIndex, as_index

__all__ = ["shard_of", "shard_episodes", "sharded_analysis"]

#: Plain sharding tallies, mirrored into a metrics registry by
#: :func:`repro.obs.collect.collect_trace_io` (pull-based, zero cost
#: on the extraction paths themselves).
SHARD_COUNTERS = {"analyses": 0, "shard_runs": 0, "shards": 0,
                  "pool_fallbacks": 0}


def shard_of(key, ordinal: int, jobs: int) -> int:
    """Deterministic shard for one timer group.

    ``key`` is the group's routing key (an ``int`` timer id, the
    logical ``(site, pid)`` tuple, or — on cluster traces — either of
    those qualified by a leading host id); ``ordinal`` its creation
    index.  Host-qualified groups shard by host: one machine's timers
    land on one worker, making the host the parallel axis a cluster
    trace naturally decomposes along.
    """
    if isinstance(key, int):
        return key % jobs
    if key and isinstance(key[0], int):
        return key[0] % jobs      # (host, ...) from a cluster trace
    return ordinal % jobs


def _extract_shard(payload):
    """Pool worker: extract episodes for one shard's histories."""
    os_name, histories = payload
    return [extract_episodes(history, os_name) for history in histories]


def shard_episodes(index: TraceIndex, jobs: int, *,
                   logical: Optional[bool] = None,
                   processes: Optional[int] = None) -> list[list[Episode]]:
    """Extract one grouping's episode lists across ``jobs`` shards.

    Returns lists parallel to ``index.histories(logical)`` — exactly
    what a serial :meth:`TraceIndex.episodes` builds, independent of
    the shard count.  ``processes`` caps the worker pool (default: the
    machine's CPU count); shards run in-process when only one CPU is
    available or the pool cannot be used.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if logical is None:
        logical = index.default_logical
    histories = index.histories(logical)
    os_name = index.os_name

    # The deterministic plan: positions of each shard's groups.
    positions: list[list[int]] = [[] for _ in range(jobs)]
    for ordinal, history in enumerate(histories):
        positions[shard_of(history.key, ordinal, jobs)].append(ordinal)

    payloads = [(os_name, [histories[i] for i in shard])
                for shard in positions]

    if processes is None:
        processes = os.cpu_count() or 1
    processes = max(1, min(processes, jobs))
    SHARD_COUNTERS["shard_runs"] += 1
    SHARD_COUNTERS["shards"] += jobs
    shard_results = None
    if processes > 1:
        try:
            with multiprocessing.get_context().Pool(processes) as pool:
                shard_results = pool.map(_extract_shard, payloads)
        except (ImportError, OSError, PermissionError, AttributeError,
                TypeError, pickle.PicklingError):
            shard_results = None    # sandboxed interpreter: in-process
            SHARD_COUNTERS["pool_fallbacks"] += 1
    if shard_results is None:
        shard_results = [_extract_shard(payload) for payload in payloads]

    # Merge: pure repositioning back into group-creation order.
    merged: list[Optional[list[Episode]]] = [None] * len(histories)
    for shard, result in zip(positions, shard_results):
        for ordinal, episodes in zip(shard, result):
            merged[ordinal] = episodes
    return merged


def sharded_analysis(source, *, jobs: int, filter_x: bool = False,
                     processes: Optional[int] = None) -> str:
    """The ``timerstudy analyze --jobs N`` battery, sharded.

    ``source`` is anything batch :func:`~repro.core.analyze.analyze`
    accepts (a ``Trace``, a zero-copy columnar view, an index, or a
    path).  The default grouping's episodes are extracted shard-wise
    and adopted by the trace's index, then the standard report renders
    from the shared caches — so the text is byte-identical to
    ``render_analysis(source)`` for every ``jobs`` value.
    """
    from .report import render_analysis
    SHARD_COUNTERS["analyses"] += 1
    if isinstance(source, (str, os.PathLike)):
        from ..tracing.formats import open_trace
        source = open_trace(os.fspath(source))
    index = as_index(source)
    logical = index.default_logical
    index.adopt_episodes(
        shard_episodes(index, jobs, logical=logical,
                       processes=processes), logical=logical)
    return render_analysis(index, filter_x=filter_x)
