"""Usage-pattern taxonomy (the paper's Section 4.1.1).

Classifies each timer's episode stream into the patterns the paper
identifies:

* **PERIODIC** — always expires and is immediately re-set to the same
  relative value (page-out timer, workqueue tick).
* **WATCHDOG** — never expires: re-set to the same relative value
  before expiry (console blank, Apache connection guards).
* **DELAY** — usually/always expires, re-set to the same value after a
  non-trivial gap (fixed-interval thread delays).
* **TIMEOUT** — almost never expires: cancelled shortly after being
  set, re-set to the same value after a gap (RPC calls, IDE commands).
* **DEFERRED** — Vista-only fifth pattern: deferred like a watchdog,
  but after a few iterations allowed to expire, then restarted
  (registry lazy close).
* **COUNTDOWN** — the select-loop idiom: the set value repeatedly
  counts down to zero, then resets (X server, icewm; Section 4.2).
  The paper files these under "other" after identifying them.
* **OTHER** — irregular or too few observations.

Comparisons use the 2 ms variance the paper determined experimentally.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..tracing.trace import TimerHistory
from .episodes import (DEFAULT_TOLERANCE_NS, Episode, Outcome,
                       ValueBuckets, extract_episodes)
from .index import as_index


class TimerClass(enum.Enum):
    PERIODIC = "periodic"
    WATCHDOG = "watchdog"
    DELAY = "delay"
    TIMEOUT = "timeout"
    DEFERRED = "deferred"
    COUNTDOWN = "countdown"
    OTHER = "other"


@dataclass
class Classification:
    """Classifier verdict for one (logical) timer."""

    history: TimerHistory
    episodes: list[Episode]
    timer_class: TimerClass
    dominant_value_ns: Optional[int]

    @property
    def set_count(self) -> int:
        return len(self.episodes)


def _fractions(episodes: list[Episode]) -> tuple[float, float, float]:
    resolved = [e for e in episodes if e.outcome != Outcome.UNRESOLVED]
    if not resolved:
        return 0.0, 0.0, 0.0
    n = len(resolved)
    expired = sum(e.outcome == Outcome.EXPIRED for e in resolved) / n
    canceled = sum(e.outcome == Outcome.CANCELED for e in resolved) / n
    rearmed = sum(e.outcome == Outcome.REARMED for e in resolved) / n
    return expired, canceled, rearmed


def _is_countdown(episodes: list[Episode], tolerance_ns: int) -> bool:
    """Detect select-style countdown: values mostly strictly decreasing,
    periodically resetting upward."""
    values = [e.value_ns for e in episodes]
    if len(values) < 4:
        return False
    decreasing = resets = 0
    for prev, cur in zip(values, values[1:]):
        if cur < prev - tolerance_ns:
            decreasing += 1
        elif cur > prev + tolerance_ns:
            resets += 1
    pairs = len(values) - 1
    return decreasing / pairs >= 0.55 and resets >= 1


def _is_deferred(episodes: list[Episode]) -> bool:
    """Vista deferral pattern: runs of re-arms ending in an expiry."""
    outcomes = [e.outcome for e in episodes
                if e.outcome != Outcome.UNRESOLVED]
    expiries = sum(o == Outcome.EXPIRED for o in outcomes)
    rearms = sum(o == Outcome.REARMED for o in outcomes)
    if expiries == 0 or rearms == 0:
        return False
    # Every expiry should terminate a run of at least one re-arm.
    runs_ok = 0
    run = 0
    for outcome in outcomes:
        if outcome == Outcome.REARMED:
            run += 1
        elif outcome == Outcome.EXPIRED:
            if run >= 1:
                runs_ok += 1
            run = 0
        else:
            run = 0
    return runs_ok >= max(1, expiries * 0.6) and rearms / len(outcomes) >= 0.4


def _deferral_fraction(episodes: list[Episode], tolerance_ns: int) -> float:
    """Fraction of resolved episodes that *defer* the timer: a re-arm
    while pending, or a cancellation followed within the tolerance by a
    re-set to the same value.

    The latter is how a watchdog looks through a blocking-syscall
    interface (Apache's connection guards): the call must return and
    cancel before it can re-install the same 15 s deadline, but the
    gap is microseconds — semantically one deferral.
    """
    resolved = [e for e in episodes if e.outcome != Outcome.UNRESOLVED]
    if not resolved:
        return 0.0
    deferrals = 0
    for i, episode in enumerate(episodes):
        if episode.outcome == Outcome.REARMED:
            deferrals += 1
        elif episode.outcome == Outcome.CANCELED and i + 1 < len(episodes):
            nxt = episodes[i + 1]
            if (nxt.gap_before_ns is not None
                    and nxt.gap_before_ns <= tolerance_ns
                    and abs(nxt.value_ns - episode.value_ns)
                    <= tolerance_ns):
                deferrals += 1
    return deferrals / len(resolved)


class TimerStats:
    """O(1)-per-episode accumulators reproducing the multi-pass helpers
    above (:func:`dominant_value`, :func:`_is_countdown`,
    :func:`_fractions`, :func:`_deferral_fraction`, :func:`_is_deferred`)
    in a single fold over the episode stream.

    Both halves of ``analyze()`` run their classification through this
    class: the batch path folds a cached episode list
    (:func:`classify_episodes`), the streaming path feeds episodes one
    at a time as the :class:`~repro.core.streaming.EpisodeRouter`
    completes them — which is what makes their verdicts identical by
    construction.
    """

    __slots__ = ("n", "buckets", "n_resolved", "expired", "canceled",
                 "rearmed", "prev_value", "decreasing", "resets",
                 "gaps", "gaps_small", "deferrals", "run", "runs_ok",
                 "prev_outcome", "prev_outcome_value", "tolerance_ns")

    def __init__(self, tolerance_ns: int):
        self.tolerance_ns = tolerance_ns
        self.n = 0
        self.buckets = ValueBuckets(tolerance_ns)
        self.n_resolved = 0
        self.expired = self.canceled = self.rearmed = 0
        self.prev_value: Optional[int] = None
        self.decreasing = self.resets = 0
        self.gaps = self.gaps_small = 0
        self.deferrals = 0
        self.run = self.runs_ok = 0
        self.prev_outcome: Optional[Outcome] = None
        self.prev_outcome_value = 0

    def add(self, episode: Episode) -> None:
        tol = self.tolerance_ns
        value = episode.value_ns
        self.n += 1

        # dominant_value's first-fit bucketing, in insertion order.
        self.buckets.add(value)

        # _is_countdown's pair counters (over all episodes).
        if self.prev_value is not None:
            if value < self.prev_value - tol:
                self.decreasing += 1
            elif value > self.prev_value + tol:
                self.resets += 1
        self.prev_value = value

        # The PERIODIC/DELAY gap statistic (over all episodes).
        gap = episode.gap_before_ns
        if gap is not None:
            self.gaps += 1
            if gap <= tol:
                self.gaps_small += 1

        # _deferral_fraction: a re-arm defers outright; a cancel
        # followed within tolerance by a same-value re-set defers too.
        outcome = episode.outcome
        if outcome == Outcome.REARMED:
            self.deferrals += 1
        if self.prev_outcome == Outcome.CANCELED and gap is not None \
                and gap <= tol \
                and abs(value - self.prev_outcome_value) <= tol:
            self.deferrals += 1
        self.prev_outcome = outcome
        self.prev_outcome_value = value

        if outcome != Outcome.UNRESOLVED:
            self.n_resolved += 1
            if outcome == Outcome.EXPIRED:
                self.expired += 1
                # _is_deferred: an expiry terminating a re-arm run.
                if self.run >= 1:
                    self.runs_ok += 1
                self.run = 0
            elif outcome == Outcome.CANCELED:
                self.canceled += 1
                self.run = 0
            else:
                self.rearmed += 1
                self.run += 1

    def add_batch(self, episodes: list) -> None:
        """Fold a whole episode list at once: identical statistics to
        calling :meth:`add` per episode, but accumulated in locals —
        the per-episode ``self`` attribute churn was the batch
        classifier's dominant cost.  The streaming path keeps feeding
        :meth:`add` one episode at a time; the streaming-vs-batch
        differential tests pin the two folds to identical verdicts."""
        tol = self.tolerance_ns
        buckets = self.buckets
        counts = buckets.counts
        bucket_add = buckets.add
        REARMED = Outcome.REARMED
        CANCELED = Outcome.CANCELED
        EXPIRED = Outcome.EXPIRED
        UNRESOLVED = Outcome.UNRESOLVED

        n = n_resolved = expired = canceled = rearmed = 0
        decreasing = resets = gaps = gaps_small = deferrals = runs_ok = 0
        run = self.run
        prev_value = self.prev_value
        prev_outcome = self.prev_outcome
        prev_outcome_value = self.prev_outcome_value

        for _set_at, value, outcome, _ended_at, gap in episodes:
            n += 1
            if value in counts:
                counts[value] += 1
            else:
                bucket_add(value)
            if prev_value is not None:
                if value < prev_value - tol:
                    decreasing += 1
                elif value > prev_value + tol:
                    resets += 1
            prev_value = value
            if gap is not None:
                gaps += 1
                if gap <= tol:
                    gaps_small += 1
            if outcome is REARMED:
                deferrals += 1
            if prev_outcome is CANCELED and gap is not None \
                    and gap <= tol \
                    and abs(value - prev_outcome_value) <= tol:
                deferrals += 1
            prev_outcome = outcome
            prev_outcome_value = value
            if outcome is not UNRESOLVED:
                n_resolved += 1
                if outcome is EXPIRED:
                    expired += 1
                    if run >= 1:
                        runs_ok += 1
                    run = 0
                elif outcome is CANCELED:
                    canceled += 1
                    run = 0
                else:
                    rearmed += 1
                    run += 1

        self.n += n
        self.n_resolved += n_resolved
        self.expired += expired
        self.canceled += canceled
        self.rearmed += rearmed
        self.decreasing += decreasing
        self.resets += resets
        self.gaps += gaps
        self.gaps_small += gaps_small
        self.deferrals += deferrals
        self.runs_ok += runs_ok
        self.run = run
        self.prev_value = prev_value
        self.prev_outcome = prev_outcome
        self.prev_outcome_value = prev_outcome_value

    # -- the classification decision tree, from the counters -------------

    def dominant(self) -> tuple[Optional[int], float]:
        if self.n == 0:
            return None, 0.0
        center, count = self.buckets.dominant()
        return center, count / self.n

    def _is_deferred(self) -> bool:
        if self.expired == 0 or self.rearmed == 0:
            return False
        return self.runs_ok >= max(1, self.expired * 0.6) \
            and self.rearmed / self.n_resolved >= 0.4

    def classify(self, *, min_observations: int = 3
                 ) -> tuple[TimerClass, Optional[int]]:
        value, share = self.dominant()
        if self.n < min_observations:
            return TimerClass.OTHER, value
        pairs = self.n - 1
        if self.n >= 4 and self.decreasing / pairs >= 0.55 \
                and self.resets >= 1:
            return TimerClass.COUNTDOWN, value

        if self.n_resolved:
            expired = self.expired / self.n_resolved
            canceled = self.canceled / self.n_resolved
            deferral = self.deferrals / self.n_resolved
        else:
            expired = canceled = deferral = 0.0
        constant = share >= 0.7

        if constant and deferral >= 0.5:
            if expired <= 0.05:
                return TimerClass.WATCHDOG, value
            if self._is_deferred():
                return TimerClass.DEFERRED, value
            if expired <= 0.1:
                return TimerClass.WATCHDOG, value
        if constant and expired >= 0.85:
            if self.gaps == 0 or self.gaps_small / self.gaps >= 0.5:
                return TimerClass.PERIODIC, value
            return TimerClass.DELAY, value
        if constant and canceled >= 0.85:
            return TimerClass.TIMEOUT, value
        if self._is_deferred() and constant:
            return TimerClass.DEFERRED, value
        return TimerClass.OTHER, value


def classify_episodes(episodes: list[Episode], *,
                      tolerance_ns: int = DEFAULT_TOLERANCE_NS,
                      min_observations: int = 3
                      ) -> tuple[TimerClass, Optional[int]]:
    """Classify one episode stream; returns (class, dominant value).

    One fold through :class:`TimerStats` replaces the historical five
    passes (dominant value, countdown detection, outcome fractions,
    deferral fraction, deferred-run detection) with identical verdicts
    — the decision tree in :meth:`TimerStats.classify` mirrors the
    helper functions above term for term, and the streaming-vs-batch
    differential tests pin the equivalence.
    """
    stats = TimerStats(tolerance_ns)
    stats.add_batch(episodes)
    return stats.classify(min_observations=min_observations)


def classify_timer(history: TimerHistory, os_name: str, *,
                   tolerance_ns: int = DEFAULT_TOLERANCE_NS,
                   episodes: Optional[list[Episode]] = None
                   ) -> Classification:
    """Classify one timer; ``episodes`` may be passed pre-extracted
    (the :class:`~repro.core.index.TraceIndex` cache)."""
    if episodes is None:
        episodes = extract_episodes(history, os_name)
    timer_class, value = classify_episodes(episodes,
                                           tolerance_ns=tolerance_ns)
    return Classification(history, episodes, timer_class, value)


@dataclass
class PatternBreakdown:
    """Figure 2's data for one workload: % of timers per class."""

    workload: str
    os_name: str
    counts: dict[TimerClass, int] = field(default_factory=dict)
    total: int = 0

    def percentage(self, timer_class: TimerClass) -> float:
        if self.total == 0:
            return 0.0
        return 100.0 * self.counts.get(timer_class, 0) / self.total

    def figure2_row(self) -> dict[str, float]:
        """The paper's Figure 2 buckets (countdown folds into other)."""
        other = (self.percentage(TimerClass.OTHER)
                 + self.percentage(TimerClass.COUNTDOWN)
                 + self.percentage(TimerClass.DEFERRED))
        return {
            "delay": self.percentage(TimerClass.DELAY),
            "periodic": self.percentage(TimerClass.PERIODIC),
            "timeout": self.percentage(TimerClass.TIMEOUT),
            "watchdog": self.percentage(TimerClass.WATCHDOG),
            "other": other,
        }


def classify_trace(source, *, logical: Optional[bool] = None,
                   tolerance_ns: int = DEFAULT_TOLERANCE_NS
                   ) -> list[Classification]:
    """Classify every timer in a trace (or pre-built index).

    ``logical`` selects call-site clustering (default for Vista, where
    timer addresses are dynamically reused) versus per-address grouping
    (default for Linux).
    """
    index = as_index(source)
    if logical is None:
        logical = index.default_logical
    key = ("classify", logical, tolerance_ns)
    verdicts = index.memo.get(key)
    if verdicts is None:
        verdicts = [classify_timer(history, index.os_name,
                                   tolerance_ns=tolerance_ns,
                                   episodes=episodes)
                    for history, episodes in index.grouped(logical)]
        index.memo[key] = verdicts
    return verdicts


def pattern_breakdown(source, **kwargs) -> PatternBreakdown:
    """Compute Figure 2's per-class timer percentages for one trace."""
    index = as_index(source)
    breakdown = PatternBreakdown(index.trace.workload, index.os_name)
    for verdict in classify_trace(index, **kwargs):
        breakdown.counts[verdict.timer_class] = \
            breakdown.counts.get(verdict.timer_class, 0) + 1
        breakdown.total += 1
    return breakdown
