"""Usage-pattern taxonomy (the paper's Section 4.1.1).

Classifies each timer's episode stream into the patterns the paper
identifies:

* **PERIODIC** — always expires and is immediately re-set to the same
  relative value (page-out timer, workqueue tick).
* **WATCHDOG** — never expires: re-set to the same relative value
  before expiry (console blank, Apache connection guards).
* **DELAY** — usually/always expires, re-set to the same value after a
  non-trivial gap (fixed-interval thread delays).
* **TIMEOUT** — almost never expires: cancelled shortly after being
  set, re-set to the same value after a gap (RPC calls, IDE commands).
* **DEFERRED** — Vista-only fifth pattern: deferred like a watchdog,
  but after a few iterations allowed to expire, then restarted
  (registry lazy close).
* **COUNTDOWN** — the select-loop idiom: the set value repeatedly
  counts down to zero, then resets (X server, icewm; Section 4.2).
  The paper files these under "other" after identifying them.
* **OTHER** — irregular or too few observations.

Comparisons use the 2 ms variance the paper determined experimentally.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..tracing.trace import TimerHistory
from .episodes import (DEFAULT_TOLERANCE_NS, Episode, Outcome,
                       dominant_value, extract_episodes)
from .index import as_index


class TimerClass(enum.Enum):
    PERIODIC = "periodic"
    WATCHDOG = "watchdog"
    DELAY = "delay"
    TIMEOUT = "timeout"
    DEFERRED = "deferred"
    COUNTDOWN = "countdown"
    OTHER = "other"


@dataclass
class Classification:
    """Classifier verdict for one (logical) timer."""

    history: TimerHistory
    episodes: list[Episode]
    timer_class: TimerClass
    dominant_value_ns: Optional[int]

    @property
    def set_count(self) -> int:
        return len(self.episodes)


def _fractions(episodes: list[Episode]) -> tuple[float, float, float]:
    resolved = [e for e in episodes if e.outcome != Outcome.UNRESOLVED]
    if not resolved:
        return 0.0, 0.0, 0.0
    n = len(resolved)
    expired = sum(e.outcome == Outcome.EXPIRED for e in resolved) / n
    canceled = sum(e.outcome == Outcome.CANCELED for e in resolved) / n
    rearmed = sum(e.outcome == Outcome.REARMED for e in resolved) / n
    return expired, canceled, rearmed


def _is_countdown(episodes: list[Episode], tolerance_ns: int) -> bool:
    """Detect select-style countdown: values mostly strictly decreasing,
    periodically resetting upward."""
    values = [e.value_ns for e in episodes]
    if len(values) < 4:
        return False
    decreasing = resets = 0
    for prev, cur in zip(values, values[1:]):
        if cur < prev - tolerance_ns:
            decreasing += 1
        elif cur > prev + tolerance_ns:
            resets += 1
    pairs = len(values) - 1
    return decreasing / pairs >= 0.55 and resets >= 1


def _is_deferred(episodes: list[Episode]) -> bool:
    """Vista deferral pattern: runs of re-arms ending in an expiry."""
    outcomes = [e.outcome for e in episodes
                if e.outcome != Outcome.UNRESOLVED]
    expiries = sum(o == Outcome.EXPIRED for o in outcomes)
    rearms = sum(o == Outcome.REARMED for o in outcomes)
    if expiries == 0 or rearms == 0:
        return False
    # Every expiry should terminate a run of at least one re-arm.
    runs_ok = 0
    run = 0
    for outcome in outcomes:
        if outcome == Outcome.REARMED:
            run += 1
        elif outcome == Outcome.EXPIRED:
            if run >= 1:
                runs_ok += 1
            run = 0
        else:
            run = 0
    return runs_ok >= max(1, expiries * 0.6) and rearms / len(outcomes) >= 0.4


def _deferral_fraction(episodes: list[Episode], tolerance_ns: int) -> float:
    """Fraction of resolved episodes that *defer* the timer: a re-arm
    while pending, or a cancellation followed within the tolerance by a
    re-set to the same value.

    The latter is how a watchdog looks through a blocking-syscall
    interface (Apache's connection guards): the call must return and
    cancel before it can re-install the same 15 s deadline, but the
    gap is microseconds — semantically one deferral.
    """
    resolved = [e for e in episodes if e.outcome != Outcome.UNRESOLVED]
    if not resolved:
        return 0.0
    deferrals = 0
    for i, episode in enumerate(episodes):
        if episode.outcome == Outcome.REARMED:
            deferrals += 1
        elif episode.outcome == Outcome.CANCELED and i + 1 < len(episodes):
            nxt = episodes[i + 1]
            if (nxt.gap_before_ns is not None
                    and nxt.gap_before_ns <= tolerance_ns
                    and abs(nxt.value_ns - episode.value_ns)
                    <= tolerance_ns):
                deferrals += 1
    return deferrals / len(resolved)


def classify_episodes(episodes: list[Episode], *,
                      tolerance_ns: int = DEFAULT_TOLERANCE_NS,
                      min_observations: int = 3
                      ) -> tuple[TimerClass, Optional[int]]:
    """Classify one episode stream; returns (class, dominant value)."""
    value, value_share = dominant_value(episodes, tolerance_ns)
    if len(episodes) < min_observations:
        return TimerClass.OTHER, value
    if _is_countdown(episodes, tolerance_ns):
        return TimerClass.COUNTDOWN, value

    expired, canceled, rearmed = _fractions(episodes)
    deferral = _deferral_fraction(episodes, tolerance_ns)
    constant = value_share >= 0.7

    if constant and deferral >= 0.5:
        if expired <= 0.05:
            return TimerClass.WATCHDOG, value
        if _is_deferred(episodes):
            return TimerClass.DEFERRED, value
        if expired <= 0.1:
            return TimerClass.WATCHDOG, value
    if constant and expired >= 0.85:
        # Periodic if re-set follows the expiry immediately; delay if a
        # non-trivial interval passes first.
        gaps = [e.gap_before_ns for e in episodes
                if e.gap_before_ns is not None]
        if gaps and sum(g <= tolerance_ns for g in gaps) / len(gaps) >= 0.5:
            return TimerClass.PERIODIC, value
        if not gaps:
            return TimerClass.PERIODIC, value
        return TimerClass.DELAY, value
    if constant and canceled >= 0.85:
        return TimerClass.TIMEOUT, value
    if _is_deferred(episodes) and constant:
        return TimerClass.DEFERRED, value
    return TimerClass.OTHER, value


def classify_timer(history: TimerHistory, os_name: str, *,
                   tolerance_ns: int = DEFAULT_TOLERANCE_NS,
                   episodes: Optional[list[Episode]] = None
                   ) -> Classification:
    """Classify one timer; ``episodes`` may be passed pre-extracted
    (the :class:`~repro.core.index.TraceIndex` cache)."""
    if episodes is None:
        episodes = extract_episodes(history, os_name)
    timer_class, value = classify_episodes(episodes,
                                           tolerance_ns=tolerance_ns)
    return Classification(history, episodes, timer_class, value)


@dataclass
class PatternBreakdown:
    """Figure 2's data for one workload: % of timers per class."""

    workload: str
    os_name: str
    counts: dict[TimerClass, int] = field(default_factory=dict)
    total: int = 0

    def percentage(self, timer_class: TimerClass) -> float:
        if self.total == 0:
            return 0.0
        return 100.0 * self.counts.get(timer_class, 0) / self.total

    def figure2_row(self) -> dict[str, float]:
        """The paper's Figure 2 buckets (countdown folds into other)."""
        other = (self.percentage(TimerClass.OTHER)
                 + self.percentage(TimerClass.COUNTDOWN)
                 + self.percentage(TimerClass.DEFERRED))
        return {
            "delay": self.percentage(TimerClass.DELAY),
            "periodic": self.percentage(TimerClass.PERIODIC),
            "timeout": self.percentage(TimerClass.TIMEOUT),
            "watchdog": self.percentage(TimerClass.WATCHDOG),
            "other": other,
        }


def classify_trace(source, *, logical: Optional[bool] = None,
                   tolerance_ns: int = DEFAULT_TOLERANCE_NS
                   ) -> list[Classification]:
    """Classify every timer in a trace (or pre-built index).

    ``logical`` selects call-site clustering (default for Vista, where
    timer addresses are dynamically reused) versus per-address grouping
    (default for Linux).
    """
    index = as_index(source)
    if logical is None:
        logical = index.default_logical
    key = ("classify", logical, tolerance_ns)
    verdicts = index.memo.get(key)
    if verdicts is None:
        verdicts = [classify_timer(history, index.os_name,
                                   tolerance_ns=tolerance_ns,
                                   episodes=episodes)
                    for history, episodes in index.grouped(logical)]
        index.memo[key] = verdicts
    return verdicts


def pattern_breakdown(source, **kwargs) -> PatternBreakdown:
    """Compute Figure 2's per-class timer percentages for one trace."""
    index = as_index(source)
    breakdown = PatternBreakdown(index.trace.workload, index.os_name)
    for verdict in classify_trace(index, **kwargs):
        breakdown.counts[verdict.timer_class] = \
            breakdown.counts.get(verdict.timer_class, 0) + 1
        breakdown.total += 1
    return breakdown
