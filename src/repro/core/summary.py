"""Trace summarisation — the schema of the paper's Tables 1 and 2.

For each workload trace we report:

* **timers** — number of distinct timer structure addresses,
* **concurrency** — maximum number of simultaneously-pending timers,
* **accesses** — total accesses to the timer subsystem,
* **user-space / kernel** — split of accesses by origin,
* **set / expired / canceled** — operation totals.

Accesses are counted the way each paper table implies: on Linux every
instrumented call is an access (including ``del_timer`` on an inactive
timer and expiry processing); on Vista the ETW events hooked the
KeSet/KeCancel *calls* plus thread unblocks, while ring expiry happens
inside the clock DPC — which is why Table 2's access totals are close
to set+canceled rather than including expiries.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..tracing.events import FLAG_WAIT_SATISFIED, EventKind
from ..tracing.trace import Trace
from .index import as_index


@dataclass
class TraceSummary:
    """One column of Table 1 / Table 2."""

    workload: str
    os_name: str
    timers: int
    concurrency: int
    accesses: int
    user_space: int
    kernel: int
    set_count: int
    expired: int
    canceled: int

    def as_row(self) -> dict:
        return {
            "Timers": self.timers, "Concurrency": self.concurrency,
            "Accesses": self.accesses, "User-space": self.user_space,
            "Kernel": self.kernel, "Set": self.set_count,
            "Expired": self.expired, "Canceled": self.canceled,
        }


def summarize(source) -> TraceSummary:
    """Compute the Table 1/2 metrics for one trace or index (memoised
    on the :class:`~repro.core.index.TraceIndex`)."""
    index = as_index(source)
    summary = index.memo.get("summary")
    if summary is None:
        summary = index.memo["summary"] = _compute_summary(index.trace)
    return summary


def _compute_summary(trace: Trace) -> TraceSummary:
    timer_ids: set[int] = set()
    pending_since: dict[int, int] = {}
    intervals: list[tuple[int, int]] = []   # (ts, +1/-1) endpoints
    user = kernel = 0
    set_count = expired = canceled = 0
    accesses = 0
    # ETW-style backends (Vista) expire timers inside the clock DPC, so
    # EXPIRE/INIT records are not API accesses there (§3.3).
    from ..kern.registry import backend_traits
    vista = backend_traits(trace.os_name).etw_style

    def close_interval(timer_id: int, end_ts: int) -> None:
        start = pending_since.pop(timer_id, None)
        if start is not None:
            intervals.append((start, 1))
            intervals.append((end_ts, -1))

    for event in trace.events:
        kind = event.kind
        timer_ids.add(event.timer_id)

        counts_as_access = True
        if vista and kind in (EventKind.EXPIRE, EventKind.INIT):
            # Ring expiry runs inside the clock DPC, not through the
            # instrumented KeSet/KeCancel entry points.
            counts_as_access = False
        if counts_as_access:
            accesses += 1
            if event.domain == "user":
                user += 1
            else:
                kernel += 1

        if kind == EventKind.SET:
            set_count += 1
            close_interval(event.timer_id, event.ts)
            pending_since[event.timer_id] = event.ts
        elif kind == EventKind.EXPIRE:
            expired += 1
            close_interval(event.timer_id, event.ts)
        elif kind == EventKind.CANCEL:
            if event.expires_ns is not None:    # was actually pending
                canceled += 1
            close_interval(event.timer_id, event.ts)
        elif kind == EventKind.WAIT_UNBLOCK:
            # One event describes a whole blocked interval; it occupied
            # a ring slot between block and unblock.
            if event.timeout_ns is not None:
                set_count += 1
                if event.flags & FLAG_WAIT_SATISFIED:
                    canceled += 1
                else:
                    expired += 1
                intervals.append((event.expires_ns, 1))   # block ts
                intervals.append((event.ts, -1))

    for timer_id, start in list(pending_since.items()):
        intervals.append((start, 1))
        intervals.append((trace.duration_ns, -1))

    # Sweep for the maximum number of simultaneously pending timers.
    # Closings sort before openings at the same instant so a timer
    # re-armed at time t counts as one pending timer, not two.
    intervals.sort()
    concurrency = level = 0
    for _ts, delta in intervals:
        level += delta
        if level > concurrency:
            concurrency = level

    return TraceSummary(
        workload=trace.workload, os_name=trace.os_name,
        timers=len(timer_ids), concurrency=concurrency, accesses=accesses,
        user_space=user, kernel=kernel, set_count=set_count,
        expired=expired, canceled=canceled)


def summary_table(summaries: list[TraceSummary]) -> str:
    """Render summaries side by side, like the paper's tables."""
    if not summaries:
        return "(no traces)"
    names = [s.workload for s in summaries]
    rows = ["Timers", "Concurrency", "Accesses", "User-space", "Kernel",
            "Set", "Expired", "Canceled"]
    width = max(12, *(len(n) + 2 for n in names))
    out = [" " * 14 + "".join(f"{n:>{width}}" for n in names)]
    for row in rows:
        cells = "".join(f"{s.as_row()[row]:>{width}}" for s in summaries)
        out.append(f"{row:<14}{cells}")
    return "\n".join(out)
