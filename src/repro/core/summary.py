"""Trace summarisation — the schema of the paper's Tables 1 and 2.

For each workload trace we report:

* **timers** — number of distinct timer structure addresses,
* **concurrency** — maximum number of simultaneously-pending timers,
* **accesses** — total accesses to the timer subsystem,
* **user-space / kernel** — split of accesses by origin,
* **set / expired / canceled** — operation totals.

Accesses are counted the way each paper table implies: on Linux every
instrumented call is an access (including ``del_timer`` on an inactive
timer and expiry processing); on Vista the ETW events hooked the
KeSet/KeCancel *calls* plus thread unblocks, while ring expiry happens
inside the clock DPC — which is why Table 2's access totals are close
to set+canceled rather than including expiries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..tracing.events import FLAG_WAIT_SATISFIED, EventKind
from ..tracing.trace import Trace
from .index import as_index


@dataclass
class TraceSummary:
    """One column of Table 1 / Table 2."""

    workload: str
    os_name: str
    timers: int
    concurrency: int
    accesses: int
    user_space: int
    kernel: int
    set_count: int
    expired: int
    canceled: int

    def as_row(self) -> dict:
        return {
            "Timers": self.timers, "Concurrency": self.concurrency,
            "Accesses": self.accesses, "User-space": self.user_space,
            "Kernel": self.kernel, "Set": self.set_count,
            "Expired": self.expired, "Canceled": self.canceled,
        }


def summarize(source) -> TraceSummary:
    """Compute the Table 1/2 metrics for one trace or index (memoised
    on the :class:`~repro.core.index.TraceIndex`)."""
    index = as_index(source)
    summary = index.memo.get("summary")
    if summary is None:
        summary = index.memo["summary"] = \
            _compute_summary(index.trace, n_timers=index.n_timers)
    return summary


def max_concurrency(opens: list[int], closes: list[int]) -> int:
    """Sweep two endpoint lists (mutated: sorted in place) for the
    maximum number of simultaneously pending timers.

    Closings apply before openings at the same instant so a timer
    re-armed at time t counts as one pending timer, not two — the same
    tie-break the historical ``(ts, ±1)`` tuple sort encoded, but over
    two plain int lists (C-speed sort, no tuple per endpoint).
    """
    opens.sort()
    closes.sort()
    concurrency = level = 0
    j = 0
    n_closes = len(closes)
    for ts in opens:
        while j < n_closes and closes[j] <= ts:
            level -= 1
            j += 1
        level += 1
        if level > concurrency:
            concurrency = level
    return concurrency


def _compute_summary(trace: Trace, *,
                     n_timers: Optional[int] = None) -> TraceSummary:
    pending_since: dict[int, int] = {}
    opens: list[int] = []     # interval start timestamps
    closes: list[int] = []    # interval end timestamps
    user = kernel = 0
    set_count = expired = canceled = 0
    accesses = 0
    # ETW-style backends (Vista) expire timers inside the clock DPC, so
    # EXPIRE/INIT records are not API accesses there (§3.3).
    from ..kern.registry import backend_traits
    vista = backend_traits(trace.os_name).etw_style

    timer_ids: Optional[set] = set() if n_timers is None else None
    pending_pop = pending_since.pop
    opens_append = opens.append
    closes_append = closes.append
    SET = EventKind.SET
    EXPIRE = EventKind.EXPIRE
    CANCEL = EventKind.CANCEL
    WAIT_UNBLOCK = EventKind.WAIT_UNBLOCK
    INIT = EventKind.INIT

    for (kind, ts, timer_id, _pid, _comm, domain, _site,
         timeout_ns, expires_ns, flags, host, _cpu) in trace.events:
        if host:
            # Cluster traces: ids are per-host counters, so the same
            # raw id on two hosts is two distinct timers.
            timer_id = (host, timer_id)
        if timer_ids is not None:
            timer_ids.add(timer_id)

        if not (vista and (kind is EXPIRE or kind is INIT)):
            # Ring expiry runs inside the clock DPC, not through the
            # instrumented KeSet/KeCancel entry points.
            accesses += 1
            if domain == "user":
                user += 1
            else:
                kernel += 1

        if kind is SET:
            set_count += 1
            start = pending_pop(timer_id, None)
            if start is not None:
                opens_append(start)
                closes_append(ts)
            pending_since[timer_id] = ts
        elif kind is EXPIRE:
            expired += 1
            start = pending_pop(timer_id, None)
            if start is not None:
                opens_append(start)
                closes_append(ts)
        elif kind is CANCEL:
            if expires_ns is not None:    # was actually pending
                canceled += 1
            start = pending_pop(timer_id, None)
            if start is not None:
                opens_append(start)
                closes_append(ts)
        elif kind is WAIT_UNBLOCK:
            # One event describes a whole blocked interval; it occupied
            # a ring slot between block and unblock.
            if timeout_ns is not None:
                set_count += 1
                if flags & FLAG_WAIT_SATISFIED:
                    canceled += 1
                else:
                    expired += 1
                opens_append(expires_ns)   # block ts
                closes_append(ts)

    for start in pending_since.values():
        opens_append(start)
        closes_append(trace.duration_ns)

    return TraceSummary(
        workload=trace.workload, os_name=trace.os_name,
        timers=len(timer_ids) if timer_ids is not None else n_timers,
        concurrency=max_concurrency(opens, closes), accesses=accesses,
        user_space=user, kernel=kernel, set_count=set_count,
        expired=expired, canceled=canceled)


def summary_table(summaries: list[TraceSummary]) -> str:
    """Render summaries side by side, like the paper's tables."""
    if not summaries:
        return "(no traces)"
    names = [s.workload for s in summaries]
    rows = ["Timers", "Concurrency", "Accesses", "User-space", "Kernel",
            "Set", "Expired", "Canceled"]
    width = max(12, *(len(n) + 2 for n in names))
    out = [" " * 14 + "".join(f"{n:>{width}}" for n in names)]
    for row in rows:
        cells = "".join(f"{s.as_row()[row]:>{width}}" for s in summaries)
        out.append(f"{row:<14}{cells}")
    return "\n".join(out)
