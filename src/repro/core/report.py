"""One-shot study report generation.

Runs the paper's workloads and renders every analysis into a single
markdown document — the shape of the paper's evaluation section,
regenerated from scratch.  Used by ``timerstudy report``.
"""

from __future__ import annotations

import io

from ..sim.clock import MINUTE
from ..tracing.trace import Trace
from .adaptivity import adaptivity_report
from .classify import pattern_breakdown
from .durations import duration_scatter, render_scatter
from .nesting import render_nesting
from .origins import origin_table, render_origin_table
from .rates import rate_series, render_rates
from .summary import summarize, summary_table
from .values import render_histogram, round_value_share, value_histogram

WORKLOADS = ("idle", "skype", "firefox", "webserver")
X_COMMS = ("Xorg", "icewm")


def host_rollup(trace) -> str:
    """Per-host Table 1/2 columns for a merged cluster trace.

    Splits the timeline by the events' ``host`` stamp and summarises
    each host's slice side by side.  Returns ``""`` for a single-host
    trace (no event carries a nonzero host id), so callers can append
    the section only when it says something.
    """
    events = getattr(trace, "events", None)
    iterator = events if events is not None else trace.iter_events()
    by_host: dict[int, list] = {}
    for event in iterator:
        by_host.setdefault(event[10], []).append(event)
    hosts = sorted(host for host in by_host if host)
    if not hosts:
        return ""
    summaries = [summarize(Trace(os_name=trace.os_name,
                                 workload=f"host {host}",
                                 duration_ns=trace.duration_ns,
                                 events=by_host[host]))
                 for host in hosts]
    return summary_table(summaries)


def render_analysis(source, *, filter_x: bool = False) -> str:
    """Render the ``timerstudy analyze`` battery for one trace.

    ``source`` is anything :func:`~repro.core.analyze.analyze`
    accepts, including an already-built
    :class:`~repro.core.analyze.Analysis`.  Sections that need the
    full trace in memory (adaptivity, nesting, the ``--filter-x``
    histogram variant) degrade to a one-line note on a streaming
    analysis instead of failing.
    """
    from .analyze import Analysis, analyze

    analysis = source if isinstance(source, Analysis) else analyze(source)
    out = io.StringIO()
    out.write(f"Trace: {analysis.os_name}/{analysis.workload}, "
              f"{analysis.n_events} events over "
              f"{analysis.duration_ns / MINUTE:.1f} virtual minutes\n\n")
    out.write("=== Summary (Tables 1/2 schema) ===\n")
    out.write(summary_table([analysis.summary()]) + "\n")

    if analysis.mode == "batch":
        rollup = host_rollup(analysis.trace)
        if rollup:
            out.write("\n=== Per-host rollup (cluster trace) ===\n")
            out.write(rollup + "\n")

    out.write("\n=== Usage patterns (Figure 2 schema) ===\n")
    for name, pct in analysis.pattern_breakdown().figure2_row().items():
        out.write(f"  {name:<10} {pct:5.1f}%\n")

    out.write("\n=== Common timeout values (Figures 3-7 schema) ===\n")
    if filter_x and analysis.mode == "batch":
        hist = value_histogram(analysis.trace.without_comms(X_COMMS))
    else:
        if filter_x:
            out.write("(--filter-x ignored: streaming analysis)\n")
        hist = analysis.value_histogram()
    out.write(render_histogram(hist) + "\n")
    out.write(f"round-number share: "
              f"{round_value_share(hist) * 100:.1f}%\n")

    out.write("\n=== Observed durations (Figures 8-11 schema) ===\n")
    scatter = analysis.duration_scatter()
    out.write(render_scatter(scatter) + "\n")
    out.write(f"late deliveries (>100% of set value): "
              f"{scatter.share_above_100pct() * 100:.1f}%\n")

    out.write("\n=== Origins (Table 3 schema) ===\n")
    out.write(render_origin_table(analysis.origin_table(min_sets=5))
              + "\n")

    out.write("\n=== Value adaptivity (Section 4.2's claim) ===\n")
    if analysis.supports("adaptivity"):
        out.write(analysis.adaptivity().render() + "\n")
    else:
        out.write("(unavailable on a streaming analysis)\n")

    if analysis.supports("nesting"):
        nested = analysis.nesting()
        if nested:
            out.write("\n=== Inferred nested timeouts "
                      "(Section 5.2) ===\n")
            out.write(render_nesting(nested[:10]) + "\n")
    return out.getvalue()


def render_sec51(result) -> str:
    """Render a Section 5.1 policy × condition grid as fixed tables.

    ``result`` is a :class:`repro.study.sec51.Sec51Result`.  One table
    per backend × condition, policies as rows — the Table-style
    comparison the paper sketches in prose.  All numbers use fixed
    formats so the text is byte-identical across ``--jobs`` worker
    counts and repeated seeds.
    """
    from ..sim.netmodel import get_condition
    from ..study.sec51 import WARMUP_WAITS

    out = io.StringIO()
    out.write("=== Section 5.1: adaptive vs fixed timeout policies "
              "===\n")
    out.write(f"seed {result.seed}; {result.hosts} host(s) x "
              f"{result.cpus} CPU(s); first {WARMUP_WAITS} waits per "
              "cell train the estimators (uncounted)\n")
    for backend in result.backends:
        connections, waits = result.populations[backend]
        out.write(f"population {backend:<8} {connections:6d} "
                  f"connections  {waits:8d} request waits\n")
    header = (f"{'policy':<10} {'spurious':>9} {'det p50 s':>10} "
              f"{'det p99 s':>10} {'det max s':>10} "
              f"{'wakeups/conn':>13} {'relearns':>9} "
              f"{'timeout s':>10}")
    for backend in result.backends:
        for condition in result.conditions:
            spec = get_condition(condition)
            out.write(f"\n--- {backend} / {condition}")
            if spec.description:
                out.write(f" ({spec.description})")
            out.write(" ---\n")
            out.write(header + "\n")
            for policy in result.policies:
                cell = result.cell(backend, condition, policy)
                out.write(
                    f"{cell.policy:<10} "
                    f"{cell.spurious_rate:>9.4f} "
                    f"{cell.detection_p50:>10.3f} "
                    f"{cell.detection_p99:>10.3f} "
                    f"{cell.detection_max:>10.3f} "
                    f"{cell.wakeups_per_connection:>13.4f} "
                    f"{cell.relearned:>9d} "
                    f"{cell.timeout_last:>10.3f}\n")
    return out.getvalue()


def generate_report(*, minutes: float = 2.0, seed: int = 0,
                    progress=None, jobs=None,
                    collect_metrics: bool = False):
    """Run the full study and return it as markdown.

    ``progress`` is an optional callable receiving status strings.
    ``jobs`` is the number of parallel simulation processes (``None``
    = one per CPU); the rendered report is identical either way.
    ``collect_metrics=True`` returns ``(text, MetricsSnapshot)`` with
    every run's metrics merged; the text is byte-identical to a
    metrics-off run.
    """
    from ..workloads import run_study_traces

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    duration = int(minutes * MINUTE)
    out = io.StringIO()
    out.write("# Timer usage study report\n\n")
    out.write(f"Workload length: {minutes:g} virtual minutes "
              f"(paper: 30).  Seed {seed}.\n\n")

    from ..cli import study_backends
    from ..kern import backend_traits
    backends = study_backends()
    order = [(os_name, workload) for os_name in backends
             for workload in WORKLOADS] + [("vista", "desktop")]
    for os_name, workload in order:
        note(f"tracing {os_name}/{workload}")
    trace_jobs = [(os_name, workload,
                   None if workload == "desktop" else duration, seed)
                  for os_name, workload in order]
    results = run_study_traces(trace_jobs, processes=jobs,
                               collect_metrics=collect_metrics)
    snapshot = None
    if collect_metrics:
        from ..obs import MetricsSnapshot
        snapshot = MetricsSnapshot.merge(snap for _, snap in results)
        results = [trace for trace, _ in results]
    traces: dict[tuple[str, str], Trace] = dict(zip(order, results))

    for os_name in backends:
        table = backend_traits(os_name).table_label
        out.write(f"## {table}: {os_name} trace summary\n\n```\n")
        out.write(summary_table([summarize(traces[(os_name, wl)])
                                 for wl in WORKLOADS]))
        out.write("\n```\n\n")

    out.write("## Figure 2: Linux usage patterns (% of timers)\n\n```\n")
    for workload in WORKLOADS:
        row = pattern_breakdown(traces[("linux", workload)]).figure2_row()
        cells = "  ".join(f"{k}={v:5.1f}" for k, v in row.items())
        out.write(f"{workload:<10} {cells}\n")
    out.write("```\n\n")

    out.write("## Figures 3/5: common Linux values "
              "(webserver, X filtered)\n\n```\n")
    web = traces[("linux", "webserver")].without_comms(X_COMMS)
    hist = value_histogram(web)
    out.write(render_histogram(hist))
    out.write(f"\nround-number share: "
              f"{round_value_share(hist) * 100:.1f}%\n```\n\n")

    out.write("## Figure 6: Linux syscall values (skype)\n\n```\n")
    out.write(render_histogram(value_histogram(
        traces[("linux", "skype")], domain="user")))
    out.write("\n```\n\n")

    out.write("## Figure 7: Vista values (skype)\n\n```\n")
    out.write(render_histogram(value_histogram(
        traces[("vista", "skype")])))
    out.write("\n```\n\n")

    out.write("## Table 3: Linux timeout origins (webserver)\n\n```\n")
    out.write(render_origin_table(origin_table(
        traces[("linux", "webserver")], min_sets=5)))
    out.write("\n```\n\n")

    for workload, figure in zip(WORKLOADS, ("8", "9", "10", "11")):
        out.write(f"## Figure {figure}: durations, {workload}\n\n")
        for os_name in backends:
            scatter = duration_scatter(traces[(os_name, workload)])
            out.write(f"{os_name} (late deliveries "
                      f"{scatter.share_above_100pct() * 100:.0f}%):\n\n"
                      "```\n")
            out.write(render_scatter(scatter))
            out.write("\n```\n\n")

    out.write("## Section 4.2: value adaptivity\n\n```\n")
    for workload in WORKLOADS:
        report = adaptivity_report(traces[("linux", workload)])
        out.write(f"--- {workload} ---\n{report.render()}\n")
    out.write("```\n\n")

    out.write("## Figure 1: Vista desktop set rates\n\n```\n")
    out.write(render_rates(rate_series(traces[("vista", "desktop")]),
                           groups=["Outlook", "Browser", "System",
                                   "Kernel"], max_rows=12))
    out.write("\n```\n")
    if collect_metrics:
        return out.getvalue(), snapshot
    return out.getvalue()
