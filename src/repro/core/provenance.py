"""Timer provenance and dependency tracking (the paper's Section 5.2).

The paper enumerates the relationships two timers ``t1`` and ``t2`` can
have — overlap cases (a) max-significant, (b) min-significant,
(c) neither-need-expire, and dependency (``t2`` is set only on
cancellation/expiry of ``t1``) — and observes that overlapping
relationships can be rewritten into dependency form, reducing the
number of concurrently installed timers.

:class:`DependencyGraph` lets callers declare those relationships and
answers the optimisation questions; :class:`LayeredTimeoutStack` models
the nested-timeout provenance chains of layered software (the
Section 2.2.2 file-browser example), tracking how long a failure takes
to propagate to the top of the stack versus the underlying detection
time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional


class Relation(enum.Enum):
    """Section 5.2's timer relationships."""

    #: t1 overlaps t2; either just t1, or both expiring signal failure:
    #: effective expiry is max(t1, t2) and t2 is redundant (DHCP 4.4.5).
    OVERLAP_MAX = "overlap-max"
    #: only t2 need expire: effective expiry min(t1, t2); t1 redundant.
    OVERLAP_MIN = "overlap-min"
    #: neither need expire; cancelling one should cancel the other
    #: (TCP keepalive vs retransmission).
    OVERLAP_CANCEL = "overlap-cancel"
    #: t2 is set only upon cancellation/expiry of t1.  Periodic timers
    #: are self-dependent.
    DEPENDS = "depends"


@dataclass
class DeclaredTimer:
    """A timer as known to the provenance layer."""

    name: str
    timeout_ns: int
    layer: str = ""           #: which software layer installed it
    parent: Optional[str] = None   #: enclosing timeout, if nested


class DependencyGraph:
    """Declared timers plus relations, with the 5.2 optimisations."""

    def __init__(self) -> None:
        self.timers: dict[str, DeclaredTimer] = {}
        self.relations: list[tuple[str, str, Relation]] = []

    def declare(self, name: str, timeout_ns: int, *, layer: str = "",
                parent: Optional[str] = None) -> DeclaredTimer:
        if name in self.timers:
            raise ValueError(f"timer {name!r} already declared")
        timer = DeclaredTimer(name, timeout_ns, layer, parent)
        self.timers[name] = timer
        return timer

    def relate(self, first: str, second: str, relation: Relation) -> None:
        if first not in self.timers or second not in self.timers:
            raise KeyError("both timers must be declared first")
        self.relations.append((first, second, relation))

    # -- optimisation queries ------------------------------------------------

    def redundant_timers(self) -> set[str]:
        """Timers that never need to be installed concurrently.

        OVERLAP_MAX makes the shorter timer redundant (only the later
        expiry matters); OVERLAP_MIN makes the longer one redundant.
        """
        redundant: set[str] = set()
        for first, second, relation in self.relations:
            t1 = self.timers[first]
            t2 = self.timers[second]
            if relation == Relation.OVERLAP_MAX:
                loser = first if t1.timeout_ns <= t2.timeout_ns else second
                redundant.add(loser)
            elif relation == Relation.OVERLAP_MIN:
                loser = first if t1.timeout_ns >= t2.timeout_ns else second
                redundant.add(loser)
        return redundant

    def cancellation_propagation(self, cancelled: str) -> set[str]:
        """Timers that may be cancelled when ``cancelled`` is cancelled
        (the OVERLAP_CANCEL rule)."""
        out = set()
        for first, second, relation in self.relations:
            if relation != Relation.OVERLAP_CANCEL:
                continue
            if first == cancelled:
                out.add(second)
            elif second == cancelled:
                out.add(first)
        return out

    def as_dependency_chain(self, first: str, second: str
                            ) -> list[tuple[str, int]]:
        """Rewrite an overlap into a dependency (Section 5.2):
        "assuming t1 overlaps t2, set t2 only, and upon its expiry set
        t1 for the remaining time".  Returns [(name, duration)] in
        installation order — only one timer is ever armed at a time.
        """
        t1 = self.timers[first]
        t2 = self.timers[second]
        if t1.timeout_ns <= t2.timeout_ns:
            raise ValueError("overlap rewrite requires t1 to outlast t2")
        return [(second, t2.timeout_ns),
                (first, t1.timeout_ns - t2.timeout_ns)]

    def provenance_chain(self, name: str) -> list[str]:
        """Walk parents outward: the nested-timeout pedigree."""
        chain = [name]
        current = self.timers[name]
        while current.parent is not None:
            chain.append(current.parent)
            current = self.timers[current.parent]
        return chain


@dataclass
class LayerSpec:
    """One layer of a nested-timeout stack."""

    name: str
    timeout_ns: int
    retries: int = 1
    backoff_factor: float = 1.0

    def worst_case_ns(self) -> int:
        """Time this layer takes to give up, on its own."""
        total = 0.0
        value = float(self.timeout_ns)
        for _ in range(self.retries):
            total += value
            value *= self.backoff_factor
        return int(total)


class LayeredTimeoutStack:
    """The Section 2.2.2 pathology, made computable.

    Layers are ordered outermost-first.  Each layer retries its
    sublayer until its own timeout budget is exhausted.  On total
    failure of the bottom layer, :meth:`failure_detection_ns` gives the
    time until the *outermost* layer reports an error — "recovering
    from a typing error can take over a minute".
    """

    def __init__(self, layers: Iterable[LayerSpec]):
        self.layers = list(layers)
        if not self.layers:
            raise ValueError("need at least one layer")

    def failure_detection_ns(self) -> int:
        """Time for a bottom-layer failure to reach the user."""
        inner_cost = 0
        for layer in reversed(self.layers):
            own = layer.worst_case_ns()
            # A layer notices failure when either its own timeout budget
            # expires or its sublayer reports failure on every retry.
            if inner_cost == 0:
                inner_cost = own
            else:
                per_try = inner_cost
                total = 0.0
                value = float(layer.timeout_ns)
                for _ in range(layer.retries):
                    total += max(value, per_try)
                    value *= layer.backoff_factor
                inner_cost = int(min(total, max(own, per_try
                                                * layer.retries)))
        return inner_cost

    def flattened_timeout_ns(self, detection_ns: int,
                             safety: float = 3.0) -> int:
        """What a provenance-aware stack could do: a single end-to-end
        timeout derived from the true detection signal (e.g. observed
        RTT), instead of multiplicative layering."""
        return int(detection_ns * safety)
