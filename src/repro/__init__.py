"""Reproduction of "30 Seconds is Not Enough! A Study of Operating
System Timer Usage" (Peter, Baumann, Roscoe, Barham, Isaacs —
EuroSys 2008).

The package is organised the way the paper is:

* :mod:`repro.sim` — the simulated machine (virtual time, interrupt
  devices, power accounting).
* :mod:`repro.linuxkern` / :mod:`repro.vistakern` — faithful models of
  the two studied timer subsystems and the kernel code that uses them.
* :mod:`repro.tracing` — the relayfs/ETW-style instrumentation of
  Section 3.
* :mod:`repro.workloads` — the Idle/Skype/Firefox/Webserver workloads
  plus the Figure 1 desktop and the Section 2.2.2 file browser.
* :mod:`repro.core` — the paper's analyses (Tables 1–3, Figures 1–11)
  and the Section 5 design machinery (adaptive timeouts, provenance,
  flexible time specifications, use-case interfaces, the
  scheduler-activation dispatcher).

Quick start::

    from repro import analyze, run_workload
    run = run_workload("linux", "idle")
    print(analyze(run.trace).summary())

Bounded-memory variant — analyze events in flight instead of
buffering the trace::

    from repro import StreamingSuite, analyze, run_workload
    suite = StreamingSuite("linux", "idle")
    run = run_workload("linux", "idle", sinks=[suite],
                       retain_events=False)
    print(analyze(suite, duration_ns=run.trace.duration_ns).summary())
"""

from . import core, kern, linuxkern, obs, serve, sim, tracing, \
    vistakern, workloads
from .core import (Analysis, StreamingSuite, TraceIndex, analyze,
                   as_index, classify_trace, duration_scatter,
                   generate_report, origin_table, pattern_breakdown,
                   rate_series, render_analysis, summarize,
                   summary_table, value_histogram)
from .kern import (Machine, PortableApp, PortableWorkload, TimerBackend,
                   WorkloadRun, backend_names, backend_traits,
                   register_backend)
from .obs import (MetricsRegistry, MetricsSnapshot, profile,
                  render_prometheus)
from .serve import ServeConfig, ServeDaemon
from .tracing import Trace
from .workloads import (list_workloads, run_study_traces,
                        run_vista_desktop, run_workload)

__version__ = "0.1.0"

__all__ = [
    "core", "kern", "linuxkern", "obs", "serve", "sim", "tracing",
    "vistakern", "workloads",
    "MetricsRegistry", "MetricsSnapshot", "ServeConfig", "ServeDaemon",
    "profile", "render_prometheus",
    "Analysis", "StreamingSuite", "TraceIndex", "analyze", "as_index",
    "classify_trace", "duration_scatter", "generate_report",
    "origin_table", "pattern_breakdown", "rate_series",
    "render_analysis", "summarize", "summary_table", "value_histogram",
    "Machine", "PortableApp", "PortableWorkload", "TimerBackend",
    "WorkloadRun", "backend_names", "backend_traits",
    "register_backend",
    "Trace", "list_workloads", "run_study_traces", "run_vista_desktop",
    "run_workload",
    "__version__",
]
