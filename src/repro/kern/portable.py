"""OS-neutral workload definitions (the cross-OS claim, executable).

Section 4.1 finds the same usage patterns — periodic, watchdog, delay,
timeout — on both studied systems.  :class:`PortableApp` lets a
workload be written once against those patterns: its timers are armed
through ``arm_after``/``arm_periodic``/``arm_watchdog`` verbs that the
backend lowers to its native calls (``mod_timer`` on Linux,
``KeSetTimer`` on Vista).  :class:`PortableWorkload` bundles apps with
a named *scene* (the per-backend baseline registered by the workload
modules) so one definition runs on every registered backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from .machine import DEFAULT_DURATION_NS, Machine, WorkloadRun
from .protocol import PortableTimer


class PortableApp:
    """Base class for an application written against the portable
    timer verbs only — no OS-specific surface access.

    Subclasses override :meth:`start` and arm timers obtained from
    :meth:`timer`.  The app owns a task (its process) and a named rng
    stream, both derived deterministically from ``comm``.
    """

    name = "portable-app"

    def __init__(self, machine: Machine, *, comm: Optional[str] = None):
        self.machine = machine
        self.kernel = machine.kernel
        self.comm = comm if comm is not None else self.name
        self.task = self.kernel.tasks.spawn(self.comm)
        self.rng = machine.rng.stream(f"portable.{self.comm}")

    def timer(self, name: str) -> PortableTimer:
        """A fresh OS-neutral timer handle labelled ``name`` (the label
        becomes the call site, so analyses can tell the app's timers
        apart)."""
        return self.kernel.portable_timer(self.task, name=name)

    def call_after(self, delay_ns: int, callback: Callable[[], None]) -> None:
        """Schedule plain (untimed-resource) work — models the app
        doing something that is not a timer."""
        self.kernel.engine.call_after(max(1, int(delay_ns)), callback)

    def start(self) -> None:
        """Begin the app's activity; override in subclasses."""


@dataclass(frozen=True)
class PortableWorkload:
    """One workload definition that runs on any registered backend.

    ``scene`` names the per-backend baseline (registered with
    :func:`repro.kern.registry.register_scene` by the workload
    modules); ``apps`` are :class:`PortableApp` factories layered on
    top.  Either may be empty.
    """

    name: str
    scene: Optional[str] = None
    apps: Tuple[Callable[[Machine], PortableApp], ...] = ()

    def build(self, machine: Machine) -> None:
        """Assemble the workload on an existing machine."""
        if self.scene is not None:
            machine.scene(self.scene)
        if self.apps:
            started = [factory(machine) for factory in self.apps]
            for app in started:
                app.start()
            machine.components["portable_apps"] = started

    def run(self, os_name: str, duration_ns: Optional[int] = None, *,
            seed: int = 0, sinks=None,
            retain_events: bool = True) -> WorkloadRun:
        """Run this workload on the named backend."""
        machine = Machine(os_name, seed=seed, sinks=sinks,
                          retain_events=retain_events)
        self.build(machine)
        if duration_ns is None:
            duration_ns = DEFAULT_DURATION_NS
        return machine.finish(self.name, duration_ns)

    def runner(self, os_name: str) -> Callable:
        """A per-backend callable with the workload-registry signature
        (``runner(duration_ns, *, seed, sinks, retain_events)``)."""
        def run(duration_ns: int = DEFAULT_DURATION_NS, *,
                seed: int = 0, sinks=None,
                retain_events: bool = True) -> WorkloadRun:
            return self.run(os_name, duration_ns, seed=seed, sinks=sinks,
                            retain_events=retain_events)
        run.__name__ = f"run_{os_name}_{self.name}"
        run.__qualname__ = run.__name__
        return run
