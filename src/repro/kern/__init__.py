"""The portable kernel surface.

The paper's central observation is OS-independent: the same timer usage
patterns appear on both Linux 2.6.23 and Vista (Section 4.1), and the
Section 5 proposals are meant to apply to *any* kernel.  This package
is the code-level expression of that claim:

* :class:`TimerBackend` — the protocol both kernel models implement
  (arm/cancel/expire lifecycle, sink attachment, virtual-time run loop,
  clock and power accessors).
* :class:`Machine` — one generic machine harness replacing the old
  per-OS ``LinuxMachine``/``VistaMachine`` pair; it resolves everything
  OS-specific through the backend registry.
* :class:`Cluster` — N machines (possibly mixed backends) on one
  shared engine and clock, every record stamped with its host/CPU
  identity; :meth:`Cluster.finish` merges the fleet into one
  multi-host trace.
* :func:`register_backend` — the pluggable registry.  The CLI, the
  study pipeline and :func:`repro.workloads.run_workload` resolve
  backends through it instead of hard-coding ``("linux", "vista")``,
  so a Section 5.5 merged scheduler/timer backend can be added as a
  plugin rather than a third parallel stack.
* :class:`PortableApp` / :class:`PortableWorkload` — OS-neutral
  workload definitions armed through ``arm_after``/``arm_periodic``/
  ``arm_watchdog`` verbs that lower to ``mod_timer`` or ``KeSetTimer``
  per backend.

Import order matters: this module must not import the built-in
backends eagerly (they import the kernel models, which import
:mod:`repro.kern.base`).  Registration is lazy — the first registry
query imports :mod:`repro.kern.backends`.
"""

from .base import BackendBase
from .cluster import Cluster, ClusterRun
from .machine import (DEFAULT_DURATION_NS, PAPER_DURATION_NS, Machine,
                      WorkloadRun)
from .portable import PortableApp, PortableWorkload
from .protocol import PortableTimer, TimerBackend
from .registry import (BackendSpec, BackendTraits, backend_names,
                       backend_traits, get_backend, get_scene,
                       register_backend, register_scene, scene_names,
                       unregister_backend)

__all__ = [
    "BackendBase", "BackendSpec", "BackendTraits", "Cluster",
    "ClusterRun", "DEFAULT_DURATION_NS",
    "Machine", "PAPER_DURATION_NS", "PortableApp", "PortableTimer",
    "PortableWorkload", "TimerBackend", "WorkloadRun", "backend_names",
    "backend_traits", "get_backend", "get_scene", "register_backend",
    "register_scene", "scene_names", "unregister_backend",
]
