"""The backend protocol: what every simulated kernel must provide.

:class:`TimerBackend` is the structural type shared by
:class:`~repro.linuxkern.kernel.LinuxKernel` and
:class:`~repro.vistakern.ktimer.VistaKernel` (and any plugin backend).
It covers the surface the harness and the analyses rely on — the timer
lifecycle itself stays backend-specific (``mod_timer`` vs.
``KeSetTimer``) and is reached either through the OS surfaces a
:class:`~repro.kern.machine.Machine` attaches or through the portable
:meth:`TimerBackend.portable_timer` verbs.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable


@runtime_checkable
class PortableTimer(Protocol):
    """One OS-neutral timer handle (see :class:`repro.kern.portable
    .PortableApp`).

    The verbs lower to the backend's native arming calls: ``mod_timer``
    on Linux, ``KeSetTimer`` on Vista.  All values are exact
    nanoseconds as requested (user-domain semantics: no jiffy
    quantisation is applied to the recorded value).
    """

    def arm_after(self, delay_ns: int, callback: Callable[[], None]) -> None:
        """One-shot: fire ``callback`` after ``delay_ns``."""
        ...

    def arm_periodic(self, period_ns: int,
                     callback: Callable[[], None]) -> None:
        """Fire every ``period_ns``, re-armed from the expiry path."""
        ...

    def arm_watchdog(self, timeout_ns: int,
                     callback: Callable[[], None]) -> None:
        """Arm (or push back) a guard that fires unless re-armed or
        cancelled before ``timeout_ns`` elapses."""
        ...

    def cancel(self) -> bool:
        """Disarm; True if the timer was pending."""
        ...

    @property
    def pending(self) -> bool:
        ...


@runtime_checkable
class TimerBackend(Protocol):
    """One simulated kernel, as seen by the OS-neutral harness.

    Attributes (not enforced by ``isinstance``, which checks methods
    only): ``os_name``, ``engine``, ``tasks``, ``rng``, ``sites``,
    ``sink``, and ``power`` (the :class:`~repro.sim.power.PowerMeter`
    charged by the backend's tick devices).
    """

    def attach_sink(self, sink) -> None:
        """Fan the live event stream out to an extra sink."""
        ...

    def run_for(self, duration_ns: int) -> None:
        """Advance the machine by ``duration_ns`` of virtual time."""
        ...

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds (the clock accessor)."""
        ...

    def portable_timer(self, owner, *, name: str,
                       domain: str = "user") -> PortableTimer:
        """Allocate an OS-neutral timer handle owned by ``owner``."""
        ...
