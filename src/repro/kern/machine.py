"""The generic machine harness.

One :class:`Machine` replaces the old ``LinuxMachine``/``VistaMachine``
pair: the sink chain, ``retain_events`` handling and trace
finalisation were already identical, and everything that differed
(kernel construction, trace buffer, OS API surfaces) comes from the
backend's :class:`~repro.kern.registry.BackendSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..sim.clock import MINUTE
from ..tracing.trace import Trace
from .protocol import TimerBackend
from .registry import get_backend, get_scene

#: The paper's trace length.
PAPER_DURATION_NS = 30 * MINUTE
#: Default for benchmarks: long enough for 7 decades of timeout values
#: to show their behaviour, short enough to iterate on.
DEFAULT_DURATION_NS = 5 * MINUTE


@dataclass
class WorkloadRun:
    """Everything produced by one workload execution."""

    trace: Trace
    kernel: TimerBackend
    components: dict = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return self.trace.duration_ns

    @property
    def power(self):
        """The kernel's :class:`~repro.sim.power.PowerMeter`."""
        return self.kernel.power

    def power_snapshot(self) -> dict:
        """Headline power numbers over this run's duration."""
        return self.kernel.power.snapshot(self.trace.duration_ns)

    def metrics(self, *, registry=None, sinks: Iterable = (),
                labels: Optional[dict] = None):
        """Collect every layer of this run into a
        :class:`~repro.obs.metrics.MetricsSnapshot`.

        Pure pull collection over already-maintained counters — calling
        it never changes simulation state, so it can be taken at any
        point (and repeatedly).  ``sinks`` adds reducers that were
        passed to the runner rather than attached to the kernel.
        """
        from ..obs.collect import collect_run
        return collect_run(self, registry=registry, sinks=sinks,
                           labels=labels)


class Machine:
    """A simulated box for any registered backend, ready for apps.

    ``sinks`` are extra live sinks (e.g. streaming reducers) attached
    in front of the trace buffer; with ``retain_events=False`` the
    buffer is replaced by a :class:`~repro.tracing.relay.NullSink` so
    only the attached reducers see the stream — O(active timers)
    memory instead of O(events).

    The backend's spec attaches the OS API surfaces: Linux machines
    grow ``machine.syscalls``, Vista machines ``machine.waits`` /
    ``machine.ntapi`` / ``machine.waitable`` / ``machine.winsock``.
    Component builders record what they assembled in
    ``machine.components``; :meth:`finish` hands the accumulated dict
    to the :class:`WorkloadRun`.

    Cluster identity: ``host_id`` names this machine inside a
    :class:`~repro.kern.cluster.Cluster` (0 — the default — means a
    standalone box and leaves the event stream untouched; cluster
    members are numbered from 1 and every record they emit is stamped
    through a :class:`~repro.tracing.relay.HostStampSink`).  ``cpus``
    shards the engine's timing wheel per CPU
    (:class:`~repro.sim.sched.ShardedWheelScheduler`); dispatch order
    — and therefore the trace — is identical at any CPU count, so
    ``cpus`` is purely a scalability/topology knob.  ``engine`` lets a
    cluster put several machines on one shared clock.
    """

    def __init__(self, os_name: str, *, seed: int = 0,
                 sinks: Optional[Iterable] = None,
                 retain_events: bool = True, host_id: int = 0,
                 cpus: int = 1, engine=None):
        from ..tracing.relay import HostStampSink, NullSink
        if host_id < 0 or host_id > 0xFF:
            raise ValueError(f"host_id must be in 0..255, got {host_id}")
        if cpus < 1 or cpus > 0xFFFF:
            raise ValueError(f"cpus must be in 1..65535, got {cpus}")
        spec = get_backend(os_name)
        self.os_name = spec.name
        self.retain_events = retain_events
        self.host_id = host_id
        self.cpus = cpus
        self.buffer = spec.buffer_factory() if retain_events else NullSink()
        kernel_sink = HostStampSink(self.buffer, host_id, cpus) \
            if host_id else self.buffer
        if engine is None and cpus > 1:
            from ..sim.engine import Engine
            from ..sim.sched import ShardedWheelScheduler
            engine = Engine(scheduler=ShardedWheelScheduler(cpus))
        kwargs = dict(seed=seed, sink=kernel_sink)
        if engine is not None:
            kwargs["engine"] = engine
        self.kernel: TimerBackend = spec.kernel_factory(**kwargs)
        self.rng = self.kernel.rng
        self.power = self.kernel.power
        self.components: dict = {}
        if spec.surfaces is not None:
            spec.surfaces(self)
        for sink in sinks or ():
            if host_id:
                # Live reducers see the same stamped records the trace
                # buffer stores.
                sink = HostStampSink(sink, host_id, cpus)
            self.kernel.attach_sink(sink)

    def scene(self, name: str, **kwargs) -> dict:
        """Build a registered scene (the OS-appropriate baseline) on
        this machine and merge its components.

        Returns ``self.components`` so callers can layer further apps
        into the same dict the :class:`WorkloadRun` will carry.
        """
        built = get_scene(self.os_name, name)(self, **kwargs)
        if built:
            self.components.update(built)
        return self.components

    def finish(self, workload: str, duration_ns: int) -> WorkloadRun:
        self.kernel.run_for(duration_ns)
        events = list(self.buffer) if self.retain_events else []
        trace = Trace(os_name=self.os_name, workload=workload,
                      duration_ns=duration_ns, events=events)
        return WorkloadRun(trace, self.kernel,
                           components=dict(self.components))
