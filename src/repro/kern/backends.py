"""Built-in backend registrations (imported lazily by the registry).

This is the only module that knows both kernel models; it maps each
onto the registry so everything above (machine harness, workloads,
CLI, study pipeline) stays OS-agnostic.
"""

from __future__ import annotations

from ..linuxkern.kernel import LinuxKernel
from ..linuxkern.syscalls import SyscallInterface
from ..tracing.etw import EtwSession
from ..tracing.relay import RelayBuffer
from ..vistakern.dispatcher import DispatcherWaits
from ..vistakern.ktimer import VistaKernel
from ..vistakern.ntapi import NtTimerApi
from ..vistakern.win32 import WaitableTimers
from ..vistakern.winsock import Winsock
from .registry import BackendTraits, register_backend


def _linux_surfaces(machine) -> None:
    machine.syscalls = SyscallInterface(machine.kernel)


def _vista_surfaces(machine) -> None:
    machine.waits = DispatcherWaits(machine.kernel)
    machine.ntapi = NtTimerApi(machine.kernel)
    machine.waitable = WaitableTimers(machine.ntapi)
    machine.winsock = Winsock(machine.kernel)


register_backend(
    "linux",
    kernel_factory=LinuxKernel,
    buffer_factory=RelayBuffer,
    surfaces=_linux_surfaces,
    traits=BackendTraits(logical_timers=False, etw_style=False,
                         jiffy_values=True, table_label="Table 1",
                         collector_names=("wheel",)))

register_backend(
    "vista",
    kernel_factory=VistaKernel,
    buffer_factory=EtwSession,
    surfaces=_vista_surfaces,
    traits=BackendTraits(logical_timers=True, etw_style=True,
                         jiffy_values=False, table_label="Table 2",
                         collector_names=("ktimer",)))
