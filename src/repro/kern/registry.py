"""The backend registry — pluggable OS models (Section 5.5 direction).

Everything OS-specific the harness and the analyses used to hard-code
behind ``("linux", "vista")`` tuples is resolved here instead:

* :func:`register_backend` installs a :class:`BackendSpec` — how to
  build the kernel and its trace buffer, which syscall-ish surfaces to
  attach to a :class:`~repro.kern.machine.Machine`, and the backend's
  analysis :class:`BackendTraits`.
* :func:`backend_traits` answers the questions the core analyses used
  to ask with ``os_name == "vista"`` string compares: does this OS need
  call-site clustering (Section 3.3)?  ETW-style wait events?  Jiffy
  quantisation of kernel-domain values?
* :func:`register_scene` maps a per-backend *scene* name (the
  components of a booted system, e.g. the idle baseline) to its
  builder, letting one portable workload definition resolve the
  OS-appropriate baseline by name.

The built-in backends register lazily: the first query imports
:mod:`repro.kern.backends`, which imports the kernel models.  This
module itself must import nothing from them (they import
:mod:`repro.kern.base`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class BackendTraits:
    """How the analyses should treat traces from one backend."""

    #: Timers must be correlated by (call-site, pid) cluster rather
    #: than by address — the Vista lookaside-reuse problem (§3.3).
    logical_timers: bool
    #: ETW-style instrumentation: expiry runs inside the clock DPC (so
    #: EXPIRE/INIT are not API accesses) and blocked-thread timeouts
    #: arrive as retroactive WAIT_UNBLOCK records (§3.3).
    etw_style: bool
    #: Kernel-domain observed values are quantised back to whole
    #: jiffies (§3.1's Linux recovery rule).
    jiffy_values: bool
    #: Heading used for the per-backend summary table in study output.
    table_label: str
    #: Named telemetry collectors this backend contributes beyond the
    #: backend-neutral set (engine, power, sinks, streaming).  Names
    #: resolve through the :mod:`repro.serve.collectors` factory
    #: registry, so a plugin backend ships its collector alongside its
    #: kernel model ("wheel" for the Linux tvec forest, "ktimer" for
    #: the Vista ring/lookaside/coalescing counters).
    collector_names: tuple = ()

    def collectors(self) -> tuple:
        """Backend-specific collector names for ``timerstudy serve``."""
        return self.collector_names

    @classmethod
    def defaults_for(cls, os_name: str) -> "BackendTraits":
        """Traits for an unregistered name: vista-style correlation only
        when the name says so, preserving the historical behaviour of
        the string-compare branches."""
        vista_like = os_name == "vista"
        return cls(logical_timers=vista_like, etw_style=vista_like,
                   jiffy_values=os_name == "linux",
                   table_label=f"Summary: {os_name}")


@dataclass(frozen=True)
class BackendSpec:
    """One registered backend."""

    name: str
    #: ``kernel_factory(seed=..., sink=...) -> TimerBackend``.
    kernel_factory: Callable
    #: Builds the retained trace buffer (relayfs / ETW session).
    buffer_factory: Callable
    #: ``surfaces(machine)``: attach the OS API surfaces (syscall
    #: layer, dispatcher waits, winsock, ...) to a Machine.  May be
    #: ``None`` for bare backends.
    surfaces: Optional[Callable]
    traits: BackendTraits


_BACKENDS: dict[str, BackendSpec] = {}
_SCENES: dict[tuple[str, str], Callable] = {}
_TRAITS_CACHE: dict[str, BackendTraits] = {}
_builtin_loaded = False


def _ensure_builtin() -> None:
    global _builtin_loaded
    if not _builtin_loaded:
        _builtin_loaded = True
        from . import backends  # noqa: F401  (registers linux + vista)


def register_backend(name: str, *, kernel_factory: Callable,
                     buffer_factory: Callable,
                     surfaces: Optional[Callable] = None,
                     traits: Optional[BackendTraits] = None,
                     replace: bool = False) -> BackendSpec:
    """Install a backend under ``name``.

    ``traits=None`` falls back to :meth:`BackendTraits.defaults_for`.
    Re-registering an existing name raises unless ``replace=True``.
    """
    if name in _BACKENDS and not replace:
        raise ValueError(f"backend {name!r} already registered")
    if traits is None:
        traits = BackendTraits.defaults_for(name)
    spec = BackendSpec(name, kernel_factory, buffer_factory, surfaces,
                       traits)
    _BACKENDS[name] = spec
    _TRAITS_CACHE[name] = traits
    return spec


def unregister_backend(name: str) -> None:
    """Remove a backend (plugin teardown / tests)."""
    _BACKENDS.pop(name, None)
    _TRAITS_CACHE.pop(name, None)
    for key in [key for key in _SCENES if key[0] == name]:
        del _SCENES[key]


def get_backend(os_name: str) -> BackendSpec:
    _ensure_builtin()
    spec = _BACKENDS.get(os_name)
    if spec is None:
        raise KeyError(f"unknown backend {os_name!r}; registered: "
                       f"{backend_names()}")
    return spec


def backend_names() -> tuple[str, ...]:
    """Registered backend names, in registration order (built-ins
    first: linux, vista)."""
    _ensure_builtin()
    return tuple(_BACKENDS)


def backend_traits(os_name: str) -> BackendTraits:
    """Analysis traits for ``os_name`` (cheap: called per event in the
    hot value-recovery path)."""
    traits = _TRAITS_CACHE.get(os_name)
    if traits is None:
        _ensure_builtin()
        traits = _TRAITS_CACHE.get(os_name)
        if traits is None:
            traits = _TRAITS_CACHE[os_name] = \
                BackendTraits.defaults_for(os_name)
    return traits


# -- scenes ---------------------------------------------------------------

def register_scene(os_name: str, scene: str, builder: Callable) -> None:
    """Map a scene name to its per-backend builder.

    ``builder(machine, **kwargs)`` assembles the baseline components
    (daemons, subsystems, background processes) and returns them as a
    dict, which :meth:`repro.kern.machine.Machine.scene` merges into
    ``machine.components``.
    """
    _SCENES[(os_name, scene)] = builder


def get_scene(os_name: str, scene: str) -> Callable:
    builder = _SCENES.get((os_name, scene))
    if builder is None:
        raise KeyError(
            f"no scene {scene!r} for backend {os_name!r}; known: "
            f"{scene_names(os_name)}")
    return builder


def scene_names(os_name: str) -> tuple[str, ...]:
    return tuple(scene for name, scene in _SCENES if name == os_name)
