"""Multi-host cluster scenes: N machines on one engine and clock.

The paper's serverfarm measurements stop at one box; the datacenter
the north star describes is a *fleet* of them.  A :class:`Cluster`
instantiates N :class:`~repro.kern.machine.Machine` instances —
possibly mixed backends — on one shared
:class:`~repro.sim.engine.Engine`, so every host advances on the same
virtual clock and the merged trace is one coherent timeline.

Identity threading (the whole point of the layer):

* hosts are numbered **1..N** — id 0 is reserved for standalone
  single-machine runs, so "is this a cluster record?" is a single
  truthiness test on ``event.host`` everywhere downstream;
* each machine's kernel emits through a
  :class:`~repro.tracing.relay.HostStampSink`, which rewrites every
  record with the host id and a per-CPU affinity hash of its timer
  id, carried to disk by the binfmt2 v3 columns;
* with ``cpus > 1`` the shared engine runs a
  :class:`~repro.sim.sched.ShardedWheelScheduler` — one wheel shard
  per CPU, dispatch order still byte-identical to a single wheel;
* per-host seeds are derived as ``seed + host_id``, so a cluster run
  is exactly as reproducible as a single-machine one, and host 1 of a
  one-host cluster is *not* the same stream as a standalone run
  (standalone remains the byte-identical legacy path).

Determinism of the merge: each host's buffer holds its records in
emission order; the merged trace sorts stably by timestamp, so ties
resolve host-1-before-host-2 and, within a host, emission order —
independent of anything but the trace data.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from ..sim.engine import Engine
from ..tracing.trace import Trace
from .machine import Machine, WorkloadRun
from .registry import get_scene

__all__ = ["Cluster", "ClusterRun"]


class ClusterRun:
    """Everything produced by one cluster execution.

    ``trace`` is the merged multi-host timeline (every event carries
    ``host``/``cpu``); ``runs`` holds one per-host
    :class:`WorkloadRun` over that host's own slice, in host order.
    """

    def __init__(self, trace: Trace, runs: Sequence[WorkloadRun],
                 cluster: "Cluster"):
        self.trace = trace
        self.runs = list(runs)
        self.cluster = cluster
        #: The shared engine all hosts ran on.
        self.engine = cluster.engine
        #: Mirrors WorkloadRun.kernel: host 1's backend instance.
        self.kernel = self.runs[0].kernel if self.runs else None
        self.components: dict = {}
        for run in self.runs:
            self.components.update(run.components)

    @property
    def duration_ns(self) -> int:
        return self.trace.duration_ns

    @property
    def hosts(self) -> int:
        return len(self.runs)

    def host_run(self, host_id: int) -> WorkloadRun:
        """The per-host run for machine ``host_id`` (1-based)."""
        if not 1 <= host_id <= len(self.runs):
            raise IndexError(f"host_id must be in 1..{len(self.runs)}, "
                             f"got {host_id}")
        return self.runs[host_id - 1]

    def metrics(self, *, registry=None, sinks: Iterable = (),
                labels: Optional[dict] = None):
        """One snapshot over the whole fleet, every series labelled by
        ``host`` — the cluster analogue of ``WorkloadRun.metrics``."""
        from ..obs.collect import collect_run
        from ..obs.metrics import MetricsRegistry
        registry = registry if registry is not None else MetricsRegistry()
        snapshot = None
        for host_id, run in enumerate(self.runs, start=1):
            host_labels = {"os": run.trace.os_name,
                           "workload": run.trace.workload,
                           "host": str(host_id)}
            if labels:
                host_labels.update(labels)
            snapshot = collect_run(run, registry=registry,
                                   sinks=sinks, labels=host_labels)
        return snapshot


class Cluster:
    """A fleet of machines sharing one virtual clock.

    ``backends`` is either one backend name (every host runs it) or a
    sequence of names, one per host — a mixed-backend cluster is just
    ``Cluster(["linux", "vista"], ...)``.  ``hosts`` sizes a
    homogeneous cluster when ``backends`` is a single name.
    """

    def __init__(self, backends: Union[str, Sequence[str]], *,
                 hosts: Optional[int] = None, seed: int = 0,
                 cpus: int = 1, sinks: Optional[Iterable] = None,
                 retain_events: bool = True):
        if isinstance(backends, str):
            names = [backends] * (hosts if hosts is not None else 1)
        else:
            names = list(backends)
            if hosts is not None and hosts != len(names):
                raise ValueError(
                    f"hosts={hosts} disagrees with {len(names)} "
                    f"backend names")
        if not names:
            raise ValueError("a cluster needs at least one host")
        if len(names) > 0xFF:
            raise ValueError(
                f"at most 255 hosts per cluster, got {len(names)}")
        self.cpus = cpus
        self.seed = seed
        scheduler = f"sharded:{cpus}" if cpus > 1 else None
        self.engine = Engine(scheduler=scheduler)
        #: Machines in host order; ids are 1-based.
        self.machines = [
            Machine(os_name, seed=seed + host_id, host_id=host_id,
                    cpus=cpus, engine=self.engine, sinks=sinks,
                    retain_events=retain_events)
            for host_id, os_name in enumerate(names, start=1)]

    @property
    def hosts(self) -> int:
        return len(self.machines)

    def scene(self, name: str, **kwargs) -> "Cluster":
        """Build the registered scene ``name`` on every host.

        Per-host keyword overrides are not needed for the built-in
        scenes — each host already gets its own RNG stream via its
        seed, so N serverfarm hosts churn independently.
        """
        for machine in self.machines:
            # Resolve per machine so mixed clusters pick each host's
            # own backend variant of the scene.
            get_scene(machine.os_name, name)
            machine.scene(name, **kwargs)
        return self

    def finish(self, workload: str, duration_ns: int) -> ClusterRun:
        """Advance the shared clock once, then merge the fleet's traces.

        Unlike ``Machine.finish`` this runs the engine exactly once for
        all hosts — they shared it the whole time — and builds both the
        per-host traces and the merged cluster timeline.
        """
        self.engine.run_until(self.engine.now + duration_ns)
        runs = []
        merged = []
        for machine in self.machines:
            events = list(machine.buffer) if machine.retain_events else []
            trace = Trace(os_name=machine.os_name, workload=workload,
                          duration_ns=duration_ns, events=events)
            runs.append(WorkloadRun(trace, machine.kernel,
                                    components=dict(machine.components)))
            merged.extend(events)
        # Stable by timestamp: equal-ts ties fall back to host order
        # (the extend order), then per-host emission order.
        merged.sort(key=lambda event: event[1])
        trace = Trace(os_name=self.machines[0].os_name,
                      workload=workload, duration_ns=duration_ns,
                      events=merged)
        return ClusterRun(trace, runs, self)
