"""Shared backend behaviour.

Both kernel models used to carry their own copies of the sink fan-out
and the run loop; :class:`BackendBase` is the single implementation.
Subclasses that cache the sink reference elsewhere (Linux keeps one per
``tvec_base``) override :meth:`_sink_rebound` to propagate the tee.
"""

from __future__ import annotations


class BackendBase:
    """Concrete mixin implementing the :class:`~repro.kern.protocol
    .TimerBackend` plumbing shared by every backend."""

    #: Overridden by each backend ("linux", "vista", ...).
    os_name = "?"

    # -- instrumentation -------------------------------------------------

    def attach_sink(self, sink) -> None:
        """Start copying every timer event to ``sink``, live.

        The existing sink keeps receiving the stream (a
        :class:`~repro.tracing.relay.TeeSink` fans it out), so online
        reducers can be bolted onto a machine mid-run without touching
        the buffer the trace is read from.
        """
        from ..tracing.relay import TeeSink
        if isinstance(self.sink, TeeSink):
            self.sink.add(sink)
            return
        tee = TeeSink([self.sink, sink])
        self.sink = tee
        self._sink_rebound(tee)

    def _sink_rebound(self, tee) -> None:
        """Hook: propagate a new sink to components that cached the old
        reference (per-CPU timer bases, the hrtimer base)."""

    # -- clock accessors -------------------------------------------------

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self.engine.now

    def run_for(self, duration_ns: int) -> None:
        """Advance the machine by ``duration_ns`` of virtual time."""
        self.engine.run_until(self.engine.now + duration_ns)
