"""``timerstudy`` command-line interface.

Subcommands::

    timerstudy run linux idle --minutes 5 --out idle.jsonl.gz
    timerstudy run linux idle --minutes 30 --stream   # bounded memory
    timerstudy analyze idle.jsonl.gz [--filter-x]
    timerstudy study --minutes 2          # the whole paper, condensed
    timerstudy sec51 --conditions lan,wan --policies fixed-30,p2-99
    timerstudy browse --unreachable       # the Section 2.2.2 scenario
    timerstudy serve --backend linux --workload portable --port 8900

``run`` executes a workload on the simulated machine and writes the
trace; ``analyze`` reproduces the paper's analyses on a saved trace;
``study`` runs everything end to end and prints each table/figure.
"""

from __future__ import annotations

import argparse
import os
import sys

from .kern import backend_names, backend_traits
from .sim.clock import MINUTE, SECOND, millis
from .core import (pattern_breakdown, rate_series, render_rates,
                   summarize, summary_table)
from .core.report import render_analysis
from .core.streaming import ProgressSink, StreamingSuite
from .tracing import TraceFormatError, open_trace
from .workloads import (WORKLOADS, browse, browse_adaptive,
                        list_workloads, run_cluster_workload,
                        run_study_traces, run_workload)


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer (got {value})")
    return value


def _add_jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=_positive_int, default=None, metavar="N",
        help="parallel simulation processes (default: one per CPU; "
             "1 = serial; output is identical either way)")


def _add_cluster_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--hosts", type=_positive_int, default=1, metavar="N",
        help="simulate an N-host cluster on one shared clock "
             "(default 1 = a standalone machine, byte-identical to "
             "the pre-cluster behaviour; multi-host runs need a scene "
             "workload: idle, webserver, serverfarm)")
    parser.add_argument(
        "--cpus", type=_positive_int, default=1, metavar="M",
        help="shard the engine's timing wheel across M per-CPU wheels "
             "(dispatch order and traces are identical at any M)")


def _add_metrics_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics", action="store_true",
        help="collect simulator metrics and print the Prometheus text "
             "exposition to stderr (stdout stays byte-identical)")
    parser.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write the exposition to FILE instead (implies --metrics)")


def _metrics_enabled(args: argparse.Namespace) -> bool:
    return bool(args.metrics or args.metrics_out)


def _emit_metrics(snapshot, args: argparse.Namespace) -> int:
    """Render the exposition to stderr or --metrics-out.  Returns an
    exit code: 0, or 2 when the output path is unwritable (missing
    parents are created first — pointing --metrics-out into a fresh
    results directory must not traceback)."""
    text = snapshot.render()
    if args.metrics_out:
        try:
            parent = os.path.dirname(os.path.abspath(args.metrics_out))
            os.makedirs(parent, exist_ok=True)
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(text)
        except OSError as err:
            print(f"error: cannot write metrics to "
                  f"{args.metrics_out}: {err}", file=sys.stderr)
            return 2
        print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    else:
        print(text, end="", file=sys.stderr)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.stream and args.out is not None:
        print("error: --stream analyzes in flight and writes no trace "
              "file; --out conflicts with it", file=sys.stderr)
        return 2
    if args.stream and args.hosts > 1:
        print("error: --stream runs one machine; use --hosts 1 or "
              "drop --stream for a cluster trace", file=sys.stderr)
        return 2
    duration = int(args.minutes * MINUTE)
    if args.hosts > 1:
        return _run_cluster(args, duration)
    mode = "streaming " if args.stream else ""
    cpus = f", {args.cpus} CPUs" if args.cpus > 1 else ""
    print(f"{mode}running {args.os}/{args.workload} for "
          f"{args.minutes:g} virtual minutes (seed {args.seed}{cpus})"
          "...", file=sys.stderr)
    if args.cpus > 1:
        # Per-CPU sharded engine wheel; dispatch order — and the trace
        # — are identical at any CPU count.
        from .sim.sched import use_scheduler
        with use_scheduler(f"sharded:{args.cpus}"):
            return _run_single(args, duration)
    return _run_single(args, duration)


def _run_cluster(args: argparse.Namespace, duration: int) -> int:
    print(f"running {args.os}/{args.workload} on {args.hosts} hosts "
          f"x {args.cpus} CPUs for {args.minutes:g} virtual minutes "
          f"(seed {args.seed})...", file=sys.stderr)
    run = run_cluster_workload(args.os, args.workload, duration,
                               hosts=args.hosts, cpus=args.cpus,
                               seed=args.seed)
    out = args.out if args.out is not None else "trace.jsonl.gz"
    from .tracing import write_trace
    write_trace(run.trace, out)
    print(f"{len(run.trace.events)} events across {run.hosts} hosts "
          f"-> {out}", file=sys.stderr)
    if _metrics_enabled(args):
        return _emit_metrics(run.metrics(), args)
    return 0


def _run_single(args: argparse.Namespace, duration: int) -> int:
    if args.stream:
        # Bounded-memory path: events flow through the incremental
        # reducers as the kernel emits them; nothing is buffered, so
        # there is no trace to save.
        suite = StreamingSuite(args.os, args.workload)
        progress = ProgressSink(label=f"{args.os}/{args.workload}: ")
        run = run_workload(args.os, args.workload, duration,
                           seed=args.seed, sinks=[suite, progress],
                           retain_events=False)
        progress.finish(run.trace.duration_ns)
        suite.finish(run.trace.duration_ns)
        print(f"{suite.n_events} events analyzed in flight "
              f"(peak aggregation state {suite.peak_state} entries); "
              f"no trace file written", file=sys.stderr)
        print(render_analysis(suite), end="")
        if _metrics_enabled(args):
            return _emit_metrics(run.metrics(), args)
        return 0
    run = run_workload(args.os, args.workload, duration, seed=args.seed)
    out = args.out if args.out is not None else "trace.jsonl.gz"
    run.trace.save(out)
    print(f"{len(run.trace)} events -> {out}", file=sys.stderr)
    if _metrics_enabled(args):
        return _emit_metrics(run.metrics(), args)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    # open_trace sniffs the format; a v2 file arrives as a zero-copy
    # columnar view that every analysis accepts directly.
    source = open_trace(args.trace)
    if args.jobs is not None and args.jobs > 1:
        from .core.shard import sharded_analysis
        print(sharded_analysis(source, jobs=args.jobs,
                               filter_x=args.filter_x), end="")
        return 0
    print(render_analysis(source, filter_x=args.filter_x), end="")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .core.compare import (class_shift, compare_summaries,
                               trace_value_distance)
    trace_a = open_trace(args.a)
    trace_b = open_trace(args.b)
    print("=== Summary comparison ===")
    print(compare_summaries(trace_a, trace_b).render())
    print("\n=== Usage-pattern shift (Figure 2 classes) ===")
    print(class_shift(trace_a, trace_b).render())
    distance = trace_value_distance(trace_a, trace_b)
    print(f"\nvalue-distribution distance: {distance:.3f} "
          "(0 = identical, 1 = disjoint)")
    return 0


STUDY_WORKLOADS = ("idle", "skype", "firefox", "webserver")


def study_backends() -> list:
    """Registered backends that can run the paper's four workloads."""
    return [os_name for os_name in backend_names()
            if all((os_name, workload) in WORKLOADS
                   for workload in STUDY_WORKLOADS)]


def _cmd_study(args: argparse.Namespace) -> int:
    duration = int(args.minutes * MINUTE)
    # All nine simulations (4 workloads x each study backend + the
    # Figure 1 desktop) are independent; run them through the parallel
    # driver, then render in the fixed order so stdout is
    # byte-identical for a given seed regardless of --jobs.
    backends = study_backends()
    order = [(os_name, workload) for os_name in backends
             for workload in STUDY_WORKLOADS] + [("vista", "desktop")]
    for os_name, workload in order:
        print(f"tracing {os_name}/{workload}...", file=sys.stderr)
    jobs = [(os_name, workload,
             None if workload == "desktop" else duration, args.seed)
            for os_name, workload in order]
    if args.cpus > 1:
        # Sharded engine wheel for every simulation; the study output
        # is byte-identical at any CPU count.
        jobs = [job + (1, args.cpus) for job in jobs]
    cluster_backends = backends if args.hosts > 1 else []
    for os_name in cluster_backends:
        print(f"tracing {os_name}/serverfarm on {args.hosts} hosts...",
              file=sys.stderr)
        jobs.append((os_name, "serverfarm", duration, args.seed,
                     args.hosts, args.cpus))
    collect = _metrics_enabled(args)
    results = run_study_traces(jobs, processes=args.jobs,
                               collect_metrics=collect)
    cluster_results = []
    if cluster_backends:
        split = len(results) - len(cluster_backends)
        results, cluster_results = results[:split], results[split:]
    code = 0
    if collect:
        from .obs import MetricsSnapshot
        traces = dict(zip(order, (trace for trace, _ in results)))
        code = _emit_metrics(MetricsSnapshot.merge(
            snapshot for _, snapshot in results + cluster_results), args)
        cluster_results = [trace for trace, _ in cluster_results]
    else:
        traces = dict(zip(order, results))

    for os_name in backends:
        table = backend_traits(os_name).table_label
        summaries = []
        for workload in STUDY_WORKLOADS:
            trace = traces[(os_name, workload)]
            summaries.append(summarize(trace))
            if os_name == "linux":
                # Figure 2 is a Linux-only artefact of the paper.
                breakdown = pattern_breakdown(trace)
                row = "  ".join(f"{k}={v:4.1f}" for k, v in
                                breakdown.figure2_row().items())
                print(f"  Fig2 {workload:<10} {row}")
        print(f"\n=== {table}: {os_name} ===")
        print(summary_table(summaries))
        print()
    print("=== Figure 1: Vista desktop set rates ===")
    print(render_rates(rate_series(traces[("vista", "desktop")]),
                       groups=["Outlook", "Browser", "System",
                               "Kernel"], max_rows=10))
    if cluster_backends:
        from .core.report import host_rollup
        for os_name, trace in zip(cluster_backends, cluster_results):
            print(f"\n=== Cluster serverfarm: {os_name}, "
                  f"{args.hosts} hosts x {args.cpus} CPUs ===")
            print(host_rollup(trace))
    return code


def _split_names(text):
    """Comma-separated CLI list -> tuple, or None for 'use defaults'."""
    if text is None:
        return None
    names = tuple(part.strip() for part in text.split(",")
                  if part.strip())
    return names or None


def _cmd_sec51(args: argparse.Namespace) -> int:
    from .core.report import render_sec51
    from .study import run_sec51_study

    result = run_sec51_study(
        backends=_split_names(args.backends),
        conditions=_split_names(args.conditions),
        policies=_split_names(args.policies),
        minutes=args.minutes, seed=args.seed,
        connections=args.connections, hosts=args.hosts,
        cpus=args.cpus, jobs=args.jobs, stream=args.stream,
        progress=lambda m: print(m, file=sys.stderr))
    print(render_sec51(result), end="")
    if _metrics_enabled(args):
        from .obs import collect_sec51
        return _emit_metrics(collect_sec51(result), args)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .core.report import generate_report
    collect = _metrics_enabled(args)
    result = generate_report(minutes=args.minutes, seed=args.seed,
                             progress=lambda m: print(m, file=sys.stderr),
                             jobs=args.jobs, collect_metrics=collect)
    text, snapshot = result if collect else (result, None)
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(text)
    print(f"report written to {args.out}", file=sys.stderr)
    if snapshot is not None:
        return _emit_metrics(snapshot, args)
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .obs import profile
    duration = int(args.minutes * MINUTE)
    print(f"running {args.os}/{args.workload} for {args.minutes:g} "
          f"virtual minutes (seed {args.seed})...", file=sys.stderr)
    if args.profile:
        with profile() as prof:
            run = run_workload(args.os, args.workload, duration,
                               seed=args.seed)
    else:
        run = run_workload(args.os, args.workload, duration,
                           seed=args.seed)
    snapshot = run.metrics()
    if args.format == "json":
        print(snapshot.to_json(indent=2))
    else:
        print(snapshot.render(), end="")
    if args.profile:
        print("\n# per-subsystem virtual-time profile")
        print(prof.render())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ServeConfig, ServeDaemon
    config = ServeConfig(
        os_name=args.backend, workload=args.workload, seed=args.seed,
        hosts=args.hosts, cpus=args.cpus,
        host=args.host, port=args.port, speed=args.speed,
        tick_s=args.tick_ms / 1e3, interval_s=args.interval,
        opentsdb=args.opentsdb, duration_s=args.for_seconds)
    try:
        daemon = ServeDaemon(config)
    except KeyError as err:
        print(f"error: {err.args[0]}", file=sys.stderr)
        return 2
    daemon.start()
    print(f"serving {args.backend}/{args.workload} telemetry on "
          f"http://{daemon.server.host}:{daemon.port}/metrics "
          f"(healthz, statusz, metrics.json; speed {args.speed:g}x"
          + (f", for {args.for_seconds:g}s" if args.for_seconds
             else "") + ")", file=sys.stderr)
    try:
        daemon.run()
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=sys.stderr)
    finally:
        daemon.close()
    print(f"served {daemon.cycles} collection cycles, "
          f"{daemon.virtual_ns / 1e9:.1f} virtual seconds, "
          f"{daemon.suite.n_events} events analyzed in flight",
          file=sys.stderr)
    return 0


def _cmd_browse(args: argparse.Namespace) -> int:
    runner = browse_adaptive if args.adaptive else browse
    result = runner(name_resolves=not args.typo,
                    server_reachable=not args.unreachable,
                    rtt_ns=millis(args.rtt_ms))
    print(f"outcome: {result.outcome} after "
          f"{result.elapsed_seconds:.2f}s")
    for ts, what in result.timeline:
        print(f"  {ts / SECOND:8.3f}s  {what}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="timerstudy",
        description="Reproduction of '30 Seconds is Not Enough!' "
                    "(EuroSys 2008)")
    sub = parser.add_subparsers(dest="command", required=True)

    backends = backend_names()
    run_p = sub.add_parser("run", help="trace one workload")
    run_p.add_argument("os", choices=backends)
    run_p.add_argument("workload",
                       choices=sorted({workload for os_name in backends
                                       for workload
                                       in list_workloads(os_name)}))
    run_p.add_argument("--minutes", type=float, default=5.0)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--out", default=None,
                       help="trace file (default trace.jsonl.gz; "
                            "conflicts with --stream)")
    run_p.add_argument("--stream", action="store_true",
                       help="analyze events in flight with bounded "
                            "memory; prints the analysis instead of "
                            "saving a trace")
    _add_cluster_args(run_p)
    _add_metrics_args(run_p)
    run_p.set_defaults(func=_cmd_run)

    mt_p = sub.add_parser(
        "metrics",
        help="run one workload and print its Prometheus exposition")
    mt_p.add_argument("os", help="backend name (see repro.kern)")
    mt_p.add_argument("workload")
    mt_p.add_argument("--minutes", type=float, default=1.0)
    mt_p.add_argument("--seed", type=int, default=0)
    mt_p.add_argument("--profile", action="store_true",
                      help="also attribute wall/virtual time per "
                           "subsystem")
    mt_p.add_argument("--format", choices=("prom", "json"),
                      default="prom",
                      help="Prometheus text exposition (default) or "
                           "machine-readable JSON")
    mt_p.set_defaults(func=_cmd_metrics)

    sv_p = sub.add_parser(
        "serve",
        help="long-running telemetry daemon: run a workload "
             "continuously and export live metrics")
    sv_p.add_argument("--backend", default="linux",
                      help="backend name (see repro.kern)")
    sv_p.add_argument("--workload", default="portable",
                      help="portable workload definition "
                           "(idle, webserver, portable)")
    sv_p.add_argument("--seed", type=int, default=0)
    _add_cluster_args(sv_p)
    sv_p.add_argument("--host", default="127.0.0.1")
    sv_p.add_argument("--port", type=int, default=8900,
                      help="HTTP port for /metrics, /healthz, "
                           "/statusz (0 = ephemeral)")
    sv_p.add_argument("--speed", type=float, default=1.0,
                      help="virtual seconds simulated per wall second")
    sv_p.add_argument("--tick-ms", type=float, default=250.0,
                      help="wall milliseconds per real-time slice")
    sv_p.add_argument("--interval", type=float, default=1.0,
                      help="default collector interval in seconds")
    sv_p.add_argument("--opentsdb", default=None, metavar="SINK",
                      help="emit OpenTSDB put lines: '-' for stdout "
                           "or HOST:PORT for a TSD socket")
    sv_p.add_argument("--for-seconds", type=float, default=None,
                      help="stop after N wall seconds (default: run "
                           "until interrupted)")
    sv_p.set_defaults(func=_cmd_serve)

    an_p = sub.add_parser("analyze", help="analyze a saved trace")
    an_p.add_argument("trace")
    an_p.add_argument("--filter-x", action="store_true",
                      help="drop X/icewm countdowns (Figure 5 style)")
    an_p.add_argument(
        "--jobs", type=_positive_int, default=None, metavar="N",
        help="shard the per-timer analyses across N workers "
             "(1 = serial; output is identical either way)")
    an_p.set_defaults(func=_cmd_analyze)

    st_p = sub.add_parser("study", help="run the condensed full study")
    st_p.add_argument("--minutes", type=float, default=2.0)
    st_p.add_argument("--seed", type=int, default=0)
    _add_jobs_arg(st_p)
    _add_cluster_args(st_p)
    _add_metrics_args(st_p)
    st_p.set_defaults(func=_cmd_study)

    s51_p = sub.add_parser(
        "sec51",
        help="Section 5.1 study: adaptive vs fixed timeout policies "
             "over the serverfarm request population")
    s51_p.add_argument("--minutes", type=float, default=0.5,
                       help="serverfarm run length per backend "
                            "(default 0.5 virtual minutes)")
    s51_p.add_argument("--seed", type=int, default=0)
    s51_p.add_argument("--connections", type=_positive_int, default=250,
                       help="serverfarm connection population per host")
    s51_p.add_argument("--backends", default=None, metavar="A,B",
                       help="comma-separated backends (default: every "
                            "backend with a serverfarm workload)")
    s51_p.add_argument("--conditions", default=None, metavar="A,B",
                       help="comma-separated network conditions (see "
                            "repro.sim.netmodel; default: lan,"
                            "datacenter,wan,jittery,lossy-wan,"
                            "lan-wan-shift)")
    s51_p.add_argument("--policies", default=None, metavar="A,B",
                       help="comma-separated timeout policies "
                            "(default: fixed-5,fixed-15,fixed-30,"
                            "jacobson,p2-95,p2-99)")
    s51_p.add_argument("--stream", action="store_true",
                       help="harvest the population through the "
                            "bounded-memory streaming path (output is "
                            "byte-identical)")
    _add_jobs_arg(s51_p)
    _add_cluster_args(s51_p)
    _add_metrics_args(s51_p)
    s51_p.set_defaults(func=_cmd_sec51)

    cp_p = sub.add_parser("compare", help="compare two saved traces")
    cp_p.add_argument("a")
    cp_p.add_argument("b")
    cp_p.set_defaults(func=_cmd_compare)

    rp_p = sub.add_parser("report",
                          help="run the study and write a markdown report")
    rp_p.add_argument("--minutes", type=float, default=2.0)
    rp_p.add_argument("--seed", type=int, default=0)
    rp_p.add_argument("--out", default="report.md")
    _add_jobs_arg(rp_p)
    _add_metrics_args(rp_p)
    rp_p.set_defaults(func=_cmd_report)

    br_p = sub.add_parser("browse",
                          help="the Section 2.2.2 file-browser scenario")
    br_p.add_argument("--typo", action="store_true")
    br_p.add_argument("--unreachable", action="store_true")
    br_p.add_argument("--adaptive", action="store_true")
    br_p.add_argument("--rtt-ms", type=float, default=130.0)
    br_p.set_defaults(func=_cmd_browse)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (TraceFormatError, FileNotFoundError, IsADirectoryError) as err:
        # Unreadable / corrupt / wrong-format trace files: a clean
        # diagnostic and exit code 2, not a traceback.
        print(f"error: {err}", file=sys.stderr)
        return 2
    except KeyError as err:
        # Unknown backend/workload names raise KeyError with a message
        # listing the valid choices (see repro.workloads.run_workload).
        print(f"error: {err.args[0] if err.args else err}",
              file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into head/less which closed early: not an error.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
