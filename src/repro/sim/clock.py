"""Virtual time representation.

All simulated time in this package is an integer number of nanoseconds
since simulation start.  Integers keep the discrete-event engine exact:
two events scheduled for the same instant compare equal, and no
floating-point drift accumulates over a 30-minute trace.

Helper constants and converters are provided so call sites read like the
units the paper uses (jiffies, milliseconds, seconds).
"""

from __future__ import annotations

NANOSECOND = 1
MICROSECOND = 1_000
MILLISECOND = 1_000_000
SECOND = 1_000_000_000
MINUTE = 60 * SECOND
HOUR = 60 * MINUTE

#: Linux 2.6.23 default HZ on the instrumented kernel (CONFIG_HZ=250).
HZ = 250
#: One jiffy at HZ=250 is 4 ms.
JIFFY = SECOND // HZ


def seconds(value: float) -> int:
    """Convert ``value`` seconds to integer nanoseconds."""
    return round(value * SECOND)


def millis(value: float) -> int:
    """Convert ``value`` milliseconds to integer nanoseconds."""
    return round(value * MILLISECOND)


def micros(value: float) -> int:
    """Convert ``value`` microseconds to integer nanoseconds."""
    return round(value * MICROSECOND)


def jiffies(count: int) -> int:
    """Convert a jiffy count to nanoseconds (HZ=250, so 4 ms each)."""
    return count * JIFFY


def to_seconds(ns: int) -> float:
    """Convert nanoseconds to floating-point seconds (for reporting only)."""
    return ns / SECOND


def to_jiffies(ns: int) -> int:
    """Round nanoseconds up to whole jiffies, mirroring Linux timeout math.

    Linux converts a relative timeout to jiffies by rounding up, so a
    1 ns request still sleeps for a full jiffy.  A zero timeout stays
    zero ("expire immediately").
    """
    if ns <= 0:
        return 0
    return -(-ns // JIFFY)


def fmt_time(ns: int) -> str:
    """Render a timestamp or duration in a human-friendly unit."""
    if ns == 0:
        return "0s"
    if ns % SECOND == 0:
        return f"{ns // SECOND}s"
    if ns >= SECOND:
        return f"{ns / SECOND:.4g}s"
    if ns >= MILLISECOND:
        return f"{ns / MILLISECOND:.4g}ms"
    if ns >= MICROSECOND:
        return f"{ns / MICROSECOND:.4g}us"
    return f"{ns}ns"
