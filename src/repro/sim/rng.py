"""Deterministic random-number streams.

Every stochastic component of a workload (network latency, user
activity, request interarrival) draws from its own named stream so that
adding a new component never perturbs the draws seen by existing ones.
Streams are derived from a single run seed, making whole traces
reproducible from one integer.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Sequence


class RngStream(random.Random):
    """A named, independently-seeded random stream."""

    def __init__(self, root_seed: int, name: str):
        digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
        super().__init__(int.from_bytes(digest[:8], "big"))
        self.name = name

    def exponential(self, mean: float) -> float:
        """Exponential variate with the given mean (mean, not rate)."""
        return self.expovariate(1.0 / mean)

    def pareto_latency(self, scale: float, alpha: float = 2.5) -> float:
        """Heavy-tailed latency: Pareto with minimum ``scale``.

        Network round-trip and service times are famously heavy-tailed;
        alpha=2.5 keeps a finite variance while producing the occasional
        10x outlier that stresses adaptive timeout estimators.
        """
        return scale * self.paretovariate(alpha)

    def lognormal_latency(self, median: float, sigma: float = 0.5) -> float:
        """Log-normal latency with the given median."""
        return median * math.exp(self.gauss(0.0, sigma))

    def choice_weighted(self, items: Sequence, weights: Sequence[float]):
        """Single weighted choice (thin wrapper, kept for readability)."""
        return self.choices(items, weights=weights, k=1)[0]


class RngRegistry:
    """Factory handing out named streams for one simulation run."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: dict[str, RngStream] = {}

    def stream(self, name: str) -> RngStream:
        """Return the stream for ``name``, creating it on first use."""
        found = self._streams.get(name)
        if found is None:
            found = RngStream(self.seed, name)
            self._streams[name] = found
        return found
