"""Discrete-event simulation engine.

The engine owns the virtual clock and a queue of pending events.
Everything else in the reproduction — hardware tick devices, kernel
timer wheels, application behaviour — is driven by callbacks scheduled
here.

How pending events are stored is pluggable (:mod:`repro.sim.sched`):
the default is a hierarchical timing wheel with packed event storage
(`scheduler="wheel"`), with the original binary heap of ``Event``
objects available as ``scheduler="heap"`` for differential testing.

Determinism: event order is a total order on ``(time, sequence)`` where
the sequence number is assigned at scheduling time, so two runs of the
same workload with the same seeds produce byte-identical traces — on
either scheduler.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Any, Callable, Optional, Union

from ..obs.profiler import current_profiler
from .clock import fmt_time
from .sched import (Event, SchedulerLike, SimulationError,
                    default_scheduler, make_scheduler, use_scheduler)

__all__ = ["Engine", "Event", "SimulationError", "default_scheduler",
           "use_scheduler"]


class Engine:
    """The simulation event loop.

    Typical use::

        engine = Engine()
        engine.call_at(clock.seconds(1), tick)
        engine.run_until(clock.seconds(30))
    """

    def __init__(self,
                 scheduler: Union[str, SchedulerLike, None] = None) -> None:
        self.now: int = 0
        self._seq: int = 0
        self._running = False
        #: Pluggable event queue (see :mod:`repro.sim.sched`).  ``None``
        #: adopts the process default ("wheel"); pass "heap"/"wheel" or
        #: a scheduler instance to choose explicitly.
        self.scheduler: SchedulerLike = make_scheduler(scheduler)
        #: Number of callbacks actually dispatched (for engine stats).
        self.dispatched: int = 0
        #: High-water mark of live pending events.
        self.peak_pending: int = 0
        #: Wall nanoseconds spent inside run()/run_until() loops.
        #: Observability only — never feeds back into simulated state.
        self.wall_ns: int = 0
        #: Optional :class:`~repro.obs.profiler.VirtualTimeProfiler`.
        #: Adopted from the ambient ``profile()`` block at construction;
        #: ``None`` (the common case) keeps dispatch on the direct path.
        self.profiler = current_profiler()

    # -- scheduling ----------------------------------------------------

    def call_at(self, when: int, callback: Callable[..., Any],
                *args: Any):
        """Schedule ``callback(*args)`` at absolute time ``when``.

        ``when`` may equal ``now`` (the event runs before time advances)
        but may not be in the past.  Returns a cancellable handle.
        """
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {fmt_time(when)}; "
                f"now is {fmt_time(self.now)}")
        self._seq += 1
        handle = self.scheduler.push(when, self._seq, callback, args)
        live = self.scheduler.live
        if live > self.peak_pending:
            self.peak_pending = live
        return handle

    def call_after(self, delay: int, callback: Callable[..., Any],
                   *args: Any):
        """Schedule ``callback(*args)`` after a relative ``delay`` >= 0."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self.now + delay, callback, *args)

    # -- execution -----------------------------------------------------

    def run_until(self, deadline: int) -> None:
        """Dispatch events up to and including ``deadline``.

        On return ``now == deadline`` even if the queue drained early,
        so a subsequent workload phase starts from a well-defined
        instant.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        wall_start = perf_counter_ns()
        try:
            self.scheduler.run(self, deadline)
            self.now = deadline
        finally:
            self.wall_ns += perf_counter_ns() - wall_start
            self._running = False

    def run(self) -> None:
        """Dispatch events until the queue is empty."""
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        wall_start = perf_counter_ns()
        try:
            self.scheduler.run(self, None)
        finally:
            self.wall_ns += perf_counter_ns() - wall_start
            self._running = False

    def peek_next(self) -> Optional[int]:
        """Time of the next pending (non-cancelled) event, or ``None``."""
        return self.scheduler.peek_next()

    def pending_count(self) -> int:
        """Number of live events still queued (cancelled ones excluded).

        O(1): the scheduler maintains a live-event counter on
        push/dispatch/cancel instead of scanning its queue.
        """
        return self.scheduler.live
