"""Discrete-event simulation engine.

The engine owns the virtual clock and a priority queue of pending
events.  Everything else in the reproduction — hardware tick devices,
kernel timer wheels, application behaviour — is driven by callbacks
scheduled here.

Determinism: event order is a total order on ``(time, sequence)`` where
the sequence number is assigned at scheduling time, so two runs of the
same workload with the same seeds produce byte-identical traces.
"""

from __future__ import annotations

import heapq
from time import perf_counter_ns
from typing import Any, Callable, Optional

from ..obs.profiler import current_profiler
from .clock import fmt_time


class SimulationError(RuntimeError):
    """Raised for invalid use of the engine (e.g. scheduling in the past)."""


class Event:
    """Handle for a scheduled callback.

    The engine never removes cancelled events from the heap eagerly;
    cancellation just marks the handle and the dispatcher skips it.
    This is the standard lazy-deletion trick and keeps ``cancel`` O(1).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled",
                 "engine")

    def __init__(self, time: int, seq: int,
                 callback: Callable[..., Any], args: tuple,
                 engine: "Optional[Engine]" = None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: Owning engine while the event is live in its heap; cleared
        #: on dispatch so the live-event counter stays exact.
        self.engine = engine

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            if self.engine is not None:
                self.engine._live -= 1
                self.engine = None
        # Drop references so cancelled events pinned in the heap do not
        # keep workload objects alive for the rest of the run.
        self.callback = _cancelled_callback
        self.args = ()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={fmt_time(self.time)} seq={self.seq} {state}>"


def _cancelled_callback(*_args: Any) -> None:
    raise SimulationError("cancelled event was dispatched")


class Engine:
    """The simulation event loop.

    Typical use::

        engine = Engine()
        engine.call_at(clock.seconds(1), tick)
        engine.run_until(clock.seconds(30))
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._running = False
        #: Live (non-cancelled, undispatched) events; kept in sync on
        #: push/dispatch/cancel so pending_count() is O(1).
        self._live: int = 0
        #: Number of callbacks actually dispatched (for engine stats).
        self.dispatched: int = 0
        #: High-water mark of live pending events.
        self.peak_pending: int = 0
        #: Wall nanoseconds spent inside run()/run_until() loops.
        #: Observability only — never feeds back into simulated state.
        self.wall_ns: int = 0
        #: Optional :class:`~repro.obs.profiler.VirtualTimeProfiler`.
        #: Adopted from the ambient ``profile()`` block at construction;
        #: ``None`` (the common case) keeps dispatch on the direct path.
        self.profiler = current_profiler()

    # -- scheduling ----------------------------------------------------

    def call_at(self, when: int, callback: Callable[..., Any],
                *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``when``.

        ``when`` may equal ``now`` (the event runs before time advances)
        but may not be in the past.
        """
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {fmt_time(when)}; "
                f"now is {fmt_time(self.now)}")
        self._seq += 1
        event = Event(when, self._seq, callback, args, self)
        heapq.heappush(self._heap, event)
        self._live += 1
        if self._live > self.peak_pending:
            self.peak_pending = self._live
        return event

    def call_after(self, delay: int, callback: Callable[..., Any],
                   *args: Any) -> Event:
        """Schedule ``callback(*args)`` after a relative ``delay`` >= 0."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self.now + delay, callback, *args)

    # -- execution -----------------------------------------------------

    def run_until(self, deadline: int) -> None:
        """Dispatch events up to and including ``deadline``.

        On return ``now == deadline`` even if the heap drained early, so
        a subsequent workload phase starts from a well-defined instant.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        profiler = self.profiler
        wall_start = perf_counter_ns()
        try:
            heap = self._heap
            while heap:
                event = heap[0]
                if event.time > deadline:
                    break
                heapq.heappop(heap)
                if event.cancelled:
                    continue
                self._live -= 1
                event.engine = None
                self.now = event.time
                self.dispatched += 1
                if profiler is None:
                    event.callback(*event.args)
                else:
                    profiler.dispatch(event)
            self.now = deadline
        finally:
            self.wall_ns += perf_counter_ns() - wall_start
            self._running = False

    def run(self) -> None:
        """Dispatch events until the heap is empty."""
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        profiler = self.profiler
        wall_start = perf_counter_ns()
        try:
            heap = self._heap
            while heap:
                event = heapq.heappop(heap)
                if event.cancelled:
                    continue
                self._live -= 1
                event.engine = None
                self.now = event.time
                self.dispatched += 1
                if profiler is None:
                    event.callback(*event.args)
                else:
                    profiler.dispatch(event)
        finally:
            self.wall_ns += perf_counter_ns() - wall_start
            self._running = False

    def peek_next(self) -> Optional[int]:
        """Time of the next pending (non-cancelled) event, or ``None``."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None

    def pending_count(self) -> int:
        """Number of live events still queued (cancelled ones excluded).

        O(1): a live-event counter is maintained on push/dispatch/cancel
        instead of scanning the whole heap.
        """
        return self._live
