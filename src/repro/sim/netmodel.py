"""Synthetic network conditions: seeded latency/loss/shift models.

The Section 5.1 study asks how a timeout policy behaves when the
network underneath it changes — the paper's travelling-user example
moves a learned LAN distribution onto a WAN and watches the model
mispredict until it relearns.  This module gives that variation a
first-class, *seeded* representation:

* :class:`NetCondition` — a named, frozen description of one network
  regime: a log-normal reply-latency distribution (median + sigma,
  the jitter knob), a segment-loss probability (lost segments come
  back after TCP-style doubling retransmissions, inflating the reply
  latency), a genuine-failure probability (the reply *never* arrives
  — the case a timeout exists to detect), and a script of
  :class:`LevelShift` events (the LAN→WAN move);
* :class:`NetModel` — binds a condition to one
  :class:`~repro.sim.rng.RngStream` and yields per-wait reply
  latencies in seconds (``None`` for a genuine failure), so two
  policies fed the same stream see *exactly* the same network;
* :data:`CONDITIONS` — the registry of built-in regimes the
  ``timerstudy sec51`` study sweeps;
* :meth:`NetCondition.apply_to_stack` — the failure-injection hook:
  the same scripted shifts driven into a live
  :class:`~repro.linuxkern.subsystems.net.TcpStack`, so a kernel
  simulation can degrade mid-run exactly the way the latency streams
  do (see ``tests/test_failure_injection.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "CONDITIONS", "LevelShift", "NetCondition", "NetModel",
    "condition_names", "get_condition", "register_condition",
]

#: Cap on consecutive retransmissions of one segment; beyond this the
#: reply is treated as arriving after the full backed-off chain (the
#: connection-level giveup is the *failure* probability's job).
MAX_RETRANSMITS = 6


@dataclass(frozen=True)
class LevelShift:
    """One scripted regime change within a wait stream.

    ``at`` is the position as a fraction of the stream (0.5 = halfway
    through the run).  ``median_scale`` multiplies the base latency
    median from that point on (1000.0 turns a 130 us LAN into a
    130 ms WAN); ``loss_to``/``failure_to``, when given, *replace* the
    loss/failure probabilities outright (a blackout is
    ``failure_to=1.0``).
    """

    at: float
    median_scale: float = 1.0
    loss_to: Optional[float] = None
    failure_to: Optional[float] = None


@dataclass(frozen=True)
class NetCondition:
    """A named network regime for the Section 5.1 policy study."""

    name: str
    #: Median reply latency, seconds (the lognormal's median).
    median_s: float
    #: Lognormal sigma — the jitter knob.
    sigma: float = 0.4
    #: Probability one segment is lost and must be retransmitted
    #: (reply arrives late: + rto_s * (2^k - 1) after k losses).
    loss: float = 0.0
    #: Probability the reply never arrives at all.
    failure: float = 0.02
    #: Base retransmission timeout feeding the loss-delay chain.
    rto_s: float = 1.0
    #: Scripted regime changes, in stream order.
    shifts: Tuple[LevelShift, ...] = ()
    description: str = ""

    def regime_at(self, fraction: float) -> tuple:
        """(median_s, loss, failure) in force at stream ``fraction``."""
        median, loss, failure = self.median_s, self.loss, self.failure
        for shift in self.shifts:
            if fraction >= shift.at:
                median *= shift.median_scale
                if shift.loss_to is not None:
                    loss = shift.loss_to
                if shift.failure_to is not None:
                    failure = shift.failure_to
        return median, loss, failure

    def apply_to_stack(self, stack, engine, duration_ns: int) -> None:
        """Drive this condition's script into a live TCP stack.

        Sets the stack's RTT median and loss rate to the base regime
        now and schedules each :class:`LevelShift` at its fraction of
        ``duration_ns`` on ``engine`` — the netmodel acting as the
        failure injector for a kernel-level simulation.  A shift's
        ``failure_to`` maps to segment loss on a real stack (there is
        no reply to lose): ``failure_to=1.0`` is a dead network.
        """
        stack.rtt_median_ns = max(1, int(self.median_s * 1e9))
        stack.loss_rate = self.loss

        def make_apply(shift: LevelShift):
            def apply() -> None:
                stack.rtt_median_ns = max(
                    1, int(stack.rtt_median_ns * shift.median_scale))
                if shift.loss_to is not None:
                    stack.loss_rate = shift.loss_to
                if shift.failure_to is not None:
                    stack.loss_rate = max(stack.loss_rate,
                                          shift.failure_to)
            return apply

        for shift in self.shifts:
            delay = max(1, int(shift.at * duration_ns))
            engine.call_after(delay, make_apply(shift))


class NetModel:
    """One condition bound to one seeded random stream.

    ``sample(i, n)`` returns the true reply latency (seconds) for wait
    ``i`` of an ``n``-wait stream, or ``None`` when the reply never
    arrives.  Draw order is fixed (failure, base latency, then the
    loss chain), so a given (seed, condition) pair always produces the
    same stream regardless of which policy consumes it.
    """

    def __init__(self, condition: NetCondition, rng):
        self.condition = condition
        self.rng = rng
        self.failures = 0
        self.retransmitted = 0

    def sample(self, i: int, n: int) -> Optional[float]:
        condition = self.condition
        fraction = i / n if n else 0.0
        median, loss, failure = condition.regime_at(fraction)
        if self.rng.random() < failure:
            self.failures += 1
            return None
        latency = self.rng.lognormvariate(math.log(median),
                                          condition.sigma)
        if loss and self.rng.random() < loss:
            # TCP-style recovery: each further loss doubles the wait.
            retries = 1
            while (retries < MAX_RETRANSMITS
                   and self.rng.random() < loss):
                retries += 1
            latency += condition.rto_s * ((1 << retries) - 1)
            self.retransmitted += 1
        return latency

    def stream(self, n: int) -> List[Optional[float]]:
        """The full ``n``-wait latency stream, in order."""
        return [self.sample(i, n) for i in range(n)]


#: Built-in regimes, keyed by name.  Sweep order in tables is the
#: caller's policy; iteration order here is registration order.
CONDITIONS: Dict[str, NetCondition] = {}


def register_condition(condition: NetCondition, *,
                       replace: bool = False) -> NetCondition:
    """Install ``condition`` in the registry under its name."""
    if condition.name in CONDITIONS and not replace:
        raise ValueError(f"condition {condition.name!r} already "
                         "registered")
    CONDITIONS[condition.name] = condition
    return condition


def get_condition(name: str) -> NetCondition:
    """Look up a registered condition; KeyError lists valid names."""
    found = CONDITIONS.get(name)
    if found is None:
        raise KeyError(f"unknown network condition {name!r}; "
                       f"registered: {sorted(CONDITIONS)}")
    return found


def condition_names() -> List[str]:
    """Registered condition names, in registration order."""
    return list(CONDITIONS)


register_condition(NetCondition(
    "lan", median_s=130e-6, sigma=0.4, loss=0.0, failure=0.01,
    description="datacenter LAN: 130 us median, low jitter"))
register_condition(NetCondition(
    "wan", median_s=0.13, sigma=0.5, loss=0.0, failure=0.02,
    description="coast-to-coast WAN: 130 ms median"))
register_condition(NetCondition(
    "datacenter", median_s=2e-3, sigma=0.45, loss=0.0, failure=0.015,
    description="cross-rack RPC: 2 ms median"))
register_condition(NetCondition(
    "jittery", median_s=0.02, sigma=1.0, loss=0.0, failure=0.02,
    description="congested last mile: heavy jitter (sigma 1.0)"))
register_condition(NetCondition(
    "lossy-wan", median_s=0.13, sigma=0.5, loss=0.08, failure=0.02,
    rto_s=1.0,
    description="lossy WAN: 8% segment loss, doubling retransmits"))
register_condition(NetCondition(
    "lan-wan-shift", median_s=130e-6, sigma=0.4, loss=0.0,
    failure=0.01, shifts=(LevelShift(at=0.5, median_scale=1000.0),),
    description="the paper's travelling user: LAN for the first "
                "half, 1000x latency level shift at 50%"))
register_condition(NetCondition(
    "blackout", median_s=0.13, sigma=0.5, loss=0.0, failure=0.02,
    shifts=(LevelShift(at=0.5, failure_to=1.0),),
    description="network dies halfway: every later reply is lost"))
