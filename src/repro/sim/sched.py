"""Pluggable event schedulers for the simulation engine.

The engine owns the virtual clock; *how* pending events are ordered is
delegated to a scheduler object.  Two implementations share one
contract:

``HeapScheduler``
    The original design: one binary heap of per-event ``Event`` objects
    ordered by ``(time, seq)``.  Every push/pop at depth *n* runs
    O(log n) Python-level ``__lt__`` calls, which is what caps large
    traces (see ``benchmarks/bench_scale.py``).

``WheelScheduler``
    A hierarchical timing wheel in the style of Varghese & Lauck —
    the same ``tvec_base`` geometry the reproduction models for the
    Linux kernel in :mod:`repro.linuxkern.wheel`, here dogfooded as
    the engine's own scheduler.  Events live in *packed columns*
    (parallel ``array``/list storage for time, seq, flags, callback)
    addressed by slot index; buckets hold plain ``int`` slot numbers
    and far-future events overflow into a small heap of int tuples.
    Expiring a bucket drains it in one batch: cancelled slots are
    reclaimed, the survivors are sorted by ``(time, seq)`` in C and
    appended to the working queue.  No per-event Python object, no
    Python comparison calls on the hot path.

``ShardedWheelScheduler``
    N per-CPU ``WheelScheduler`` shards behind one scheduler facade —
    the engine-level analogue of the per-CPU TCP wheels the paper's
    Section 1 credits for Vista's timer re-architecture (modelled in
    :mod:`repro.vistakern.tcpwheel`).  Events are affined to a shard
    by ``seq % cpus`` (the same modulo hash as
    ``PerCpuTcpTimers.wheel_for``); dispatch is a deterministic k-way
    merge over the shards' due heaps, so the global ``(time, seq)``
    order — and therefore the trace bytes — are identical to a single
    wheel at any shard count.

Determinism: all schedulers dispatch in the identical total order on
``(time, seq)`` — seq is assigned by the engine at scheduling time —
so heap, wheel, and sharded wheel produce byte-identical traces
(proved by the differential tests in ``tests/sim/test_sched.py`` and
``tests/test_sched_differential.py``).

Why the wheel preserves the heap's exact order: the wheel keeps a
working heap ``_due`` of ``(time, seq, slot)`` int tuples.  Every entry
in ``_due`` has ``time < _cur << GRAN_BITS`` (it came from an
already-expired bucket, or was scheduled into one), while every entry
still in a bucket or the overflow heap has ``time >= _cur <<
GRAN_BITS``.  The head of ``_due`` is therefore always the global
minimum, and draining bucket ``_cur`` appends a sorted block of
strictly larger keys — which keeps ``_due`` a valid heap without a
single sift.

Cancellation is lazy but *bounded*: cancelling marks the slot (or
``Event``) and drops callback references immediately; the entry itself
is reclaimed when its bucket drains, or earlier by a compaction sweep
that triggers once cancelled garbage outnumbers live events.  The
TIME_WAIT pattern — arm tens of thousands of far-future timers, cancel
nearly all of them — therefore cannot grow memory linearly (regression
test in ``tests/sim/test_sched.py``).
"""

from __future__ import annotations

import heapq
from array import array
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional, Union

from .clock import fmt_time

__all__ = [
    "Event", "HeapScheduler", "ShardedWheelScheduler", "WheelHandle",
    "WheelScheduler", "default_scheduler", "make_scheduler",
    "use_scheduler",
]

# -- wheel geometry --------------------------------------------------------

#: log2 of the level-0 bucket width in nanoseconds (~1.05 ms).  Finer
#: than any modelled timer period, so same-bucket collisions stay small.
GRAN_BITS = 20
#: Level 0: 256 buckets of 2^20 ns — ~268 ms of near future.
L0_BITS = 8
L0_SIZE = 1 << L0_BITS
L0_MASK = L0_SIZE - 1
#: Levels 1-4: 64 buckets each (tvec geometry), spans ~17 s / ~18 min /
#: ~19.5 h / ~52 days.
LN_BITS = 6
LN_SIZE = 1 << LN_BITS
LN_MASK = LN_SIZE - 1
#: Buckets covered by the whole wheel; beyond this, events overflow
#: into a far-future heap and are re-fed as the wheel turns.
WHEEL_SPAN = 1 << (L0_BITS + 4 * LN_BITS)

#: Shift from absolute bucket index to each level's slot index.
_L1_SHIFT = L0_BITS
_L2_SHIFT = L0_BITS + LN_BITS
_L3_SHIFT = L0_BITS + 2 * LN_BITS
_L4_SHIFT = L0_BITS + 3 * LN_BITS

# Packed-slot states.
_FREE = 0
_PENDING = 1
_CANCELLED = 2

#: Stand-in deadline for run-to-empty; far beyond any representable
#: simulation (2^62 ns ~ 146 years).
_FOREVER = 1 << 62


class SimulationError(RuntimeError):
    """Raised for invalid use of the engine (e.g. scheduling in the past)."""


def _cancelled_callback(*_args: Any) -> None:
    raise SimulationError("cancelled event was dispatched")


class Event:
    """Heap-scheduler handle: one Python object per scheduled callback.

    Cancellation marks the handle; the dispatcher skips it when it
    surfaces, and the owning scheduler's compaction sweep reclaims it
    early if cancelled garbage starts to dominate the heap.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled",
                 "sched")

    def __init__(self, time: int, seq: int,
                 callback: Callable[..., Any], args: tuple,
                 sched: "Optional[HeapScheduler]" = None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: Owning scheduler while the event is live in its heap; cleared
        #: on dispatch so the live-event counter stays exact.
        self.sched = sched

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            if self.sched is not None:
                self.sched.note_cancel()
                self.sched = None
        # Drop references so cancelled events pinned in the heap do not
        # keep workload objects alive for the rest of the run.
        self.callback = _cancelled_callback
        self.args = ()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={fmt_time(self.time)} seq={self.seq} {state}>"


class WheelHandle:
    """Wheel-scheduler handle: slot index plus the seq that guards it.

    The packed slot may be reclaimed and reused after dispatch; the
    unique sequence number doubles as a generation tag, so a stale
    handle's :meth:`cancel` is a safe no-op.
    """

    __slots__ = ("_sched", "slot", "seq")

    def __init__(self, sched: "WheelScheduler", slot: int, seq: int):
        self._sched = sched
        self.slot = slot
        self.seq = seq

    @property
    def cancelled(self) -> bool:
        return self._sched is None

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        sched = self._sched
        if sched is None:
            return
        self._sched = None
        slot = self.slot
        if sched._flags[slot] == _PENDING and sched._seqs[slot] == self.seq:
            sched._cancel_slot(slot)

    def __repr__(self) -> str:
        state = "cancelled" if self._sched is None else "pending"
        return f"<WheelHandle slot={self.slot} seq={self.seq} {state}>"


class HeapScheduler:
    """The original binary-heap scheduler (kept for differential tests).

    One ``Event`` object per scheduled callback, ordered by Python-level
    ``(time, seq)`` comparisons.  Cancelled events are skipped lazily on
    pop; a compaction sweep rebuilds the heap without them once they
    outnumber live events (see :meth:`note_cancel`).
    """

    kind = "heap"

    def __init__(self) -> None:
        self._heap: list[Event] = []
        #: Live (non-cancelled, undispatched) events.
        self.live: int = 0
        #: Cancelled events still pinned in the heap.
        self._garbage: int = 0
        #: Minimum garbage before a compaction sweep is considered.
        self.compact_threshold: int = 512
        self.compactions: int = 0
        self.reclaimed: int = 0
        # Wheel-only counters, present so observability code can treat
        # schedulers uniformly.
        self.bucket_drains: int = 0
        self.cascades: int = 0
        self.cascaded_timers: int = 0

    # -- scheduling ----------------------------------------------------

    def push(self, when: int, seq: int, callback: Callable[..., Any],
             args: tuple) -> Event:
        event = Event(when, seq, callback, args, self)
        heapq.heappush(self._heap, event)
        self.live += 1
        return event

    def note_cancel(self) -> None:
        """Account one cancellation; compact if garbage dominates."""
        self.live -= 1
        self._garbage += 1
        if (self._garbage > self.compact_threshold
                and self._garbage > self.live):
            self.compact()

    def compact(self) -> None:
        """Rebuild the heap without cancelled entries.

        ``(time, seq)`` is a unique total order, so sorting the
        survivors yields a valid heap with the exact dispatch order
        preserved.  In-place (``heap[:] = ...``) so a run loop holding
        a reference to the list keeps working if a callback's cancel
        triggers compaction mid-dispatch.
        """
        heap = self._heap
        kept = [event for event in heap if not event.cancelled]
        self.reclaimed += len(heap) - len(kept)
        kept.sort()
        heap[:] = kept
        self._garbage = 0
        self.compactions += 1

    # -- execution -----------------------------------------------------

    def run(self, engine, deadline: Optional[int]) -> None:
        heap = self._heap
        profiler = engine.profiler
        bounded = deadline is not None
        while heap:
            event = heap[0]
            if bounded and event.time > deadline:
                break
            heapq.heappop(heap)
            if event.cancelled:
                self._garbage -= 1
                continue
            self.live -= 1
            event.sched = None
            engine.now = event.time
            engine.dispatched += 1
            if profiler is None:
                event.callback(*event.args)
            else:
                profiler.dispatch(event)

    # -- introspection -------------------------------------------------

    def peek_next(self) -> Optional[int]:
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self._garbage -= 1
        return heap[0].time if heap else None

    @property
    def garbage(self) -> int:
        return self._garbage

    def queued(self) -> int:
        """Entries physically held (live + cancelled garbage)."""
        return len(self._heap)

    def occupancy(self) -> dict[str, int]:
        return {"due": len(self._heap)}


class WheelScheduler:
    """Hierarchical timing wheel with packed event storage.

    Data layout — events are columns, not objects:

    * ``_times`` / ``_seqs`` — ``array('q')`` columns,
    * ``_flags`` — ``bytearray`` slot states (free/pending/cancelled),
    * ``_cbs`` / ``_argss`` — callback and argument columns,
    * ``_free`` — recycled slot indices.

    Buckets are lists of slot ints keyed by absolute bucket index
    ``time >> GRAN_BITS``; ``_cur`` is the next bucket to expire.
    ``_due`` is the working heap of ``(time, seq, slot)`` tuples whose
    head is always the global minimum (see module docstring), and
    ``_overflow`` holds events beyond the ~52-day wheel span.
    """

    kind = "wheel"

    def __init__(self) -> None:
        self._times = array("q")
        self._seqs = array("q")
        self._flags = bytearray()
        self._cbs: list = []
        self._argss: list = []
        self._free: list[int] = []
        self._due: list[tuple] = []
        self._overflow: list[tuple] = []
        self._levels: list[list[list[int]]] = [
            [[] for _ in range(L0_SIZE)],
            [[] for _ in range(LN_SIZE)],
            [[] for _ in range(LN_SIZE)],
            [[] for _ in range(LN_SIZE)],
            [[] for _ in range(LN_SIZE)],
        ]
        #: Entries (live or cancelled) per wheel level.
        self._counts = [0, 0, 0, 0, 0]
        #: Next bucket index to expire.
        self._cur = 0
        self.live: int = 0
        self._garbage: int = 0
        self.compact_threshold: int = 512
        self.compactions: int = 0
        self.reclaimed: int = 0
        self.bucket_drains: int = 0
        self.cascades: int = 0
        self.cascaded_timers: int = 0

    # -- scheduling ----------------------------------------------------

    def push(self, when: int, seq: int, callback: Callable[..., Any],
             args: tuple) -> WheelHandle:
        free = self._free
        if free:
            slot = free.pop()
            self._times[slot] = when
            self._seqs[slot] = seq
            self._flags[slot] = _PENDING
            self._cbs[slot] = callback
            self._argss[slot] = args
        else:
            slot = len(self._times)
            self._times.append(when)
            self._seqs.append(seq)
            self._flags.append(_PENDING)
            self._cbs.append(callback)
            self._argss.append(args)
        self.live += 1
        # Placement is inlined (= _place) — push is the hottest call in
        # the simulator and the extra frame is measurable at 1M+ events.
        idx = when >> GRAN_BITS
        delta = idx - self._cur
        counts = self._counts
        if delta < 0:
            heapq.heappush(self._due, (when, seq, slot))
        elif delta < L0_SIZE:
            self._levels[0][idx & L0_MASK].append(slot)
            counts[0] += 1
        elif delta < 1 << _L2_SHIFT:
            self._levels[1][(idx >> _L1_SHIFT) & LN_MASK].append(slot)
            counts[1] += 1
        elif delta < 1 << _L3_SHIFT:
            self._levels[2][(idx >> _L2_SHIFT) & LN_MASK].append(slot)
            counts[2] += 1
        elif delta < 1 << _L4_SHIFT:
            self._levels[3][(idx >> _L3_SHIFT) & LN_MASK].append(slot)
            counts[3] += 1
        elif delta < WHEEL_SPAN:
            self._levels[4][(idx >> _L4_SHIFT) & LN_MASK].append(slot)
            counts[4] += 1
        else:
            heapq.heappush(self._overflow, (when, seq, slot))
        return WheelHandle(self, slot, seq)

    def _place(self, slot: int, when: int, seq: int) -> None:
        """File a pending slot by its expiry bucket, tvec-style.

        Used by cascades and overflow refeed; :meth:`push` carries an
        inlined copy of this chain — keep the two in sync.
        """
        idx = when >> GRAN_BITS
        delta = idx - self._cur
        if delta < 0:
            # Bucket already expired (e.g. scheduled for "now" during
            # dispatch): straight onto the working heap.
            heapq.heappush(self._due, (when, seq, slot))
        elif delta < L0_SIZE:
            self._levels[0][idx & L0_MASK].append(slot)
            self._counts[0] += 1
        elif delta < 1 << _L2_SHIFT:
            self._levels[1][(idx >> _L1_SHIFT) & LN_MASK].append(slot)
            self._counts[1] += 1
        elif delta < 1 << _L3_SHIFT:
            self._levels[2][(idx >> _L2_SHIFT) & LN_MASK].append(slot)
            self._counts[2] += 1
        elif delta < 1 << _L4_SHIFT:
            self._levels[3][(idx >> _L3_SHIFT) & LN_MASK].append(slot)
            self._counts[3] += 1
        elif delta < WHEEL_SPAN:
            self._levels[4][(idx >> _L4_SHIFT) & LN_MASK].append(slot)
            self._counts[4] += 1
        else:
            heapq.heappush(self._overflow, (when, seq, slot))

    # -- cancellation and reclamation ----------------------------------

    def _cancel_slot(self, slot: int) -> None:
        self._flags[slot] = _CANCELLED
        # Drop references immediately; the slot itself is reclaimed
        # when its bucket drains or a compaction sweep visits it.
        self._cbs[slot] = None
        self._argss[slot] = None
        self.live -= 1
        self._garbage += 1
        if (self._garbage > self.compact_threshold
                and self._garbage > self.live):
            self.compact()

    def _free_slot(self, slot: int) -> None:
        self._flags[slot] = _FREE
        self._cbs[slot] = None
        self._argss[slot] = None
        self._free.append(slot)

    def compact(self) -> None:
        """Sweep cancelled entries out of every container.

        All list surgery is in place so the engine's run loop (which
        holds a reference to ``_due``) survives a compaction triggered
        by a cancel inside a dispatched callback.
        """
        flags = self._flags
        reclaimed = 0
        for heap in (self._due, self._overflow):
            kept = [entry for entry in heap if flags[entry[2]] == _PENDING]
            if len(kept) != len(heap):
                for entry in heap:
                    if flags[entry[2]] != _PENDING:
                        self._free_slot(entry[2])
                        reclaimed += 1
                kept.sort()
                heap[:] = kept
        counts = self._counts
        for level, wheel in enumerate(self._levels):
            for bucket in wheel:
                if not bucket:
                    continue
                kept = [slot for slot in bucket if flags[slot] == _PENDING]
                removed = len(bucket) - len(kept)
                if removed:
                    for slot in bucket:
                        if flags[slot] != _PENDING:
                            self._free_slot(slot)
                    bucket[:] = kept
                    counts[level] -= removed
                    reclaimed += removed
        self._garbage -= reclaimed
        self.reclaimed += reclaimed
        self.compactions += 1

    # -- wheel turning -------------------------------------------------

    def _collect(self, bucket: list[int]) -> None:
        """Drain one expired bucket in a single batch.

        Cancelled slots are reclaimed; survivors become ``(time, seq,
        slot)`` tuples sorted in C.  The sorted block is strictly
        larger than everything already in ``_due`` (see module
        docstring), so a plain ``extend`` keeps it a valid heap.
        """
        times = self._times
        seqs = self._seqs
        flags = self._flags
        entries = []
        append = entries.append
        for slot in bucket:
            if flags[slot] == _PENDING:
                append((times[slot], seqs[slot], slot))
            else:
                self._free_slot(slot)
                self._garbage -= 1
        self._counts[0] -= len(bucket)
        del bucket[:]
        if entries:
            entries.sort()
            self._due.extend(entries)
        self.bucket_drains += 1

    def _cascade_one(self, level: int, index: int) -> None:
        wheel = self._levels[level]
        bucket = wheel[index]
        if not bucket:
            return
        times = self._times
        seqs = self._seqs
        flags = self._flags
        moved = 0
        for slot in bucket:
            if flags[slot] == _PENDING:
                self._place(slot, times[slot], seqs[slot])
                moved += 1
            else:
                self._free_slot(slot)
                self._garbage -= 1
        self._counts[level] -= len(bucket)
        wheel[index] = []
        self.cascades += 1
        self.cascaded_timers += moved

    def _cascade(self, cur: int) -> None:
        """Refile the higher-level buckets covering ``cur`` onward.

        Mirrors the kernel's ``cascade(tv2..tv5)`` chain: each level is
        drained when the level below wraps (its slot index hits 0).
        """
        i1 = (cur >> _L1_SHIFT) & LN_MASK
        self._cascade_one(1, i1)
        if i1 == 0:
            i2 = (cur >> _L2_SHIFT) & LN_MASK
            self._cascade_one(2, i2)
            if i2 == 0:
                i3 = (cur >> _L3_SHIFT) & LN_MASK
                self._cascade_one(3, i3)
                if i3 == 0:
                    self._cascade_one(4, (cur >> _L4_SHIFT) & LN_MASK)

    def _advance(self, limit: int) -> bool:
        """Turn the wheel until an event at or before ``limit`` reaches
        ``_due``.  Returns whether the engine has anything to dispatch.

        Empty regions are skipped level-by-level: with level 0 empty the
        wheel jumps straight to the next cascade boundary of the lowest
        populated level, so idle spans cost O(levels), not O(buckets).
        """
        due = self._due
        if due:
            # _due's head is the global minimum; nothing in the wheel
            # can be earlier.
            return due[0][0] <= limit
        heappop = heapq.heappop
        target = limit >> GRAN_BITS
        counts = self._counts
        l0 = self._levels[0]
        overflow = self._overflow
        cur = self._cur
        while True:
            # Far-future events re-enter the wheel as it comes within
            # span of them.
            while overflow and (overflow[0][0] >> GRAN_BITS) < cur + WHEEL_SPAN:
                when, seq, slot = heappop(overflow)
                self._cur = cur
                if self._flags[slot] == _PENDING:
                    self._place(slot, when, seq)
                else:
                    self._free_slot(slot)
                    self._garbage -= 1
            if cur > target:
                self._cur = cur
                return False
            if not cur & L0_MASK:
                self._cur = cur
                self._cascade(cur)
            if counts[0]:
                bucket = l0[cur & L0_MASK]
                cur += 1
                self._cur = cur
                if bucket:
                    self._collect(bucket)
                    if due:
                        return due[0][0] <= limit
            else:
                # Level 0 empty: jump to the next boundary that can
                # repopulate it from the lowest populated level.
                if counts[1]:
                    cur = ((cur >> _L1_SHIFT) + 1) << _L1_SHIFT
                elif counts[2]:
                    cur = ((cur >> _L2_SHIFT) + 1) << _L2_SHIFT
                elif counts[3]:
                    cur = ((cur >> _L3_SHIFT) + 1) << _L3_SHIFT
                elif counts[4]:
                    cur = ((cur >> _L4_SHIFT) + 1) << _L4_SHIFT
                elif overflow:
                    cur = max(cur + 1,
                              (overflow[0][0] >> GRAN_BITS) - WHEEL_SPAN + 1)
                else:
                    self._cur = max(cur, target + 1)
                    return False

    # -- execution -----------------------------------------------------

    def run(self, engine, deadline: Optional[int]) -> None:
        due = self._due
        flags = self._flags
        cbs = self._cbs
        argss = self._argss
        free = self._free
        profiler = engine.profiler
        heappop = heapq.heappop
        advance = self._advance
        limit = _FOREVER if deadline is None else deadline
        while True:
            if due and due[0][0] <= limit:
                when, _seq, slot = heappop(due)
                state = flags[slot]
                flags[slot] = _FREE
                callback = cbs[slot]
                args = argss[slot]
                cbs[slot] = None
                argss[slot] = None
                free.append(slot)
                if state != _PENDING:
                    self._garbage -= 1
                    continue
                self.live -= 1
                engine.now = when
                engine.dispatched += 1
                if profiler is None:
                    callback(*args)
                else:
                    profiler.dispatch_call(when, callback, args)
            elif not advance(limit):
                return

    # -- introspection -------------------------------------------------

    def peek_next(self) -> Optional[int]:
        """Earliest pending expiry, or ``None``.

        A non-mutating column scan — O(capacity), intended for tests
        and introspection, not the dispatch path.
        """
        if self.live == 0:
            return None
        times = self._times
        best = None
        for slot, flag in enumerate(self._flags):
            if flag == _PENDING:
                when = times[slot]
                if best is None or when < best:
                    best = when
        return best

    @property
    def garbage(self) -> int:
        return self._garbage

    def queued(self) -> int:
        """Entries physically held (live + cancelled garbage)."""
        return self.live + self._garbage

    def capacity(self) -> int:
        """Allocated packed slots (high-water mark of concurrent events)."""
        return len(self._times)

    def occupancy(self) -> dict[str, int]:
        counts = self._counts
        return {
            "due": len(self._due),
            "l0": counts[0], "l1": counts[1], "l2": counts[2],
            "l3": counts[3], "l4": counts[4],
            "overflow": len(self._overflow),
        }


class ShardedWheelScheduler:
    """N per-CPU :class:`WheelScheduler` shards behind one facade.

    The composition the paper's Section 1 describes for Vista's TCP
    timers, lifted to the engine: each simulated CPU owns a private
    timing wheel, and an event is affined to the wheel of CPU
    ``seq % cpus`` — the same modulo hash
    :meth:`repro.vistakern.tcpwheel.PerCpuTcpTimers.wheel_for` uses
    for connections.  ``seq`` is unique and assigned in scheduling
    order, so the hash spreads load evenly and deterministically
    without inspecting the callback.

    Dispatch order is the *global* ``(time, seq)`` order: each shard's
    due-heap head is that shard's minimum (the single-wheel invariant,
    see module docstring), so a k-way merge that repeatedly dispatches
    the smallest head reproduces exactly the sequence a single wheel —
    or the reference heap — would produce.  At ``cpus=1`` the merge
    degenerates to the plain wheel loop; at any other count the trace
    bytes are still identical, which is the invariant the cluster
    layer's multi-CPU machines rely on.

    Handles are the owning shard's :class:`WheelHandle`, so
    cancellation, generation tags, and per-shard compaction all work
    unchanged; a periodic timer whose re-arm draws a new ``seq`` may
    migrate to a different shard, exactly like a rebalanced connection.
    """

    kind = "sharded"

    def __init__(self, cpus: int = 2) -> None:
        if cpus < 1:
            raise ValueError(f"cpus must be >= 1, got {cpus}")
        self.cpus = cpus
        self.shards = [WheelScheduler() for _ in range(cpus)]

    def cpu_for(self, seq: int) -> int:
        """The shard (CPU) an event with sequence ``seq`` is affined to."""
        return seq % self.cpus

    # -- scheduling ----------------------------------------------------

    def push(self, when: int, seq: int, callback: Callable[..., Any],
             args: tuple) -> WheelHandle:
        return self.shards[seq % self.cpus].push(when, seq, callback,
                                                 args)

    def compact(self) -> None:
        for shard in self.shards:
            shard.compact()

    # -- execution -----------------------------------------------------

    def run(self, engine, deadline: Optional[int]) -> None:
        """Deterministic k-way merge of the shards' due events.

        Every iteration advances each shard far enough to expose its
        earliest dispatchable entry (a no-op when its due head is
        already current), then pops the globally smallest ``(time,
        seq)``.  Re-evaluating all heads after every dispatch is what
        keeps the order exact when a callback schedules into — or
        cancels out of — any shard, including its own.
        """
        shards = self.shards
        profiler = engine.profiler
        heappop = heapq.heappop
        limit = _FOREVER if deadline is None else deadline
        while True:
            best = None
            best_shard = None
            for shard in shards:
                due = shard._due
                if not due or due[0][0] > limit:
                    if not shard._advance(limit):
                        continue
                    due = shard._due
                head = due[0]
                if best is None or head < best:
                    best = head
                    best_shard = shard
            if best_shard is None:
                return
            when, _seq, slot = heappop(best_shard._due)
            flags = best_shard._flags
            state = flags[slot]
            flags[slot] = _FREE
            callback = best_shard._cbs[slot]
            args = best_shard._argss[slot]
            best_shard._cbs[slot] = None
            best_shard._argss[slot] = None
            best_shard._free.append(slot)
            if state != _PENDING:
                best_shard._garbage -= 1
                continue
            best_shard.live -= 1
            engine.now = when
            engine.dispatched += 1
            if profiler is None:
                callback(*args)
            else:
                profiler.dispatch_call(when, callback, args)

    # -- introspection -------------------------------------------------

    def peek_next(self) -> Optional[int]:
        nexts = [t for t in (shard.peek_next() for shard in self.shards)
                 if t is not None]
        return min(nexts) if nexts else None

    @property
    def live(self) -> int:
        return sum(shard.live for shard in self.shards)

    @property
    def garbage(self) -> int:
        return sum(shard.garbage for shard in self.shards)

    @property
    def compactions(self) -> int:
        return sum(shard.compactions for shard in self.shards)

    @property
    def reclaimed(self) -> int:
        return sum(shard.reclaimed for shard in self.shards)

    @property
    def bucket_drains(self) -> int:
        return sum(shard.bucket_drains for shard in self.shards)

    @property
    def cascades(self) -> int:
        return sum(shard.cascades for shard in self.shards)

    @property
    def cascaded_timers(self) -> int:
        return sum(shard.cascaded_timers for shard in self.shards)

    @property
    def compact_threshold(self) -> int:
        return self.shards[0].compact_threshold

    @compact_threshold.setter
    def compact_threshold(self, value: int) -> None:
        for shard in self.shards:
            shard.compact_threshold = value

    def queued(self) -> int:
        """Entries physically held (live + cancelled garbage)."""
        return sum(shard.queued() for shard in self.shards)

    def capacity(self) -> int:
        """Allocated packed slots across all shards."""
        return sum(shard.capacity() for shard in self.shards)

    def occupancy(self) -> dict[str, int]:
        """Aggregate per-level occupancy summed over shards (per-shard
        detail is available through :attr:`shards`)."""
        merged: dict[str, int] = {}
        for shard in self.shards:
            for key, value in shard.occupancy().items():
                merged[key] = merged.get(key, 0) + value
        return merged

    def __repr__(self) -> str:
        return (f"<ShardedWheelScheduler cpus={self.cpus} "
                f"live={self.live}>")


SchedulerLike = Union[HeapScheduler, WheelScheduler,
                      ShardedWheelScheduler]

#: Process-wide default scheduler kind adopted by ``Engine()``.
_default = "wheel"

_KINDS: dict[str, Callable[[], SchedulerLike]] = {
    "heap": HeapScheduler,
    "wheel": WheelScheduler,
    "sharded": ShardedWheelScheduler,
}


def default_scheduler() -> str:
    """The scheduler kind ``Engine()`` builds when none is passed."""
    return _default


def _kind_factory(spec: str) -> Callable[[], SchedulerLike]:
    """Factory for a kind string; ``"sharded:N"`` selects N CPUs."""
    if spec.startswith("sharded:"):
        try:
            cpus = int(spec.split(":", 1)[1])
        except ValueError:
            raise ValueError(
                f"bad scheduler spec {spec!r}; expected sharded:N "
                f"with integer N") from None
        return lambda: ShardedWheelScheduler(cpus)
    factory = _KINDS.get(spec)
    if factory is None:
        raise ValueError(
            f"unknown scheduler {spec!r}; choose from "
            f"{sorted(_KINDS)} or sharded:N")
    return factory


def make_scheduler(
        spec: Union[str, SchedulerLike, None] = None) -> SchedulerLike:
    """Resolve ``spec`` (kind name — including ``"sharded:N"`` —,
    instance, or ``None`` for the process default) to a scheduler
    object."""
    if spec is None:
        spec = _default
    if isinstance(spec, str):
        return _kind_factory(spec)()
    return spec


@contextmanager
def use_scheduler(kind: str) -> Iterator[None]:
    """Temporarily change the default scheduler kind.

    Kernels build their engines internally, so differential tests use
    this to run a whole workload on the heap scheduler::

        with use_scheduler("heap"):
            run = run_workload("linux", "idle", seconds(30))

    ``"sharded:N"`` selects the per-CPU sharded wheel with N shards —
    the hook :class:`repro.kern.Machine` uses for ``cpus=N``.
    """
    _kind_factory(kind)    # validate eagerly
    global _default
    previous = _default
    _default = kind
    try:
        yield
    finally:
        _default = previous
