"""Discrete-event simulation substrate for the timer study reproduction.

This package supplies the "hardware" the two OS models run on: a virtual
nanosecond clock and event loop (:mod:`~repro.sim.engine`), periodic and
one-shot interrupt devices (:mod:`~repro.sim.devices`), deterministic
random streams (:mod:`~repro.sim.rng`), CPU power accounting
(:mod:`~repro.sim.power`), and process identities for trace attribution
(:mod:`~repro.sim.tasks`).
"""

from . import clock
from .clock import (HZ, JIFFY, MICROSECOND, MILLISECOND, MINUTE, SECOND,
                    jiffies, micros, millis, seconds, to_jiffies,
                    to_seconds)
from .devices import OneShotDevice, TickDevice
from .engine import Engine, Event, SimulationError
from .netmodel import (CONDITIONS, LevelShift, NetCondition, NetModel,
                       condition_names, get_condition,
                       register_condition)
from .power import PowerMeter
from .sched import (HeapScheduler, WheelScheduler, default_scheduler,
                    make_scheduler, use_scheduler)
from .rng import RngRegistry, RngStream
from .tasks import KERNEL_PID, Task, TaskTable

__all__ = [
    "clock", "HZ", "JIFFY", "MICROSECOND", "MILLISECOND", "MINUTE",
    "SECOND", "jiffies", "micros", "millis", "seconds", "to_jiffies",
    "to_seconds",
    "OneShotDevice", "TickDevice", "Engine", "Event", "SimulationError",
    "CONDITIONS", "LevelShift", "NetCondition", "NetModel",
    "condition_names", "get_condition", "register_condition",
    "HeapScheduler", "WheelScheduler", "default_scheduler",
    "make_scheduler", "use_scheduler",
    "PowerMeter", "RngRegistry", "RngStream", "KERNEL_PID", "Task",
    "TaskTable",
]
