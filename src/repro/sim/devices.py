"""Hardware timer devices.

Two device models sit under the kernel timer subsystems, mirroring the
hardware the paper's systems ran on:

* :class:`TickDevice` — a periodic ticker (the local APIC in periodic
  mode).  Linux's jiffy clock and Vista's clock interrupt both hang off
  one of these.
* :class:`OneShotDevice` — a programmable one-shot comparator (APIC in
  one-shot / TSC-deadline style), used by dynticks and by the
  high-resolution timer subsystem.

Both charge interrupts to a :class:`~repro.sim.power.PowerMeter` so the
Section 5.3 power experiments can compare tick policies.
"""

from __future__ import annotations

from typing import Callable, Optional

from .engine import Engine, Event
from .power import PowerMeter


class TickDevice:
    """Fixed-frequency periodic interrupt source.

    The handler receives the current tick count.  ``skip_while_idle``
    models NOHZ/dynticks: when the provided predicate says the system is
    idle the device still advances its tick count (time passes) but does
    not charge a wakeup, emulating the LAPIC being reprogrammed past the
    idle period.
    """

    def __init__(self, engine: Engine, period_ns: int,
                 handler: Callable[[int], None],
                 power: Optional[PowerMeter] = None,
                 idle_predicate: Optional[Callable[[], bool]] = None):
        if period_ns <= 0:
            raise ValueError("tick period must be positive")
        self.engine = engine
        self.period_ns = period_ns
        self.handler = handler
        self.power = power
        self.idle_predicate = idle_predicate
        self.ticks = 0
        #: Ticks elided by the idle predicate (each an avoided wakeup).
        self.skipped = 0
        self.running = False
        self._event: Optional[Event] = None

    def start(self) -> None:
        """Begin ticking at ``now + period``."""
        if self.running:
            return
        self.running = True
        self._event = self.engine.call_after(self.period_ns, self._fire)

    def stop(self) -> None:
        """Stop the device; pending interrupt is cancelled."""
        self.running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        if not self.running:
            return
        self.ticks += 1
        skip = self.idle_predicate is not None and self.idle_predicate()
        if skip:
            self.skipped += 1
        if self.power is not None and not skip:
            self.power.interrupt(cpu_was_idle=True)
        if not skip:
            self.handler(self.ticks)
        self._event = self.engine.call_after(self.period_ns, self._fire)


class OneShotDevice:
    """Programmable one-shot interrupt comparator.

    ``program(when)`` replaces any previously-programmed deadline, like
    writing a new value into the APIC initial-count register.
    """

    def __init__(self, engine: Engine, handler: Callable[[], None],
                 power: Optional[PowerMeter] = None,
                 min_delta_ns: int = 1_000):
        self.engine = engine
        self.handler = handler
        self.power = power
        #: Hardware cannot fire "now"; real LAPICs have a minimum delta.
        self.min_delta_ns = min_delta_ns
        self.programmed_for: Optional[int] = None
        self.fired = 0
        self._event: Optional[Event] = None

    def program(self, when: int) -> int:
        """Arm the comparator for absolute time ``when``.

        Returns the effective deadline after clamping to the minimum
        programmable delta.
        """
        effective = max(when, self.engine.now + self.min_delta_ns)
        if self._event is not None:
            self._event.cancel()
        self.programmed_for = effective
        self._event = self.engine.call_at(effective, self._fire)
        return effective

    def cancel(self) -> None:
        """Disarm the comparator."""
        if self._event is not None:
            self._event.cancel()
            self._event = None
        self.programmed_for = None

    def _fire(self) -> None:
        self._event = None
        self.programmed_for = None
        self.fired += 1
        if self.power is not None:
            self.power.interrupt(cpu_was_idle=True)
        self.handler()
