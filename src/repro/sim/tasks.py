"""Process / thread identity for trace attribution.

The paper's instrumentation records a process ID and command name with
every timer event so that post-processing can attribute timers to the
X server, Firefox, Apache, and so on.  This module provides those
identities for the simulated machine.

The scheduling model is deliberately thin: workloads are callback
driven, so a :class:`Task` mostly exists to be *charged* with timer
activity.  The Section 5.5 dispatcher experiment builds a richer
scheduler on top (see :mod:`repro.core.dispatch`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


KERNEL_PID = 0


@dataclass(frozen=True)
class Task:
    """A schedulable identity: one process or kernel context."""

    pid: int
    comm: str
    #: "user" for application processes, "kernel" for kernel contexts.
    domain: str = "user"

    @property
    def is_kernel(self) -> bool:
        return self.domain == "kernel"

    def __str__(self) -> str:  # used in report rendering
        return f"{self.comm}({self.pid})"


class TaskTable:
    """Allocates pids and tracks live tasks for one simulated machine."""

    def __init__(self) -> None:
        self._next_pid = 1
        self._tasks: dict[int, Task] = {}
        self.kernel = Task(KERNEL_PID, "kernel", domain="kernel")
        self._tasks[KERNEL_PID] = self.kernel

    def spawn(self, comm: str, *, domain: str = "user") -> Task:
        """Create a new task with a fresh pid."""
        pid = self._next_pid
        self._next_pid += 1
        task = Task(pid, comm, domain=domain)
        self._tasks[pid] = task
        return task

    def kernel_thread(self, comm: str) -> Task:
        """Create a kernel-domain context (e.g. ``kjournald``)."""
        return self.spawn(comm, domain="kernel")

    def get(self, pid: int) -> Task:
        return self._tasks[pid]

    def by_comm(self, comm: str) -> list[Task]:
        """All tasks whose command name matches exactly."""
        return [t for t in self._tasks.values() if t.comm == comm]

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    def __len__(self) -> int:
        return len(self._tasks)
