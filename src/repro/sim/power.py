"""CPU power and wakeup accounting.

Section 5.3 of the paper argues that imprecise timers allow batching of
expiries, letting an idle CPU stay in a deep sleep state longer.  To
quantify that, the simulated machine charges energy per *wakeup* (an
interrupt arriving while the CPU is idle) plus residency power.

The numbers are modelled on a 2008-era mobile CPU: exiting a deep
C-state costs both a fixed energy hit and forces a window of shallow
residency.  Only relative comparisons between timer policies matter,
and those are robust to the exact constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .clock import SECOND


#: Power draw while executing (watts).
ACTIVE_POWER_W = 20.0
#: Power draw in the deepest idle state (watts).
DEEP_IDLE_POWER_W = 1.2
#: Energy cost of one idle wakeup: C-state exit plus cache refill (joules).
WAKEUP_ENERGY_J = 0.003
#: CPU time consumed servicing one timer interrupt (ns).
INTERRUPT_SERVICE_NS = 8_000


@dataclass
class PowerMeter:
    """Accumulates wakeups and busy time for one simulated CPU."""

    wakeups: int = 0
    interrupts: int = 0
    busy_ns: int = 0
    _busy_depth: int = field(default=0, repr=False)

    def interrupt(self, *, cpu_was_idle: bool = True,
                  service_ns: int = INTERRUPT_SERVICE_NS) -> None:
        """Record a hardware interrupt firing.

        ``cpu_was_idle`` distinguishes a true wakeup (expensive) from an
        interrupt that preempts already-running code (cheap).
        """
        self.interrupts += 1
        if cpu_was_idle and self._busy_depth == 0:
            self.wakeups += 1
        self.busy_ns += service_ns

    def run_for(self, duration_ns: int) -> None:
        """Record CPU execution time outside interrupt context."""
        self.busy_ns += duration_ns

    def energy_joules(self, elapsed_ns: int) -> float:
        """Estimate total energy over ``elapsed_ns`` of wall-clock time."""
        busy = min(self.busy_ns, elapsed_ns)
        idle = elapsed_ns - busy
        return (ACTIVE_POWER_W * busy / SECOND
                + DEEP_IDLE_POWER_W * idle / SECOND
                + WAKEUP_ENERGY_J * self.wakeups)

    def average_watts(self, elapsed_ns: int) -> float:
        """Average power draw over the run."""
        if elapsed_ns <= 0:
            return 0.0
        return self.energy_joules(elapsed_ns) / (elapsed_ns / SECOND)

    def wakeups_per_second(self, elapsed_ns: int) -> float:
        """Idle wakeups per second — the metric `powertop` popularised."""
        if elapsed_ns <= 0:
            return 0.0
        return self.wakeups / (elapsed_ns / SECOND)

    def snapshot(self, elapsed_ns: int) -> dict:
        """The headline power numbers for one run, as plain data.

        This is the backend-neutral power accessor the
        :class:`repro.kern.protocol.TimerBackend` surface exposes via
        ``kernel.power`` — every backend charges the same meter, so
        runs are comparable across OS models and tick policies.
        """
        return {
            "wakeups": self.wakeups,
            "interrupts": self.interrupts,
            "busy_ns": self.busy_ns,
            "energy_joules": self.energy_joules(elapsed_ns),
            "average_watts": self.average_watts(elapsed_ns),
            "wakeups_per_second": self.wakeups_per_second(elapsed_ns),
        }
