"""Virtual-time profiler: per-subsystem attribution of simulated and
wall time.

The paper measured its own instrumentation at 236 cycles per record
(Section 3.2); this module answers the same "what does the machinery
cost, and where" question for the simulator.  A
:class:`VirtualTimeProfiler` hooks the engine's dispatch loop and, for
every callback, attributes

* **wall time** — the real nanoseconds the callback took, and
* **virtual time** — the span of simulated time since the previous
  dispatched event, charged to the subsystem whose event *ended* the
  idle gap (i.e. the reason the machine had to wake at that instant —
  the same attribution ``powertop`` applies to wakeups),

to a subsystem label derived from the callback's defining module
(``sim.devices``, ``linuxkern.timer``, ``workloads.apps``, ...).

Zero cost when disabled: an engine whose ``profiler`` is ``None`` (the
default) pays one ``is None`` test per run-loop entry and dispatches
callbacks directly.  Use::

    with profile() as prof:                 # all engines built inside
        run = run_workload("linux", "idle", seconds(30))
    print(prof.render())

or ``profile(engine)`` to attach to one existing engine.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Optional

__all__ = ["VirtualTimeProfiler", "current_profiler", "profile",
           "subsystem_of"]

#: The process-wide profiler new :class:`~repro.sim.engine.Engine`
#: instances adopt at construction (see :func:`profile`).
_current: Optional["VirtualTimeProfiler"] = None


def current_profiler() -> Optional["VirtualTimeProfiler"]:
    """The active ambient profiler, if a :func:`profile` block is open."""
    return _current


def subsystem_of(callback: Callable) -> str:
    """Subsystem label for a dispatched callback.

    The defining module, stripped of the ``repro.`` prefix — bound
    methods, plain functions, closures and ``functools.partial``
    objects all resolve to where their code lives.
    """
    func = getattr(callback, "__func__", callback)
    func = getattr(func, "func", func)          # functools.partial
    module = getattr(func, "__module__", None) or "?"
    if module.startswith("repro."):
        module = module[len("repro."):]
    return module


class SubsystemProfile:
    """Accumulated attribution for one subsystem."""

    __slots__ = ("label", "events", "wall_ns", "virtual_ns")

    def __init__(self, label: str):
        self.label = label
        self.events = 0
        self.wall_ns = 0
        self.virtual_ns = 0

    def __repr__(self) -> str:
        return (f"<SubsystemProfile {self.label}: {self.events} events, "
                f"{self.wall_ns} wall ns, {self.virtual_ns} virtual ns>")


class VirtualTimeProfiler:
    """Attributes dispatch work to subsystems (see module docstring).

    ``stats`` maps subsystem label to :class:`SubsystemProfile` in
    first-dispatch order.  Event and virtual-time attributions are
    deterministic for a deterministic simulation; wall times are not.
    """

    def __init__(self, *, time_fn: Callable[[], int] = time.perf_counter_ns):
        self.stats: dict[str, SubsystemProfile] = {}
        self.time_fn = time_fn
        self._last_virtual: Optional[int] = None

    # -- engine hook -----------------------------------------------------

    def dispatch_call(self, when: int, callback: Callable,
                      args: tuple) -> None:
        """Run one callback under attribution (called by the engine's
        loop instead of a direct invocation).  Takes the unpacked
        columns so packed-storage schedulers need not materialise an
        event object."""
        label = subsystem_of(callback)
        stat = self.stats.get(label)
        if stat is None:
            stat = self.stats[label] = SubsystemProfile(label)
        stat.events += 1
        last = self._last_virtual
        if last is not None and when > last:
            stat.virtual_ns += when - last
        self._last_virtual = when
        time_fn = self.time_fn
        t0 = time_fn()
        try:
            callback(*args)
        finally:
            stat.wall_ns += time_fn() - t0

    def dispatch(self, event) -> None:
        """Object-handle form of :meth:`dispatch_call` (heap scheduler)."""
        self.dispatch_call(event.time, event.callback, event.args)

    # -- results ---------------------------------------------------------

    @property
    def total_events(self) -> int:
        return sum(s.events for s in self.stats.values())

    @property
    def total_wall_ns(self) -> int:
        return sum(s.wall_ns for s in self.stats.values())

    @property
    def total_virtual_ns(self) -> int:
        return sum(s.virtual_ns for s in self.stats.values())

    def render(self) -> str:
        """Fixed-width table, heaviest wall time first."""
        rows = sorted(self.stats.values(),
                      key=lambda s: (-s.wall_ns, s.label))
        wall_total = self.total_wall_ns or 1
        out = [f"{'subsystem':<28} {'events':>9} {'wall ms':>9} "
               f"{'wall %':>7} {'virtual s':>10}"]
        for stat in rows:
            out.append(
                f"{stat.label:<28} {stat.events:>9} "
                f"{stat.wall_ns / 1e6:>9.2f} "
                f"{100.0 * stat.wall_ns / wall_total:>6.1f}% "
                f"{stat.virtual_ns / 1e9:>10.3f}")
        out.append(f"{'total':<28} {self.total_events:>9} "
                   f"{self.total_wall_ns / 1e6:>9.2f} {'100.0%':>7} "
                   f"{self.total_virtual_ns / 1e9:>10.3f}")
        return "\n".join(out)


@contextmanager
def profile(engine=None, *,
            time_fn: Callable[[], int] = time.perf_counter_ns):
    """Context manager wiring a fresh profiler into the dispatch path.

    With ``engine`` given, only that engine is profiled (its previous
    profiler is restored on exit).  Without, the profiler becomes the
    process-wide ambient one: every :class:`~repro.sim.engine.Engine`
    *constructed inside the block* adopts it — the way to profile
    ``run_workload``, which builds its machine internally.
    """
    profiler = VirtualTimeProfiler(time_fn=time_fn)
    if engine is not None:
        previous = engine.profiler
        engine.profiler = profiler
        try:
            yield profiler
        finally:
            engine.profiler = previous
    else:
        global _current
        previous = _current
        _current = profiler
        try:
            yield profiler
        finally:
            _current = previous
